//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible given a seed, independent of
//! platform and dependency versions, so we carry a small self-contained
//! SplitMix64 generator rather than relying on an external RNG whose stream
//! may change between releases. SplitMix64 passes BigCrush for the uses we
//! have (workload phases, noise, tie-breaking) and is trivially splittable
//! into independent streams.

/// A seedable, splittable pseudo-random number generator (SplitMix64).
///
/// Each logical source of randomness in a simulation (per-VM demand noise,
/// fleet generation, placement tie-breaking, ...) should own its own stream,
/// derived via [`RngStream::substream`], so that adding a consumer never
/// perturbs the draws seen by another.
///
/// # Example
///
/// ```
/// use simcore::RngStream;
///
/// let mut a = RngStream::new(42).substream(1);
/// let mut b = RngStream::new(42).substream(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RngStream {
    state: u64,
    /// Cached second Box–Muller variate, if one is pending.
    gauss_spare: Option<f64>,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngStream {
    /// Creates a stream from a seed. The same seed always yields the same
    /// sequence.
    pub fn new(seed: u64) -> Self {
        RngStream {
            // Mix the seed so that small consecutive seeds give unrelated
            // streams.
            state: mix(seed ^ GOLDEN_GAMMA),
            gauss_spare: None,
        }
    }

    /// Derives an independent stream identified by `id`.
    ///
    /// Streams derived with distinct ids from the same parent are
    /// statistically independent; deriving with the same id is reproducible.
    pub fn substream(&self, id: u64) -> RngStream {
        RngStream {
            state: mix(self.state ^ mix(id.wrapping_mul(GOLDEN_GAMMA) ^ 0xD605_0BB5_9C3A_46C1)),
            gauss_spare: None,
        }
    }

    /// Splits off an independent child stream, advancing this one.
    ///
    /// Unlike [`RngStream::substream`], which derives a stream from a
    /// fixed id without touching the parent, `split` consumes one draw
    /// from the parent per child, so a loop can mint an unbounded
    /// sequence of mutually independent streams (one per generated test
    /// case, one per worker, ...) without inventing ids.
    pub fn split(&mut self) -> RngStream {
        RngStream::new(self.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer draw in `[0, n)` using Lemire's rejection method
    /// (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire 2018: multiply-shift with rejection of the biased zone.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal draw (Box–Muller, with the spare variate cached).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box–Muller transform on two uniforms.
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev >= 0.0,
            "std_dev must be non-negative, got {std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Exponential draw with the given rate parameter `lambda`
    /// (mean `1/lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "lambda must be positive, got {lambda}");
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / lambda
    }

    /// Log-normal draw parameterized by the mean and standard deviation of
    /// the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Picks an index in `[0, weights.len())` proportionally to `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1 // floating-point slop: last non-zero bucket
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = RngStream::new(7);
        let mut b = RngStream::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RngStream::new(7);
        let mut b = RngStream::new(8);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn substreams_are_independent_and_reproducible() {
        let root = RngStream::new(99);
        let mut s1 = root.substream(1);
        let mut s1b = root.substream(1);
        let mut s2 = root.substream(2);
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn split_streams_are_independent_and_reproducible() {
        let mut parent = RngStream::new(11);
        let mut twin = RngStream::new(11);
        let mut a = parent.split();
        let mut b = parent.split();
        let mut a2 = twin.split();
        let mut b2 = twin.split();
        assert_eq!(a.next_u64(), a2.next_u64(), "same parent, same children");
        assert_eq!(b.next_u64(), b2.next_u64());
        assert_ne!(a.next_u64(), b.next_u64(), "children are distinct");
    }

    #[test]
    fn split_advances_the_parent() {
        let mut split_once = RngStream::new(11);
        let _child = split_once.split();
        let mut untouched = RngStream::new(11);
        assert_ne!(split_once.next_u64(), untouched.next_u64());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = RngStream::new(1);
        for _ in 0..10_000 {
            let x = r.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = RngStream::new(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expect 10_000 each; allow generous 5% tolerance.
            assert!((9_500..10_500).contains(&c), "count {c} out of tolerance");
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = RngStream::new(3);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal(10.0, 2.0);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = RngStream::new(4);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = RngStream::new(5);
        let mut counts = [0u32; 3];
        for _ in 0..90_000 {
            counts[r.weighted_index(&[1.0, 2.0, 0.0])] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!((counts[1] as f64 / counts[0] as f64 - 2.0).abs() < 0.15);
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn weighted_index_rejects_all_zero() {
        RngStream::new(6).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = RngStream::new(7);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
