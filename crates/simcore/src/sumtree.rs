//! Fixed-shape pairwise summation: a from-scratch fold and an
//! incrementally-maintained tree that are bitwise equal by construction.
//!
//! Floating-point addition is not associative, so "the sum of these
//! leaves" is only well-defined once the reduction shape is fixed. Both
//! entry points here reduce over the *same* balanced binary tree (leaves
//! padded with `0.0` to the next power of two), which makes a scan-side
//! recomputation and an index-side incremental update interchangeable at
//! the bit level — the property the planner's differential suite and the
//! cluster's cached power/capacity totals both rely on.

/// Fixed-shape pairwise sum of `leaf(0..n)`: the array is padded with
/// `0.0` to the next power of two and reduced as a balanced binary tree.
///
/// This is the from-scratch twin of [`SumTree`]: for the same `n` and
/// leaf values the result is bitwise identical to [`SumTree::root`],
/// which is what lets a scan path recompute aggregates per decision
/// while an incremental path maintains them under point updates.
pub fn pairwise_sum(n: usize, leaf: impl Fn(usize) -> f64) -> f64 {
    fn reduce(lo: usize, size: usize, n: usize, leaf: &impl Fn(usize) -> f64) -> f64 {
        if size == 1 {
            return if lo < n { leaf(lo) } else { 0.0 };
        }
        let half = size / 2;
        reduce(lo, half, n, leaf) + reduce(lo + half, half, n, leaf)
    }
    if n == 0 {
        return 0.0;
    }
    reduce(0, n.next_power_of_two(), n, &leaf)
}

/// A fixed-shape pairwise-summation tree over `n` leaves, padded with
/// `0.0` to a power of two.
///
/// Every internal node holds the sum of its two children, so
/// [`root`](Self::root) equals [`pairwise_sum`] over the same leaves
/// bitwise, and [`set`](Self::set) refreshes one leaf in O(log n) while
/// preserving that equality (each updated node recomputes the identical
/// `left + right` expression).
#[derive(Debug, Clone, Default)]
pub struct SumTree {
    /// Heap-shaped node array: root at 1, leaves at `base..base + base`.
    nodes: Vec<f64>,
    /// Number of padded leaves (power of two), 0 for an empty tree.
    base: usize,
    /// Logical leaf count.
    len: usize,
}

impl SumTree {
    /// Empty tree (root 0.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the tree over `leaf(0..n)` in O(n), reusing the node
    /// allocation when the size is unchanged.
    pub fn rebuild(&mut self, n: usize, leaf: impl Fn(usize) -> f64) {
        self.len = n;
        self.base = n.next_power_of_two().max(1);
        self.nodes.clear();
        self.nodes.resize(2 * self.base, 0.0);
        for i in 0..n {
            self.nodes[self.base + i] = leaf(i);
        }
        for i in (1..self.base).rev() {
            self.nodes[i] = self.nodes[2 * i] + self.nodes[2 * i + 1];
        }
    }

    /// Sets leaf `i` and refreshes its root path.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, value: f64) {
        assert!(i < self.len, "SumTree leaf {i} out of range {}", self.len);
        let mut node = self.base + i;
        self.nodes[node] = value;
        while node > 1 {
            node /= 2;
            self.nodes[node] = self.nodes[2 * node] + self.nodes[2 * node + 1];
        }
    }

    /// Current value of leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn leaf(&self, i: usize) -> f64 {
        assert!(i < self.len, "SumTree leaf {i} out of range {}", self.len);
        self.nodes[self.base + i]
    }

    /// Sum of all leaves (0.0 for an empty tree), bitwise equal to
    /// [`pairwise_sum`] over the same values.
    pub fn root(&self) -> f64 {
        if self.base == 0 {
            0.0
        } else {
            self.nodes[1]
        }
    }

    /// Number of logical leaves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}
