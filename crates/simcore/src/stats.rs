//! Summary statistics: online moments, percentiles, and histograms.

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable single-pass moments; used for per-tick metrics where
/// storing every sample would be wasteful at scale.
///
/// # Example
///
/// ```
/// use simcore::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation (0 if fewer than 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Linear-interpolated percentile of a sample set (like numpy's default).
///
/// Returns `None` for an empty slice.
///
/// Samples are ordered with [`f64::total_cmp`] (IEEE 754 total order),
/// so NaN input never panics: positive NaNs sort after `+inf` and
/// negative NaNs before `-inf`. A NaN that lands inside the requested
/// rank window propagates into the result — callers who need a clean
/// answer should filter non-finite samples first.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
///
/// # Example
///
/// ```
/// use simcore::percentile;
///
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&data, 50.0), Some(2.5));
/// assert_eq!(percentile(&data, 100.0), Some(4.0));
/// ```
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// A fixed-range linear histogram.
///
/// Samples below the range land in the first bucket, above it in the last;
/// the histogram never loses counts. Used for latency and utilization
/// distributions in reports.
///
/// # Example
///
/// ```
/// use simcore::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 10);
/// h.push(0.05);
/// h.push(0.95);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.bucket_counts()[0], 1);
/// assert_eq!(h.bucket_counts()[9], 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `buckets` equal-width
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Adds a sample, clamping out-of-range values to the edge buckets.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        let n = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * n as f64) as usize
        };
        self.counts[idx.min(n - 1)] += 1;
        self.total += 1;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The lower edge of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bucket {i} out of range");
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// Fraction of samples at or below the upper edge of bucket `i`
    /// (empirical CDF evaluated on bucket boundaries).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cdf_at(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bucket {i} out of range");
        if self.total == 0 {
            return 0.0;
        }
        let cum: u64 = self.counts[..=i].iter().sum();
        cum as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [1.0, 5.0, 2.0, 8.0, 3.0, 3.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.population_variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), Some(1.0));
        assert_eq!(w.max(), Some(9.0));
        assert_eq!(w.count(), 7);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut whole = Welford::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(3.0);
        let saved = a;
        a.merge(&Welford::new());
        assert_eq!(a, saved);
        let mut empty = Welford::new();
        empty.merge(&saved);
        assert_eq!(empty, saved);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&data, 0.0), Some(10.0));
        assert_eq!(percentile(&data, 50.0), Some(20.0));
        assert_eq!(percentile(&data, 75.0), Some(25.0));
        assert_eq!(percentile(&data, 100.0), Some(30.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_tolerates_nan_input() {
        // Regression: this used to panic via partial_cmp().expect().
        // Total order puts the (positive) NaN after +inf, so low
        // percentiles still read the finite samples.
        let data = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 100.0 / 3.0), Some(2.0));
        // Ranks that touch the NaN propagate it instead of panicking.
        assert!(percentile(&data, 100.0).unwrap().is_nan());
        assert!(percentile(&[f64::NAN], 50.0).unwrap().is_nan());
    }

    #[test]
    fn histogram_buckets_and_cdf() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 3.0, 9.9, -1.0, 100.0] {
            h.push(x);
        }
        assert_eq!(h.count(), 6);
        // -1.0 and 0.5, 1.5 land in bucket 0.. wait -1.0 -> bucket 0, 0.5->0, 1.5->0, 3.0->1, 9.9->4, 100->4
        assert_eq!(h.bucket_counts(), &[3, 1, 0, 0, 2]);
        assert!((h.cdf_at(1) - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.cdf_at(4), 1.0);
        assert_eq!(h.bucket_lo(1), 2.0);
    }
}
