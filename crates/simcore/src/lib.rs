//! Discrete-event simulation substrate for the `agilepm` workspace.
//!
//! This crate provides the low-level machinery every other crate builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — a millisecond-resolution simulation
//!   clock with exact integer arithmetic, so event ordering is deterministic
//!   and runs are bit-reproducible.
//! * [`EventQueue`] — a priority queue of timestamped events with stable
//!   FIFO tie-breaking for events scheduled at the same instant.
//! * [`RngStream`] — a seedable, splittable pseudo-random number generator
//!   (SplitMix64) with the distribution samplers the workload and placement
//!   layers need. Using our own tiny PRNG keeps results stable across
//!   dependency upgrades.
//! * [`TimeSeries`], [`Histogram`], [`Welford`] — the measurement toolkit
//!   used by the simulator's metrics pipeline (time-weighted integrals,
//!   percentiles, online moments).
//! * [`pool`] — a bounded worker pool for running independent jobs (whole
//!   simulations, sweep points) in parallel with index-ordered results.
//!
//! # Example
//!
//! ```
//! use simcore::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(5), "later");
//! q.schedule(SimTime::ZERO, "now");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::ZERO);
//! assert_eq!(ev, "now");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod pool;
mod rng;
mod series;
mod stats;
mod sumtree;
mod time;

pub use event::EventQueue;
pub use rng::RngStream;
pub use series::{SeriesPoint, TimeSeries};
pub use stats::{percentile, Histogram, Welford};
pub use sumtree::{pairwise_sum, SumTree};
pub use time::{SimDuration, SimTime};
