//! The event queue at the heart of the discrete-event engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of timestamped events with deterministic ordering.
///
/// Events pop in non-decreasing time order; events scheduled for the same
/// instant pop in the order they were scheduled (FIFO), which makes the
/// engine's behaviour independent of heap internals and therefore
/// reproducible.
///
/// # Example
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick, Done }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), Ev::Done);
/// q.schedule(SimTime::ZERO, Ev::Tick);
/// assert_eq!(q.pop(), Some((SimTime::ZERO, Ev::Tick)));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), Ev::Done)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the comparison so the earliest
// (time, seq) pair is at the top.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is allowed by the queue itself (the engine
    /// enforces monotonic dispatch); events at equal times fire in
    /// scheduling order.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.schedule(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }
}
