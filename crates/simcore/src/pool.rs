//! A minimal bounded worker pool for embarrassingly-parallel job sets,
//! plus the fixed-shard primitives the deterministic sharded tick engine
//! is built on.
//!
//! Two layers live here:
//!
//! * [`run_indexed`] — coarse-grained parallelism *across* independent
//!   jobs (whole simulations, sweep points). Workers claim indices
//!   atomically and results come back in index order.
//! * [`shard_ranges`] / [`map_shards`] / [`for_each_shard`] — fine-grained
//!   parallelism *inside* a run. The caller partitions its state into
//!   fixed, contiguous shards (one disjoint slice chunk per shard) and the
//!   pool runs one closure per shard on scoped threads, returning per-shard
//!   results **in shard order**. Shard boundaries depend only on
//!   `(len, threads)`, never on timing, and the shard helpers honor the
//!   requested thread count exactly (they do not consult
//!   `available_parallelism`), so a `--threads 8` run exercises the same
//!   code path on a 1-core CI box as on a 64-core workstation. Reductions
//!   over shard results stay on the calling thread, which is how callers
//!   keep bit-identical fold order regardless of the thread count.
//!
//! On single-core machines (or for a single job/shard) everything degrades
//! to a plain sequential loop with no thread or synchronization overhead,
//! so results are identical either way — per-job determinism is the
//! caller's responsibility and the pool never reorders outputs.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Runs `num_jobs` jobs, `run(i)` for each index, on a bounded pool of
/// worker threads; returns the results in index order.
///
/// The worker count is `min(available_parallelism, num_jobs)`. With one
/// worker the jobs run sequentially on the calling thread.
///
/// # Panics
///
/// Panics if any job panics (the panic is propagated once all workers
/// have stopped).
pub fn run_indexed<T, F>(num_jobs: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(num_jobs);
    if workers <= 1 {
        return (0..num_jobs).map(run).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..num_jobs).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= num_jobs {
                    break;
                }
                let result = run(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed job")
        })
        .collect()
}

/// Splits `0..len` into at most `shards` fixed, contiguous, near-equal,
/// non-empty ranges covering the whole span in order.
///
/// The partition is a pure function of `(len, shards)`: the first
/// `len % shards` ranges carry one extra element. Deterministic shard
/// boundaries are what let the sharded tick engine produce bit-identical
/// results at any thread count — per-element work is independent and the
/// caller folds shard outputs in fixed shard order.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for k in 0..shards {
        let size = base + usize::from(k < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Splits `slice` into the disjoint mutable sub-slices described by
/// `ranges`, which must be contiguous, ascending, and cover
/// `0..slice.len()` exactly (as produced by [`shard_ranges`]). The
/// sub-slices are independently mutable, which is what lets shard workers
/// write into disjoint chunks of one buffer without synchronization.
///
/// # Panics
///
/// Panics if a range is longer than what remains of the slice.
pub fn split_mut<'a, T>(slice: &'a mut [T], ranges: &[Range<usize>]) -> Vec<&'a mut [T]> {
    let mut rest = slice;
    let mut out = Vec::with_capacity(ranges.len());
    for r in ranges {
        let taken = std::mem::take(&mut rest);
        let (head, tail) = taken.split_at_mut(r.len());
        out.push(head);
        rest = tail;
    }
    debug_assert!(rest.is_empty(), "ranges must cover the whole slice");
    out
}

/// Runs `f(shard_index, item)` once per item on scoped worker threads and
/// returns the results **in item order**.
///
/// Items are typically per-shard work units (disjoint slice chunks built
/// with [`shard_ranges`]). One item runs on the calling thread; the rest
/// get one scoped thread each, so callers should pass at most `threads`
/// items. With `threads <= 1` (or fewer than two items) everything runs
/// sequentially on the calling thread — the requested thread count is
/// honored exactly and `available_parallelism` is never consulted.
///
/// # Panics
///
/// Panics if any item's closure panics (propagated after all workers
/// stop).
pub fn map_shards<I, R, F>(threads: usize, items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(k, item)| f(k, item))
            .collect();
    }
    let f = &f;
    thread::scope(|scope| {
        let mut iter = items.into_iter().enumerate();
        let (k0, first) = iter.next().expect("len > 1 checked above");
        let handles: Vec<_> = iter
            .map(|(k, item)| scope.spawn(move || f(k, item)))
            .collect();
        let mut results = Vec::with_capacity(handles.len() + 1);
        results.push(f(k0, first));
        for handle in handles {
            match handle.join() {
                Ok(r) => results.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        results
    })
}

/// Side-effect-only variant of [`map_shards`]: runs `f(shard_index, item)`
/// once per item on scoped worker threads, discarding results. Same
/// thread-count semantics and panic propagation as [`map_shards`].
pub fn for_each_shard<I, F>(threads: usize, items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(usize, I) + Sync,
{
    let _ = map_shards(threads, items, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let out = run_indexed(17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u32> = run_indexed(0, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn single_job_runs_inline() {
        assert_eq!(run_indexed(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn jobs_each_run_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        run_indexed(64, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn shard_ranges_partition_contiguously() {
        for len in [1usize, 2, 5, 16, 17, 100, 4096] {
            for shards in [1usize, 2, 3, 7, 8, 64, 10_000] {
                let ranges = shard_ranges(len, shards);
                assert_eq!(ranges.len(), shards.min(len), "len={len} shards={shards}");
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap at len={len} shards={shards}");
                    assert!(r.end > r.start, "empty shard at len={len} shards={shards}");
                    next = r.end;
                }
                assert_eq!(next, len, "partition must cover 0..len");
                // Near-equal: sizes differ by at most one element.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced shards: {sizes:?}");
            }
        }
    }

    #[test]
    fn shard_ranges_of_nothing_is_empty() {
        assert!(shard_ranges(0, 4).is_empty());
    }

    #[test]
    fn split_mut_yields_disjoint_writable_chunks() {
        let mut data = vec![0u32; 13];
        let ranges = shard_ranges(data.len(), 4);
        let chunks = split_mut(&mut data, &ranges);
        assert_eq!(chunks.len(), 4);
        for (k, chunk) in chunks.into_iter().enumerate() {
            for slot in chunk.iter_mut() {
                *slot = k as u32 + 1;
            }
        }
        // Every element was written exactly once, shard-major.
        let expect: Vec<u32> = ranges
            .iter()
            .enumerate()
            .flat_map(|(k, r)| std::iter::repeat_n(k as u32 + 1, r.len()))
            .collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn map_shards_returns_item_order_at_any_thread_count() {
        let items: Vec<usize> = (0..7).collect();
        for threads in [1usize, 2, 4, 8, 32] {
            let out = map_shards(threads, items.clone(), |k, item| {
                assert_eq!(k, item, "shard index must match item order");
                item * 10
            });
            assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60], "threads={threads}");
        }
    }

    #[test]
    fn for_each_shard_visits_every_item_once() {
        use std::sync::atomic::AtomicU32;
        let hits: Vec<AtomicU32> = (0..9).map(|_| AtomicU32::new(0)).collect();
        for_each_shard(4, (0..9).collect::<Vec<usize>>(), |_, i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    #[should_panic(expected = "shard worker panicked")]
    fn map_shards_propagates_worker_panics() {
        map_shards(4, vec![0usize, 1, 2, 3], |_, item| {
            assert!(item != 2, "shard worker panicked");
        });
    }
}
