//! A minimal bounded worker pool for embarrassingly-parallel job sets.
//!
//! Callers hand over a job count and an indexed closure; the pool claims
//! indices atomically, runs jobs on `available_parallelism()` scoped
//! threads, and returns the results in index order. On single-core
//! machines (or for a single job) it degrades to a plain sequential loop
//! with no thread or synchronization overhead, so results are identical
//! either way — per-job determinism is the caller's responsibility and
//! the pool never reorders outputs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Runs `num_jobs` jobs, `run(i)` for each index, on a bounded pool of
/// worker threads; returns the results in index order.
///
/// The worker count is `min(available_parallelism, num_jobs)`. With one
/// worker the jobs run sequentially on the calling thread.
///
/// # Panics
///
/// Panics if any job panics (the panic is propagated once all workers
/// have stopped).
pub fn run_indexed<T, F>(num_jobs: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(num_jobs);
    if workers <= 1 {
        return (0..num_jobs).map(run).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..num_jobs).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= num_jobs {
                    break;
                }
                let result = run(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let out = run_indexed(17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u32> = run_indexed(0, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn single_job_runs_inline() {
        assert_eq!(run_indexed(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn jobs_each_run_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        run_indexed(64, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }
}
