//! Simulation clock types.
//!
//! Time is tracked in integer milliseconds since the start of the
//! simulation. Integer arithmetic makes event ordering exact: two runs with
//! the same seed produce the same event interleaving on every platform.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in milliseconds since simulation
/// start.
///
/// `SimTime` is an absolute point in time; [`SimDuration`] is a span.
/// Construct instants by adding durations to [`SimTime::ZERO`] or to another
/// instant.
///
/// # Example
///
/// ```
/// use simcore::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(90);
/// assert_eq!(t.as_millis(), 90_000);
/// assert_eq!(format!("{t}"), "1m30s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in milliseconds.
///
/// # Example
///
/// ```
/// use simcore::SimDuration;
///
/// let d = SimDuration::from_mins(2) + SimDuration::from_secs(30);
/// assert_eq!(d.as_secs_f64(), 150.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for power/energy math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Hours since simulation start, as a float (for report axes).
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulation time never runs
    /// backwards, so this indicates a logic error in the caller.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Creates a span from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a span from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// The span in raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The span in hours, as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Whether the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer number of times `step` fits into `self` (ceiling division).
    ///
    /// Used to size tick schedules: a 24 h horizon with a 5 min step yields
    /// 288 ticks.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn div_ceil(self, step: SimDuration) -> u64 {
        assert!(!step.is_zero(), "step must be non-zero");
        self.0.div_ceil(step.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        SimDuration(self.0).fmt(f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        let (h, rem) = (ms / 3_600_000, ms % 3_600_000);
        let (m, rem) = (rem / 60_000, rem % 60_000);
        let (s, ms) = (rem / 1000, rem % 1000);
        if h > 0 {
            write!(f, "{h}h")?;
        }
        if m > 0 {
            write!(f, "{m}m")?;
        }
        if s > 0 || (h == 0 && m == 0 && ms == 0) {
            write!(f, "{s}s")?;
        }
        if ms > 0 {
            write!(f, "{ms}ms")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 10_500);
        assert_eq!(
            t.since(SimTime::from_secs(10)),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_hours(2), SimDuration::from_mins(120));
        assert_eq!(SimDuration::from_mins(3), SimDuration::from_secs(180));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_reversed_order() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", SimDuration::from_secs(3725)), "1h2m5s");
        assert_eq!(format!("{}", SimDuration::ZERO), "0s");
        assert_eq!(format!("{}", SimDuration::from_millis(1250)), "1s250ms");
        assert_eq!(format!("{}", SimDuration::from_hours(1)), "1h");
    }

    #[test]
    fn div_ceil_counts_ticks() {
        assert_eq!(
            SimDuration::from_hours(24).div_ceil(SimDuration::from_mins(5)),
            288
        );
        assert_eq!(
            SimDuration::from_secs(10).div_ceil(SimDuration::from_secs(3)),
            4
        );
    }

    #[test]
    fn float_conversions() {
        assert!((SimDuration::from_mins(90).as_hours_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_secs(7200).as_hours_f64() - 2.0).abs() < 1e-12);
    }
}
