//! Step-function time series used for power traces and utilization records.

use crate::{SimDuration, SimTime};

/// One sample of a time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Instant the value took effect.
    pub time: SimTime,
    /// Value from `time` until the next sample.
    pub value: f64,
}

/// A piecewise-constant (step-function) time series.
///
/// Each recorded sample holds until the next one, which matches how the
/// simulator produces data: host power or utilization changes at discrete
/// events and is constant in between. Integration and time-weighted
/// averaging are exact under this interpretation.
///
/// # Example
///
/// ```
/// use simcore::{SimTime, TimeSeries};
///
/// let mut power = TimeSeries::new();
/// power.record(SimTime::ZERO, 100.0);
/// power.record(SimTime::from_secs(10), 200.0);
/// // 10 s at 100 W + 10 s at 200 W = 3000 J
/// assert_eq!(power.integral_until(SimTime::from_secs(20)), 3000.0);
/// assert_eq!(power.time_weighted_mean(SimTime::from_secs(20)), Some(150.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<SeriesPoint>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Records `value` taking effect at `time`.
    ///
    /// Recording at the same instant as the previous sample overwrites it
    /// (the last write wins, matching event semantics). Consecutive equal
    /// values are coalesced.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous sample, or `value` is not
    /// finite.
    pub fn record(&mut self, time: SimTime, value: f64) {
        assert!(value.is_finite(), "non-finite sample {value} at {time}");
        if let Some(last) = self.points.last_mut() {
            assert!(
                last.time <= time,
                "samples must be time-ordered: {} after {}",
                time,
                last.time
            );
            if last.time == time {
                last.value = value;
                return;
            }
            if last.value == value {
                return; // coalesce runs of the same value
            }
        }
        self.points.push(SeriesPoint { time, value });
    }

    /// Rebuilds a series from already-recorded samples, verbatim.
    ///
    /// Unlike [`record`](Self::record), equal consecutive values are
    /// *not* coalesced: a recorded series may legitimately contain them
    /// (a same-instant overwrite can converge a sample with its
    /// predecessor after both were pushed), and deserializers must
    /// preserve every point so a serialize/parse round-trip is exact.
    ///
    /// # Panics
    ///
    /// Panics if the samples are not time-ordered, contain duplicate
    /// timestamps, or hold a non-finite value.
    pub fn from_points(points: impl IntoIterator<Item = (SimTime, f64)>) -> Self {
        let mut series = TimeSeries::new();
        for (time, value) in points {
            assert!(value.is_finite(), "non-finite sample {value} at {time}");
            if let Some(last) = series.points.last() {
                assert!(
                    last.time < time,
                    "samples must be strictly time-ordered: {} after {}",
                    time,
                    last.time
                );
            }
            series.points.push(SeriesPoint { time, value });
        }
        series
    }

    /// The samples, in time order.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Whether any samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of (coalesced) samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// The value in effect at `time`, or `None` before the first sample.
    pub fn value_at(&self, time: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|p| p.time.cmp(&time)) {
            Ok(i) => Some(self.points[i].value),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].value),
        }
    }

    /// Integral of the step function from the first sample to `end`.
    ///
    /// For a power series in watts this is the energy in joules.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the final sample.
    pub fn integral_until(&self, end: SimTime) -> f64 {
        let mut total = 0.0;
        for pair in self.points.windows(2) {
            total += pair[0].value * pair[1].time.since(pair[0].time).as_secs_f64();
        }
        if let Some(last) = self.points.last() {
            total += last.value * end.since(last.time).as_secs_f64();
        }
        total
    }

    /// Time-weighted mean over `[first sample, end]`, or `None` if the
    /// series is empty or spans zero time.
    pub fn time_weighted_mean(&self, end: SimTime) -> Option<f64> {
        let first = self.points.first()?.time;
        let span = end.since(first);
        if span.is_zero() {
            return None;
        }
        Some(self.integral_until(end) / span.as_secs_f64())
    }

    /// Maximum sample value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Minimum sample value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Resamples the series onto a regular grid of `step`-spaced instants
    /// starting at the first sample, ending at or before `end`. Each output
    /// point is the step-function value at that instant.
    ///
    /// Used to print plot-ready rows at a fixed cadence regardless of event
    /// density.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn resample(&self, step: SimDuration, end: SimTime) -> Vec<SeriesPoint> {
        assert!(!step.is_zero(), "step must be non-zero");
        let Some(first) = self.points.first() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut t = first.time;
        while t <= end {
            if let Some(v) = self.value_at(t) {
                out.push(SeriesPoint { time: t, value: v });
            }
            t += step;
        }
        out
    }

    /// Pointwise sum of several series, sampled on the union of their
    /// breakpoints. Series contribute zero before their first sample.
    ///
    /// Used to aggregate per-host power traces into a datacenter trace.
    pub fn sum(series: &[&TimeSeries]) -> TimeSeries {
        let mut times: Vec<SimTime> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.time))
            .collect();
        times.sort_unstable();
        times.dedup();
        let mut out = TimeSeries::new();
        for t in times {
            let v: f64 = series.iter().filter_map(|s| s.value_at(t)).sum();
            out.record(t, v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn value_at_follows_steps() {
        let mut ts = TimeSeries::new();
        ts.record(s(10), 1.0);
        ts.record(s(20), 2.0);
        assert_eq!(ts.value_at(s(5)), None);
        assert_eq!(ts.value_at(s(10)), Some(1.0));
        assert_eq!(ts.value_at(s(15)), Some(1.0));
        assert_eq!(ts.value_at(s(20)), Some(2.0));
        assert_eq!(ts.value_at(s(100)), Some(2.0));
    }

    #[test]
    fn integral_is_exact_for_steps() {
        let mut ts = TimeSeries::new();
        ts.record(s(0), 100.0);
        ts.record(s(60), 50.0);
        // 60 s at 100 + 40 s at 50 = 8000
        assert_eq!(ts.integral_until(s(100)), 8000.0);
    }

    #[test]
    fn same_instant_overwrites() {
        let mut ts = TimeSeries::new();
        ts.record(s(0), 1.0);
        ts.record(s(0), 3.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.value_at(s(0)), Some(3.0));
    }

    #[test]
    fn from_points_preserves_converged_neighbours() {
        // An overwrite can leave two consecutive samples with equal
        // values; `record` would coalesce the second on replay, but a
        // verbatim rebuild must keep it.
        let mut ts = TimeSeries::new();
        ts.record(s(0), 5.0);
        ts.record(s(10), 7.0);
        ts.record(s(10), 5.0);
        assert_eq!(ts.len(), 2);
        let rebuilt = TimeSeries::from_points(ts.points().iter().map(|p| (p.time, p.value)));
        assert_eq!(rebuilt, ts);
    }

    #[test]
    #[should_panic(expected = "strictly time-ordered")]
    fn from_points_rejects_unordered_samples() {
        TimeSeries::from_points([(s(10), 1.0), (s(5), 2.0)]);
    }

    #[test]
    fn equal_values_coalesce() {
        let mut ts = TimeSeries::new();
        ts.record(s(0), 5.0);
        ts.record(s(1), 5.0);
        ts.record(s(2), 5.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.integral_until(s(10)), 50.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_out_of_order_samples() {
        let mut ts = TimeSeries::new();
        ts.record(s(10), 1.0);
        ts.record(s(5), 2.0);
    }

    #[test]
    fn mean_min_max() {
        let mut ts = TimeSeries::new();
        ts.record(s(0), 10.0);
        ts.record(s(10), 30.0);
        assert_eq!(ts.time_weighted_mean(s(20)), Some(20.0));
        assert_eq!(ts.max(), Some(30.0));
        assert_eq!(ts.min(), Some(10.0));
        assert_eq!(TimeSeries::new().max(), None);
    }

    #[test]
    fn resample_grid() {
        let mut ts = TimeSeries::new();
        ts.record(s(0), 1.0);
        ts.record(s(25), 2.0);
        let pts = ts.resample(SimDuration::from_secs(10), s(40));
        let vals: Vec<f64> = pts.iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![1.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn sum_aggregates_series() {
        let mut a = TimeSeries::new();
        a.record(s(0), 1.0);
        a.record(s(10), 2.0);
        let mut b = TimeSeries::new();
        b.record(s(5), 10.0);
        let total = TimeSeries::sum(&[&a, &b]);
        assert_eq!(total.value_at(s(0)), Some(1.0));
        assert_eq!(total.value_at(s(5)), Some(11.0));
        assert_eq!(total.value_at(s(10)), Some(12.0));
    }
}
