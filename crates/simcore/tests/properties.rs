//! Randomized tests for the simulation substrate.
//!
//! Cases are drawn from [`RngStream`] with fixed seeds, so runs are
//! reproducible without an external property-testing framework.

use simcore::{percentile, EventQueue, RngStream, SimDuration, SimTime, TimeSeries, Welford};

/// A small, time-ordered list of (time-gap, value) samples.
fn samples(rng: &mut RngStream) -> Vec<(u64, f64)> {
    let n = 1 + rng.below(39) as usize;
    (0..n)
        .map(|_| (1 + rng.below(9_999), rng.uniform(-1.0e6, 1.0e6)))
        .collect()
}

/// The step-function integral equals the hand-computed sum of
/// value × holding-time.
#[test]
fn integral_matches_manual_sum() {
    let mut rng = RngStream::new(1);
    for _ in 0..100 {
        let sams = samples(&mut rng);
        let tail_ms = rng.below(100_000);
        let mut ts = TimeSeries::new();
        let mut t = 0u64;
        let mut points = Vec::new();
        for (gap, v) in sams {
            ts.record(SimTime::from_millis(t), v);
            points.push((t, v));
            t += gap;
        }
        let end = t + tail_ms;
        let mut manual = 0.0;
        for (i, &(start, v)) in points.iter().enumerate() {
            let stop = points.get(i + 1).map(|&(s, _)| s).unwrap_or(end);
            manual += v * (stop - start) as f64 / 1000.0;
        }
        let got = ts.integral_until(SimTime::from_millis(end));
        let scale = manual.abs().max(1.0);
        assert!(
            (got - manual).abs() / scale < 1e-9,
            "got {got}, manual {manual}"
        );
    }
}

/// value_at always returns the most recent sample at or before t.
#[test]
fn value_at_is_last_sample() {
    let mut rng = RngStream::new(2);
    for _ in 0..100 {
        let sams = samples(&mut rng);
        let query_ms = rng.below(500_000);
        let mut ts = TimeSeries::new();
        let mut t = 0u64;
        let mut points = Vec::new();
        for (gap, v) in sams {
            ts.record(SimTime::from_millis(t), v);
            points.push((t, v));
            t += gap;
        }
        let expected = points
            .iter()
            .rev()
            .find(|&&(s, _)| s <= query_ms)
            .map(|&(_, v)| v);
        assert_eq!(ts.value_at(SimTime::from_millis(query_ms)), expected);
    }
}

/// Summing series pointwise equals the sum of individual integrals.
#[test]
fn sum_preserves_integral() {
    let mut rng = RngStream::new(3);
    for _ in 0..100 {
        let a = samples(&mut rng);
        let b = samples(&mut rng);
        let build = |sams: &[(u64, f64)]| {
            let mut ts = TimeSeries::new();
            let mut t = 0u64;
            for &(gap, v) in sams {
                ts.record(SimTime::from_millis(t), v);
                t += gap;
            }
            (ts, t)
        };
        let (ts_a, end_a) = build(&a);
        let (ts_b, end_b) = build(&b);
        let end = SimTime::from_millis(end_a.max(end_b) + 1000);
        let total = TimeSeries::sum(&[&ts_a, &ts_b]);
        let lhs = total.integral_until(end);
        let rhs = ts_a.integral_until(end) + ts_b.integral_until(end);
        let scale = rhs.abs().max(1.0);
        assert!((lhs - rhs).abs() / scale < 1e-9, "{lhs} vs {rhs}");
    }
}

/// Welford merge is associative with sequential accumulation.
#[test]
fn welford_merge_matches_sequential() {
    let mut rng = RngStream::new(4);
    for _ in 0..100 {
        let n = 1 + rng.below(99) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0e3, 1.0e3)).collect();
        let split = rng.below(100) as usize % xs.len();
        let mut left = Welford::new();
        let mut right = Welford::new();
        let mut whole = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            if i < split {
                left.push(x)
            } else {
                right.push(x)
            }
            whole.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-6);
    }
}

/// Percentiles are monotone in p and bounded by min/max.
#[test]
fn percentile_monotone_and_bounded() {
    let mut rng = RngStream::new(5);
    for _ in 0..100 {
        let n = 1 + rng.below(59) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0e3, 1.0e3)).collect();
        let p0 = percentile(&xs, 0.0).unwrap();
        let p50 = percentile(&xs, 50.0).unwrap();
        let p100 = percentile(&xs, 100.0).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(p0 <= p50 && p50 <= p100);
        assert!((p0 - min).abs() < 1e-12);
        assert!((p100 - max).abs() < 1e-12);
    }
}

/// The event queue is a stable priority queue: output is sorted by
/// time, and equal times preserve insertion order.
#[test]
fn event_queue_stable_sort() {
    let mut rng = RngStream::new(6);
    for _ in 0..100 {
        let n = 1 + rng.below(79) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.below(50)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut prev: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((pt, pi)) = prev {
                assert!(pt <= t);
                if pt == t {
                    assert!(pi < i, "FIFO violated at {t}");
                }
            }
            prev = Some((t, i));
        }
    }
}

/// Uniform draws respect their bounds; `below` respects n.
#[test]
fn rng_bounds() {
    let mut gen = RngStream::new(7);
    for _ in 0..100 {
        let seed = gen.below(u64::MAX);
        let lo = gen.uniform(-100.0, 100.0);
        let width = gen.uniform(0.0, 100.0);
        let n = 1 + gen.below(999);
        let mut r = RngStream::new(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let u = r.uniform(lo, hi);
            assert!(u >= lo && (u < hi || width == 0.0));
            assert!(r.below(n) < n);
        }
    }
}

/// Durations round-trip through f64 seconds within 1 ms.
#[test]
fn duration_secs_round_trip() {
    let mut rng = RngStream::new(8);
    for _ in 0..200 {
        let ms = rng.below(10_000_000);
        let d = SimDuration::from_millis(ms);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        assert_eq!(back, d);
    }
}
