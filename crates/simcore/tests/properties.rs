//! Property tests for the simulation substrate, on the [`check`]
//! framework: generated cases shrink to minimal counterexamples and
//! reproduce from the printed replay seed.

use check::gen::{f64_in, u64_in, usize_in, vec_of, Gen};
use check::{prop_assert, prop_assert_eq};
use simcore::{percentile, EventQueue, RngStream, SimDuration, SimTime, TimeSeries, Welford};

/// A small list of (time-gap-ms, value) samples; gaps are strictly
/// positive so recorded times are strictly increasing.
fn samples() -> Gen<Vec<(u64, f64)>> {
    vec_of(&u64_in(1..=10_000).zip(&f64_in(-1.0e6, 1.0e6)), 1..=40)
}

/// Builds a series from gap/value pairs, returning the series, the
/// absolute sample times, and the time of the last sample.
fn build(sams: &[(u64, f64)]) -> (TimeSeries, Vec<(u64, f64)>, u64) {
    let mut ts = TimeSeries::new();
    let mut t = 0u64;
    let mut points = Vec::new();
    for &(gap, v) in sams {
        ts.record(SimTime::from_millis(t), v);
        points.push((t, v));
        t += gap;
    }
    (ts, points, t)
}

/// The step-function integral equals the hand-computed sum of
/// value × holding-time.
#[test]
fn integral_matches_manual_sum() {
    check::check(
        "TimeSeries integral == manual sum",
        &samples().zip(&u64_in(0..=100_000)),
        |(sams, tail_ms)| {
            let (ts, points, t) = build(sams);
            let end = t + tail_ms;
            let mut manual = 0.0;
            for (i, &(start, v)) in points.iter().enumerate() {
                let stop = points.get(i + 1).map(|&(s, _)| s).unwrap_or(end);
                manual += v * (stop - start) as f64 / 1000.0;
            }
            let got = ts.integral_until(SimTime::from_millis(end));
            let scale = manual.abs().max(1.0);
            prop_assert!(
                (got - manual).abs() / scale < 1e-9,
                "got {got}, manual {manual}"
            );
            Ok(())
        },
    );
}

/// value_at always returns the most recent sample at or before t.
#[test]
fn value_at_is_last_sample() {
    check::check(
        "TimeSeries value_at == last sample",
        &samples().zip(&u64_in(0..=500_000)),
        |(sams, query_ms)| {
            let (ts, points, _) = build(sams);
            let expected = points
                .iter()
                .rev()
                .find(|&&(s, _)| s <= *query_ms)
                .map(|&(_, v)| v);
            prop_assert_eq!(ts.value_at(SimTime::from_millis(*query_ms)), expected);
            Ok(())
        },
    );
}

/// Summing series pointwise equals the sum of individual integrals.
#[test]
fn sum_preserves_integral() {
    check::check(
        "TimeSeries sum preserves integral",
        &samples().zip(&samples()),
        |(a, b)| {
            let (ts_a, _, end_a) = build(a);
            let (ts_b, _, end_b) = build(b);
            let end = SimTime::from_millis(end_a.max(end_b) + 1000);
            let total = TimeSeries::sum(&[&ts_a, &ts_b]);
            let lhs = total.integral_until(end);
            let rhs = ts_a.integral_until(end) + ts_b.integral_until(end);
            let scale = rhs.abs().max(1.0);
            prop_assert!((lhs - rhs).abs() / scale < 1e-9, "{lhs} vs {rhs}");
            Ok(())
        },
    );
}

/// Welford merge is associative with sequential accumulation.
#[test]
fn welford_merge_matches_sequential() {
    check::check(
        "Welford merge == sequential",
        &vec_of(&f64_in(-1.0e3, 1.0e3), 1..=100).zip(&usize_in(0..=99)),
        |(xs, split_raw)| {
            let split = split_raw % xs.len();
            let mut left = Welford::new();
            let mut right = Welford::new();
            let mut whole = Welford::new();
            for (i, &x) in xs.iter().enumerate() {
                if i < split {
                    left.push(x)
                } else {
                    right.push(x)
                }
                whole.push(x);
            }
            left.merge(&right);
            prop_assert_eq!(left.count(), whole.count());
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
            prop_assert!((left.population_variance() - whole.population_variance()).abs() < 1e-6);
            Ok(())
        },
    );
}

/// Percentiles are monotone in p and bounded by min/max.
#[test]
fn percentile_monotone_and_bounded() {
    check::check(
        "percentile monotone and bounded",
        &vec_of(&f64_in(-1.0e3, 1.0e3), 1..=60),
        |xs| {
            let p0 = percentile(xs, 0.0).unwrap();
            let p50 = percentile(xs, 50.0).unwrap();
            let p100 = percentile(xs, 100.0).unwrap();
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p0 <= p50 && p50 <= p100);
            prop_assert!((p0 - min).abs() < 1e-12);
            prop_assert!((p100 - max).abs() < 1e-12);
            Ok(())
        },
    );
}

/// The event queue is a stable priority queue: output is sorted by
/// time, and equal times preserve insertion order.
#[test]
fn event_queue_stable_sort() {
    check::check(
        "EventQueue stable sort",
        &vec_of(&u64_in(0..=49), 1..=80),
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_millis(t), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((pt, pi)) = prev {
                    prop_assert!(pt <= t);
                    if pt == t {
                        prop_assert!(pi < i, "FIFO violated at {t}");
                    }
                }
                prev = Some((t, i));
            }
            Ok(())
        },
    );
}

/// Uniform draws respect their bounds; `below` respects n.
#[test]
fn rng_bounds() {
    let input = u64_in(0..=u64::MAX)
        .zip(&f64_in(-100.0, 100.0))
        .zip(&f64_in(0.0, 100.0))
        .zip(&u64_in(1..=1000));
    check::check("RngStream bounds", &input, |&(((seed, lo), width), n)| {
        let mut r = RngStream::new(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let u = r.uniform(lo, hi);
            prop_assert!(u >= lo && (u < hi || width == 0.0));
            prop_assert!(r.below(n) < n);
        }
        Ok(())
    });
}

/// Split streams are reproducible and independent of later parent use.
#[test]
fn split_streams_are_reproducible() {
    check::check(
        "RngStream split reproducible",
        &u64_in(0..=u64::MAX),
        |&seed| {
            let mut parent_a = RngStream::new(seed);
            let mut child_a = parent_a.split();
            let mut parent_b = RngStream::new(seed);
            let mut child_b = parent_b.split();
            let _ = parent_b.next_u64(); // parent use must not affect the child
            for _ in 0..16 {
                prop_assert_eq!(child_a.next_u64(), child_b.next_u64());
            }
            Ok(())
        },
    );
}

/// Durations round-trip through f64 seconds within 1 ms.
#[test]
fn duration_secs_round_trip() {
    check::check(
        "SimDuration secs round-trip",
        &u64_in(0..=10_000_000),
        |&ms| {
            let d = SimDuration::from_millis(ms);
            let back = SimDuration::from_secs_f64(d.as_secs_f64());
            prop_assert_eq!(back, d);
            Ok(())
        },
    );
}
