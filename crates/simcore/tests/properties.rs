//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use simcore::{percentile, EventQueue, RngStream, SimDuration, SimTime, TimeSeries, Welford};

/// Strategy: a small, time-ordered list of (time-gap, value) samples.
fn samples() -> impl Strategy<Value = Vec<(u64, f64)>> {
    proptest::collection::vec((1u64..10_000, -1.0e6f64..1.0e6), 1..40)
}

proptest! {
    /// The step-function integral equals the hand-computed sum of
    /// value × holding-time.
    #[test]
    fn integral_matches_manual_sum(samples in samples(), tail_ms in 0u64..100_000) {
        let mut ts = TimeSeries::new();
        let mut t = 0u64;
        let mut points = Vec::new();
        for (gap, v) in samples {
            ts.record(SimTime::from_millis(t), v);
            points.push((t, v));
            t += gap;
        }
        let end = t + tail_ms;
        let mut manual = 0.0;
        for (i, &(start, v)) in points.iter().enumerate() {
            let stop = points.get(i + 1).map(|&(s, _)| s).unwrap_or(end);
            manual += v * (stop - start) as f64 / 1000.0;
        }
        let got = ts.integral_until(SimTime::from_millis(end));
        let scale = manual.abs().max(1.0);
        prop_assert!((got - manual).abs() / scale < 1e-9, "got {got}, manual {manual}");
    }

    /// value_at always returns the most recent sample at or before t.
    #[test]
    fn value_at_is_last_sample(samples in samples(), query_ms in 0u64..500_000) {
        let mut ts = TimeSeries::new();
        let mut t = 0u64;
        let mut points = Vec::new();
        for (gap, v) in samples {
            ts.record(SimTime::from_millis(t), v);
            points.push((t, v));
            t += gap;
        }
        let expected = points
            .iter()
            .rev()
            .find(|&&(s, _)| s <= query_ms)
            .map(|&(_, v)| v);
        prop_assert_eq!(ts.value_at(SimTime::from_millis(query_ms)), expected);
    }

    /// Summing series pointwise equals the sum of individual integrals.
    #[test]
    fn sum_preserves_integral(a in samples(), b in samples()) {
        let build = |sams: &[(u64, f64)]| {
            let mut ts = TimeSeries::new();
            let mut t = 0u64;
            for &(gap, v) in sams {
                ts.record(SimTime::from_millis(t), v);
                t += gap;
            }
            (ts, t)
        };
        let (ts_a, end_a) = build(&a);
        let (ts_b, end_b) = build(&b);
        let end = SimTime::from_millis(end_a.max(end_b) + 1000);
        let total = TimeSeries::sum(&[&ts_a, &ts_b]);
        let lhs = total.integral_until(end);
        let rhs = ts_a.integral_until(end) + ts_b.integral_until(end);
        let scale = rhs.abs().max(1.0);
        prop_assert!((lhs - rhs).abs() / scale < 1e-9, "{lhs} vs {rhs}");
    }

    /// Welford merge is associative with sequential accumulation.
    #[test]
    fn welford_merge_matches_sequential(xs in proptest::collection::vec(-1.0e3f64..1.0e3, 1..100), split in 0usize..100) {
        let split = split % xs.len();
        let mut left = Welford::new();
        let mut right = Welford::new();
        let mut whole = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            if i < split { left.push(x) } else { right.push(x) }
            whole.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.population_variance() - whole.population_variance()).abs() < 1e-6);
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_monotone_and_bounded(xs in proptest::collection::vec(-1.0e3f64..1.0e3, 1..60)) {
        let p0 = percentile(&xs, 0.0).unwrap();
        let p50 = percentile(&xs, 50.0).unwrap();
        let p100 = percentile(&xs, 100.0).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p0 <= p50 && p50 <= p100);
        prop_assert!((p0 - min).abs() < 1e-12);
        prop_assert!((p100 - max).abs() < 1e-12);
    }

    /// The event queue is a stable priority queue: output is sorted by
    /// time, and equal times preserve insertion order.
    #[test]
    fn event_queue_stable_sort(times in proptest::collection::vec(0u64..50, 1..80)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut prev: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((pt, pi)) = prev {
                prop_assert!(pt <= t);
                if pt == t {
                    prop_assert!(pi < i, "FIFO violated at {t}");
                }
            }
            prev = Some((t, i));
        }
    }

    /// Uniform draws respect their bounds; `below` respects n.
    #[test]
    fn rng_bounds(seed in any::<u64>(), lo in -100.0f64..100.0, width in 0.0f64..100.0, n in 1u64..1000) {
        let mut r = RngStream::new(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let u = r.uniform(lo, hi);
            prop_assert!(u >= lo && (u < hi || width == 0.0));
            prop_assert!(r.below(n) < n);
        }
    }

    /// Durations round-trip through f64 seconds within 1 ms.
    #[test]
    fn duration_secs_round_trip(ms in 0u64..10_000_000) {
        let d = SimDuration::from_millis(ms);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        prop_assert_eq!(back, d);
    }
}
