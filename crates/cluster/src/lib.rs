//! Virtualization substrate for the `agilepm` workspace.
//!
//! Models the managed datacenter at the granularity the ISCA'13 paper's
//! management layer operates on: physical hosts with capacity and a power
//! state, virtual machines with resource footprints, a placement map, and a
//! live-migration cost model.
//!
//! * [`HostId`] / [`VmId`] — typed identifiers.
//! * [`Resources`] — CPU (cores) and memory (GB) vectors.
//! * [`VmSpec`] / [`Host`] — the managed entities; each host couples its
//!   capacity with a [`power::PowerStateMachine`].
//! * [`PlacementMap`] — the VM→host assignment with integrity checks.
//! * [`MigrationModel`] — live-migration duration and CPU overhead as a
//!   function of VM memory size and network bandwidth.
//! * [`Cluster`] — the facade tying it together; the simulator and the
//!   manager only talk to this type.
//!
//! # Example
//!
//! ```
//! use cluster::{Cluster, HostId, HostSpec, Resources, VmSpec};
//! use power::HostPowerProfile;
//! use simcore::SimTime;
//!
//! let hosts =
//!     vec![HostSpec::new(Resources::new(16.0, 64.0), HostPowerProfile::prototype_rack()); 2];
//! let vms = vec![VmSpec::new(Resources::new(2.0, 8.0)); 3];
//! let mut cluster = Cluster::new(hosts, vms, SimTime::ZERO);
//! // Place every VM on host 0.
//! let vms: Vec<_> = cluster.vm_ids().collect();
//! for vm in vms {
//!     cluster.place(vm, HostId(0))?;
//! }
//! assert_eq!(cluster.vms_on(HostId(0)).len(), 3);
//! # Ok::<(), cluster::ClusterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster_impl;
mod error;
mod host;
mod ids;
mod migration;
mod placement;
mod resources;
mod vm;

pub use cluster_impl::{AccountingMode, Cluster, ClusterShardView, DemandOutcome};
pub use error::ClusterError;
pub use host::{Host, HostSpec};
pub use ids::{HostId, VmId};
pub use migration::{Migration, MigrationModel};
pub use placement::PlacementMap;
pub use resources::Resources;
pub use vm::{ServiceClass, VmSpec};
