//! Error type for cluster operations.

use std::error::Error;
use std::fmt;

use power::PowerError;

use crate::{HostId, VmId};

/// Errors returned by [`crate::Cluster`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A host id outside the cluster.
    UnknownHost(HostId),
    /// A VM id outside the cluster.
    UnknownVm(VmId),
    /// The VM is already placed and must be migrated, not re-placed.
    VmAlreadyPlaced(VmId),
    /// The VM has no current host.
    VmNotPlaced(VmId),
    /// The VM is already migrating and cannot start another action.
    VmMigrating(VmId),
    /// The target host is not in the `On` state.
    HostNotOperational(HostId),
    /// The target host lacks memory capacity for the VM.
    InsufficientCapacity {
        /// Host that was tried.
        host: HostId,
        /// VM that did not fit.
        vm: VmId,
    },
    /// A power-down was requested for a host that still has VMs (or VMs
    /// migrating toward it).
    HostNotEvacuated(HostId),
    /// The migration source and destination are the same host.
    SelfMigration(VmId),
    /// An underlying power-state machine error.
    Power(PowerError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownHost(h) => write!(f, "unknown host {h}"),
            ClusterError::UnknownVm(v) => write!(f, "unknown VM {v}"),
            ClusterError::VmAlreadyPlaced(v) => write!(f, "{v} is already placed"),
            ClusterError::VmNotPlaced(v) => write!(f, "{v} is not placed on any host"),
            ClusterError::VmMigrating(v) => write!(f, "{v} is already migrating"),
            ClusterError::HostNotOperational(h) => write!(f, "{h} is not powered on"),
            ClusterError::InsufficientCapacity { host, vm } => {
                write!(f, "{vm} does not fit on {host}")
            }
            ClusterError::HostNotEvacuated(h) => {
                write!(f, "{h} still hosts or is receiving VMs")
            }
            ClusterError::SelfMigration(v) => write!(f, "{v} cannot migrate to its own host"),
            ClusterError::Power(e) => write!(f, "power state error: {e}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Power(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PowerError> for ClusterError {
    fn from(e: PowerError) -> Self {
        ClusterError::Power(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_ids() {
        let e = ClusterError::InsufficientCapacity {
            host: HostId(3),
            vm: VmId(9),
        };
        let s = e.to_string();
        assert!(s.contains("host3") && s.contains("vm9"));
    }

    #[test]
    fn power_error_wraps_with_source() {
        let e: ClusterError = PowerError::NotTransitioning.into();
        assert!(matches!(e, ClusterError::Power(_)));
        assert!(Error::source(&e).is_some());
    }
}
