//! Typed identifiers for hosts and virtual machines.

use std::fmt;

/// Identifier of a physical host within a [`crate::Cluster`].
///
/// Hosts are densely numbered from zero in creation order, so a `HostId`
/// doubles as an index into per-host vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Identifier of a virtual machine within a [`crate::Cluster`].
///
/// VMs are densely numbered from zero in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u32);

impl HostId {
    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VmId {
    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(HostId(3).to_string(), "host3");
        assert_eq!(VmId(7).to_string(), "vm7");
        assert_eq!(HostId(3).index(), 3);
        assert_eq!(VmId(7).index(), 7);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(HostId(1) < HostId(2));
        assert!(VmId(0) < VmId(10));
    }
}
