//! Physical hosts: capacity plus a power-state machine.

use std::sync::Arc;

use power::breakeven::LadderSummary;
use power::{HostPowerProfile, PowerState, PowerStateMachine};
use simcore::SimTime;

use crate::{HostId, Resources};

/// Static configuration of one physical host.
#[derive(Debug, Clone)]
pub struct HostSpec {
    capacity: Resources,
    profile: Arc<HostPowerProfile>,
}

impl HostSpec {
    /// Creates a host spec from its capacity and power profile.
    ///
    /// # Panics
    ///
    /// Panics if capacity is zero on either dimension.
    pub fn new(capacity: Resources, profile: impl Into<Arc<HostPowerProfile>>) -> Self {
        assert!(capacity.cpu_cores > 0.0, "host needs CPU capacity");
        assert!(capacity.mem_gb > 0.0, "host needs memory capacity");
        HostSpec {
            capacity,
            profile: profile.into(),
        }
    }

    /// The host's capacity.
    pub fn capacity(&self) -> Resources {
        self.capacity
    }

    /// The host's power profile.
    pub fn profile(&self) -> &Arc<HostPowerProfile> {
        &self.profile
    }
}

/// A live physical host within a [`crate::Cluster`].
///
/// Couples a [`HostSpec`] with a running [`PowerStateMachine`]. Placement
/// state lives in the cluster's [`crate::PlacementMap`], not here, so the
/// host stays a pure physical model.
#[derive(Debug, Clone)]
pub struct Host {
    id: HostId,
    capacity: Resources,
    power: PowerStateMachine,
    ladder: LadderSummary,
}

impl Host {
    pub(crate) fn from_spec(id: HostId, spec: &HostSpec, t0: SimTime) -> Self {
        Host {
            id,
            capacity: spec.capacity,
            power: PowerStateMachine::new(Arc::clone(&spec.profile), t0),
            ladder: LadderSummary::of(&spec.profile),
        }
    }

    /// The host's identifier.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// The host's total capacity.
    pub fn capacity(&self) -> Resources {
        self.capacity
    }

    /// Current power state.
    pub fn power_state(&self) -> PowerState {
        self.power.state()
    }

    /// Whether the host can serve VM load right now.
    pub fn is_operational(&self) -> bool {
        self.power.is_operational()
    }

    /// Immutable access to the power machine (energy meter, residency,
    /// transition counts).
    pub fn power(&self) -> &PowerStateMachine {
        &self.power
    }

    /// Precomputed summary of the host's power-state ladder — what a
    /// management plane observes without holding the full profile.
    pub fn ladder(&self) -> LadderSummary {
        self.ladder
    }

    /// Mutable access to the power machine; the cluster uses this to drive
    /// transitions and utilization updates.
    pub(crate) fn power_mut(&mut self) -> &mut PowerStateMachine {
        &mut self.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_from_spec_starts_on() {
        let spec = HostSpec::new(
            Resources::new(16.0, 64.0),
            HostPowerProfile::prototype_rack(),
        );
        let h = Host::from_spec(HostId(2), &spec, SimTime::ZERO);
        assert_eq!(h.id(), HostId(2));
        assert_eq!(h.capacity(), Resources::new(16.0, 64.0));
        assert_eq!(h.power_state(), PowerState::On);
        assert!(h.is_operational());
    }

    #[test]
    fn specs_share_profile_allocation() {
        let spec = HostSpec::new(
            Resources::new(8.0, 32.0),
            HostPowerProfile::prototype_blade(),
        );
        let a = Host::from_spec(HostId(0), &spec, SimTime::ZERO);
        let b = Host::from_spec(HostId(1), &spec, SimTime::ZERO);
        assert_eq!(a.power().profile().name(), b.power().profile().name());
    }

    #[test]
    #[should_panic(expected = "host needs CPU capacity")]
    fn rejects_zero_capacity() {
        HostSpec::new(
            Resources::new(0.0, 64.0),
            HostPowerProfile::prototype_rack(),
        );
    }
}
