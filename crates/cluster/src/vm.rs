//! Virtual-machine specifications.

use crate::Resources;

/// The service class of a VM: who gets capacity first under overload.
///
/// Interactive (latency-sensitive) VMs are served before batch VMs when a
/// host is CPU-overloaded, and the manager prefers disrupting batch VMs
/// when it must migrate. Mirrors the enterprise tiering of the paper's
/// workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServiceClass {
    /// Latency-sensitive, served first (the default).
    #[default]
    Interactive,
    /// Throughput-oriented, absorbs overload and disruption first.
    Batch,
}

/// Static configuration of one virtual machine.
///
/// The VM's *demand* varies over time and lives in the workload layer; the
/// spec records its configured maximums — the CPU cap that bounds how many
/// cores it can consume and the memory footprint that live migration must
/// copy — plus its service class.
///
/// # Example
///
/// ```
/// use cluster::{Resources, ServiceClass, VmSpec};
///
/// let vm = VmSpec::new(Resources::new(2.0, 8.0)).with_class(ServiceClass::Batch);
/// assert_eq!(vm.cpu_cap_cores(), 2.0);
/// assert_eq!(vm.mem_gb(), 8.0);
/// assert_eq!(vm.service_class(), ServiceClass::Batch);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmSpec {
    resources: Resources,
    class: ServiceClass,
}

impl VmSpec {
    /// Creates a spec from the VM's configured resources (interactive
    /// class by default).
    ///
    /// # Panics
    ///
    /// Panics if the CPU cap or memory footprint is zero — a VM that can
    /// never consume anything, or occupies no memory, indicates a workload
    /// generation bug.
    pub fn new(resources: Resources) -> Self {
        assert!(resources.cpu_cores > 0.0, "VM needs a positive CPU cap");
        assert!(resources.mem_gb > 0.0, "VM needs a positive memory size");
        VmSpec {
            resources,
            class: ServiceClass::Interactive,
        }
    }

    /// Sets the service class.
    pub fn with_class(mut self, class: ServiceClass) -> Self {
        self.class = class;
        self
    }

    /// The VM's configured resources as a vector.
    pub fn resources(&self) -> Resources {
        self.resources
    }

    /// Maximum cores the VM can consume.
    pub fn cpu_cap_cores(&self) -> f64 {
        self.resources.cpu_cores
    }

    /// Memory footprint in GB (governs migration duration).
    pub fn mem_gb(&self) -> f64 {
        self.resources.mem_gb
    }

    /// The service class.
    pub fn service_class(&self) -> ServiceClass {
        self.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let vm = VmSpec::new(Resources::new(4.0, 16.0));
        assert_eq!(vm.resources(), Resources::new(4.0, 16.0));
        assert_eq!(vm.cpu_cap_cores(), 4.0);
        assert_eq!(vm.mem_gb(), 16.0);
        assert_eq!(vm.service_class(), ServiceClass::Interactive);
    }

    #[test]
    fn class_builder() {
        let vm = VmSpec::new(Resources::new(1.0, 4.0)).with_class(ServiceClass::Batch);
        assert_eq!(vm.service_class(), ServiceClass::Batch);
    }

    #[test]
    #[should_panic(expected = "positive CPU cap")]
    fn rejects_zero_cpu() {
        VmSpec::new(Resources::new(0.0, 8.0));
    }

    #[test]
    #[should_panic(expected = "positive memory size")]
    fn rejects_zero_mem() {
        VmSpec::new(Resources::new(1.0, 0.0));
    }
}
