//! Two-dimensional resource vectors (CPU and memory).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A CPU/memory resource vector.
///
/// CPU is measured in cores (fractional allowed — a VM demanding 0.5 cores
/// is fine); memory in gigabytes. Used both for capacities (hosts) and
/// footprints (VMs).
///
/// # Example
///
/// ```
/// use cluster::Resources;
///
/// let host = Resources::new(16.0, 64.0);
/// let vm = Resources::new(2.0, 8.0);
/// assert!(vm.fits_in(&host));
/// assert_eq!(host - vm, Resources::new(14.0, 56.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resources {
    /// CPU capacity or demand, in cores.
    pub cpu_cores: f64,
    /// Memory capacity or footprint, in gigabytes.
    pub mem_gb: f64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources {
        cpu_cores: 0.0,
        mem_gb: 0.0,
    };

    /// Creates a resource vector.
    ///
    /// # Panics
    ///
    /// Panics if either component is negative or not finite.
    pub fn new(cpu_cores: f64, mem_gb: f64) -> Self {
        assert!(
            cpu_cores.is_finite() && cpu_cores >= 0.0,
            "bad cpu {cpu_cores}"
        );
        assert!(mem_gb.is_finite() && mem_gb >= 0.0, "bad mem {mem_gb}");
        Resources { cpu_cores, mem_gb }
    }

    /// Whether this vector fits within `capacity` on both dimensions
    /// (with a small epsilon to absorb floating-point accumulation).
    pub fn fits_in(&self, capacity: &Resources) -> bool {
        const EPS: f64 = 1e-9;
        self.cpu_cores <= capacity.cpu_cores + EPS && self.mem_gb <= capacity.mem_gb + EPS
    }

    /// Componentwise saturating subtraction (never goes negative).
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            cpu_cores: (self.cpu_cores - other.cpu_cores).max(0.0),
            mem_gb: (self.mem_gb - other.mem_gb).max(0.0),
        }
    }

    /// The larger utilization fraction of the two dimensions relative to
    /// `capacity` — the binding constraint. Dimensions with zero capacity
    /// count as fully utilized if any demand exists.
    pub fn utilization_of(&self, capacity: &Resources) -> f64 {
        fn frac(demand: f64, cap: f64) -> f64 {
            if cap > 0.0 {
                demand / cap
            } else if demand > 0.0 {
                1.0
            } else {
                0.0
            }
        }
        frac(self.cpu_cores, capacity.cpu_cores).max(frac(self.mem_gb, capacity.mem_gb))
    }

    /// Componentwise scale.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(&self, factor: f64) -> Resources {
        assert!(factor.is_finite() && factor >= 0.0, "bad factor {factor}");
        Resources {
            cpu_cores: self.cpu_cores * factor,
            mem_gb: self.mem_gb * factor,
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu_cores: self.cpu_cores + rhs.cpu_cores,
            mem_gb: self.mem_gb + rhs.mem_gb,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        self.cpu_cores += rhs.cpu_cores;
        self.mem_gb += rhs.mem_gb;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            cpu_cores: self.cpu_cores - rhs.cpu_cores,
            mem_gb: self.mem_gb - rhs.mem_gb,
        }
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        self.cpu_cores -= rhs.cpu_cores;
        self.mem_gb -= rhs.mem_gb;
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl Default for Resources {
    fn default() -> Self {
        Resources::ZERO
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} cores / {:.1} GB", self.cpu_cores, self.mem_gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(4.0, 16.0);
        let b = Resources::new(1.0, 4.0);
        assert_eq!(a + b, Resources::new(5.0, 20.0));
        assert_eq!(a - b, Resources::new(3.0, 12.0));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn fits_requires_both_dimensions() {
        let cap = Resources::new(8.0, 32.0);
        assert!(Resources::new(8.0, 32.0).fits_in(&cap));
        assert!(!Resources::new(8.1, 1.0).fits_in(&cap));
        assert!(!Resources::new(1.0, 33.0).fits_in(&cap));
    }

    #[test]
    fn fits_tolerates_fp_accumulation() {
        let cap = Resources::new(1.0, 1.0);
        // Sum of ten 0.1s slightly exceeds 1.0 in floating point.
        let sum: Resources = (0..10).map(|_| Resources::new(0.1, 0.1)).sum();
        assert!(sum.fits_in(&cap));
    }

    #[test]
    fn utilization_is_binding_dimension() {
        let cap = Resources::new(10.0, 100.0);
        assert_eq!(Resources::new(5.0, 10.0).utilization_of(&cap), 0.5);
        assert_eq!(Resources::new(1.0, 90.0).utilization_of(&cap), 0.9);
        assert_eq!(Resources::ZERO.utilization_of(&cap), 0.0);
        assert_eq!(
            Resources::new(1.0, 0.0).utilization_of(&Resources::ZERO),
            1.0
        );
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Resources::new(1.0, 1.0);
        let b = Resources::new(2.0, 0.5);
        assert_eq!(a.saturating_sub(&b), Resources::new(0.0, 0.5));
    }

    #[test]
    fn scale_and_sum() {
        let a = Resources::new(2.0, 4.0);
        assert_eq!(a.scale(1.5), Resources::new(3.0, 6.0));
        let total: Resources = vec![a, a, a].into_iter().sum();
        assert_eq!(total, Resources::new(6.0, 12.0));
    }

    #[test]
    #[should_panic(expected = "bad cpu")]
    fn rejects_negative() {
        Resources::new(-1.0, 0.0);
    }
}
