//! Live-migration cost model.
//!
//! Live migration copies a VM's memory over the management network while
//! the VM keeps running on the source host. We model the standard
//! pre-copy behaviour the paper's testbed (ESX vMotion-class) exhibits:
//!
//! * duration ≈ `mem × dirty_factor / bandwidth` — the dirty-page factor
//!   (> 1) accounts for re-copying pages dirtied during the copy;
//! * the VM consumes CPU on the *source* until the final switch-over;
//! * both endpoints pay a CPU tax while the copy runs.

use simcore::{SimDuration, SimTime};

use crate::{HostId, VmId};

/// Parameters of the live-migration model.
///
/// # Example
///
/// ```
/// use cluster::MigrationModel;
///
/// let m = MigrationModel::default();
/// // An 8 GB VM takes ~10 s over 10 Gb/s with default dirty factor 1.3.
/// let d = m.duration_for(8.0);
/// assert!((8.0..16.0).contains(&d.as_secs_f64()), "{d}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationModel {
    /// Usable migration network bandwidth, gigabits per second.
    bandwidth_gbps: f64,
    /// Memory re-copy multiplier (≥ 1.0) for pages dirtied mid-copy.
    dirty_factor: f64,
    /// Extra CPU consumed on each endpoint while a migration runs, in
    /// cores.
    cpu_tax_cores: f64,
    /// Concurrent migrations the network carries at full speed; beyond
    /// this, migrations share bandwidth (`None` = uncontended).
    concurrent_channels: Option<f64>,
}

impl MigrationModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive, `dirty_factor < 1.0`, or the
    /// CPU tax is negative.
    pub fn new(bandwidth_gbps: f64, dirty_factor: f64, cpu_tax_cores: f64) -> Self {
        assert!(
            bandwidth_gbps.is_finite() && bandwidth_gbps > 0.0,
            "bad bandwidth {bandwidth_gbps}"
        );
        assert!(
            dirty_factor.is_finite() && dirty_factor >= 1.0,
            "dirty factor must be >= 1, got {dirty_factor}"
        );
        assert!(
            cpu_tax_cores.is_finite() && cpu_tax_cores >= 0.0,
            "bad cpu tax {cpu_tax_cores}"
        );
        MigrationModel {
            bandwidth_gbps,
            dirty_factor,
            cpu_tax_cores,
            concurrent_channels: None,
        }
    }

    /// Enables bandwidth contention: up to `channels` migrations run at
    /// full speed; beyond that, a migration started with `k` others in
    /// flight is slowed by `(k+1)/channels`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is not strictly positive.
    pub fn with_contention(mut self, channels: f64) -> Self {
        assert!(
            channels.is_finite() && channels > 0.0,
            "bad channel count {channels}"
        );
        self.concurrent_channels = Some(channels);
        self
    }

    /// How long migrating a VM with `mem_gb` of memory takes on an
    /// uncontended network.
    pub fn duration_for(&self, mem_gb: f64) -> SimDuration {
        self.duration_for_with_load(mem_gb, 0)
    }

    /// How long the migration takes when `in_flight` others are already
    /// running (bandwidth sharing under contention, if enabled).
    pub fn duration_for_with_load(&self, mem_gb: f64, in_flight: usize) -> SimDuration {
        let mut secs = mem_gb * 8.0 * self.dirty_factor / self.bandwidth_gbps;
        if let Some(channels) = self.concurrent_channels {
            let slowdown = ((in_flight as f64 + 1.0) / channels).max(1.0);
            secs *= slowdown;
        }
        // Even a tiny VM has fixed setup/switch-over cost.
        SimDuration::from_secs_f64(secs.max(1.0))
    }

    /// CPU tax per endpoint while a migration runs, in cores.
    pub fn cpu_tax_cores(&self) -> f64 {
        self.cpu_tax_cores
    }
}

impl Default for MigrationModel {
    /// 10 Gb/s management network, 1.3× dirty factor, 0.5-core tax —
    /// typical of the paper's testbed class.
    fn default() -> Self {
        MigrationModel::new(10.0, 1.3, 0.5)
    }
}

/// One in-flight live migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// The VM being moved.
    pub vm: VmId,
    /// Source host (where the VM keeps running until completion).
    pub from: HostId,
    /// Destination host.
    pub to: HostId,
    /// When the switch-over completes.
    pub completes_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scales_with_memory() {
        let m = MigrationModel::default();
        let small = m.duration_for(2.0);
        let large = m.duration_for(32.0);
        assert!(large.as_secs_f64() > 10.0 * small.as_secs_f64());
    }

    #[test]
    fn duration_scales_inverse_with_bandwidth() {
        let slow = MigrationModel::new(1.0, 1.0, 0.0);
        let fast = MigrationModel::new(10.0, 1.0, 0.0);
        let d_slow = slow.duration_for(10.0).as_secs_f64();
        let d_fast = fast.duration_for(10.0).as_secs_f64();
        assert!((d_slow / d_fast - 10.0).abs() < 0.01);
    }

    #[test]
    fn tiny_vm_has_floor_cost() {
        let m = MigrationModel::default();
        assert!(m.duration_for(0.01).as_secs_f64() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "dirty factor")]
    fn rejects_dirty_factor_below_one() {
        MigrationModel::new(10.0, 0.5, 0.0);
    }

    #[test]
    fn contention_slows_concurrent_migrations() {
        let m = MigrationModel::new(10.0, 1.0, 0.0).with_contention(4.0);
        let alone = m.duration_for_with_load(16.0, 0);
        let within_channels = m.duration_for_with_load(16.0, 3);
        let crowded = m.duration_for_with_load(16.0, 7);
        assert_eq!(alone, within_channels);
        assert!((crowded.as_secs_f64() / alone.as_secs_f64() - 2.0).abs() < 0.01);
    }

    #[test]
    fn no_contention_by_default() {
        let m = MigrationModel::default();
        assert_eq!(m.duration_for_with_load(8.0, 100), m.duration_for(8.0));
    }
}
