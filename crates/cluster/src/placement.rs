//! The VM→host placement map.

use std::collections::BTreeSet;

use crate::{HostId, VmId};

/// Bidirectional VM→host assignment with integrity checking.
///
/// The map is the single source of truth for "where does this VM run"; the
/// cluster layers admission control and migration semantics on top.
///
/// # Example
///
/// ```
/// use cluster::{HostId, PlacementMap, VmId};
///
/// let mut map = PlacementMap::new(2, 3);
/// map.place(VmId(0), HostId(1));
/// assert_eq!(map.host_of(VmId(0)), Some(HostId(1)));
/// assert_eq!(map.vms_on(HostId(1)), &[VmId(0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementMap {
    vm_to_host: Vec<Option<HostId>>,
    host_to_vms: Vec<BTreeSet<VmId>>,
}

impl PlacementMap {
    /// Creates an empty map for `hosts` hosts and `vms` VMs (all VMs
    /// initially unplaced).
    pub fn new(hosts: usize, vms: usize) -> Self {
        PlacementMap {
            vm_to_host: vec![None; vms],
            host_to_vms: vec![BTreeSet::new(); hosts],
        }
    }

    /// The host a VM currently runs on, or `None` if unplaced.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn host_of(&self, vm: VmId) -> Option<HostId> {
        self.vm_to_host[vm.index()]
    }

    /// The VMs on `host`, in id order.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn vms_on(&self, host: HostId) -> Vec<VmId> {
        self.host_to_vms[host.index()].iter().copied().collect()
    }

    /// Number of VMs on `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn count_on(&self, host: HostId) -> usize {
        self.host_to_vms[host.index()].len()
    }

    /// Whether `host` has no VMs.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn is_empty_host(&self, host: HostId) -> bool {
        self.host_to_vms[host.index()].is_empty()
    }

    /// Places an unplaced VM on a host.
    ///
    /// # Panics
    ///
    /// Panics if the VM is already placed (move with [`Self::relocate`])
    /// or either id is out of range.
    pub fn place(&mut self, vm: VmId, host: HostId) {
        assert!(
            self.vm_to_host[vm.index()].is_none(),
            "{vm} is already placed"
        );
        self.vm_to_host[vm.index()] = Some(host);
        self.host_to_vms[host.index()].insert(vm);
    }

    /// Removes a VM from its host, returning where it was.
    ///
    /// # Panics
    ///
    /// Panics if the VM is not placed or out of range.
    pub fn remove(&mut self, vm: VmId) -> HostId {
        let host = self.vm_to_host[vm.index()]
            .take()
            .unwrap_or_else(|| panic!("{vm} is not placed"));
        let removed = self.host_to_vms[host.index()].remove(&vm);
        debug_assert!(removed, "maps out of sync for {vm}");
        host
    }

    /// Moves a placed VM to a new host, returning the old host.
    ///
    /// # Panics
    ///
    /// Panics if the VM is not placed or any id is out of range.
    pub fn relocate(&mut self, vm: VmId, to: HostId) -> HostId {
        let from = self.remove(vm);
        self.place(vm, to);
        from
    }

    /// Total number of placed VMs.
    pub fn placed_count(&self) -> usize {
        self.vm_to_host.iter().filter(|h| h.is_some()).count()
    }

    /// Iterates over `(vm, host)` pairs for all placed VMs.
    pub fn iter(&self) -> impl Iterator<Item = (VmId, HostId)> + '_ {
        self.vm_to_host
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|host| (VmId(i as u32), host)))
    }

    /// Verifies internal consistency (both directions agree). Used by
    /// property tests and debug assertions.
    pub fn check_invariants(&self) -> bool {
        for (i, h) in self.vm_to_host.iter().enumerate() {
            if let Some(host) = h {
                if !self.host_to_vms[host.index()].contains(&VmId(i as u32)) {
                    return false;
                }
            }
        }
        for (hi, vms) in self.host_to_vms.iter().enumerate() {
            for vm in vms {
                if self.vm_to_host[vm.index()] != Some(HostId(hi as u32)) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_remove_relocate() {
        let mut m = PlacementMap::new(3, 2);
        m.place(VmId(0), HostId(0));
        m.place(VmId(1), HostId(0));
        assert_eq!(m.count_on(HostId(0)), 2);
        assert_eq!(m.relocate(VmId(1), HostId(2)), HostId(0));
        assert_eq!(m.host_of(VmId(1)), Some(HostId(2)));
        assert_eq!(m.remove(VmId(0)), HostId(0));
        assert!(m.is_empty_host(HostId(0)));
        assert!(m.check_invariants());
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_place_panics() {
        let mut m = PlacementMap::new(2, 1);
        m.place(VmId(0), HostId(0));
        m.place(VmId(0), HostId(1));
    }

    #[test]
    #[should_panic(expected = "not placed")]
    fn remove_unplaced_panics() {
        let mut m = PlacementMap::new(1, 1);
        m.remove(VmId(0));
    }

    #[test]
    fn iter_and_counts() {
        let mut m = PlacementMap::new(2, 4);
        m.place(VmId(3), HostId(1));
        m.place(VmId(1), HostId(0));
        assert_eq!(m.placed_count(), 2);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(VmId(1), HostId(0)), (VmId(3), HostId(1))]);
    }

    #[test]
    fn vms_on_sorted() {
        let mut m = PlacementMap::new(1, 5);
        for id in [4u32, 0, 2] {
            m.place(VmId(id), HostId(0));
        }
        assert_eq!(m.vms_on(HostId(0)), vec![VmId(0), VmId(2), VmId(4)]);
    }
}
