//! The cluster facade: hosts + VMs + placement + migrations + power.

use std::cell::{Cell, RefCell};

use power::{PowerState, TransitionKind};
use simcore::{pairwise_sum, pool, SimTime, SumTree};

use crate::{
    ClusterError, Host, HostId, HostSpec, Migration, MigrationModel, PlacementMap, Resources,
    ServiceClass, VmId, VmSpec,
};

/// How the cluster maintains its aggregate accounting (total power,
/// operational capacity/count, per-host committed memory).
///
/// `Incremental` keeps running values updated at power and placement
/// transitions so steady-state queries are O(1); `Scan` recomputes from
/// first principles on every query. Both modes produce bit-identical
/// results — the incremental caches are revalidated with the *same*
/// index-order folds the scans use, and debug builds cross-check every
/// incremental read against a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccountingMode {
    /// O(1) running totals and lazily-revalidated caches (the default).
    #[default]
    Incremental,
    /// Full rescans on every query — the reference the incremental path
    /// is checked against (see `crates/sim/tests/determinism.rs`).
    Scan,
}

/// Reusable scratch for [`Cluster::apply_demand_into`]: the per-host
/// interactive/batch demand splits, the migration-tax vector, and the
/// per-host served/unserved contribution buffers the sharded serve path
/// folds from. Owned by the cluster so steady-state ticks allocate
/// nothing after the first.
#[derive(Debug, Clone, Default)]
struct DemandScratch {
    interactive: Vec<f64>,
    batch: Vec<f64>,
    tax: Vec<f64>,
    /// Per-host served cores (sharded path only; 0 for non-operational).
    served: Vec<f64>,
    /// Per-host unserved cores (sharded path only).
    unserved: Vec<f64>,
    /// Per-host unserved interactive cores (sharded path only).
    unserved_interactive: Vec<f64>,
    /// Per-host unserved batch cores (sharded path only).
    unserved_batch: Vec<f64>,
}

/// One shard's disjoint view of the serve loop's inputs and outputs, all
/// slices covering the same contiguous host range.
struct ServeShard<'a> {
    hosts: &'a mut [Host],
    tax: &'a [f64],
    interactive: &'a [f64],
    batch: &'a [f64],
    utilization: &'a mut [f64],
    demand: &'a mut [f64],
    served: &'a mut [f64],
    unserved: &'a mut [f64],
    unserved_interactive: &'a mut [f64],
    unserved_batch: &'a mut [f64],
}

/// Serves one shard of hosts: identical per-host arithmetic to the serial
/// serve loop, but writing each host's served/unserved contributions into
/// per-host buffers instead of folding them. The caller folds the buffers
/// serially in host-index order, which replays the exact addend sequence
/// of the serial loop (non-operational hosts contribute a `+0.0` served
/// term, a bitwise no-op on the non-negative accumulator).
fn serve_shard(now: SimTime, sh: ServeShard<'_>) {
    for (i, host) in sh.hosts.iter_mut().enumerate() {
        let cap = host.capacity().cpu_cores;
        let demand = sh.tax[i] + sh.interactive[i] + sh.batch[i];
        sh.demand[i] = demand;
        if host.is_operational() {
            let mut remaining = cap;
            let served_tax = sh.tax[i].min(remaining);
            remaining -= served_tax;
            let served_interactive = sh.interactive[i].min(remaining);
            remaining -= served_interactive;
            let served_batch = sh.batch[i].min(remaining);

            let s = served_tax + served_interactive + served_batch;
            sh.served[i] = s;
            sh.unserved[i] = demand - s;
            sh.unserved_interactive[i] = sh.interactive[i] - served_interactive;
            sh.unserved_batch[i] = sh.batch[i] - served_batch;
            sh.utilization[i] = if cap > 0.0 { s / cap } else { 0.0 };
            host.power_mut().set_utilization(now, sh.utilization[i]);
        } else {
            sh.served[i] = 0.0;
            sh.unserved[i] = demand;
            sh.unserved_interactive[i] = sh.interactive[i];
            sh.unserved_batch[i] = sh.batch[i];
            sh.utilization[i] = 0.0;
        }
    }
}

/// Clears and re-zeroes a scratch vector without shrinking its capacity.
fn reset_zeroed(v: &mut Vec<f64>, n: usize) {
    v.clear();
    v.resize(n, 0.0);
}

/// An immutable, thread-shareable snapshot of the per-host and per-VM
/// state the engine's sharded observation aggregation reads every tick.
///
/// [`Cluster`] itself is not `Sync` — its lazy accounting caches use
/// interior mutability — so shard workers cannot share `&Cluster`. The
/// view borrows only plain data (hosts, specs, placement, migrations, and
/// the incremental accounting totals) and re-implements the same read
/// logic, including the [`AccountingMode`] dispatch, so every answer is
/// bit-identical to the corresponding `Cluster` query.
///
/// Obtain one with [`Cluster::shard_view`]; it is `Copy`, so each shard
/// closure can capture its own.
#[derive(Clone, Copy)]
pub struct ClusterShardView<'a> {
    hosts: &'a [Host],
    vms: &'a [VmSpec],
    placement: &'a PlacementMap,
    migrations: &'a [Option<Migration>],
    inbound: &'a [u32],
    mem_committed: &'a [f64],
    accounting: AccountingMode,
}

impl<'a> ClusterShardView<'a> {
    /// All hosts, indexable by `HostId::index()`.
    pub fn hosts(&self) -> &'a [Host] {
        self.hosts
    }

    /// All VM specs, indexable by `VmId::index()`.
    pub fn vm_specs(&self) -> &'a [VmSpec] {
        self.vms
    }

    /// The host the VM currently runs on, if placed.
    pub fn host_of(&self, vm: VmId) -> Option<HostId> {
        self.placement.host_of(vm)
    }

    /// Whether a live migration of `vm` is in flight.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn is_migrating(&self, vm: VmId) -> bool {
        self.migrations[vm.index()].is_some()
    }

    /// Whether `host` can be powered down: no placed VMs, no inbound
    /// migrations. Same answer as [`Cluster::is_evacuated`].
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn is_evacuated(&self, host: HostId) -> bool {
        self.placement.is_empty_host(host) && self.inbound[host.index()] == 0
    }

    /// Memory committed on `host` (placed VMs + inbound reservations),
    /// GB. Bit-identical to [`Cluster::mem_committed_gb`]: incremental
    /// accounting reads the running total, scan accounting re-folds from
    /// first principles with the same `+0.0`-seeded fold.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn mem_committed_gb(&self, host: HostId) -> f64 {
        match self.accounting {
            AccountingMode::Incremental => self.mem_committed[host.index()],
            AccountingMode::Scan => {
                let placed = self
                    .placement
                    .vms_on(host)
                    .iter()
                    .map(|&vm| self.vms[vm.index()].mem_gb())
                    .fold(0.0f64, |a, b| a + b);
                let inbound = self
                    .migrations
                    .iter()
                    .flatten()
                    .filter(|m| m.to == host)
                    .map(|m| self.vms[m.vm.index()].mem_gb())
                    .fold(0.0f64, |a, b| a + b);
                placed + inbound
            }
        }
    }
}

/// Result of applying one round of VM demand to the cluster.
///
/// Produced by [`Cluster::apply_demand`]; the simulator derives its
/// performance metrics (unserved demand, violations) from this.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DemandOutcome {
    /// Sum of all VM CPU demand this round, in cores.
    pub offered_cores: f64,
    /// Demand actually served, in cores.
    pub served_cores: f64,
    /// Demand that could not be served (overload or VM on a non-operational
    /// host), in cores.
    pub unserved_cores: f64,
    /// Offered demand from interactive-class VMs, cores.
    pub offered_interactive_cores: f64,
    /// Offered demand from batch-class VMs, cores.
    pub offered_batch_cores: f64,
    /// Unserved interactive demand (interactive is served first, so this
    /// only grows once a host is saturated by interactive load alone).
    pub unserved_interactive_cores: f64,
    /// Unserved batch demand (batch absorbs overload first).
    pub unserved_batch_cores: f64,
    /// Per-host CPU utilization in `[0, 1]` (0 for non-operational hosts).
    pub host_utilization: Vec<f64>,
    /// Per-host raw CPU demand (including migration tax), in cores.
    pub host_demand_cores: Vec<f64>,
}

/// The managed datacenter: hosts, VMs, placement, in-flight migrations,
/// and per-host power machines.
///
/// All mutating operations validate their preconditions and return
/// [`ClusterError`] on violation, so management policies cannot corrupt
/// the physical model (e.g. suspending a host that still runs VMs).
///
/// See the [crate-level example](crate) for basic usage.
#[derive(Debug, Clone)]
pub struct Cluster {
    hosts: Vec<Host>,
    vms: Vec<VmSpec>,
    placement: PlacementMap,
    /// Per-VM in-flight migration, if any.
    migrations: Vec<Option<Migration>>,
    /// Per-host count of inbound migrations (capacity reservations).
    inbound: Vec<u32>,
    model: MigrationModel,
    migrations_started: u64,
    migrations_completed: u64,
    migrations_failed: u64,
    migration_busy_secs: f64,
    accounting: AccountingMode,
    /// Incrementally-maintained total-power aggregate: a fixed-shape
    /// pairwise tree whose root is bitwise equal to [`pairwise_sum`] over
    /// the per-host draws, which is exactly what the scan reference
    /// computes — so reads stay bit-identical to [`AccountingMode::Scan`].
    /// Single-host transitions refresh one leaf in O(log hosts); the
    /// per-tick demand sweep (which rewrites every operational host's
    /// draw) marks the whole tree stale instead, and the next read
    /// rebuilds it in O(hosts) — the same cost the sweep itself pays.
    power_tree: RefCell<SumTree>,
    power_stale: Cell<bool>,
    /// Lazy operational-capacity cache, revalidated on power transitions.
    cap_cache: Cell<f64>,
    cap_dirty: Cell<bool>,
    /// Exact running count of operational hosts (integer, never drifts).
    on_count: usize,
    /// Running per-host committed memory: placed VMs plus inbound
    /// migration reservations, GB.
    host_mem_committed: Vec<f64>,
    /// Reusable buffers for [`apply_demand_into`](Self::apply_demand_into).
    scratch: DemandScratch,
    /// Worker threads for the sharded demand/power paths; `1` keeps the
    /// original serial code paths.
    threads: usize,
    /// Reusable per-host power buffer for the sharded power scan.
    power_scratch: RefCell<Vec<f64>>,
    /// Running count of in-flight migrations, maintained at
    /// [`begin_migration`](Self::begin_migration) /
    /// [`complete_migration`](Self::complete_migration) /
    /// [`fail_migration`](Self::fail_migration) so the per-migration
    /// contention lookup never rescans the whole migration table.
    in_flight_migrations: usize,
    /// Deterministic count of cache invalidations (dirty marks) at
    /// mutation sites. Counted where state *changes* — never at the
    /// read-and-clear revalidation sites, which fire on a mode-dependent
    /// schedule — so the count is identical across accounting modes and
    /// thread counts. The per-tick demand sweep charges one mark per
    /// operational host (every such host's utilization is rewritten),
    /// which makes `dirty_marks` an upper bound on how many hosts a
    /// change-driven index may legitimately re-bucket.
    dirty_marks: u64,
}

impl Cluster {
    /// Creates a cluster with all hosts `On` and all VMs unplaced, using
    /// the default [`MigrationModel`].
    pub fn new(host_specs: Vec<HostSpec>, vm_specs: Vec<VmSpec>, t0: SimTime) -> Self {
        Self::with_migration_model(host_specs, vm_specs, MigrationModel::default(), t0)
    }

    /// Creates a cluster with an explicit migration model.
    ///
    /// # Panics
    ///
    /// Panics if there are no hosts.
    pub fn with_migration_model(
        host_specs: Vec<HostSpec>,
        vm_specs: Vec<VmSpec>,
        model: MigrationModel,
        t0: SimTime,
    ) -> Self {
        assert!(!host_specs.is_empty(), "cluster needs at least one host");
        let hosts: Vec<Host> = host_specs
            .iter()
            .enumerate()
            .map(|(i, s)| Host::from_spec(HostId(i as u32), s, t0))
            .collect();
        let placement = PlacementMap::new(hosts.len(), vm_specs.len());
        let inbound = vec![0; hosts.len()];
        let migrations = vec![None; vm_specs.len()];
        let on_count = hosts.iter().filter(|h| h.is_operational()).count();
        let host_mem_committed = vec![0.0; hosts.len()];
        Cluster {
            hosts,
            vms: vm_specs,
            placement,
            migrations,
            inbound,
            model,
            migrations_started: 0,
            migrations_completed: 0,
            migrations_failed: 0,
            migration_busy_secs: 0.0,
            accounting: AccountingMode::default(),
            power_tree: RefCell::new(SumTree::new()),
            power_stale: Cell::new(true),
            cap_cache: Cell::new(0.0),
            cap_dirty: Cell::new(true),
            on_count,
            host_mem_committed,
            scratch: DemandScratch::default(),
            threads: 1,
            power_scratch: RefCell::new(Vec::new()),
            in_flight_migrations: 0,
            dirty_marks: 0,
        }
    }

    /// Sets the worker-thread count for the sharded per-tick demand and
    /// power computations. `1` (the default) keeps everything on the
    /// calling thread via the original serial code paths. The requested
    /// count is honored exactly (never capped by `available_parallelism`),
    /// and every count produces bit-identical results: shard boundaries
    /// are a pure function of the fleet size and all floating-point
    /// reductions stay on the calling thread in host-index order.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The worker-thread count for sharded per-tick computation.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A `Copy + Sync` read-only view over the state the engine's sharded
    /// observation fill needs — see [`ClusterShardView`]. Every query on
    /// the view is bit-identical to the corresponding `Cluster` method.
    pub fn shard_view(&self) -> ClusterShardView<'_> {
        ClusterShardView {
            hosts: &self.hosts,
            vms: &self.vms,
            placement: &self.placement,
            migrations: &self.migrations,
            inbound: &self.inbound,
            mem_committed: &self.host_mem_committed,
            accounting: self.accounting,
        }
    }

    /// Switches between incremental and scan-based accounting. Both modes
    /// are bit-identical by construction; `Scan` exists as the reference
    /// for determinism tests and debugging.
    pub fn set_accounting_mode(&mut self, mode: AccountingMode) {
        self.accounting = mode;
        self.power_stale.set(true);
        self.cap_dirty.set(true);
        self.dirty_marks += 2;
    }

    /// Deterministic count of cache invalidations performed so far (see
    /// the `dirty_marks` field): a pure function of the scenario,
    /// identical across accounting modes and thread counts.
    pub fn dirty_marks(&self) -> u64 {
        self.dirty_marks
    }

    /// The accounting mode in use.
    pub fn accounting_mode(&self) -> AccountingMode {
        self.accounting
    }

    // ----- accessors -------------------------------------------------

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of VMs.
    pub fn num_vms(&self) -> usize {
        self.vms.len()
    }

    /// All host ids.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId)
    }

    /// All VM ids.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> + '_ {
        (0..self.vms.len() as u32).map(VmId)
    }

    /// The host with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownHost`] for an out-of-range id.
    pub fn host(&self, id: HostId) -> Result<&Host, ClusterError> {
        self.hosts
            .get(id.index())
            .ok_or(ClusterError::UnknownHost(id))
    }

    /// The VM spec with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownVm`] for an out-of-range id.
    pub fn vm(&self, id: VmId) -> Result<&VmSpec, ClusterError> {
        self.vms.get(id.index()).ok_or(ClusterError::UnknownVm(id))
    }

    /// All hosts, indexable by `HostId::index()`.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// The placement map.
    pub fn placement(&self) -> &PlacementMap {
        &self.placement
    }

    /// The migration model in use.
    pub fn migration_model(&self) -> &MigrationModel {
        &self.model
    }

    /// VMs currently on `host` (excluding inbound migrations).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn vms_on(&self, host: HostId) -> Vec<VmId> {
        self.placement.vms_on(host)
    }

    /// The in-flight migration of `vm`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn migration_of(&self, vm: VmId) -> Option<Migration> {
        self.migrations[vm.index()]
    }

    /// Total live migrations started so far.
    pub fn migrations_started(&self) -> u64 {
        self.migrations_started
    }

    /// Total live migrations completed so far.
    pub fn migrations_completed(&self) -> u64 {
        self.migrations_completed
    }

    /// Total live migrations that aborted mid-flight (fault injection).
    pub fn migrations_failed(&self) -> u64 {
        self.migrations_failed
    }

    /// Cumulative wall-clock seconds of live-migration activity started so
    /// far (each migration contributes its full duration at start time).
    pub fn migration_busy_secs(&self) -> f64 {
        self.migration_busy_secs
    }

    /// Cumulative host-seconds spent in transitional power states
    /// (suspending/resuming/shutting down/booting/parking/unparking),
    /// summed over hosts.
    /// Call [`sync`](Self::sync) first for an up-to-the-instant view.
    pub fn transition_busy_secs(&self) -> f64 {
        use power::PowerState;
        self.hosts
            .iter()
            .map(|h| {
                let r = h.power().residency();
                [
                    PowerState::Suspending,
                    PowerState::Resuming,
                    PowerState::ShuttingDown,
                    PowerState::Booting,
                    PowerState::Parking,
                    PowerState::Unparking,
                ]
                .iter()
                .map(|&s| r.in_state(s).as_secs_f64())
                .sum::<f64>()
            })
            .sum()
    }

    /// Ids of hosts currently in the `On` state.
    pub fn operational_hosts(&self) -> Vec<HostId> {
        self.hosts
            .iter()
            .filter(|h| h.is_operational())
            .map(|h| h.id())
            .collect()
    }

    /// Number of hosts currently in the `On` state — O(1) under
    /// incremental accounting (prefer this over
    /// `operational_hosts().len()` in per-tick code).
    pub fn num_operational_hosts(&self) -> usize {
        match self.accounting {
            AccountingMode::Scan => self.hosts.iter().filter(|h| h.is_operational()).count(),
            AccountingMode::Incremental => {
                debug_assert_eq!(
                    self.on_count,
                    self.hosts.iter().filter(|h| h.is_operational()).count(),
                    "operational-host running count drifted"
                );
                self.on_count
            }
        }
    }

    /// Ids of hosts currently in `state`.
    pub fn hosts_in_state(&self, state: PowerState) -> Vec<HostId> {
        self.hosts
            .iter()
            .filter(|h| h.power_state() == state)
            .map(|h| h.id())
            .collect()
    }

    /// Memory committed on `host`: placed VMs plus inbound migration
    /// reservations, in GB.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn mem_committed_gb(&self, host: HostId) -> f64 {
        match self.accounting {
            AccountingMode::Scan => self.scan_mem_committed_gb(host),
            AccountingMode::Incremental => {
                let v = self.host_mem_committed[host.index()];
                debug_assert!(
                    (v - self.scan_mem_committed_gb(host)).abs() < 1e-6,
                    "committed-memory running total drifted on host {host}: \
                     running {v}, scan {}",
                    self.scan_mem_committed_gb(host)
                );
                v
            }
        }
    }

    /// Scan-based reference for [`mem_committed_gb`](Self::mem_committed_gb):
    /// O(VMs on host) + O(in-flight migrations).
    fn scan_mem_committed_gb(&self, host: HostId) -> f64 {
        // Folded from +0.0 (not `Iterator::sum`, whose -0.0 identity
        // would make an empty host bitwise-differ from the running total).
        let placed = self
            .placement
            .vms_on(host)
            .iter()
            .map(|&vm| self.vms[vm.index()].mem_gb())
            .fold(0.0f64, |a, b| a + b);
        let inbound = self
            .migrations
            .iter()
            .flatten()
            .filter(|m| m.to == host)
            .map(|m| self.vms[m.vm.index()].mem_gb())
            .fold(0.0f64, |a, b| a + b);
        placed + inbound
    }

    /// Free memory on `host` after commitments, in GB.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn mem_free_gb(&self, host: HostId) -> f64 {
        (self.hosts[host.index()].capacity().mem_gb - self.mem_committed_gb(host)).max(0.0)
    }

    /// Whether `host` can be powered down: no placed VMs, no inbound
    /// migrations.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn is_evacuated(&self, host: HostId) -> bool {
        self.placement.is_empty_host(host) && self.inbound[host.index()] == 0
    }

    // ----- placement & migration -------------------------------------

    /// Places an unplaced VM on an operational host with enough memory.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] if the VM is already placed, the host is
    /// not `On`, or memory does not fit.
    pub fn place(&mut self, vm: VmId, host: HostId) -> Result<(), ClusterError> {
        let spec = *self.vm(vm)?;
        let h = self.host(host)?;
        if self.placement.host_of(vm).is_some() {
            return Err(ClusterError::VmAlreadyPlaced(vm));
        }
        if !h.is_operational() {
            return Err(ClusterError::HostNotOperational(host));
        }
        if spec.mem_gb() > self.mem_free_gb(host) + 1e-9 {
            return Err(ClusterError::InsufficientCapacity { host, vm });
        }
        self.placement.place(vm, host);
        self.host_mem_committed[host.index()] += spec.mem_gb();
        self.dirty_marks += 1;
        Ok(())
    }

    /// Removes a VM from its host (retirement/deprovisioning).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::VmMigrating`] if a live migration is in
    /// flight (complete it first), or [`ClusterError::VmNotPlaced`] if the
    /// VM has no host.
    pub fn unplace(&mut self, vm: VmId) -> Result<HostId, ClusterError> {
        self.vm(vm)?;
        if self.migrations[vm.index()].is_some() {
            return Err(ClusterError::VmMigrating(vm));
        }
        if self.placement.host_of(vm).is_none() {
            return Err(ClusterError::VmNotPlaced(vm));
        }
        let host = self.placement.remove(vm);
        self.host_mem_committed[host.index()] -= self.vms[vm.index()].mem_gb();
        self.dirty_marks += 1;
        Ok(host)
    }

    /// Starts a live migration of `vm` to `to`, returning when it
    /// completes. The VM keeps running on its source until then.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] if the VM is unplaced or already
    /// migrating, the destination equals the source, the destination is
    /// not `On`, or memory does not fit on the destination.
    pub fn begin_migration(
        &mut self,
        vm: VmId,
        to: HostId,
        now: SimTime,
    ) -> Result<SimTime, ClusterError> {
        let spec = *self.vm(vm)?;
        let dest = self.host(to)?;
        let from = self
            .placement
            .host_of(vm)
            .ok_or(ClusterError::VmNotPlaced(vm))?;
        if self.migrations[vm.index()].is_some() {
            return Err(ClusterError::VmMigrating(vm));
        }
        if from == to {
            return Err(ClusterError::SelfMigration(vm));
        }
        if !dest.is_operational() {
            return Err(ClusterError::HostNotOperational(to));
        }
        if spec.mem_gb() > self.mem_free_gb(to) + 1e-9 {
            return Err(ClusterError::InsufficientCapacity { host: to, vm });
        }
        // The running counter replaces an O(VMs) rescan of the migration
        // table — at fleet scale that rescan, once per started migration,
        // dominated the execute phase.
        let in_flight = self.in_flight_migrations;
        let duration = self.model.duration_for_with_load(spec.mem_gb(), in_flight);
        self.migration_busy_secs += duration.as_secs_f64();
        let completes_at = now + duration;
        self.migrations[vm.index()] = Some(Migration {
            vm,
            from,
            to,
            completes_at,
        });
        self.in_flight_migrations += 1;
        self.inbound[to.index()] += 1;
        self.host_mem_committed[to.index()] += spec.mem_gb();
        self.migrations_started += 1;
        self.dirty_marks += 2;
        Ok(completes_at)
    }

    /// Completes the in-flight migration of `vm`, switching it to the
    /// destination host. Must be called at the instant returned by
    /// [`begin_migration`](Self::begin_migration).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::VmNotPlaced`] variants for unknown state,
    /// and propagates nothing else: destination capacity was reserved at
    /// start.
    pub fn complete_migration(
        &mut self,
        vm: VmId,
        now: SimTime,
    ) -> Result<Migration, ClusterError> {
        self.vm(vm)?;
        let migration = self.migrations[vm.index()]
            .take()
            .ok_or(ClusterError::VmMigrating(vm))?; // "not migrating" reuses the closest variant
        debug_assert_eq!(migration.completes_at, now, "migration completion mistimed");
        self.in_flight_migrations -= 1;
        self.inbound[migration.to.index()] -= 1;
        self.placement.relocate(vm, migration.to);
        // The inbound reservation becomes the placed footprint on the
        // destination (net zero there); the source gives the memory up.
        self.host_mem_committed[migration.from.index()] -= self.vms[vm.index()].mem_gb();
        self.migrations_completed += 1;
        self.dirty_marks += 2;
        Ok(migration)
    }

    /// Aborts the in-flight migration of `vm` (fault injection): the VM
    /// stays placed on its source host and the destination's inbound
    /// reservation is released. Must be called at the instant returned by
    /// [`begin_migration`](Self::begin_migration) — the transfer runs to
    /// the end before the abort is detected.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::VmMigrating`] if `vm` has no migration in
    /// flight (the variant doubles as "not migrating", matching
    /// [`complete_migration`](Self::complete_migration)).
    pub fn fail_migration(&mut self, vm: VmId, now: SimTime) -> Result<Migration, ClusterError> {
        self.vm(vm)?;
        let migration = self.migrations[vm.index()]
            .take()
            .ok_or(ClusterError::VmMigrating(vm))?;
        debug_assert_eq!(migration.completes_at, now, "migration abort mistimed");
        // Reverse the destination-side reservation made at begin time; the
        // source-side placement and footprint never moved.
        self.in_flight_migrations -= 1;
        self.inbound[migration.to.index()] -= 1;
        self.host_mem_committed[migration.to.index()] -= self.vms[vm.index()].mem_gb();
        self.migrations_failed += 1;
        self.dirty_marks += 2;
        Ok(migration)
    }

    // ----- power ------------------------------------------------------

    /// Begins a power-state transition on `host`, returning its completion
    /// instant.
    ///
    /// Power-down transitions (`Suspend`, `Shutdown`) require the host to
    /// be fully evacuated.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::HostNotEvacuated`] for a power-down on a
    /// non-empty host, or wraps the underlying [`power::PowerError`].
    pub fn begin_power_transition(
        &mut self,
        host: HostId,
        kind: TransitionKind,
        now: SimTime,
    ) -> Result<SimTime, ClusterError> {
        self.host(host)?;
        if kind.is_power_down() && !self.is_evacuated(host) {
            return Err(ClusterError::HostNotEvacuated(host));
        }
        let was_on = self.hosts[host.index()].is_operational();
        let done = self.hosts[host.index()].power_mut().begin(kind, now)?;
        self.note_power_changed(host.index(), was_on);
        Ok(done)
    }

    /// Completes the in-flight power transition on `host`, returning the
    /// new state.
    ///
    /// # Errors
    ///
    /// Wraps the underlying [`power::PowerError`].
    pub fn complete_power_transition(
        &mut self,
        host: HostId,
        now: SimTime,
    ) -> Result<PowerState, ClusterError> {
        self.host(host)?;
        let was_on = self.hosts[host.index()].is_operational();
        let state = self.hosts[host.index()].power_mut().complete(now)?;
        self.note_power_changed(host.index(), was_on);
        Ok(state)
    }

    /// Fails the in-flight power transition on `host` (fault injection):
    /// the host lands in the transition's failure state instead of its
    /// target (e.g. a failed resume leaves it `Off`, requiring a boot).
    ///
    /// # Errors
    ///
    /// Wraps the underlying [`power::PowerError`].
    pub fn fail_power_transition(
        &mut self,
        host: HostId,
        now: SimTime,
    ) -> Result<PowerState, ClusterError> {
        self.host(host)?;
        let was_on = self.hosts[host.index()].is_operational();
        let state = self.hosts[host.index()].power_mut().fail_pending(now)?;
        self.note_power_changed(host.index(), was_on);
        Ok(state)
    }

    /// Stretches the in-flight power transition on `host` to complete at
    /// `new_done` (fault injection: a *hung* transition). The host keeps
    /// burning transition power for the whole stuck interval; callers must
    /// complete or fail the transition exactly at `new_done`. Returns the
    /// previously scheduled completion instant.
    ///
    /// # Errors
    ///
    /// Wraps the underlying [`power::PowerError`].
    pub fn delay_power_transition(
        &mut self,
        host: HostId,
        new_done: SimTime,
    ) -> Result<SimTime, ClusterError> {
        self.host(host)?;
        // No note_power_changed: the host stays in its transitional state,
        // so neither the power draw nor the operational count moves here.
        Ok(self.hosts[host.index()]
            .power_mut()
            .delay_pending(new_done)?)
    }

    /// Bookkeeping after any power-state mutation on host `i`: the power
    /// aggregate absorbs the host's new draw (one O(log hosts) leaf
    /// update — never a fleet rescan, which at 64k hosts would dominate
    /// the event loop via the per-completion power sample), and the
    /// operational count/capacity change when the host crossed the `On`
    /// boundary.
    fn note_power_changed(&mut self, i: usize, was_on: bool) {
        self.dirty_marks += 1;
        if self.accounting == AccountingMode::Incremental && !self.power_stale.get() {
            let draw = self.hosts[i].power().power_w();
            self.power_tree.get_mut().set(i, draw);
        }
        let is_on = self.hosts[i].is_operational();
        if is_on != was_on {
            self.cap_dirty.set(true);
            self.dirty_marks += 1;
            if is_on {
                self.on_count += 1;
            } else {
                self.on_count -= 1;
            }
        }
    }

    /// Total power-state transitions that failed across all hosts.
    pub fn failed_transitions(&self) -> u64 {
        self.hosts
            .iter()
            .map(|h| h.power().failed_transitions())
            .sum()
    }

    // ----- demand -----------------------------------------------------

    /// Applies one round of per-VM CPU demand (cores, indexed by
    /// `VmId::index()`), updating every host's utilization and returning
    /// the served/unserved accounting.
    ///
    /// A VM's demand is served by its *current* host (the source during a
    /// live migration); in-flight migrations add the model's CPU tax to
    /// both endpoints. Demand beyond a host's CPU capacity, or from
    /// unplaced VMs, is unserved.
    ///
    /// # Panics
    ///
    /// Panics if `vm_demand_cores.len() != self.num_vms()`.
    pub fn apply_demand(&mut self, now: SimTime, vm_demand_cores: &[f64]) -> DemandOutcome {
        let mut out = DemandOutcome::default();
        self.apply_demand_into(now, vm_demand_cores, &mut out);
        out
    }

    /// Allocation-free variant of [`apply_demand`](Self::apply_demand):
    /// writes the outcome into a caller-owned buffer and reuses the
    /// cluster's internal scratch vectors, so steady-state ticks allocate
    /// nothing once buffers reach fleet size.
    ///
    /// # Panics
    ///
    /// Panics if `vm_demand_cores.len() != self.num_vms()`.
    pub fn apply_demand_into(
        &mut self,
        now: SimTime,
        vm_demand_cores: &[f64],
        out: &mut DemandOutcome,
    ) {
        assert_eq!(
            vm_demand_cores.len(),
            self.vms.len(),
            "demand vector length mismatch"
        );
        let n = self.hosts.len();
        // Per-host demand split by service class; interactive is served
        // first when a host saturates. Scratch is taken out of `self` so
        // the host loop below can borrow `self.hosts` mutably.
        let mut scratch = std::mem::take(&mut self.scratch);
        let host_interactive = &mut scratch.interactive;
        let host_batch = &mut scratch.batch;
        reset_zeroed(host_interactive, n);
        reset_zeroed(host_batch, n);
        let mut offered = 0.0f64;
        let mut offered_interactive = 0.0f64;
        let mut offered_batch = 0.0f64;
        let mut unserved_unplaced = 0.0f64;
        let mut unserved_interactive = 0.0f64;
        let mut unserved_batch = 0.0f64;

        for (i, &raw) in vm_demand_cores.iter().enumerate() {
            let vm = VmId(i as u32);
            let demand = raw.clamp(0.0, self.vms[i].cpu_cap_cores());
            offered += demand;
            let class = self.vms[i].service_class();
            match class {
                ServiceClass::Interactive => offered_interactive += demand,
                ServiceClass::Batch => offered_batch += demand,
            }
            match self.placement.host_of(vm) {
                Some(h) => match class {
                    ServiceClass::Interactive => host_interactive[h.index()] += demand,
                    ServiceClass::Batch => host_batch[h.index()] += demand,
                },
                None => {
                    unserved_unplaced += demand;
                    match class {
                        ServiceClass::Interactive => unserved_interactive += demand,
                        ServiceClass::Batch => unserved_batch += demand,
                    }
                }
            }
        }
        // Migration CPU tax on both endpoints — infrastructure overhead,
        // served ahead of VM demand (the hypervisor does not yield).
        let tax = self.model.cpu_tax_cores();
        let host_tax = &mut scratch.tax;
        reset_zeroed(host_tax, n);
        for m in self.migrations.iter().flatten() {
            host_tax[m.from.index()] += tax;
            host_tax[m.to.index()] += tax;
        }

        let mut served = 0.0f64;
        let mut unserved = unserved_unplaced;
        let utilization = &mut out.host_utilization;
        let host_demand = &mut out.host_demand_cores;
        reset_zeroed(utilization, n);
        reset_zeroed(host_demand, n);
        if self.threads > 1 && n > 1 {
            // Sharded serve path: workers compute each host's serve
            // outcome into disjoint per-host buffers; the fold below adds
            // the per-host contributions on this thread in host-index
            // order, replaying the serial loop's exact addend sequence so
            // the result is bit-identical at any thread count (the
            // `+0.0` served term of a non-operational host is a bitwise
            // no-op on the non-negative accumulator).
            let served_c = &mut scratch.served;
            let unserved_c = &mut scratch.unserved;
            let unserved_int_c = &mut scratch.unserved_interactive;
            let unserved_bat_c = &mut scratch.unserved_batch;
            reset_zeroed(served_c, n);
            reset_zeroed(unserved_c, n);
            reset_zeroed(unserved_int_c, n);
            reset_zeroed(unserved_bat_c, n);
            let ranges = pool::shard_ranges(n, self.threads);
            let mut hosts_it = pool::split_mut(&mut self.hosts, &ranges).into_iter();
            let mut util_it = pool::split_mut(utilization, &ranges).into_iter();
            let mut dem_it = pool::split_mut(host_demand, &ranges).into_iter();
            let mut srv_it = pool::split_mut(served_c, &ranges).into_iter();
            let mut uns_it = pool::split_mut(unserved_c, &ranges).into_iter();
            let mut uni_it = pool::split_mut(unserved_int_c, &ranges).into_iter();
            let mut unb_it = pool::split_mut(unserved_bat_c, &ranges).into_iter();
            let shards: Vec<ServeShard<'_>> = ranges
                .iter()
                .map(|r| ServeShard {
                    hosts: hosts_it.next().expect("one host chunk per range"),
                    tax: &host_tax[r.clone()],
                    interactive: &host_interactive[r.clone()],
                    batch: &host_batch[r.clone()],
                    utilization: util_it.next().expect("one chunk per range"),
                    demand: dem_it.next().expect("one chunk per range"),
                    served: srv_it.next().expect("one chunk per range"),
                    unserved: uns_it.next().expect("one chunk per range"),
                    unserved_interactive: uni_it.next().expect("one chunk per range"),
                    unserved_batch: unb_it.next().expect("one chunk per range"),
                })
                .collect();
            pool::for_each_shard(self.threads, shards, |_, sh| serve_shard(now, sh));
            for i in 0..n {
                served += served_c[i];
                unserved += unserved_c[i];
                unserved_interactive += unserved_int_c[i];
                unserved_batch += unserved_bat_c[i];
            }
        } else {
            for (i, host) in self.hosts.iter_mut().enumerate() {
                let cap = host.capacity().cpu_cores;
                let demand = host_tax[i] + host_interactive[i] + host_batch[i];
                host_demand[i] = demand;
                if host.is_operational() {
                    let mut remaining = cap;
                    let served_tax = host_tax[i].min(remaining);
                    remaining -= served_tax;
                    let served_interactive = host_interactive[i].min(remaining);
                    remaining -= served_interactive;
                    let served_batch = host_batch[i].min(remaining);

                    let s = served_tax + served_interactive + served_batch;
                    served += s;
                    unserved += demand - s;
                    unserved_interactive += host_interactive[i] - served_interactive;
                    unserved_batch += host_batch[i] - served_batch;
                    utilization[i] = if cap > 0.0 { s / cap } else { 0.0 };
                    host.power_mut().set_utilization(now, utilization[i]);
                } else {
                    // VMs must not sit on non-operational hosts (the
                    // cluster enforces evacuation), but migration taxes
                    // can reference an endpoint mid-transition; treat
                    // that demand as lost.
                    unserved += demand;
                    unserved_interactive += host_interactive[i];
                    unserved_batch += host_batch[i];
                }
            }
        }
        // Migration tax is overhead, not offered VM demand; keep the
        // invariant offered = served + unserved by counting tax in both
        // offered and served.
        let total_tax: f64 = host_tax.iter().sum();
        offered += total_tax;

        self.scratch = scratch;
        // Every operational host's utilization (and thus draw) changed:
        // one mark for the aggregate draw cache plus one per rewritten
        // host, so downstream change-driven structures (the planner's
        // utilization index) can bound their per-round re-bucketing by
        // the marks actually charged here.
        self.power_stale.set(true);
        self.dirty_marks += 1 + self.on_count as u64;

        out.offered_cores = offered;
        out.served_cores = served;
        out.unserved_cores = unserved;
        out.offered_interactive_cores = offered_interactive;
        out.offered_batch_cores = offered_batch;
        out.unserved_interactive_cores = unserved_interactive;
        out.unserved_batch_cores = unserved_batch;
    }

    /// Brings every host's energy/residency accounting up to `now`.
    /// Call before reading metrics at the end of a run.
    pub fn sync(&mut self, now: SimTime) {
        for host in &mut self.hosts {
            host.power_mut().sync(now);
        }
    }

    /// Total cluster power draw right now, in watts.
    ///
    /// Under incremental accounting the value is the root of a
    /// fixed-shape pairwise tree: single-host transitions refresh one
    /// leaf, the per-tick demand sweep marks the tree stale and the next
    /// read rebuilds it. Both the rebuild and every point update
    /// reproduce [`pairwise_sum`] over the per-host draws bit-for-bit —
    /// the exact fold the scan reference performs — so both modes are
    /// bit-identical.
    pub fn total_power_w(&self) -> f64 {
        match self.accounting {
            AccountingMode::Scan => self.scan_total_power_w(),
            AccountingMode::Incremental => {
                if self.power_stale.get() {
                    let n = self.hosts.len();
                    let mut tree = self.power_tree.borrow_mut();
                    if self.threads > 1 && n > 1 {
                        let buf = self.sharded_power_draws();
                        tree.rebuild(n, |i| buf[i]);
                    } else {
                        tree.rebuild(n, |i| self.hosts[i].power().power_w());
                    }
                    drop(tree);
                    self.power_stale.set(false);
                }
                let v = self.power_tree.borrow().root();
                debug_assert_eq!(
                    v.to_bits(),
                    self.scan_total_power_w().to_bits(),
                    "stale total-power tree"
                );
                v
            }
        }
    }

    /// Scan-based reference for [`total_power_w`](Self::total_power_w):
    /// the fixed-shape [`pairwise_sum`] over per-host draws that the
    /// incremental tree maintains under point updates.
    ///
    /// With more than one worker thread the per-host draws are computed
    /// in parallel shards into a reusable buffer first; the fold then
    /// runs over the same addends in the same tree shape as the serial
    /// path, so the result is bit-identical at any thread count.
    fn scan_total_power_w(&self) -> f64 {
        let n = self.hosts.len();
        if self.threads > 1 && n > 1 {
            let buf = self.sharded_power_draws();
            pairwise_sum(n, |i| buf[i])
        } else {
            pairwise_sum(n, |i| self.hosts[i].power().power_w())
        }
    }

    /// Fills the reusable power scratch buffer with every host's current
    /// draw using the worker pool, returning the borrow for the caller's
    /// fold or rebuild.
    fn sharded_power_draws(&self) -> std::cell::RefMut<'_, Vec<f64>> {
        let n = self.hosts.len();
        let mut buf = self.power_scratch.borrow_mut();
        reset_zeroed(&mut buf, n);
        let ranges = pool::shard_ranges(n, self.threads);
        let mut buf_it = pool::split_mut(&mut buf, &ranges).into_iter();
        let shards: Vec<(&[Host], &mut [f64])> = ranges
            .iter()
            .map(|r| {
                (
                    &self.hosts[r.clone()],
                    buf_it.next().expect("one chunk per range"),
                )
            })
            .collect();
        pool::for_each_shard(self.threads, shards, |_, (hosts, out)| {
            for (o, h) in out.iter_mut().zip(hosts) {
                *o = h.power().power_w();
            }
        });
        buf
    }

    /// Total cluster energy consumed so far, in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.hosts.iter().map(|h| h.power().meter().total_j()).sum()
    }

    /// Total aggregate CPU capacity of operational hosts, in cores.
    ///
    /// Cached between power transitions under incremental accounting
    /// (same bit-identical revalidation as
    /// [`total_power_w`](Self::total_power_w)).
    pub fn operational_capacity_cores(&self) -> f64 {
        match self.accounting {
            AccountingMode::Scan => self.scan_operational_capacity_cores(),
            AccountingMode::Incremental => {
                if self.cap_dirty.get() {
                    self.cap_cache.set(self.scan_operational_capacity_cores());
                    self.cap_dirty.set(false);
                }
                let v = self.cap_cache.get();
                debug_assert_eq!(
                    v.to_bits(),
                    self.scan_operational_capacity_cores().to_bits(),
                    "stale operational-capacity cache"
                );
                v
            }
        }
    }

    /// Scan-based reference for
    /// [`operational_capacity_cores`](Self::operational_capacity_cores).
    fn scan_operational_capacity_cores(&self) -> f64 {
        self.hosts
            .iter()
            .filter(|h| h.is_operational())
            .map(|h| h.capacity().cpu_cores)
            .sum()
    }

    /// Total aggregate CPU capacity of all hosts, in cores.
    pub fn total_capacity_cores(&self) -> f64 {
        self.hosts.iter().map(|h| h.capacity().cpu_cores).sum()
    }

    /// Enables power-trace recording on every host (for trace experiments).
    pub fn enable_power_traces(&mut self) {
        for host in &mut self.hosts {
            host.power_mut().enable_trace();
        }
    }

    /// Capacity of `host` (convenience passthrough).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn capacity_of(&self, host: HostId) -> Resources {
        self.hosts[host.index()].capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power::HostPowerProfile;

    fn small_cluster() -> Cluster {
        let hosts = vec![
            HostSpec::new(
                Resources::new(8.0, 32.0),
                HostPowerProfile::prototype_rack()
            );
            3
        ];
        let vms = vec![VmSpec::new(Resources::new(2.0, 8.0)); 6];
        Cluster::new(hosts, vms, SimTime::ZERO)
    }

    #[test]
    fn place_respects_memory() {
        let mut c = small_cluster();
        // 32 GB / 8 GB per VM -> 4 fit.
        for i in 0..4 {
            c.place(VmId(i), HostId(0)).unwrap();
        }
        let err = c.place(VmId(4), HostId(0)).unwrap_err();
        assert!(matches!(err, ClusterError::InsufficientCapacity { .. }));
        assert_eq!(c.mem_free_gb(HostId(0)), 0.0);
    }

    #[test]
    fn place_rejects_double_placement() {
        let mut c = small_cluster();
        c.place(VmId(0), HostId(0)).unwrap();
        assert_eq!(
            c.place(VmId(0), HostId(1)).unwrap_err(),
            ClusterError::VmAlreadyPlaced(VmId(0))
        );
    }

    #[test]
    fn migration_moves_vm_and_reserves_memory() {
        let mut c = small_cluster();
        c.place(VmId(0), HostId(0)).unwrap();
        let done = c
            .begin_migration(VmId(0), HostId(1), SimTime::ZERO)
            .unwrap();
        // Still on source mid-flight; memory reserved on destination.
        assert_eq!(c.placement().host_of(VmId(0)), Some(HostId(0)));
        assert_eq!(c.mem_committed_gb(HostId(1)), 8.0);
        assert!(!c.is_evacuated(HostId(1)));

        let m = c.complete_migration(VmId(0), done).unwrap();
        assert_eq!(m.from, HostId(0));
        assert_eq!(m.to, HostId(1));
        assert_eq!(c.placement().host_of(VmId(0)), Some(HostId(1)));
        assert!(c.is_evacuated(HostId(0)));
        assert_eq!(c.migrations_completed(), 1);
    }

    #[test]
    fn failed_migration_leaves_vm_on_source() {
        let mut c = small_cluster();
        c.place(VmId(0), HostId(0)).unwrap();
        let done = c
            .begin_migration(VmId(0), HostId(1), SimTime::ZERO)
            .unwrap();
        let m = c.fail_migration(VmId(0), done).unwrap();
        assert_eq!(m.from, HostId(0));
        assert_eq!(m.to, HostId(1));
        // VM never moved; the destination reservation is fully released.
        assert_eq!(c.placement().host_of(VmId(0)), Some(HostId(0)));
        assert_eq!(c.mem_committed_gb(HostId(0)), 8.0);
        assert_eq!(c.mem_committed_gb(HostId(1)), 0.0);
        assert!(c.is_evacuated(HostId(1)));
        assert_eq!(c.migrations_failed(), 1);
        assert_eq!(c.migrations_completed(), 0);
        assert!(c.migration_of(VmId(0)).is_none());
        // The VM can retry the same move afterwards.
        let done2 = c.begin_migration(VmId(0), HostId(1), done).unwrap();
        c.complete_migration(VmId(0), done2).unwrap();
        assert_eq!(c.placement().host_of(VmId(0)), Some(HostId(1)));
    }

    #[test]
    fn fail_migration_requires_in_flight() {
        let mut c = small_cluster();
        c.place(VmId(0), HostId(0)).unwrap();
        assert_eq!(
            c.fail_migration(VmId(0), SimTime::ZERO).unwrap_err(),
            ClusterError::VmMigrating(VmId(0))
        );
    }

    #[test]
    fn delayed_power_transition_stays_pending() {
        let mut c = small_cluster();
        let done = c
            .begin_power_transition(HostId(0), TransitionKind::Suspend, SimTime::ZERO)
            .unwrap();
        let stuck = done + simcore::SimDuration::from_secs(60);
        assert_eq!(c.delay_power_transition(HostId(0), stuck).unwrap(), done);
        // The old instant no longer completes; the stretched one fails.
        assert!(c.complete_power_transition(HostId(0), done).is_err());
        c.fail_power_transition(HostId(0), stuck).unwrap();
        assert_eq!(c.failed_transitions(), 1);
        assert!(c.host(HostId(0)).unwrap().is_operational());
    }

    #[test]
    fn migration_rejects_self_and_double() {
        let mut c = small_cluster();
        c.place(VmId(0), HostId(0)).unwrap();
        assert_eq!(
            c.begin_migration(VmId(0), HostId(0), SimTime::ZERO)
                .unwrap_err(),
            ClusterError::SelfMigration(VmId(0))
        );
        c.begin_migration(VmId(0), HostId(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            c.begin_migration(VmId(0), HostId(2), SimTime::ZERO)
                .unwrap_err(),
            ClusterError::VmMigrating(VmId(0))
        );
    }

    #[test]
    fn power_down_requires_evacuation() {
        let mut c = small_cluster();
        c.place(VmId(0), HostId(0)).unwrap();
        assert_eq!(
            c.begin_power_transition(HostId(0), TransitionKind::Suspend, SimTime::ZERO)
                .unwrap_err(),
            ClusterError::HostNotEvacuated(HostId(0))
        );
        // Empty host suspends fine.
        let done = c
            .begin_power_transition(HostId(1), TransitionKind::Suspend, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            c.complete_power_transition(HostId(1), done).unwrap(),
            PowerState::Suspended
        );
        assert_eq!(c.hosts_in_state(PowerState::Suspended), vec![HostId(1)]);
        assert_eq!(c.operational_hosts(), vec![HostId(0), HostId(2)]);
    }

    #[test]
    fn cannot_place_on_suspended_host() {
        let mut c = small_cluster();
        let done = c
            .begin_power_transition(HostId(0), TransitionKind::Suspend, SimTime::ZERO)
            .unwrap();
        c.complete_power_transition(HostId(0), done).unwrap();
        assert_eq!(
            c.place(VmId(0), HostId(0)).unwrap_err(),
            ClusterError::HostNotOperational(HostId(0))
        );
        let mut c2 = small_cluster();
        c2.place(VmId(0), HostId(1)).unwrap();
        let done = c2
            .begin_power_transition(HostId(0), TransitionKind::Suspend, SimTime::ZERO)
            .unwrap();
        c2.complete_power_transition(HostId(0), done).unwrap();
        assert!(matches!(
            c2.begin_migration(VmId(0), HostId(0), done).unwrap_err(),
            ClusterError::HostNotOperational(_)
        ));
    }

    #[test]
    fn demand_accounting_balances() {
        let mut c = small_cluster();
        c.place(VmId(0), HostId(0)).unwrap();
        c.place(VmId(1), HostId(0)).unwrap();
        let mut demand = vec![0.0; 6];
        demand[0] = 1.5;
        demand[1] = 2.0;
        demand[2] = 1.0; // unplaced -> unserved
        let out = c.apply_demand(SimTime::from_secs(60), &demand);
        assert!((out.offered_cores - 4.5).abs() < 1e-9);
        assert!((out.served_cores - 3.5).abs() < 1e-9);
        assert!((out.unserved_cores - 1.0).abs() < 1e-9);
        assert!((out.host_utilization[0] - 3.5 / 8.0).abs() < 1e-9);
        assert_eq!(out.host_utilization[1], 0.0);
    }

    #[test]
    fn demand_clamps_to_vm_cap() {
        let mut c = small_cluster();
        c.place(VmId(0), HostId(0)).unwrap();
        let mut demand = vec![0.0; 6];
        demand[0] = 100.0; // cap is 2.0
        let out = c.apply_demand(SimTime::from_secs(1), &demand);
        assert!((out.offered_cores - 2.0).abs() < 1e-9);
    }

    #[test]
    fn interactive_served_before_batch_under_overload() {
        let hosts = vec![HostSpec::new(
            Resources::new(4.0, 128.0),
            HostPowerProfile::prototype_rack(),
        )];
        let vms = vec![
            VmSpec::new(Resources::new(3.0, 8.0)),
            VmSpec::new(Resources::new(3.0, 8.0)).with_class(ServiceClass::Batch),
        ];
        let mut c = Cluster::new(hosts, vms, SimTime::ZERO);
        c.place(VmId(0), HostId(0)).unwrap();
        c.place(VmId(1), HostId(0)).unwrap();
        // 6 cores demanded, 4 available: interactive fully served, batch
        // absorbs the whole shortfall.
        let out = c.apply_demand(SimTime::from_secs(1), &[3.0, 3.0]);
        assert!((out.unserved_interactive_cores - 0.0).abs() < 1e-9);
        assert!((out.unserved_batch_cores - 2.0).abs() < 1e-9);
        assert!((out.offered_interactive_cores - 3.0).abs() < 1e-9);
        assert!((out.offered_batch_cores - 3.0).abs() < 1e-9);
    }

    #[test]
    fn interactive_overload_spills_to_interactive() {
        let hosts = vec![HostSpec::new(
            Resources::new(4.0, 128.0),
            HostPowerProfile::prototype_rack(),
        )];
        let vms = vec![
            VmSpec::new(Resources::new(3.0, 8.0)),
            VmSpec::new(Resources::new(3.0, 8.0)),
        ];
        let mut c = Cluster::new(hosts, vms, SimTime::ZERO);
        c.place(VmId(0), HostId(0)).unwrap();
        c.place(VmId(1), HostId(0)).unwrap();
        let out = c.apply_demand(SimTime::from_secs(1), &[3.0, 3.0]);
        assert!((out.unserved_interactive_cores - 2.0).abs() < 1e-9);
        assert_eq!(out.unserved_batch_cores, 0.0);
    }

    #[test]
    fn overload_produces_unserved() {
        let hosts = vec![HostSpec::new(
            Resources::new(4.0, 128.0),
            HostPowerProfile::prototype_rack(),
        )];
        let vms = vec![VmSpec::new(Resources::new(3.0, 8.0)); 2];
        let mut c = Cluster::new(hosts, vms, SimTime::ZERO);
        c.place(VmId(0), HostId(0)).unwrap();
        c.place(VmId(1), HostId(0)).unwrap();
        let out = c.apply_demand(SimTime::from_secs(1), &[3.0, 3.0]);
        assert!((out.offered_cores - 6.0).abs() < 1e-9);
        assert!((out.served_cores - 4.0).abs() < 1e-9);
        assert!((out.unserved_cores - 2.0).abs() < 1e-9);
        assert_eq!(out.host_utilization[0], 1.0);
    }

    #[test]
    fn migration_tax_counts_on_both_hosts() {
        let mut c = small_cluster();
        c.place(VmId(0), HostId(0)).unwrap();
        c.begin_migration(VmId(0), HostId(1), SimTime::ZERO)
            .unwrap();
        let out = c.apply_demand(SimTime::from_secs(1), &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let tax = c.migration_model().cpu_tax_cores();
        assert!((out.host_demand_cores[0] - (1.0 + tax)).abs() < 1e-9);
        assert!((out.host_demand_cores[1] - tax).abs() < 1e-9);
    }

    #[test]
    fn contended_migrations_take_longer() {
        let hosts = vec![
            HostSpec::new(
                Resources::new(16.0, 128.0),
                HostPowerProfile::prototype_rack()
            );
            3
        ];
        let vms = vec![VmSpec::new(Resources::new(2.0, 8.0)); 4];
        let model = MigrationModel::new(10.0, 1.0, 0.0).with_contention(1.0);
        let mut c = Cluster::with_migration_model(hosts, vms, model, SimTime::ZERO);
        for i in 0..4 {
            c.place(VmId(i), HostId(0)).unwrap();
        }
        let d0 = c
            .begin_migration(VmId(0), HostId(1), SimTime::ZERO)
            .unwrap();
        let d1 = c
            .begin_migration(VmId(1), HostId(1), SimTime::ZERO)
            .unwrap();
        // Second migration shares the single channel: twice as long.
        let base = d0.since(SimTime::ZERO).as_secs_f64();
        let second = d1.since(SimTime::ZERO).as_secs_f64();
        assert!((second / base - 2.0).abs() < 0.01, "{second} vs {base}");
    }

    #[test]
    fn energy_and_power_aggregate() {
        let mut c = small_cluster();
        let idle = HostPowerProfile::prototype_rack().curve().idle_w();
        assert!((c.total_power_w() - 3.0 * idle).abs() < 1e-9);
        c.sync(SimTime::from_secs(100));
        assert!((c.total_energy_j() - 3.0 * idle * 100.0).abs() < 1e-6);
    }

    #[test]
    fn capacity_queries() {
        let c = small_cluster();
        assert_eq!(c.total_capacity_cores(), 24.0);
        assert_eq!(c.operational_capacity_cores(), 24.0);
        assert_eq!(c.capacity_of(HostId(1)), Resources::new(8.0, 32.0));
    }

    /// Drives one cluster through placements, migrations, power cycles,
    /// and demand in the given accounting mode; returns a fingerprint of
    /// every aggregate query.
    fn accounting_fingerprint(mode: AccountingMode) -> Vec<f64> {
        let mut c = small_cluster();
        c.set_accounting_mode(mode);
        let mut probes = Vec::new();
        let mut probe = |c: &Cluster| {
            probes.push(c.total_power_w());
            probes.push(c.operational_capacity_cores());
            probes.push(c.num_operational_hosts() as f64);
            for h in c.host_ids() {
                probes.push(c.mem_committed_gb(h));
            }
        };
        c.place(VmId(0), HostId(0)).unwrap();
        c.place(VmId(1), HostId(0)).unwrap();
        c.place(VmId(2), HostId(1)).unwrap();
        probe(&c);
        let done = c
            .begin_migration(VmId(2), HostId(0), SimTime::ZERO)
            .unwrap();
        probe(&c);
        c.apply_demand(SimTime::from_secs(1), &[1.5, 0.5, 1.0, 0.0, 0.0, 0.0]);
        probe(&c);
        c.complete_migration(VmId(2), done).unwrap();
        c.unplace(VmId(1)).unwrap();
        probe(&c);
        let off = c
            .begin_power_transition(HostId(1), TransitionKind::Suspend, done)
            .unwrap();
        probe(&c);
        c.complete_power_transition(HostId(1), off).unwrap();
        c.apply_demand(off, &[2.0, 0.0, 0.5, 0.0, 0.0, 0.0]);
        probe(&c);
        let on = c
            .begin_power_transition(
                HostId(1),
                TransitionKind::Resume,
                off + simcore::SimDuration::from_secs(600),
            )
            .unwrap();
        c.fail_power_transition(HostId(1), on).unwrap();
        probe(&c);
        probes
    }

    #[test]
    fn incremental_accounting_matches_scan_bitwise() {
        let incr = accounting_fingerprint(AccountingMode::Incremental);
        let scan = accounting_fingerprint(AccountingMode::Scan);
        assert_eq!(incr.len(), scan.len());
        for (k, (a, b)) in incr.iter().zip(&scan).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "probe {k}: {a} vs {b}");
        }
    }

    #[test]
    fn apply_demand_into_reuses_buffers() {
        let mut c = small_cluster();
        c.place(VmId(0), HostId(0)).unwrap();
        let demand = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let reference = c.apply_demand(SimTime::from_secs(1), &demand);
        // A reused (dirty) outcome buffer must produce identical results.
        let mut out = DemandOutcome {
            offered_cores: 99.0,
            host_utilization: vec![7.0; 9],
            host_demand_cores: vec![3.0; 1],
            ..DemandOutcome::default()
        };
        c.apply_demand_into(SimTime::from_secs(2), &demand, &mut out);
        assert_eq!(out.host_utilization.len(), c.num_hosts());
        assert_eq!(out.offered_cores, reference.offered_cores);
        assert_eq!(out.host_utilization, reference.host_utilization);
        assert_eq!(out.host_demand_cores, reference.host_demand_cores);
    }
}
