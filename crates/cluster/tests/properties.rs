//! Property tests for the placement map, on the [`check`] framework:
//! the bidirectional VM→host index is checked against a naive
//! model under arbitrary place/remove/relocate sequences.

use std::collections::HashMap;

use check::gen::{usize_in, vec_of, Gen};
use check::{prop_assert, prop_assert_eq};
use cluster::{HostId, PlacementMap, VmId};

const HOSTS: usize = 4;
const VMS: usize = 8;

/// One raw operation: (opcode, vm pick, host pick).
type RawOp = ((usize, usize), usize);

fn ops() -> Gen<Vec<RawOp>> {
    vec_of(
        &usize_in(0..=2)
            .zip(&usize_in(0..=VMS - 1))
            .zip(&usize_in(0..=HOSTS - 1)),
        0..=64,
    )
}

/// The placement map agrees with a naive `HashMap` model after any
/// operation sequence, and its own invariant check stays green.
#[test]
fn placement_map_matches_naive_model() {
    check::check("PlacementMap == naive model", &ops(), |script| {
        let mut map = PlacementMap::new(HOSTS, VMS);
        let mut model: HashMap<VmId, HostId> = HashMap::new();
        for &((op, vm_raw), host_raw) in script {
            let vm = VmId(vm_raw as u32);
            let host = HostId(host_raw as u32);
            match op {
                0 if !model.contains_key(&vm) => {
                    map.place(vm, host);
                    model.insert(vm, host);
                }
                1 if model.contains_key(&vm) => {
                    let was = map.remove(vm);
                    prop_assert_eq!(Some(was), model.remove(&vm));
                }
                2 if model.contains_key(&vm) => {
                    let was = map.relocate(vm, host);
                    prop_assert_eq!(Some(was), model.insert(vm, host));
                }
                _ => continue, // op not applicable to this VM's state
            }
            prop_assert!(map.check_invariants(), "internal indexes disagree");
            prop_assert_eq!(map.placed_count(), model.len());
            for k in 0..VMS {
                prop_assert_eq!(
                    map.host_of(VmId(k as u32)),
                    model.get(&VmId(k as u32)).copied()
                );
            }
            for h in 0..HOSTS {
                let on_host = map.vms_on(HostId(h as u32));
                let expected = model
                    .iter()
                    .filter(|&(_, &mh)| mh == HostId(h as u32))
                    .count();
                prop_assert_eq!(on_host.len(), expected);
                prop_assert!(on_host.windows(2).all(|w| w[0] < w[1]), "vms_on not sorted");
            }
        }
        Ok(())
    });
}
