//! Micro-benchmarks of the discrete-event substrate.

use bench::microbench::time;
use simcore::{EventQueue, RngStream, SimTime, TimeSeries};

fn event_queue_throughput() {
    time("event_queue_schedule_pop_10k", 3, 20, || {
        let mut q = EventQueue::new();
        let mut rng = RngStream::new(1);
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_millis(rng.below(1_000_000)), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum = sum.wrapping_add(e);
        }
        sum
    });
}

fn rng_throughput() {
    let mut rng = RngStream::new(7);
    time("rng_normal_100k", 3, 20, || {
        let mut acc = 0.0;
        for _ in 0..100_000 {
            acc += rng.normal(0.0, 1.0);
        }
        acc
    });
}

fn series_integration() {
    let mut ts = TimeSeries::new();
    for i in 0..10_000u64 {
        ts.record(SimTime::from_secs(i * 60), (i % 97) as f64);
    }
    time("timeseries_integral_10k_points", 3, 50, || {
        ts.integral_until(SimTime::from_secs(10_000 * 60))
    });
}

fn main() {
    event_queue_throughput();
    rng_throughput();
    series_integration();
}
