//! End-to-end simulation throughput: a full 24 h diurnal day.

use agile_core::PowerPolicy;
use bench::microbench::time;
use dcsim::{Experiment, Scenario, SimulationBuilder};

fn main() {
    for hosts in [16usize, 64] {
        let scenario = Scenario::datacenter(hosts, hosts * 4, 42);
        time(&format!("sim_24h_{hosts}_hosts_suspend"), 1, 5, || {
            SimulationBuilder::new(
                Experiment::new(scenario.clone()).policy(PowerPolicy::reactive_suspend()),
            )
            .run_report()
            .expect("scenario runs")
            .energy_j
        });
    }
}
