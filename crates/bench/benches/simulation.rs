//! End-to-end simulation throughput: a full 24 h diurnal day.

use agile_core::PowerPolicy;
use criterion::{criterion_group, criterion_main, Criterion};
use dcsim::{Experiment, Scenario};

fn full_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_24h");
    group.sample_size(10);
    for hosts in [16usize, 64] {
        let scenario = Scenario::datacenter(hosts, hosts * 4, 42);
        group.bench_function(format!("{hosts}_hosts_suspend"), |b| {
            b.iter(|| {
                Experiment::new(scenario.clone())
                    .policy(PowerPolicy::reactive_suspend())
                    .run()
                    .expect("scenario runs")
                    .energy_j
            })
        });
    }
    group.finish();
}

criterion_group!(benches, full_day);
criterion_main!(benches);
