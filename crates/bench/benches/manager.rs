//! Micro-benchmarks of one management round at fleet scale.

use agile_core::{
    ClusterObservation, HostObservation, ManagerConfig, PowerPolicy, VirtManager, VmObservation,
};
use bench::microbench::time;
use cluster::{HostId, VmId};
use power::PowerState;
use simcore::{RngStream, SimTime};

/// A synthetic steady-state observation: `hosts` hosts, 4 VMs each.
fn observation(hosts: usize) -> ClusterObservation {
    let mut rng = RngStream::new(11);
    let vms_per_host = 4;
    let mut host_obs = Vec::with_capacity(hosts);
    let mut vm_obs = Vec::with_capacity(hosts * vms_per_host);
    for h in 0..hosts {
        let mut demand = 0.0;
        for v in 0..vms_per_host {
            let d = rng.uniform(0.2, 1.8);
            demand += d;
            vm_obs.push(VmObservation {
                id: VmId((h * vms_per_host + v) as u32),
                host: Some(HostId(h as u32)),
                cpu_demand: d,
                cpu_cap: 2.0,
                mem_gb: 4.0,
                migrating: false,
                service_class: Default::default(),
            });
        }
        host_obs.push(HostObservation {
            id: HostId(h as u32),
            state: PowerState::On,
            pending: None,
            cpu_capacity: 16.0,
            mem_capacity: 128.0,
            mem_committed: 16.0,
            cpu_demand: demand,
            evacuated: false,
            failed_transitions: 0,
            ladder: Default::default(),
        });
    }
    ClusterObservation {
        now: SimTime::from_secs(300),
        hosts: host_obs,
        vms: vm_obs,
    }
}

fn main() {
    for hosts in [64usize, 256, 1024] {
        let obs = observation(hosts);
        let mut mgr = VirtManager::new(
            ManagerConfig::new(PowerPolicy::reactive_suspend()),
            hosts,
            hosts * 4,
        );
        time(&format!("manager_plan_{hosts}_hosts"), 3, 20, || {
            mgr.plan(&obs).len()
        });
    }
}
