//! Headline end-to-end experiments (F4, T5, T9).

use agile_core::PowerPolicy;
use dcsim::report::{policy_comparison, series_table, table};
use dcsim::{Experiment, Scenario, SimReport, SimulationBuilder};
use simcore::{SimDuration, SimTime};

use crate::{HEADLINE_HOSTS, HEADLINE_VMS, SEED};

/// Runs the four headline policies on the same diurnal day.
///
/// The management loop runs at a 1-minute interval — the *agile*
/// management regime the paper's low-latency states enable. At this
/// cadence the boot-vs-resume latency gap is visible in the violation
/// metrics, and base DRM does real load-balancing work at the daily peak.
fn headline_runs(hosts: usize, vms: usize, seed: u64) -> Vec<SimReport> {
    let scenario = Scenario::datacenter_spiky(hosts, vms, seed);
    [
        PowerPolicy::always_on(),
        PowerPolicy::reactive_off(),
        PowerPolicy::reactive_suspend(),
        PowerPolicy::oracle(),
    ]
    .into_iter()
    .map(|p| {
        SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .policy(p)
                .control_interval(SimDuration::from_mins(1)),
        )
        .run_report()
        .expect("headline scenario runs")
    })
    .collect()
}

/// F4 + T5: datacenter power over a 24 h diurnal day under the four
/// policies (figure series), and the summary comparison table.
pub fn exp_f4_t5() -> (String, String) {
    exp_f4_t5_sized(HEADLINE_HOSTS, HEADLINE_VMS, SEED)
}

/// Size-parameterized variant (used by tests at small scale).
pub fn exp_f4_t5_sized(hosts: usize, vms: usize, seed: u64) -> (String, String) {
    let reports = headline_runs(hosts, vms, seed);
    let labels: Vec<&str> = reports.iter().map(|r| r.policy.as_str()).collect();
    let series: Vec<&simcore::TimeSeries> = reports.iter().map(|r| &r.power_series).collect();
    let f4 = format!(
        "Cluster power (kW would be W/1000) over 24 h, {hosts} hosts / {vms} VMs, seed {seed}:\n{}",
        series_table(
            &labels,
            &series,
            SimDuration::from_mins(30),
            SimTime::ZERO + SimDuration::from_hours(24),
        )
    );
    let refs: Vec<&SimReport> = reports.iter().collect();
    let t5 = format!(
        "Policy summary, {hosts} hosts / {vms} VMs, 24 h diurnal+spikes, seed {seed}:\n{}",
        policy_comparison(&refs)
    );
    (f4, t5)
}

/// T9: management overhead — action rates of base DRM vs. DRM+PM under
/// both power-state regimes. The paper's claim: PM with low-latency
/// states adds overhead comparable to base DRM.
pub fn exp_t9() -> String {
    exp_t9_sized(HEADLINE_HOSTS, HEADLINE_VMS, SEED)
}

/// Size-parameterized variant (used by tests at small scale).
pub fn exp_t9_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let reports = headline_runs(hosts, vms, seed);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .filter(|r| r.policy != "Oracle")
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.2}", r.migrations_per_hour),
                format!("{:.2}", r.power_actions_per_hour),
                format!(
                    "{}/{}/{}",
                    r.overload_migrations, r.consolidation_migrations, r.rebalance_migrations
                ),
                format!("{}", r.power_ups + r.power_downs),
                format!("{:.3}%", r.migration_overhead_frac * 100.0),
                format!("{:.3}%", r.transition_overhead_frac * 100.0),
                format!("{:.3}%", r.unserved_ratio * 100.0),
            ]
        })
        .collect();
    format!(
        "Management overhead, {hosts} hosts / {vms} VMs, 24 h, seed {seed}:\n{}",
        table(
            &[
                "policy",
                "migr/h",
                "pwr-act/h",
                "migr(ovl/cons/rebal)",
                "pwr total",
                "migr-time",
                "transition-time",
                "unserved"
            ],
            &rows,
        )
    )
}

/// T19: seed-replicated headline summary — T5's numbers with error bars.
pub fn exp_t19() -> String {
    exp_t19_sized(32, 192, &[2013, 2014, 2015, 2016, 2017])
}

/// Size-parameterized variant.
pub fn exp_t19_sized(hosts: usize, vms: usize, seeds: &[u64]) -> String {
    use dcsim::replicate;
    let mut rows = Vec::new();
    for policy in [
        PowerPolicy::always_on(),
        PowerPolicy::reactive_off(),
        PowerPolicy::reactive_suspend(),
        PowerPolicy::oracle(),
    ] {
        let summary = replicate(seeds, |seed| {
            SimulationBuilder::new(
                Experiment::new(Scenario::datacenter_spiky(hosts, vms, seed))
                    .policy(policy)
                    .control_interval(SimDuration::from_mins(1)),
            )
            .run_report()
        })
        .expect("replications run");
        rows.push(vec![
            summary.policy.clone(),
            summary.energy_kwh.pm(1),
            format!(
                "{:.4} ± {:.4}%",
                summary.unserved_ratio.mean * 100.0,
                summary.unserved_ratio.std_dev * 100.0
            ),
            summary.migrations_per_hour.pm(1),
            summary.power_actions_per_hour.pm(1),
            summary.avg_hosts_on.pm(1),
        ]);
    }
    format!(
        "Seed-replicated policy summary ({} seeds), {hosts} hosts / {vms} VMs, 24 h:
{}",
        seeds.len(),
        table(
            &[
                "policy",
                "energy kWh",
                "unserved",
                "migr/h",
                "pwr-act/h",
                "hosts-on"
            ],
            &rows
        )
    )
}

/// T20: service-class SLA accounting — where the violations land.
pub fn exp_t20() -> String {
    exp_t20_sized(HEADLINE_HOSTS, HEADLINE_VMS, SEED)
}

/// Size-parameterized variant.
pub fn exp_t20_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let reports = headline_runs(hosts, vms, seed);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .filter(|r| r.policy != "Oracle")
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.4}%", r.unserved_ratio * 100.0),
                format!("{:.4}%", r.unserved_interactive_ratio * 100.0),
                format!("{:.4}%", r.unserved_batch_ratio * 100.0),
                format!("{:.2}x", r.avg_latency_factor),
            ]
        })
        .collect();
    format!(
        "Per-class SLA accounting (interactive served first), {hosts} hosts / {vms} VMs, 24 h:
{}",
        table(
            &["policy", "unserved", "interactive", "batch", "lat"],
            &rows
        )
    )
}

/// T22: DVFS-only vs consolidation — the classic alternative knob.
pub fn exp_t22() -> String {
    exp_t22_sized(32, 192, SEED)
}

/// Size-parameterized variant.
pub fn exp_t22_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let scenario = Scenario::datacenter(hosts, vms, seed);
    let base =
        SimulationBuilder::new(Experiment::new(scenario.clone()).policy(PowerPolicy::always_on()))
            .run_report()
            .expect("scenario runs");
    let dvfs = SimulationBuilder::new(Experiment::new(scenario.clone()))
        .dvfs_baseline(power::DvfsModel::typical_2013())
        .run_report()
        .expect("analytic baseline runs");
    let suspend = SimulationBuilder::new(
        Experiment::new(scenario.clone()).policy(PowerPolicy::reactive_suspend()),
    )
    .run_report()
    .expect("scenario runs");
    let oracle = SimulationBuilder::new(Experiment::new(scenario).policy(PowerPolicy::oracle()))
        .run_report()
        .expect("scenario runs");

    let rows: Vec<Vec<String>> = [&base, &dvfs, &suspend, &oracle]
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.0}", r.energy_kwh()),
                format!("{:+.1}%", r.savings_vs(&base) * 100.0),
                format!("{:.4}%", r.unserved_ratio * 100.0),
                format!("{:.1}", r.avg_hosts_on),
            ]
        })
        .collect();
    format!(
        "DVFS-only vs consolidation, {hosts} hosts / {vms} VMs, 24 h diurnal:
{}",
        table(
            &["policy", "energy kWh", "savings", "unserved", "hosts-on"],
            &rows
        )
    )
}

/// T25: simulator self-profile — wall-clock per control phase and event
/// dispatch, plus the peak event-queue depth, for the headline run.
pub fn exp_profile() -> String {
    exp_profile_sized(HEADLINE_HOSTS, HEADLINE_VMS, SEED)
}

/// Size-parameterized variant (used by tests at small scale).
pub fn exp_profile_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let out = SimulationBuilder::new(
        Experiment::new(Scenario::datacenter(hosts, vms, seed))
            .policy(PowerPolicy::reactive_suspend()),
    )
    .profiling(true)
    .build()
    .and_then(|sim| sim.run())
    .expect("headline scenario runs");
    let report = out.report;
    let profile = out.profile.expect("profiled run returns a profile");
    let peak_queue = match report.metrics.get("sim.queue.peak") {
        Some(obs::MetricValue::Gauge(v)) => *v as u64,
        _ => 0,
    };
    format!(
        "Simulator phase profile, {hosts} hosts / {vms} VMs, 24 h diurnal, seed {seed}:\n\
         {profile}\
         peak event queue: {peak_queue} entries\n\
         rounds: {}\n",
        report.metrics.counter("sim.rounds")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_experiment_reports_phases() {
        let body = exp_profile_sized(4, 16, 7);
        assert!(body.contains("peak event queue"), "{body}");
        for phase in ["observe", "plan", "execute", "dispatch"] {
            assert!(body.contains(phase), "missing {phase} in:\n{body}");
        }
    }

    #[test]
    fn headline_shape_claims_hold_at_small_scale() {
        let reports = headline_runs(16, 64, 7);
        let (base, off, suspend, oracle) = (&reports[0], &reports[1], &reports[2], &reports[3]);
        // Energy ordering: Oracle < Suspend < AlwaysOn, and Suspend beats
        // Off-based PM (boot energy + conservatism).
        assert!(oracle.energy_j < suspend.energy_j);
        assert!(suspend.energy_j < base.energy_j);
        // S5 parks at 4.5 W vs S3's 8.5 W, so off-based PM can edge ahead
        // on pure energy over long parks; the regimes must stay within a
        // few percent of each other (the paper's point is that S3 matches
        // S5's savings while being far safer).
        assert!(
            suspend.energy_j <= off.energy_j * 1.05,
            "suspend {:.1} kWh should not lose to off {:.1} kWh by >5%",
            suspend.energy_kwh(),
            off.energy_kwh()
        );
        // Performance: on the smooth diurnal day both PM regimes stay
        // near the DRM baseline (the latency gap shows up in the
        // flash-crowd sweep, F7); what must hold here is that PM-Suspend
        // keeps unserved demand small in absolute terms.
        assert!(
            suspend.unserved_ratio < 0.005,
            "suspend unserved {:.4}%",
            suspend.unserved_ratio * 100.0
        );
        assert!(base.unserved_ratio <= suspend.unserved_ratio + 1e-9);
    }

    #[test]
    fn f4_t5_render() {
        let (f4, t5) = exp_f4_t5_sized(8, 32, 3);
        assert!(f4.contains("AlwaysOn"));
        assert!(f4.contains("Oracle"));
        assert!(t5.contains("PM-Suspend(S3)"));
        assert!(t5.contains("savings"));
    }

    #[test]
    fn t22_consolidation_beats_dvfs() {
        let t = exp_t22_sized(6, 36, 5);
        assert!(t.contains("DVFS-only"));
        // Structural check via a direct rerun at the same size.
        let scenario = Scenario::datacenter(6, 36, 5);
        let base = SimulationBuilder::new(
            Experiment::new(scenario.clone()).policy(PowerPolicy::always_on()),
        )
        .run_report()
        .unwrap();
        let dvfs = SimulationBuilder::new(Experiment::new(scenario.clone()))
            .dvfs_baseline(power::DvfsModel::typical_2013())
            .run_report()
            .expect("analytic baseline runs");
        let suspend = SimulationBuilder::new(
            Experiment::new(scenario).policy(PowerPolicy::reactive_suspend()),
        )
        .run_report()
        .unwrap();
        // DVFS saves something, consolidation saves much more: the idle
        // floor bounds what frequency scaling can reach.
        assert!(dvfs.energy_j < base.energy_j);
        assert!(
            suspend.energy_j < dvfs.energy_j,
            "consolidation {:.1} kWh should beat DVFS {:.1} kWh",
            suspend.energy_kwh(),
            dvfs.energy_kwh()
        );
    }

    #[test]
    fn t20_batch_absorbs_violations() {
        let t = exp_t20_sized(8, 48, 7);
        assert!(t.contains("interactive"));
        assert!(t.contains("batch"));
    }

    #[test]
    fn t19_replication_renders() {
        let t = exp_t19_sized(6, 24, &[1, 2]);
        assert!(t.contains("±"));
        assert!(t.contains("2 seeds"));
    }

    #[test]
    fn t9_renders_non_oracle_rows() {
        let t9 = exp_t9_sized(8, 32, 3);
        assert!(t9.contains("AlwaysOn"));
        assert!(t9.contains("PM-OffOn(S5)"));
        assert!(!t9.contains("Oracle"));
    }
}
