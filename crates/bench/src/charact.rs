//! Prototype characterization experiments (T1, F2, F3).
//!
//! These reproduce the paper's first contribution: quantifying the
//! latency/energy trade-offs of low-latency server power states against
//! traditional power cycling, on the (modeled) prototype hardware.

use power::breakeven::{break_even_gap, net_energy_saved, LowPowerMode};
use power::{HostPowerProfile, PowerStateMachine, TransitionKind};
use simcore::{SimDuration, SimTime};

use dcsim::report::table;

/// T1: per-state power and per-transition latency/energy for the
/// prototype profiles.
pub fn exp_t1() -> String {
    let profiles = [
        HostPowerProfile::prototype_rack(),
        HostPowerProfile::prototype_blade(),
        HostPowerProfile::legacy_rack(),
    ];
    let mut out = String::new();

    let state_rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|p| {
            vec![
                p.name().to_string(),
                format!("{:.0}", p.curve().idle_w()),
                format!("{:.0}", p.curve().peak_w()),
                if p.supports_suspend() {
                    format!("{:.1}", p.suspend_power_w())
                } else {
                    "n/a".to_string()
                },
                format!("{:.1}", p.off_power_w()),
                format!("{:.0}%", p.curve().idle_fraction() * 100.0),
            ]
        })
        .collect();
    out.push_str("State power draw (W):\n");
    out.push_str(&table(
        &[
            "profile",
            "idle",
            "peak",
            "suspend(S3)",
            "off(S5)",
            "idle/peak",
        ],
        &state_rows,
    ));
    out.push('\n');

    let mut transition_rows = Vec::new();
    for p in &profiles {
        for kind in TransitionKind::ALL {
            let Some(spec) = p.transitions().spec(kind) else {
                transition_rows.push(vec![
                    p.name().to_string(),
                    kind.to_string(),
                    "unsupported".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
                continue;
            };
            transition_rows.push(vec![
                p.name().to_string(),
                kind.to_string(),
                format!("{}", spec.latency()),
                format!("{:.0}", spec.avg_power_w()),
                format!("{:.1}", spec.energy_j() / 1000.0),
            ]);
        }
    }
    out.push_str("Transition latency and energy:\n");
    out.push_str(&table(
        &["profile", "transition", "latency", "avg W", "energy(kJ)"],
        &transition_rows,
    ));
    out
}

/// F2: power-vs-time trace of one host through an idle → park → wake
/// cycle, S3-class suspend vs. S5-class off, on the same timeline.
pub fn exp_f2() -> String {
    let cycle = |profile: HostPowerProfile, mode: LowPowerMode| -> simcore::TimeSeries {
        let mut m = PowerStateMachine::new(profile, SimTime::ZERO);
        m.enable_trace();
        m.set_utilization(SimTime::ZERO, 0.0);
        // 2 min idle, park for 20 min, wake, 2 min idle.
        let park_at = SimTime::from_secs(120);
        let done_down = m.begin(mode.down(), park_at).expect("legal transition");
        m.complete(done_down).expect("scheduled completion");
        let wake_at = park_at + SimDuration::from_mins(20);
        let done_up = m.begin(mode.up(), wake_at).expect("legal transition");
        m.complete(done_up).expect("scheduled completion");
        m.sync(wake_at + SimDuration::from_mins(4));
        m.meter().trace().expect("trace enabled").clone()
    };

    let s3 = cycle(HostPowerProfile::prototype_rack(), LowPowerMode::Suspend);
    let s5 = cycle(HostPowerProfile::prototype_rack(), LowPowerMode::Off);

    let mut rows = Vec::new();
    let end = SimTime::from_secs(120 + 20 * 60 + 4 * 60);
    let mut t = SimTime::ZERO;
    while t <= end {
        rows.push(vec![
            format!("{:.1}", t.as_secs_f64() / 60.0),
            format!("{:.0}", s3.value_at(t).unwrap_or(0.0)),
            format!("{:.0}", s5.value_at(t).unwrap_or(0.0)),
        ]);
        t += SimDuration::from_secs(30);
    }
    let mut out =
        String::from("One park/wake cycle (idle 2 min, parked 20 min, wake, idle 4 min):\n");
    out.push_str(&table(&["t(min)", "suspend W", "off/boot W"], &rows));
    let cycle_energy = |ts: &simcore::TimeSeries| ts.integral_until(end) / 1000.0;
    out.push_str(&format!(
        "\ncycle energy: suspend {:.0} kJ vs off/boot {:.0} kJ (always-idle would be {:.0} kJ)\n",
        cycle_energy(&s3),
        cycle_energy(&s5),
        HostPowerProfile::prototype_rack().curve().idle_w() * end.as_secs_f64() / 1000.0,
    ));
    out
}

/// F3: net energy saved vs. idle-gap length for S3 vs. S5, with
/// break-even points.
pub fn exp_f3() -> String {
    let p = HostPowerProfile::prototype_rack();
    let gaps_secs: [u64; 12] = [10, 20, 30, 60, 120, 300, 600, 1200, 1800, 3600, 7200, 14400];
    let rows: Vec<Vec<String>> = gaps_secs
        .iter()
        .map(|&secs| {
            let gap = SimDuration::from_secs(secs);
            let fmt = |mode| match net_energy_saved(&p, mode, gap) {
                Some(j) => format!("{:+.1}", j / 1000.0),
                None => "infeasible".to_string(),
            };
            vec![
                format!("{gap}"),
                fmt(LowPowerMode::Suspend),
                fmt(LowPowerMode::Off),
            ]
        })
        .collect();
    let mut out = String::from("Net energy saved by parking for an idle gap (kJ):\n");
    out.push_str(&table(&["idle gap", "suspend(S3)", "off(S5)"], &rows));
    let s3 = break_even_gap(&p, LowPowerMode::Suspend).expect("prototype supports suspend");
    let s5 = break_even_gap(&p, LowPowerMode::Off).expect("shutdown always available");
    out.push_str(&format!(
        "\nbreak-even gap: suspend {s3} vs off/boot {s5} ({:.0}x longer)\n",
        s5.as_secs_f64() / s3.as_secs_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_lists_all_profiles_and_transitions() {
        let t = exp_t1();
        assert!(t.contains("prototype-rack-s3"));
        assert!(t.contains("legacy-rack"));
        assert!(t.contains("unsupported")); // legacy suspend
        assert!(t.contains("boot"));
    }

    #[test]
    fn f2_suspend_cycle_cheaper_than_off() {
        let t = exp_f2();
        // Extract the cycle energies from the summary line.
        let line = t
            .lines()
            .find(|l| l.starts_with("cycle energy"))
            .expect("summary line");
        assert!(line.contains("suspend"));
        // Structural check: suspend trace reaches the 8-9 W floor.
        assert!(t.contains(" 9") || t.contains(" 8"), "{t}");
    }

    #[test]
    fn f3_breakeven_gap_ordering() {
        let t = exp_f3();
        assert!(t.contains("break-even gap"));
        // Short gaps are infeasible for S5 but not S3.
        let first_gap_row = t.lines().nth(3).expect("first data row");
        assert!(first_gap_row.contains("infeasible"));
    }
}
