//! Experiment harness for the `agilepm` workspace.
//!
//! Each public `exp_*` function regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` for the experiment index) and
//! returns its plain-text rendering. The binaries in `src/bin/` are thin
//! wrappers; `run_all` executes the full evaluation.
//!
//! Scale note: the headline experiments run at 64 hosts / 256 VMs —
//! large enough for the fleet-level effects, small enough to regenerate
//! in seconds. The scale-out sweep (F8) goes to 16384 hosts; base and PM
//! runs at every size share one worker-pool batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod charact;
pub mod control_plane;
pub mod headline;
pub mod microbench;
pub mod sweep_exps;

pub use charact::{exp_f2, exp_f3, exp_t1};
pub use control_plane::{exp_t27, exp_t27_sized};
pub use headline::{exp_f4_t5, exp_profile, exp_t19, exp_t20, exp_t22, exp_t9};
pub use sweep_exps::{
    exp_f10, exp_f11, exp_f14, exp_f15, exp_f16, exp_f17, exp_f23, exp_f6, exp_f7, exp_f8, exp_t12,
    exp_t13, exp_t13b, exp_t18, exp_t21, exp_t24, exp_t26,
};

/// Fleet size of the headline experiments (hosts).
pub const HEADLINE_HOSTS: usize = 64;
/// Fleet size of the headline experiments (VMs): 6 per host, hot enough
/// that base DRM has real work at the daily peak.
pub const HEADLINE_VMS: usize = 384;
/// The workspace-wide experiment seed.
pub const SEED: u64 = 2013;

/// Prints an experiment banner followed by its body.
pub fn print_experiment(id: &str, title: &str, body: &str) {
    println!("==== {id}: {title} ====");
    println!("{body}");
}
