//! Dependency-free micro-benchmark timing.
//!
//! A deliberately small harness: untimed warmup, a fixed number of timed
//! iterations, and a one-line report of best / mean time per iteration.
//! Best-of-N is the headline number — it is the least noisy estimate on
//! a shared machine — with the mean alongside as a sanity check.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing result of one benchmark case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Case label, e.g. `event_queue_schedule_pop_10k`.
    pub name: String,
    /// Timed iterations.
    pub iters: usize,
    /// Fastest single iteration.
    pub best: Duration,
    /// Mean over the timed iterations.
    pub mean: Duration,
}

impl Measurement {
    /// `"name  best  mean  (iters)"` with human-scaled units.
    pub fn render(&self) -> String {
        format!(
            "{:<40} best {:>12}  mean {:>12}  ({} iters)",
            self.name,
            scale(self.best),
            scale(self.mean),
            self.iters
        )
    }
}

fn scale(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.1} us", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.1} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Times `f`: `warmup` untimed runs, then `iters` timed ones. The return
/// value is passed through [`black_box`] so the work is not optimized
/// away. Prints the measurement and returns it.
pub fn time<T>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> Measurement {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        black_box(f());
    }
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed();
        best = best.min(dt);
        total += dt;
    }
    let m = Measurement {
        name: name.to_string(),
        iters,
        best,
        mean: total / iters as u32,
    };
    println!("{}", m.render());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_renders() {
        let m = time("spin", 1, 3, || (0..1000u64).sum::<u64>());
        assert_eq!(m.iters, 3);
        assert!(m.best <= m.mean);
        assert!(m.render().contains("spin"));
    }

    #[test]
    fn scales_units() {
        assert!(scale(Duration::from_nanos(500)).ends_with("ns"));
        assert!(scale(Duration::from_micros(500)).ends_with("us"));
        assert!(scale(Duration::from_millis(500)).ends_with("ms"));
        assert!(scale(Duration::from_secs(20)).ends_with("s"));
    }
}
