//! Sweep experiments (F6, F7, F8, F10, F11, T12).

use agile_core::{PowerPolicy, PredictorConfig};
use dcsim::report::table;
use dcsim::sweeps::{prewake_label, SweepBuilder};
use power::breakeven::LowPowerMode;
use simcore::SimDuration;

use crate::{HEADLINE_HOSTS, HEADLINE_VMS, SEED};
use agile_core::{ManagerConfig, PackingPolicy};
use dcsim::{Experiment, Scenario, SimulationBuilder};
use workload::presets;

/// F6: energy proportionality — average cluster power vs. offered load,
/// normalized to peak, per policy, with the ideal proportional line.
pub fn exp_f6() -> String {
    exp_f6_sized(32, 128, SEED)
}

/// Size-parameterized variant.
pub fn exp_f6_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let levels = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let policies = [
        PowerPolicy::always_on(),
        PowerPolicy::reactive_suspend(),
        PowerPolicy::oracle(),
    ];
    let mut columns = Vec::new();
    for p in policies {
        let series = SweepBuilder::proportionality(hosts, vms, &levels, p, seed)
            .run()
            .expect("proportionality scenario runs");
        columns.push(series);
    }
    // Normalize against the AlwaysOn power at full load.
    let peak_w = columns[0]
        .last()
        .expect("levels non-empty")
        .report()
        .avg_power_w();
    let rows: Vec<Vec<String>> = levels
        .iter()
        .enumerate()
        .map(|(i, &level)| {
            let mut row = vec![format!("{:.0}%", level * 100.0)];
            for col in &columns {
                row.push(format!("{:.2}", col[i].report().avg_power_w() / peak_w));
            }
            row.push(format!("{level:.2}")); // the ideal proportional line
            row
        })
        .collect();
    format!(
        "Normalized cluster power vs offered load, {hosts} hosts / {vms} VMs:\n{}",
        table(
            &["load", "AlwaysOn", "PM-Suspend(S3)", "Oracle", "ideal"],
            &rows
        )
    )
}

/// F7: flash-crowd responsiveness vs. wake latency (the sweep covers
/// S3-class resume through S5-class boot latencies).
pub fn exp_f7() -> String {
    exp_f7_sized(HEADLINE_HOSTS, HEADLINE_VMS, SEED)
}

/// Size-parameterized variant.
pub fn exp_f7_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let latencies: Vec<SimDuration> = [1u64, 5, 12, 30, 60, 120, 300, 600]
        .iter()
        .map(|&s| SimDuration::from_secs(s))
        .collect();
    let results = SweepBuilder::wake_latency(hosts, vms, &latencies, seed)
        .run()
        .expect("flash-crowd runs");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|row| {
            let (latency, r) = (row.value, row.report());
            vec![
                format!("{latency}"),
                format!("{:.4}%", r.unserved_ratio * 100.0),
                format!("{:.1}%", r.violation_fraction * 100.0),
                format!("{:.1}", r.avg_hosts_on),
                format!("{}", r.power_ups),
            ]
        })
        .collect();
    format!(
        "Flash crowd (12%→85% step at t=90min), {hosts} hosts / {vms} VMs, wake-latency sweep:\n{}",
        table(
            &[
                "wake latency",
                "unserved",
                "viol.ticks",
                "hosts-on",
                "wakes"
            ],
            &rows
        )
    )
}

/// F8: scale-out — savings and overheads vs. cluster size.
pub fn exp_f8() -> String {
    exp_f8_sized(&[8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384], SEED)
}

/// Size-parameterized variant. Base and PM runs at every size go through
/// one worker-pool batch (`SweepBuilder::scale`).
pub fn exp_f8_sized(host_counts: &[usize], seed: u64) -> String {
    let grid = SweepBuilder::scale(
        host_counts,
        &[PowerPolicy::always_on(), PowerPolicy::reactive_suspend()],
        seed,
    )
    .run()
    .expect("scale scenarios run");
    // One row per size, legs in the order passed: (base, pm).
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|row| {
            let (hosts, b, p) = (row.value, &row.reports[0], &row.reports[1]);
            vec![
                format!("{hosts}"),
                format!("{:.0}", b.energy_kwh()),
                format!("{:.0}", p.energy_kwh()),
                format!("{:.1}%", p.savings_vs(b) * 100.0),
                format!("{:.3}%", p.unserved_ratio * 100.0),
                format!("{:.2}", p.migrations_per_hour / hosts as f64),
                format!("{:.2}", p.power_actions_per_hour / hosts as f64),
            ]
        })
        .collect();
    debug_assert_eq!(rows.len(), host_counts.len());
    format!(
        "Scale-out (6 VMs/host, 24 h diurnal), seed {seed}:\n{}",
        table(
            &[
                "hosts",
                "base kWh",
                "PM-S3 kWh",
                "savings",
                "unserved",
                "migr/h/host",
                "pwr/h/host"
            ],
            &rows
        )
    )
}

/// F10: consolidation headroom sweep — the energy/violation trade-off.
pub fn exp_f10() -> String {
    exp_f10_sized(32, 128, SEED)
}

/// Size-parameterized variant.
pub fn exp_f10_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let targets = [0.55, 0.65, 0.75, 0.85, 0.95];
    let results = SweepBuilder::headroom(hosts, vms, &targets, LowPowerMode::Suspend, seed)
        .run()
        .expect("headroom scenarios run");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|row| {
            let (target, r) = (row.value, row.report());
            vec![
                format!("{:.2}", target),
                format!("{:.0}", r.energy_kwh()),
                format!("{:.4}%", r.unserved_ratio * 100.0),
                format!("{:.1}", r.avg_hosts_on),
                format!("{:.0}%", r.avg_util_on * 100.0),
            ]
        })
        .collect();
    format!(
        "Headroom (target utilization) sweep, PM-Suspend(S3), {hosts} hosts / {vms} VMs:\n{}",
        table(
            &["target", "energy kWh", "unserved", "hosts-on", "util-on"],
            &rows
        )
    )
}

/// F11: hysteresis (min-on-time) sweep under both power-state regimes —
/// flapping vs. agility.
pub fn exp_f11() -> String {
    exp_f11_sized(32, 128, SEED)
}

/// Size-parameterized variant.
pub fn exp_f11_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let windows: Vec<SimDuration> = [0u64, 60, 300, 600, 1800, 3600]
        .iter()
        .map(|&s| SimDuration::from_secs(s))
        .collect();
    let s3 = SweepBuilder::hysteresis(hosts, vms, &windows, LowPowerMode::Suspend, seed)
        .run()
        .expect("hysteresis scenarios run");
    let s5 = SweepBuilder::hysteresis(hosts, vms, &windows, LowPowerMode::Off, seed)
        .run()
        .expect("hysteresis scenarios run");
    let rows: Vec<Vec<String>> = s3
        .iter()
        .zip(&s5)
        .map(|(ra, rb)| {
            let (w, a, b) = (ra.value, ra.report(), rb.report());
            vec![
                format!("{w}"),
                format!("{:.1}", a.power_actions_per_hour),
                format!("{:.0}", a.energy_kwh()),
                format!("{:.4}%", a.unserved_ratio * 100.0),
                format!("{:.1}", b.power_actions_per_hour),
                format!("{:.0}", b.energy_kwh()),
                format!("{:.4}%", b.unserved_ratio * 100.0),
            ]
        })
        .collect();
    format!(
        "Hysteresis (min-on-time) sweep, {hosts} hosts / {vms} VMs:\n{}",
        table(
            &[
                "min-on",
                "S3 act/h",
                "S3 kWh",
                "S3 unserved",
                "S5 act/h",
                "S5 kWh",
                "S5 unserved"
            ],
            &rows
        )
    )
}

/// T12: predictor ablation — last-value vs. EWMA vs. windowed max, under
/// both power-state regimes.
pub fn exp_t12() -> String {
    exp_t12_sized(32, 128, SEED)
}

/// Size-parameterized variant.
pub fn exp_t12_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let predictors: [(&str, PredictorConfig); 4] = [
        ("last-value", PredictorConfig::LastValue),
        ("ewma(0.5)", PredictorConfig::Ewma { alpha: 0.5 }),
        ("ewma(0.2)", PredictorConfig::Ewma { alpha: 0.2 }),
        ("window-max(6)", PredictorConfig::WindowMax { window: 6 }),
    ];
    let mut rows = Vec::new();
    for mode in [LowPowerMode::Suspend, LowPowerMode::Off] {
        let results = SweepBuilder::predictors(hosts, vms, &predictors, mode, seed)
            .run()
            .expect("predictor scenarios run");
        for row in results {
            let (name, r) = (row.value.0.clone(), row.report());
            rows.push(vec![
                match mode {
                    LowPowerMode::PackageIdle => "C6".to_string(),
                    LowPowerMode::Suspend => "S3".to_string(),
                    LowPowerMode::Off => "S5".to_string(),
                },
                name,
                format!("{:.0}", r.energy_kwh()),
                format!("{:.4}%", r.unserved_ratio * 100.0),
                format!("{:.1}", r.power_actions_per_hour),
            ]);
        }
    }
    format!(
        "Predictor ablation, {hosts} hosts / {vms} VMs, diurnal+spikes:\n{}",
        table(
            &["mode", "predictor", "energy kWh", "unserved", "pwr-act/h"],
            &rows
        )
    )
}

/// F14: lifecycle churn — power management under continuous VM
/// provisioning and retirement.
pub fn exp_f14() -> String {
    exp_f14_sized(32, 192, SEED)
}

/// Size-parameterized variant.
pub fn exp_f14_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let churn_fracs = [0.0, 0.15, 0.3, 0.5];
    let mut rows = Vec::new();
    for &frac in &churn_fracs {
        let scenario = Scenario::datacenter_churn(hosts, vms, frac, seed);
        let base = SimulationBuilder::new(
            Experiment::new(scenario.clone()).policy(PowerPolicy::always_on()),
        )
        .run_report()
        .expect("churn scenario runs");
        let pm = SimulationBuilder::new(
            Experiment::new(scenario).policy(PowerPolicy::reactive_suspend()),
        )
        .run_report()
        .expect("churn scenario runs");
        rows.push(vec![
            format!("{:.0}%", frac * 100.0),
            format!("{:.0}", base.energy_kwh()),
            format!("{:.0}", pm.energy_kwh()),
            format!("{:.1}%", pm.savings_vs(&base) * 100.0),
            format!("{:.4}%", pm.unserved_ratio * 100.0),
            format!("{}", pm.placement_retries),
            format!("{:.1}", pm.avg_hosts_on),
        ]);
    }
    format!(
        "Lifecycle churn (transient VMs, mean life 4 h), {hosts} hosts / {vms} VMs:
{}",
        table(
            &[
                "churn",
                "base kWh",
                "PM-S3 kWh",
                "savings",
                "unserved",
                "arrival-waits",
                "hosts-on"
            ],
            &rows
        )
    )
}

/// F15: heterogeneous fleet — rack + blade prototypes managed together.
pub fn exp_f15() -> String {
    exp_f15_sized(24, 16, 192, SEED)
}

/// Size-parameterized variant.
pub fn exp_f15_sized(racks: usize, blades: usize, vms: usize, seed: u64) -> String {
    let scenario = Scenario::heterogeneous(racks, blades, vms, seed);
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for policy in [
        PowerPolicy::always_on(),
        PowerPolicy::reactive_off(),
        PowerPolicy::reactive_suspend(),
        PowerPolicy::oracle(),
    ] {
        reports.push(
            SimulationBuilder::new(Experiment::new(scenario.clone()).policy(policy))
                .run_report()
                .expect("heterogeneous scenario runs"),
        );
    }
    let base = reports[0].clone();
    for r in &reports {
        rows.push(vec![
            r.policy.clone(),
            format!("{:.0}", r.energy_kwh()),
            format!("{:+.1}%", r.savings_vs(&base) * 100.0),
            format!("{:.4}%", r.unserved_ratio * 100.0),
            format!("{:.1}", r.avg_hosts_on),
        ]);
    }
    format!(
        "Heterogeneous fleet ({racks} racks + {blades} blades, {vms} VMs, 24 h diurnal):
{}",
        table(
            &["policy", "energy kWh", "savings", "unserved", "hosts-on"],
            &rows
        )
    )
}

/// T13: reliability sensitivity — the cost of undependable resumes.
pub fn exp_t13() -> String {
    exp_t13_sized(32, 128, SEED)
}

/// Size-parameterized variant.
pub fn exp_t13_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let probs = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2];
    let results = SweepBuilder::reliability(hosts, vms, &probs, seed)
        .run()
        .expect("reliability scenarios run");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|row| {
            let (p, r) = (row.value, row.report());
            vec![
                format!("{:.0}%", p * 100.0),
                format!("{}", r.transition_failures),
                format!("{:.0}", r.energy_kwh()),
                format!("{:.4}%", r.unserved_ratio * 100.0),
                format!("{:.1}", r.power_actions_per_hour),
            ]
        })
        .collect();
    format!(
        "Resume-failure sensitivity, PM-Suspend(S3), {hosts} hosts / {vms} VMs (failed resume -> cold boot):
{}",
        table(
            &["fail prob", "failures", "energy kWh", "unserved", "pwr-act/h"],
            &rows
        )
    )
}

/// T13b: failure-rate overhead — managed savings and recovery pressure
/// across the full fault surface (resume/boot failures, migration
/// aborts, transition hangs, rack bursts scaled together).
pub fn exp_t13b() -> String {
    exp_t13b_sized(32, 128, SEED)
}

/// Size-parameterized variant.
pub fn exp_t13b_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let intensities = [0.0, 0.02, 0.05, 0.1, 0.2, 0.3];
    let results = SweepBuilder::failure_overhead(hosts, vms, &intensities, seed)
        .run()
        .expect("failure-overhead scenarios run");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|row| {
            let (p, base, pm) = (row.value, &row.reports[0], &row.reports[1]);
            vec![
                format!("{:.0}%", p * 100.0),
                format!("{:.0}", base.energy_kwh()),
                format!("{:.0}", pm.energy_kwh()),
                format!("{:.1}%", pm.savings_vs(base) * 100.0),
                format!("{:.4}%", pm.unserved_ratio * 100.0),
                format!("{}", pm.transition_failures),
                format!("{}", pm.migration_failures),
                format!("{}", pm.hung_transitions),
                format!("{:.1}", pm.power_actions_per_hour),
            ]
        })
        .collect();
    format!(
        "Failure-rate overhead (full fault surface; recovery active), {hosts} hosts / {vms} VMs:
{}",
        table(
            &[
                "intensity",
                "base kWh",
                "PM-S3 kWh",
                "savings",
                "unserved",
                "pwr-fail",
                "migr-fail",
                "hung",
                "pwr-act/h"
            ],
            &rows
        )
    )
}

/// F16: power-curve shape ablation.
pub fn exp_f16() -> String {
    exp_f16_sized(32, 192, SEED)
}

/// Size-parameterized variant.
pub fn exp_f16_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let results = SweepBuilder::curve_shapes(hosts, vms, seed)
        .run()
        .expect("curve scenarios run");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|row| {
            let (name, base, pm) = (row.value, &row.reports[0], &row.reports[1]);
            vec![
                name.to_string(),
                format!("{:.0}", base.energy_kwh()),
                format!("{:.0}", pm.energy_kwh()),
                format!("{:.1}%", pm.savings_vs(base) * 100.0),
                format!("{:.4}%", pm.unserved_ratio * 100.0),
            ]
        })
        .collect();
    format!(
        "Power-curve shape ablation (same endpoints/transitions), {hosts} hosts / {vms} VMs:
{}",
        table(
            &["curve", "base kWh", "PM-S3 kWh", "savings", "unserved"],
            &rows
        )
    )
}

/// F17: management-interval sweep — the agility axis, both power modes.
pub fn exp_f17() -> String {
    exp_f17_sized(HEADLINE_HOSTS, HEADLINE_VMS, SEED)
}

/// Size-parameterized variant.
pub fn exp_f17_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let intervals: Vec<SimDuration> = [30u64, 60, 120, 300, 900]
        .iter()
        .map(|&s| SimDuration::from_secs(s))
        .collect();
    let results = SweepBuilder::interval(hosts, vms, &intervals, seed)
        .run()
        .expect("interval scenarios run");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|row| {
            let (interval, s3, s5) = (row.value, &row.reports[0], &row.reports[1]);
            vec![
                format!("{interval}"),
                format!("{:.0}", s3.energy_kwh()),
                format!("{:.4}%", s3.unserved_ratio * 100.0),
                format!("{:.1}", s3.migrations_per_hour),
                format!("{:.0}", s5.energy_kwh()),
                format!("{:.4}%", s5.unserved_ratio * 100.0),
                format!("{:.1}", s5.migrations_per_hour),
            ]
        })
        .collect();
    format!(
        "Management-interval sweep, {hosts} hosts / {vms} VMs, diurnal+spikes:
{}",
        table(
            &[
                "interval",
                "S3 kWh",
                "S3 unserved",
                "S3 migr/h",
                "S5 kWh",
                "S5 unserved",
                "S5 migr/h"
            ],
            &rows
        )
    )
}

/// T18: proactive pre-waking ablation.
pub fn exp_t18() -> String {
    exp_t18_sized(32, 192, SEED)
}

/// Size-parameterized variant.
pub fn exp_t18_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let results = SweepBuilder::prewake(hosts, vms, seed)
        .run()
        .expect("prewake scenarios run");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|row| {
            let r = row.report();
            vec![
                prewake_label(row.value.0, row.value.1),
                format!("{:.0}", r.energy_kwh()),
                format!("{:.4}%", r.unserved_ratio * 100.0),
                format!("{:.1}", r.power_actions_per_hour),
                format!("{:.1}", r.avg_hosts_on),
            ]
        })
        .collect();
    format!(
        "Proactive pre-wake ablation, 48 h (profile learns day 1), {hosts} hosts / {vms} VMs:
{}",
        table(
            &["variant", "energy kWh", "unserved", "pwr-act/h", "hosts-on"],
            &rows
        )
    )
}

/// T21: PSU conversion-loss sensitivity (wall-power accounting).
pub fn exp_t21() -> String {
    exp_t21_sized(32, 192, SEED)
}

/// Size-parameterized variant.
pub fn exp_t21_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let results = SweepBuilder::psu(hosts, vms, seed)
        .run()
        .expect("psu scenarios run");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|row| {
            let (name, base, pm) = (row.value, &row.reports[0], &row.reports[1]);
            vec![
                name.to_string(),
                format!("{:.0}", base.energy_kwh()),
                format!("{:.0}", pm.energy_kwh()),
                format!("{:.1}%", pm.savings_vs(base) * 100.0),
            ]
        })
        .collect();
    format!(
        "PSU conversion-loss sensitivity (same DC hardware), {hosts} hosts / {vms} VMs:
{}",
        table(&["supply", "base kWh", "PM-S3 kWh", "savings"], &rows)
    )
}

/// F23: a full week — weekday/weekend pattern, with and without the
/// learned-profile pre-wake.
pub fn exp_f23() -> String {
    exp_f23_sized(32, 192, SEED)
}

/// Size-parameterized variant.
pub fn exp_f23_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let horizon = SimDuration::from_hours(7 * 24);
    let scenario = Scenario::with_workload(
        format!("weekly-{hosts}x{vms}"),
        hosts,
        vms,
        presets::enterprise_weekly(),
        horizon,
        seed,
    );
    let mut rows = Vec::new();
    let base = SimulationBuilder::new(
        Experiment::new(scenario.clone())
            .policy(PowerPolicy::always_on())
            .horizon(horizon),
    )
    .run_report()
    .expect("weekly scenario runs");
    let mut push = |label: &str, r: &dcsim::SimReport| {
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", r.energy_kwh()),
            format!("{:+.1}%", r.savings_vs(&base) * 100.0),
            format!("{:.4}%", r.unserved_ratio * 100.0),
            format!("{:.1}", r.avg_hosts_on),
        ]);
    };
    push("AlwaysOn", &base);
    for (label, prewake) in [("PM-Suspend(S3)", false), ("PM-S3+prewake", true)] {
        let mut config = ManagerConfig::for_fleet(PowerPolicy::reactive_suspend(), hosts, vms);
        if prewake {
            config = config.with_prewake(SimDuration::from_mins(15));
        }
        let r = SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .manager_config(config)
                .horizon(horizon),
        )
        .run_report()
        .expect("weekly scenario runs");
        push(label, &r);
    }
    let oracle = SimulationBuilder::new(
        Experiment::new(scenario)
            .policy(PowerPolicy::oracle())
            .horizon(horizon),
    )
    .run_report()
    .expect("weekly scenario runs");
    push("Oracle", &oracle);
    format!(
        "One week (weekday/weekend pattern), {hosts} hosts / {vms} VMs:
{}",
        table(
            &["policy", "energy kWh", "savings", "unserved", "hosts-on"],
            &rows
        )
    )
}

/// T24: consolidation packing ablation — best-fit vs least-loaded
/// destinations for evacuations.
pub fn exp_t24() -> String {
    exp_t24_sized(32, 192, SEED)
}

/// Size-parameterized variant.
pub fn exp_t24_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let scenario = Scenario::datacenter_spiky(hosts, vms, seed);
    let mut rows = Vec::new();
    for (label, packing) in [
        ("best-fit", PackingPolicy::BestFit),
        ("least-loaded", PackingPolicy::LeastLoaded),
    ] {
        let config = ManagerConfig::for_fleet(PowerPolicy::reactive_suspend(), hosts, vms)
            .with_packing(packing);
        let r = SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .manager_config(config)
                .control_interval(SimDuration::from_mins(1)),
        )
        .run_report()
        .expect("packing scenario runs");
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", r.energy_kwh()),
            format!("{:.4}%", r.unserved_ratio * 100.0),
            format!("{:.1}", r.avg_hosts_on),
            format!("{:.2}x", r.avg_latency_factor),
            format!("{:.1}", r.migrations_per_hour),
        ]);
    }
    format!(
        "Consolidation packing ablation, PM-Suspend(S3), {hosts} hosts / {vms} VMs:
{}",
        table(
            &[
                "packing",
                "energy kWh",
                "unserved",
                "hosts-on",
                "lat",
                "migr/h"
            ],
            &rows
        )
    )
}

/// T26: savings-vs-SLO frontier — the joint sleep+speed ladder policy
/// against each single-knob baseline (DVFS-only, suspend-only).
pub fn exp_t26() -> String {
    exp_t26_sized(HEADLINE_HOSTS, HEADLINE_VMS, SEED)
}

/// Size-parameterized variant. The SLO points are chosen to step through
/// the ladder: 2 s admits only the C6 rung, 12 s adds S3, 600 s opens
/// the full C6→S3→S5 ladder.
pub fn exp_t26_sized(hosts: usize, vms: usize, seed: u64) -> String {
    let slos: Vec<SimDuration> = [2u64, 12, 600]
        .iter()
        .map(|&s| SimDuration::from_secs(s))
        .collect();
    let frontier = SweepBuilder::slo_frontier(hosts, vms, &slos, seed)
        .run()
        .expect("frontier scenario runs");
    // Legs per row: always-on baseline, DVFS-only, suspend-only, joint
    // ladder. The first three ignore the SLO, so render them once.
    let base = frontier[0].reports[0].clone();
    let mut rows = Vec::new();
    let mut push = |label: String, r: &dcsim::SimReport| {
        rows.push(vec![
            label,
            format!("{:.0}", r.energy_kwh()),
            format!("{:+.1}%", r.savings_vs(&base) * 100.0),
            format!("{:.4}%", r.unserved_ratio * 100.0),
            format!("{:.1}", r.avg_hosts_on),
        ]);
    };
    push("AlwaysOn".to_string(), &base);
    if let Some(p) = frontier.first() {
        push("DVFS-only".to_string(), &p.reports[1]);
        push("Suspend-only(S3)".to_string(), &p.reports[2]);
    }
    for p in &frontier {
        push(format!("Joint-Ladder@{}", p.value), &p.reports[3]);
    }
    format!(
        "Savings-vs-SLO frontier, {hosts} hosts / {vms} VMs:
{}",
        table(
            &["policy", "energy kWh", "savings", "unserved", "hosts-on"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f6_table_has_ideal_column() {
        let t = exp_f6_sized(4, 16, 3);
        assert!(t.contains("ideal"));
        assert!(t.contains("90%"));
    }

    #[test]
    fn f7_latency_monotonicity_endpoints() {
        let t = exp_f7_sized(8, 32, 3);
        assert!(t.contains("12s"));
        assert!(t.contains("10m")); // 600 s renders as 10m
    }

    #[test]
    fn f8_runs_two_sizes() {
        let t = exp_f8_sized(&[4, 8], 3);
        assert!(t.contains("base kWh"));
        let rows: Vec<&str> = t.lines().skip(3).collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn t24_packing_changes_fleet_tightness() {
        let t = exp_t24_sized(6, 36, 3);
        assert!(t.contains("best-fit"));
        assert!(t.contains("least-loaded"));
    }

    #[test]
    fn f23_week_renders() {
        let t = exp_f23_sized(4, 24, 3);
        assert!(t.contains("One week"));
        assert!(t.contains("prewake"));
    }

    #[test]
    fn f16_f17_render() {
        let f16 = exp_f16_sized(4, 16, 3);
        assert!(f16.contains("sub-linear"));
        let f17 = exp_f17_sized(6, 24, 3);
        assert!(f17.contains("15m"));
        assert!(f17.contains("S5 unserved"));
    }

    #[test]
    fn f15_heterogeneous_orders_policies() {
        let t = exp_f15_sized(4, 4, 36, 3);
        assert!(t.contains("racks"));
        assert!(t.contains("Oracle"));
    }

    #[test]
    fn f14_churn_preserves_savings() {
        let t = exp_f14_sized(6, 36, 3);
        assert!(t.contains("churn"));
        let rows: Vec<&str> = t.lines().skip(3).collect();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn t13_failures_grow_with_probability() {
        let t = exp_t13_sized(8, 32, 3);
        assert!(t.contains("fail prob"));
        // The 0% row injects no failures.
        let zero_row = t.lines().nth(3).expect("first data row");
        assert!(zero_row.contains(" 0 "), "{zero_row}");
    }

    #[test]
    fn t13b_zero_intensity_row_matches_failure_free_managed_run() {
        let t = exp_t13b_sized(8, 32, 3);
        assert!(t.contains("intensity"));
        // The 0% row injects nothing, so all three fault columns are 0.
        let zero_row = t.lines().nth(3).expect("first data row");
        let cells: Vec<&str> = zero_row.split_whitespace().collect();
        assert_eq!(&cells[cells.len() - 4..cells.len() - 1], &["0", "0", "0"]);
    }

    #[test]
    fn t12_covers_both_modes() {
        let t = exp_t12_sized(4, 16, 3);
        assert!(t.contains("S3"));
        assert!(t.contains("S5"));
        assert!(t.contains("window-max(6)"));
    }
}
