//! Experiment T27: distributed control-plane degradation frontier.
//!
//! The tentpole question: what do N concurrent schedulers over the
//! conflict-checked placement store cost, as their views go stale?
//! The grid crosses scheduler count × view staleness at datacenter
//! scale and reports savings, unserved demand, and the measured commit
//! conflict rate for every cell. The `schedulers = 1, staleness = 0`
//! cell is asserted bit-identical to the direct (global-planner) path —
//! the distributed machinery must be a strict generalization, not a
//! different simulator.

use agile_core::PowerPolicy;
use dcsim::report::table;
use dcsim::{Experiment, Scenario, SimReport, SimulationBuilder};

use crate::SEED;

/// Scheduler counts of the T27 grid.
const SCHEDULER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// View-staleness settings (control rounds behind cluster ground truth).
const STALENESS_ROUNDS: [usize; 3] = [0, 1, 2];

/// Experiment T27 at the scale-out size (4096 hosts / 24576 VMs).
pub fn exp_t27() -> String {
    exp_t27_sized(4096, SEED)
}

/// Size-parameterized variant. All grid cells plus the two reference
/// runs (always-on baseline, direct global planner) go through one
/// worker-pool batch.
pub fn exp_t27_sized(hosts: usize, seed: u64) -> String {
    let vms = hosts * 6;
    let scenario = Scenario::datacenter(hosts, vms, seed);
    let grid: Vec<(usize, usize)> = SCHEDULER_COUNTS
        .iter()
        .flat_map(|&n| STALENESS_ROUNDS.iter().map(move |&s| (n, s)))
        .collect();
    // Jobs 0 and 1 are the references (always-on, direct PM); the rest
    // is the grid in row order.
    let reports: Vec<SimReport> = simcore::pool::run_indexed(2 + grid.len(), |i| {
        let policy = if i == 0 {
            PowerPolicy::always_on()
        } else {
            PowerPolicy::reactive_suspend()
        };
        let mut builder = SimulationBuilder::new(Experiment::new(scenario.clone()).policy(policy));
        if i >= 2 {
            let (schedulers, staleness) = grid[i - 2];
            builder = builder.schedulers(schedulers).view_staleness(staleness);
        }
        builder.run_report().expect("T27 run failed")
    });
    let base = &reports[0];
    let direct = &reports[1];
    // Acceptance gate: one scheduler over a fresh view IS the global
    // planner, to the last bit of the report.
    assert_eq!(
        reports[2], *direct,
        "schedulers=1, staleness=0 must reproduce the global planner byte-identically"
    );

    let rows: Vec<Vec<String>> = grid
        .iter()
        .zip(&reports[2..])
        .map(|(&(schedulers, staleness), r)| {
            let c = |name: &str| r.metrics.counter(name);
            let planned = c("work.commit.planned");
            let dropped = c("work.commit.dropped_unowned");
            let rejected = c("work.commit.rejected");
            // Conflict rate over *owned* commit attempts: actions a
            // scheduler planned for its own partition that the store
            // then refused. Dropped actions never reached arbitration.
            let owned = planned - dropped;
            let conflict = if owned > 0 {
                rejected as f64 / owned as f64
            } else {
                0.0
            };
            vec![
                format!("{schedulers}"),
                format!("{staleness}"),
                format!("{:.0}", r.energy_kwh()),
                format!("{:.1}%", r.savings_vs(base) * 100.0),
                format!("{:.3}%", r.unserved_ratio * 100.0),
                format!("{}", c("work.commit.accepted")),
                format!("{rejected}"),
                format!("{:.2}%", conflict * 100.0),
            ]
        })
        .collect();
    format!(
        "Distributed control plane at {hosts} hosts / {vms} VMs (24 h diurnal, seed {seed}),\n\
         commit latency 0 rounds; schedulers=1 staleness=0 verified bit-identical to the\n\
         global planner (always-on {:.0} kWh, direct PM {:.0} kWh, {:.1}% savings):\n{}",
        base.energy_kwh(),
        direct.energy_kwh(),
        direct.savings_vs(base) * 100.0,
        table(
            &[
                "schedulers",
                "staleness",
                "PM kWh",
                "savings",
                "unserved",
                "accepted",
                "conflicts",
                "conflict rate"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t27_reports_every_grid_cell_and_the_identity_gate() {
        let t = exp_t27_sized(8, 3);
        assert!(t.contains("bit-identical"));
        assert!(t.contains("conflict rate"));
        let rows: Vec<&str> = t
            .lines()
            .skip_while(|l| !l.starts_with("-"))
            .skip(1)
            .collect();
        assert_eq!(rows.len(), SCHEDULER_COUNTS.len() * STALENESS_ROUNDS.len());
    }
}
