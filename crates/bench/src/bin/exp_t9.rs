//! T9: management overhead vs base DRM.
fn main() {
    bench::print_experiment("T9", "Management overhead", &bench::exp_t9());
}
