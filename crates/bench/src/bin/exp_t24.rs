//! T24: consolidation packing ablation.
fn main() {
    bench::print_experiment("T24", "Consolidation packing ablation", &bench::exp_t24());
}
