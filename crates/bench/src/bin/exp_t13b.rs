//! T13b: failure-rate overhead (full fault surface, recovery active).
fn main() {
    bench::print_experiment("T13b", "Failure-rate overhead", &bench::exp_t13b());
}
