//! T27: distributed control-plane degradation frontier.
fn main() {
    bench::print_experiment(
        "T27",
        "Control-plane degradation frontier",
        &bench::exp_t27(),
    );
}
