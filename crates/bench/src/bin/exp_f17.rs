//! F17: management-interval sweep (the agility axis).
fn main() {
    bench::print_experiment("F17", "Management-interval sweep", &bench::exp_f17());
}
