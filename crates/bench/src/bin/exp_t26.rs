//! T26: savings-vs-SLO frontier for the joint sleep+speed ladder.
fn main() {
    bench::print_experiment("T26", "Savings-vs-SLO frontier", &bench::exp_t26());
}
