//! Runs the full evaluation: every table and figure, in experiment order.
//!
//! Independent experiments run on a bounded worker pool (one worker per
//! available core); output is printed in order once everything finishes,
//! followed by a per-experiment runtime table and the simulator's own
//! phase profile.

use std::time::{Duration, Instant};

type Job = (
    &'static str,
    &'static str,
    Box<dyn Fn() -> String + Send + Sync>,
);

fn main() {
    let jobs: Vec<Job> = vec![
        (
            "T1",
            "Power-state characterization",
            Box::new(bench::exp_t1),
        ),
        (
            "F2",
            "Park/wake power trace (S3 vs S5)",
            Box::new(bench::exp_f2),
        ),
        (
            "F3",
            "Break-even idle gap (S3 vs S5)",
            Box::new(bench::exp_f3),
        ),
        (
            "F4",
            "Datacenter power over 24 h",
            Box::new(|| bench::exp_f4_t5().0),
        ),
        (
            "T5",
            "Policy energy/performance summary",
            Box::new(|| bench::exp_f4_t5().1),
        ),
        ("F6", "Energy proportionality", Box::new(bench::exp_f6)),
        (
            "F7",
            "Responsiveness vs wake latency",
            Box::new(bench::exp_f7),
        ),
        ("F8", "Scale-out", Box::new(bench::exp_f8)),
        ("T9", "Management overhead", Box::new(bench::exp_t9)),
        ("F10", "Headroom sweep", Box::new(bench::exp_f10)),
        ("F11", "Hysteresis sweep", Box::new(bench::exp_f11)),
        ("T12", "Predictor ablation", Box::new(bench::exp_t12)),
        ("T13", "Reliability sensitivity", Box::new(bench::exp_t13)),
        ("T13b", "Failure-rate overhead", Box::new(bench::exp_t13b)),
        ("F14", "Lifecycle churn", Box::new(bench::exp_f14)),
        ("F15", "Heterogeneous fleet", Box::new(bench::exp_f15)),
        (
            "F16",
            "Power-curve shape ablation",
            Box::new(bench::exp_f16),
        ),
        ("F17", "Management-interval sweep", Box::new(bench::exp_f17)),
        (
            "T18",
            "Proactive pre-wake ablation",
            Box::new(bench::exp_t18),
        ),
        (
            "T19",
            "Seed-replicated policy summary",
            Box::new(bench::exp_t19),
        ),
        ("T20", "Per-class SLA accounting", Box::new(bench::exp_t20)),
        (
            "T21",
            "PSU conversion-loss sensitivity",
            Box::new(bench::exp_t21),
        ),
        (
            "T22",
            "DVFS-only vs consolidation",
            Box::new(bench::exp_t22),
        ),
        (
            "F23",
            "One-week weekday/weekend run",
            Box::new(bench::exp_f23),
        ),
        (
            "T24",
            "Consolidation packing ablation",
            Box::new(bench::exp_t24),
        ),
        (
            "T25",
            "Simulator phase profile",
            Box::new(bench::exp_profile),
        ),
        ("T26", "Savings-vs-SLO frontier", Box::new(bench::exp_t26)),
        (
            "T27",
            "Control-plane degradation frontier",
            Box::new(bench::exp_t27),
        ),
    ];

    // Shared bounded pool (see `simcore::pool`): never more workers than
    // cores, outputs in experiment order regardless of completion order.
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(jobs.len());
    let wall = Instant::now();
    let results = simcore::pool::run_indexed(jobs.len(), |i| {
        let t0 = Instant::now();
        let body = jobs[i].2();
        (body, t0.elapsed())
    });
    let wall = wall.elapsed();

    let mut runtimes = Vec::with_capacity(results.len());
    for ((id, title, _), (body, elapsed)) in jobs.iter().zip(results) {
        bench::print_experiment(id, title, &body);
        runtimes.push((*id, *title, elapsed));
    }

    println!(
        "==== Runtime: {} experiments on {workers} workers ====",
        runtimes.len()
    );
    let busy: Duration = runtimes.iter().map(|(_, _, d)| *d).sum();
    for (id, title, d) in &runtimes {
        println!("{id:<4} {title:<36} {:>8.2} s", d.as_secs_f64());
    }
    println!(
        "total {:.2} s wall ({:.2} s of single-threaded work)",
        wall.as_secs_f64(),
        busy.as_secs_f64()
    );
}
