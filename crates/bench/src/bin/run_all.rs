//! Runs the full evaluation: every table and figure, in experiment order.
//!
//! Independent experiments run on worker threads; output is printed in
//! order once everything finishes.
fn main() {
    let jobs: Vec<(&str, &str, Box<dyn Fn() -> String + Send>)> = vec![
        ("T1", "Power-state characterization", Box::new(bench::exp_t1)),
        ("F2", "Park/wake power trace (S3 vs S5)", Box::new(bench::exp_f2)),
        ("F3", "Break-even idle gap (S3 vs S5)", Box::new(bench::exp_f3)),
        ("F4", "Datacenter power over 24 h", Box::new(|| bench::exp_f4_t5().0)),
        ("T5", "Policy energy/performance summary", Box::new(|| bench::exp_f4_t5().1)),
        ("F6", "Energy proportionality", Box::new(bench::exp_f6)),
        ("F7", "Responsiveness vs wake latency", Box::new(bench::exp_f7)),
        ("F8", "Scale-out", Box::new(bench::exp_f8)),
        ("T9", "Management overhead", Box::new(bench::exp_t9)),
        ("F10", "Headroom sweep", Box::new(bench::exp_f10)),
        ("F11", "Hysteresis sweep", Box::new(bench::exp_f11)),
        ("T12", "Predictor ablation", Box::new(bench::exp_t12)),
        ("T13", "Reliability sensitivity", Box::new(bench::exp_t13)),
        ("F14", "Lifecycle churn", Box::new(bench::exp_f14)),
        ("F15", "Heterogeneous fleet", Box::new(bench::exp_f15)),
        ("F16", "Power-curve shape ablation", Box::new(bench::exp_f16)),
        ("F17", "Management-interval sweep", Box::new(bench::exp_f17)),
        ("T18", "Proactive pre-wake ablation", Box::new(bench::exp_t18)),
        ("T19", "Seed-replicated policy summary", Box::new(bench::exp_t19)),
        ("T20", "Per-class SLA accounting", Box::new(bench::exp_t20)),
        ("T21", "PSU conversion-loss sensitivity", Box::new(bench::exp_t21)),
        ("T22", "DVFS-only vs consolidation", Box::new(bench::exp_t22)),
        ("F23", "One-week weekday/weekend run", Box::new(bench::exp_f23)),
        ("T24", "Consolidation packing ablation", Box::new(bench::exp_t24)),
    ];
    let outputs: Vec<(&str, &str, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(id, title, f)| (id, title, s.spawn(move || f())))
            .collect();
        handles
            .into_iter()
            .map(|(id, title, h)| (id, title, h.join().expect("experiment thread panicked")))
            .collect()
    });
    for (id, title, body) in outputs {
        bench::print_experiment(id, title, &body);
    }
}
