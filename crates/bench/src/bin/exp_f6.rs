//! F6: energy-proportionality curves.
fn main() {
    bench::print_experiment("F6", "Energy proportionality", &bench::exp_f6());
}
