//! F23: one-week weekday/weekend run.
fn main() {
    bench::print_experiment("F23", "One-week weekday/weekend run", &bench::exp_f23());
}
