//! F4: datacenter power over a diurnal day, four policies.
fn main() {
    let (f4, _) = bench::exp_f4_t5();
    bench::print_experiment("F4", "Datacenter power over 24 h", &f4);
}
