//! T20: per-class SLA accounting (interactive vs batch).
fn main() {
    bench::print_experiment("T20", "Per-class SLA accounting", &bench::exp_t20());
}
