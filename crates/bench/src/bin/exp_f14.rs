//! F14: lifecycle churn (VM provisioning/retirement).
fn main() {
    bench::print_experiment("F14", "Lifecycle churn", &bench::exp_f14());
}
