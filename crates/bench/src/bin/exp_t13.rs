//! T13: reliability sensitivity (resume failure injection).
fn main() {
    bench::print_experiment("T13", "Reliability sensitivity", &bench::exp_t13());
}
