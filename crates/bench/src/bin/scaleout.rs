//! Scale-out hot-path benchmark (the F8 companion): wall-clock ticks/sec,
//! profiler attribution, and peak RSS at increasing cluster sizes.
//!
//! Writes `BENCH_scaleout.json`. With `--check-baseline FILE` the run
//! fails (exit 1) if ticks/sec at any matching size regresses more than
//! 30 % below the checked-in baseline — the CI perf smoke gate.

use std::time::Instant;

use agile_core::{PlanMode, PowerPolicy};
use cluster::AccountingMode;
use dcsim::{Experiment, Scenario, SimulationBuilder};
use obs::{Json, SpanSummary};

/// Pre-optimization reference numbers, measured on this benchmark before
/// the incremental-accounting/zero-alloc work landed (same scenario
/// family, release build, single worker): `(hosts, ticks_per_sec,
/// peak_rss_kb)`.
const BEFORE: &[(usize, f64, u64)] = &[
    (64, 17_979.0, 4_824),
    (256, 2_575.0, 10_752),
    (1024, 183.5, 33_940),
    (4096, 12.7, 126_300),
];

/// Largest size at which the run is repeated in [`AccountingMode::Scan`]
/// to cross-check the incremental report (the scan reference costs
/// O(hosts × VMs) per tick, so very large sizes skip it — the
/// `determinism` integration test covers the semantics).
const VERIFY_SCAN_MAX_HOSTS: usize = 1024;

/// One measured run at a given cluster size.
struct Row {
    hosts: usize,
    vms: usize,
    ticks: u64,
    wall_secs: f64,
    ticks_per_sec: f64,
    peak_rss_kb: u64,
    /// Planning mode of the measured run.
    plan_mode: PlanMode,
    /// Ticks/sec of the scan-reference rerun (scan accounting AND scan
    /// planning), when it was performed — its report, with the
    /// mode-variant search-cost counters dropped, must match
    /// bit-for-bit or the bench aborts.
    scan_ticks_per_sec: Option<f64>,
    phases: Vec<(String, f64)>,
    /// Full hierarchical span summary of the best run.
    spans: Option<SpanSummary>,
    /// Deterministic `work.*` op-counters from the metrics snapshot —
    /// the wall-clock-free superlinearity evidence.
    work: Vec<(String, u64)>,
}

fn main() {
    let mut sizes: Vec<usize> = vec![64, 256, 1024];
    let mut out_path = String::from("BENCH_scaleout.json");
    let mut baseline: Option<String> = None;
    let mut repeat = 3usize;
    let mut threads = 1usize;
    let mut plan_mode = PlanMode::Indexed;
    let mut ladder = false;
    let mut wake_slo_secs = 12u64;
    let mut schedulers = 1usize;
    let mut staleness = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sizes" => {
                let list = args.next().expect("--sizes needs a comma-separated list");
                sizes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad size"))
                    .collect();
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check-baseline" => {
                baseline = Some(args.next().expect("--check-baseline needs a path"))
            }
            "--repeat" => {
                repeat = args
                    .next()
                    .expect("--repeat needs a count")
                    .parse()
                    .expect("bad repeat count");
                assert!(repeat >= 1, "--repeat must be at least 1");
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("bad thread count");
                assert!(threads >= 1, "--threads must be at least 1");
            }
            "--plan-mode" => {
                plan_mode = match args
                    .next()
                    .expect("--plan-mode needs scan|indexed")
                    .as_str()
                {
                    "scan" => PlanMode::Scan,
                    "indexed" => PlanMode::Indexed,
                    other => panic!("--plan-mode must be scan or indexed, got {other:?}"),
                };
            }
            "--ladder" => ladder = true,
            "--schedulers" => {
                schedulers = args
                    .next()
                    .expect("--schedulers needs a count")
                    .parse()
                    .expect("bad scheduler count");
                assert!(schedulers >= 1, "--schedulers must be at least 1");
            }
            "--staleness" => {
                staleness = args
                    .next()
                    .expect("--staleness needs a round count")
                    .parse()
                    .expect("bad staleness");
            }
            "--wake-slo" => {
                wake_slo_secs = args
                    .next()
                    .expect("--wake-slo needs seconds")
                    .parse()
                    .expect("bad wake SLO");
                assert!(wake_slo_secs >= 1, "--wake-slo must be at least 1 second");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    // `--ladder` benches the joint sleep+speed path instead: the C6→S3→S5
    // scenario under the joint-ladder policy at `--wake-slo` seconds. The
    // scan reference rerun keeps the same policy, so the bit-identity
    // cross-check covers the rung-selection path too.
    let policy = if ladder {
        PowerPolicy::joint_ladder(simcore::SimDuration::from_secs(wake_slo_secs))
    } else {
        PowerPolicy::reactive_suspend()
    };

    let mut rows = Vec::new();
    for &hosts in &sizes {
        let row = measure(
            hosts,
            hosts <= VERIFY_SCAN_MAX_HOSTS,
            repeat,
            threads,
            plan_mode,
            ladder,
            policy,
            schedulers,
            staleness,
        );
        let before = BEFORE.iter().find(|(h, _, _)| *h == hosts);
        println!(
            "{:>5} hosts {:>6} vms: {:>8.0} ticks/s ({:.2} s wall, peak RSS {} MB){}{}",
            row.hosts,
            row.vms,
            row.ticks_per_sec,
            row.wall_secs,
            row.peak_rss_kb / 1024,
            match row.scan_ticks_per_sec {
                Some(tps) => format!(", scan ref {tps:.0} ticks/s, reports identical"),
                None => String::from(", scan ref skipped (size cap)"),
            },
            match before {
                Some((_, tps, _)) => format!(", {:.1}x vs pre-opt", row.ticks_per_sec / tps),
                None => String::new(),
            },
        );
        rows.push(row);
    }

    let json = render_json(&rows, threads, ladder, wake_slo_secs, schedulers, staleness);
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path).expect("read baseline");
        check_baseline(&rows, &text);
        println!("baseline check passed ({path})");
    }
}

#[allow(clippy::too_many_arguments)]
fn measure(
    hosts: usize,
    verify_scan: bool,
    repeat: usize,
    threads: usize,
    plan_mode: PlanMode,
    ladder: bool,
    policy: PowerPolicy,
    schedulers: usize,
    staleness: usize,
) -> Row {
    let vms = hosts * 6;
    let scenario = if ladder {
        Scenario::datacenter_ladder(hosts, vms, bench::SEED)
    } else {
        Scenario::datacenter(hosts, vms, bench::SEED)
    };
    let step = scenario.demand_step();
    // `--schedulers`/`--staleness` route the run (and its scan
    // reference) through the distributed control plane; at the defaults
    // (1, 0) the direct global-planner path is benchmarked unchanged.
    let plane = |exp: Experiment| {
        if schedulers > 1 || staleness > 0 {
            exp.schedulers(schedulers).view_staleness(staleness)
        } else {
            exp
        }
    };
    // Best-of-N: the minimum wall time is the least scheduler-noise-
    // polluted sample; every repeat is the same deterministic simulation,
    // so only timing varies.
    let mut best: Option<(f64, _, _, _)> = None;
    for _ in 0..repeat {
        let exp = plane(
            Experiment::new(scenario.clone())
                .policy(policy)
                .plan_mode(plan_mode),
        );
        let t0 = Instant::now();
        let out = SimulationBuilder::new(exp)
            .threads(threads)
            .profiling(true)
            .build()
            .and_then(|sim| sim.run())
            .expect("scale-out run failed");
        let wall = t0.elapsed().as_secs_f64();
        let profile = out.profile.expect("profiled run returns a profile");
        if best.as_ref().is_none_or(|(w, _, _, _)| wall < *w) {
            best = Some((wall, out.report, profile, out.spans));
        }
    }
    let (wall_secs, report, profile, spans) = best.expect("at least one repeat");
    let ticks = report.horizon.as_millis() / step.as_millis() + 1;

    // Rerun against the O(n)-scan references (scan accounting and scan
    // planning) and require a bit-identical report — both optimizations
    // must be unobservable. The counters that measure *how* each plan
    // mode searched are mode-variant by design and are dropped from the
    // comparison when the measured run planned in indexed mode.
    let scan_ticks_per_sec = verify_scan.then(|| {
        let exp = plane(
            Experiment::new(scenario)
                .policy(policy)
                .accounting(AccountingMode::Scan)
                .plan_mode(PlanMode::Scan),
        );
        let t0 = Instant::now();
        let scan_report = SimulationBuilder::new(exp)
            .threads(threads)
            .run_report()
            .expect("scan reference run failed");
        let scan_wall = t0.elapsed().as_secs_f64();
        let strip = |r: &dcsim::SimReport| {
            let mut r = r.clone();
            if plan_mode == PlanMode::Indexed {
                r.metrics.entries.retain(|e| {
                    !matches!(
                        e.name.as_str(),
                        "work.plan.candidates_scanned"
                            | "work.plan.hosts_rescored"
                            | "work.plan.fold_elements"
                    ) && !e.name.starts_with("work.index.")
                });
            }
            r
        };
        assert_eq!(
            strip(&report),
            strip(&scan_report),
            "incremental/indexed vs scan reports diverged at {hosts} hosts"
        );
        ticks as f64 / scan_wall
    });

    Row {
        hosts,
        vms,
        ticks,
        wall_secs,
        ticks_per_sec: ticks as f64 / wall_secs,
        peak_rss_kb: peak_rss_kb(),
        plan_mode,
        scan_ticks_per_sec,
        phases: profile
            .phases
            .iter()
            .map(|p| (p.name.clone(), p.total_secs))
            .collect(),
        spans,
        work: report
            .metrics
            .entries
            .iter()
            .filter_map(|e| match &e.value {
                obs::MetricValue::Counter(v) if e.name.starts_with("work.") => {
                    Some((e.name.clone(), *v))
                }
                _ => None,
            })
            .collect(),
    }
}

/// Peak resident set size of this process in kB (Linux `VmHWM`; 0 where
/// `/proc` is unavailable).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

fn render_json(
    rows: &[Row],
    threads: usize,
    ladder: bool,
    wake_slo_secs: u64,
    schedulers: usize,
    staleness: usize,
) -> String {
    let mut out = format!(
        "{{\n  \"threads\": {threads},\n  \"ladder\": {ladder},\n  \
         \"wake_slo_secs\": {wake_slo_secs},\n  \"schedulers\": {schedulers},\n  \
         \"staleness\": {staleness},\n  \"before\": [\n"
    );
    for (i, (hosts, tps, rss)) in BEFORE.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"hosts\": {hosts}, \"ticks_per_sec\": {tps:.1}, \"peak_rss_kb\": {rss}}}{}\n",
            if i + 1 < BEFORE.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"hosts\": {}, \"vms\": {}, \"ticks\": {}, \"wall_secs\": {:.4}, \
             \"ticks_per_sec\": {:.1}, \"peak_rss_kb\": {}, \"plan_mode\": \"{}\", ",
            r.hosts,
            r.vms,
            r.ticks,
            r.wall_secs,
            r.ticks_per_sec,
            r.peak_rss_kb,
            r.plan_mode.label()
        ));
        if let Some(tps) = r.scan_ticks_per_sec {
            out.push_str(&format!(
                "\"scan_ticks_per_sec\": {tps:.1}, \"scan_report_identical\": true, "
            ));
        }
        if let Some((_, before_tps, _)) = BEFORE.iter().find(|(h, _, _)| *h == r.hosts) {
            out.push_str(&format!(
                "\"speedup_vs_before\": {:.2}, ",
                r.ticks_per_sec / before_tps
            ));
        }
        out.push_str("\"phases\": {");
        for (j, (name, secs)) in r.phases.iter().enumerate() {
            out.push_str(&format!("\"{name}\": {secs:.4}"));
            if j + 1 < r.phases.len() {
                out.push_str(", ");
            }
        }
        out.push_str("}, \"work\": {");
        for (j, (name, value)) in r.work.iter().enumerate() {
            out.push_str(&format!("\"{name}\": {value}"));
            if j + 1 < r.work.len() {
                out.push_str(", ");
            }
        }
        out.push_str("}, \"spans\": ");
        match &r.spans {
            Some(s) => out.push_str(&s.to_json().to_string_compact()),
            None => out.push_str("null"),
        }
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Fails the process if any measured size is >30 % slower than the
/// baseline. The baseline file holds a `baseline` array of `{"hosts": N,
/// "ticks_per_sec": X, "phases": {...}}` entries, where `phases` maps
/// each phase to its wall seconds at baseline time. On a regression the
/// phase whose *share* of attributed time grew the most over the
/// baseline's shares is named — the gate says *where* the time went,
/// not just that it went (shares, not raw seconds, so a uniformly
/// slower CI machine does not finger an innocent phase).
fn check_baseline(rows: &[Row], baseline: &str) {
    let parsed = Json::parse(baseline).expect("baseline file is valid JSON");
    let entries = parsed
        .get("baseline")
        .and_then(Json::as_array)
        .expect("baseline file has a `baseline` array");
    let mut failed = false;
    for entry in entries {
        let hosts = entry.get("hosts").and_then(Json::as_f64).expect("hosts") as usize;
        let base_tps = entry
            .get("ticks_per_sec")
            .and_then(Json::as_f64)
            .expect("ticks_per_sec");
        let Some(row) = rows.iter().find(|r| r.hosts == hosts) else {
            continue;
        };
        let floor = 0.7 * base_tps;
        if row.ticks_per_sec < floor {
            eprintln!(
                "PERF REGRESSION at {hosts} hosts: {:.0} ticks/s < 70% of baseline {:.0}",
                row.ticks_per_sec, base_tps
            );
            if let Some(mover) = biggest_mover(row, entry) {
                eprintln!("  phase that moved: {mover}");
            }
            failed = true;
        } else {
            println!(
                "{hosts:>5} hosts: {:.0} ticks/s vs baseline {:.0} (floor {:.0}) ok",
                row.ticks_per_sec, base_tps, floor
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Names the phase whose share of attributed wall time grew the most
/// over the baseline's shares (`None` when the baseline entry records
/// no phases).
fn biggest_mover(row: &Row, entry: &Json) -> Option<String> {
    let base = entry.get("phases")?.as_object()?;
    let total: f64 = row.phases.iter().map(|(_, s)| s).sum();
    let base_total: f64 = base.iter().filter_map(|(_, v)| v.as_f64()).sum();
    if total <= 0.0 || base_total <= 0.0 {
        return None;
    }
    let mut best: Option<(String, f64, f64)> = None;
    for (name, secs) in &row.phases {
        let now = secs / total;
        let was = base
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or(0.0)
            / base_total;
        let growth = now - was;
        if best
            .as_ref()
            .is_none_or(|(_, b_was, b_now)| growth > b_now - b_was)
        {
            best = Some((name.clone(), was, now));
        }
    }
    best.map(|(name, was, now)| {
        format!(
            "{name} ({:.0}% of attributed time, baseline {:.0}%)",
            now * 100.0,
            was * 100.0
        )
    })
}
