//! F8: scale-out sweep.
fn main() {
    bench::print_experiment("F8", "Scale-out", &bench::exp_f8());
}
