//! F15: heterogeneous fleet (racks + blades).
fn main() {
    bench::print_experiment("F15", "Heterogeneous fleet", &bench::exp_f15());
}
