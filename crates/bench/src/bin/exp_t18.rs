//! T18: proactive pre-wake ablation.
fn main() {
    bench::print_experiment("T18", "Proactive pre-wake ablation", &bench::exp_t18());
}
