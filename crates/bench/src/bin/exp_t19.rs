//! T19: seed-replicated policy summary (error bars on T5).
fn main() {
    bench::print_experiment("T19", "Seed-replicated policy summary", &bench::exp_t19());
}
