//! T5: policy summary table.
fn main() {
    let (_, t5) = bench::exp_f4_t5();
    bench::print_experiment("T5", "Policy energy/performance summary", &t5);
}
