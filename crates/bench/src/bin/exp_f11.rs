//! F11: hysteresis sweep.
fn main() {
    bench::print_experiment("F11", "Hysteresis sweep", &bench::exp_f11());
}
