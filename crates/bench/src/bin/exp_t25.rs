//! T25: simulator phase profile.
fn main() {
    bench::print_experiment("T25", "Simulator phase profile", &bench::exp_profile());
}
