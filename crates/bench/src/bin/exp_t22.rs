//! T22: DVFS-only vs consolidation.
fn main() {
    bench::print_experiment("T22", "DVFS-only vs consolidation", &bench::exp_t22());
}
