//! F16: power-curve shape ablation.
fn main() {
    bench::print_experiment("F16", "Power-curve shape ablation", &bench::exp_f16());
}
