//! F7: flash-crowd responsiveness vs wake latency.
fn main() {
    bench::print_experiment("F7", "Responsiveness vs wake latency", &bench::exp_f7());
}
