//! F10: consolidation headroom sweep.
fn main() {
    bench::print_experiment("F10", "Headroom sweep", &bench::exp_f10());
}
