//! F2: single-host park/wake power trace.
fn main() {
    bench::print_experiment("F2", "Park/wake power trace (S3 vs S5)", &bench::exp_f2());
}
