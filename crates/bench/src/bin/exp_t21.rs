//! T21: PSU conversion-loss sensitivity.
fn main() {
    bench::print_experiment("T21", "PSU conversion-loss sensitivity", &bench::exp_t21());
}
