//! T1: power-state characterization table.
fn main() {
    bench::print_experiment("T1", "Power-state characterization", &bench::exp_t1());
}
