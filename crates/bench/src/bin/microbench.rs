//! Hot-path micro-benchmarks for the scale-out work.
//!
//! Each case isolates one optimized mechanism; `scaleout` measures the
//! composed effect. Run with `cargo run --release -p bench --bin
//! microbench`. Numbers are best-of-N per [`bench::microbench::time`].

use agile_core::PowerPolicy;
use cluster::AccountingMode;
use dcsim::{Experiment, Scenario, SimulationBuilder};
use workload::DemandTrace;

fn main() {
    // The composed steady-state loop: a full simulated day at 64 hosts,
    // incremental accounting vs the O(hosts × VMs) scan reference.
    let scenario = Scenario::datacenter(64, 384, bench::SEED);
    bench::microbench::time("sim_day_64hosts_incremental", 1, 5, || {
        SimulationBuilder::new(
            Experiment::new(scenario.clone()).policy(PowerPolicy::reactive_suspend()),
        )
        .run_report()
        .expect("sim run failed")
    });
    bench::microbench::time("sim_day_64hosts_scan_reference", 1, 5, || {
        SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .policy(PowerPolicy::reactive_suspend())
                .accounting(AccountingMode::Scan),
        )
        .run_report()
        .expect("sim run failed")
    });

    // Trace reads through the compact (quantized u16) representation vs
    // dense f64 storage: same `at(t)` API, 4x smaller.
    let step = scenario.demand_step();
    let samples: Vec<f64> = (0..2016) // one week at 5-min steps
        .map(|k| 0.5 + 0.4 * (k as f64 / 32.0).sin())
        .collect();
    let dense = DemandTrace::from_samples(step, samples);
    let quantized = dense.clone().quantized();
    let horizon = simcore::SimTime::ZERO + step * dense.len() as u64;
    bench::microbench::time("trace_at_dense_2016", 8, 64, || {
        let mut acc = 0.0;
        let mut t = simcore::SimTime::ZERO;
        while t < horizon {
            acc += dense.at(t);
            t += step;
        }
        acc
    });
    bench::microbench::time("trace_at_quantized_2016", 8, 64, || {
        let mut acc = 0.0;
        let mut t = simcore::SimTime::ZERO;
        while t < horizon {
            acc += quantized.at(t);
            t += step;
        }
        acc
    });
}
