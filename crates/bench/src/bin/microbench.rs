//! Hot-path micro-benchmarks for the scale-out work.
//!
//! Each case isolates one optimized mechanism; `scaleout` measures the
//! composed effect. Run with `cargo run --release -p bench --bin
//! microbench`. Numbers are best-of-N per [`bench::microbench::time`].

use agile_core::PowerPolicy;
use cluster::AccountingMode;
use dcsim::{Experiment, Scenario, SimulationBuilder};
use obs::SpanTracer;
use workload::DemandTrace;

fn main() {
    // The composed steady-state loop: a full simulated day at 64 hosts,
    // incremental accounting vs the O(hosts × VMs) scan reference.
    let scenario = Scenario::datacenter(64, 384, bench::SEED);
    bench::microbench::time("sim_day_64hosts_incremental", 1, 5, || {
        SimulationBuilder::new(
            Experiment::new(scenario.clone()).policy(PowerPolicy::reactive_suspend()),
        )
        .run_report()
        .expect("sim run failed")
    });
    bench::microbench::time("sim_day_64hosts_scan_reference", 1, 5, || {
        SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .policy(PowerPolicy::reactive_suspend())
                .accounting(AccountingMode::Scan),
        )
        .run_report()
        .expect("sim run failed")
    });

    // Span-tracer overhead: the tick loop calls enter/exit
    // unconditionally, so the disabled path must stay within noise of
    // the enabled one (which does strictly more work — recording). The
    // factor is generous because CI machines are shared and noisy.
    let off = bench::microbench::time("sim_day_64hosts_tracer_off", 1, 5, || {
        SimulationBuilder::new(
            Experiment::new(scenario.clone()).policy(PowerPolicy::reactive_suspend()),
        )
        .profiling(false)
        .run_report()
        .expect("sim run failed")
    });
    let on = bench::microbench::time("sim_day_64hosts_tracer_on", 1, 5, || {
        SimulationBuilder::new(
            Experiment::new(scenario.clone()).policy(PowerPolicy::reactive_suspend()),
        )
        .profiling(true)
        .run_report()
        .expect("sim run failed")
    });
    assert!(
        off.best.as_secs_f64() <= on.best.as_secs_f64() * 1.25 + 0.05,
        "tracer-disabled run slower than tracer-enabled: {:?} vs {:?}",
        off.best,
        on.best
    );

    // The raw disabled enter/exit pair: an early-return no-op that never
    // touches the tracer's arena or event ring — node_count and
    // event_count staying at zero is the allocation-free evidence (the
    // arena and ring are the only growable state the hot path can
    // reach).
    let mut disabled = SpanTracer::new();
    let tick = disabled.name("tick");
    bench::microbench::time("span_enter_exit_disabled_100k", 8, 64, || {
        for _ in 0..100_000 {
            disabled.enter(tick);
            disabled.exit(tick);
        }
    });
    assert_eq!(
        disabled.node_count(),
        1, // just the preallocated root
        "disabled tracer touched its arena"
    );
    assert_eq!(disabled.event_count(), 0, "disabled tracer recorded events");
    let mut enabled = SpanTracer::enabled();
    let tick = enabled.name("tick");
    bench::microbench::time("span_enter_exit_enabled_100k", 8, 64, || {
        for _ in 0..100_000 {
            enabled.enter(tick);
            enabled.exit(tick);
        }
    });
    assert!(enabled.node_count() > 1, "enabled tracer must record");

    // Trace reads through the compact (quantized u16) representation vs
    // dense f64 storage: same `at(t)` API, 4x smaller.
    let step = scenario.demand_step();
    let samples: Vec<f64> = (0..2016) // one week at 5-min steps
        .map(|k| 0.5 + 0.4 * (k as f64 / 32.0).sin())
        .collect();
    let dense = DemandTrace::from_samples(step, samples);
    let quantized = dense.clone().quantized();
    let horizon = simcore::SimTime::ZERO + step * dense.len() as u64;
    bench::microbench::time("trace_at_dense_2016", 8, 64, || {
        let mut acc = 0.0;
        let mut t = simcore::SimTime::ZERO;
        while t < horizon {
            acc += dense.at(t);
            t += step;
        }
        acc
    });
    bench::microbench::time("trace_at_quantized_2016", 8, 64, || {
        let mut acc = 0.0;
        let mut t = simcore::SimTime::ZERO;
        while t < horizon {
            acc += quantized.at(t);
            t += step;
        }
        acc
    });
}
