//! T12: predictor ablation.
fn main() {
    bench::print_experiment("T12", "Predictor ablation", &bench::exp_t12());
}
