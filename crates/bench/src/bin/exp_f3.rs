//! F3: break-even idle-gap analysis.
fn main() {
    bench::print_experiment("F3", "Break-even idle gap (S3 vs S5)", &bench::exp_f3());
}
