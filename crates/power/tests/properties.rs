//! Randomized tests for the power substrate.
//!
//! Cases are drawn from [`RngStream`](simcore::RngStream) with fixed
//! seeds, so runs are reproducible without an external
//! property-testing framework.

use power::breakeven::{break_even_gap, net_energy_saved, LowPowerMode};
use power::{
    HostPowerProfile, PowerCurve, PowerState, PowerStateMachine, PsuModel, TransitionKind,
};
use simcore::{RngStream, SimDuration, SimTime};

/// Linear curves interpolate exactly and stay within [idle, peak].
#[test]
fn linear_curve_bounded() {
    let mut rng = RngStream::new(0x10);
    for _ in 0..200 {
        let idle = rng.uniform(0.0, 300.0);
        let peak = idle + rng.uniform(0.0, 300.0);
        let u = rng.uniform(-1.0, 2.0);
        let c = PowerCurve::linear(idle, peak);
        let p = c.power_at(u);
        assert!(p >= idle - 1e-9 && p <= peak + 1e-9);
        // Exact at the endpoints regardless of clamping.
        assert!((c.power_at(0.0) - idle).abs() < 1e-12);
        assert!((c.power_at(1.0) - peak).abs() < 1e-12);
    }
}

/// Energy saved at the break-even gap is ~zero, positive beyond it,
/// negative (or infeasible) short of it.
#[test]
fn breakeven_is_a_zero_crossing() {
    let mut rng = RngStream::new(0x11);
    for _ in 0..100 {
        let p = HostPowerProfile::prototype_rack();
        let mode = if rng.chance(0.5) {
            LowPowerMode::Suspend
        } else {
            LowPowerMode::Off
        };
        let delta_secs = 5 + rng.below(3595);
        let gap = break_even_gap(&p, mode).expect("prototype supports both modes");
        let longer = gap + SimDuration::from_secs(delta_secs);
        assert!(net_energy_saved(&p, mode, longer).expect("feasible beyond break-even") > 0.0);
        if gap.as_secs_f64() > delta_secs as f64 {
            let shorter = gap - SimDuration::from_secs(delta_secs);
            if let Some(saved) = net_energy_saved(&p, mode, shorter) {
                assert!(saved <= 1e-6, "positive saving {saved} before break-even");
            }
        }
    }
}

/// Energy is conserved across arbitrary legal state walks: the meter
/// total equals the per-state breakdown, and residency equals elapsed
/// time. (Overlaps with the workspace-level walk; this one varies the
/// profile too.)
#[test]
fn machine_accounting_consistent() {
    let mut gen = RngStream::new(0x12);
    for _ in 0..60 {
        let profile = if gen.chance(0.5) {
            HostPowerProfile::prototype_blade()
        } else {
            HostPowerProfile::prototype_rack()
        };
        let steps = 1 + gen.below(24) as usize;
        let seed = gen.below(u64::MAX);
        let mut rng = RngStream::new(seed);
        let mut m = PowerStateMachine::new(profile, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for _ in 0..steps {
            now += SimDuration::from_secs(rng.below(1000) + 1);
            if m.state() == PowerState::On {
                m.set_utilization(now, rng.next_f64());
            }
            let kind = match m.state() {
                PowerState::On => {
                    if rng.chance(0.5) {
                        TransitionKind::Suspend
                    } else {
                        TransitionKind::Shutdown
                    }
                }
                PowerState::Suspended => TransitionKind::Resume,
                PowerState::Off => TransitionKind::Boot,
                _ => unreachable!("walk only visits stable states"),
            };
            let done = m.begin(kind, now).expect("legal transition");
            now = done;
            m.complete(done).expect("scheduled completion");
        }
        m.sync(now);
        let by_state: f64 = PowerState::ALL.iter().map(|&s| m.meter().state_j(s)).sum();
        assert!((by_state - m.meter().total_j()).abs() < 1e-6);
        assert_eq!(m.residency().total(), now.since(SimTime::ZERO));
        // Energy is bounded by peak power times elapsed time.
        let max_j = m.profile().curve().peak_w() * now.as_secs_f64();
        assert!(m.meter().total_j() <= max_j + 1e-6);
    }
}

/// PSU wall power is monotone in DC power and never below it.
#[test]
fn psu_wall_power_monotone() {
    let mut rng = RngStream::new(0x13);
    for _ in 0..200 {
        let capacity = rng.uniform(100.0, 1000.0);
        let a = rng.uniform(0.0, 500.0);
        let b = rng.uniform(0.0, 500.0);
        let psu = PsuModel::eighty_plus_gold(capacity);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let w_lo = psu.wall_power_w(lo);
        let w_hi = psu.wall_power_w(hi);
        assert!(w_lo >= lo && w_hi >= hi);
        assert!(
            w_lo <= w_hi + 1e-9,
            "wall power not monotone: {w_lo} > {w_hi}"
        );
    }
}

/// with_resume_latency preserves everything except the resume spec.
#[test]
fn resume_latency_override_is_local() {
    let mut rng = RngStream::new(0x14);
    for _ in 0..100 {
        let secs = 1 + rng.below(3999);
        let base = HostPowerProfile::prototype_rack();
        let modified = base.with_resume_latency(SimDuration::from_secs(secs));
        assert_eq!(
            modified
                .transitions()
                .spec(TransitionKind::Resume)
                .unwrap()
                .latency(),
            SimDuration::from_secs(secs)
        );
        for kind in [
            TransitionKind::Suspend,
            TransitionKind::Shutdown,
            TransitionKind::Boot,
        ] {
            assert_eq!(
                modified.transitions().spec(kind).unwrap().latency(),
                base.transitions().spec(kind).unwrap().latency()
            );
        }
        assert_eq!(modified.curve(), base.curve());
    }
}
