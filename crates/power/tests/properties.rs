//! Property tests for the power substrate, on the [`check`] framework:
//! failures shrink to minimal counterexamples and replay from the
//! printed seed.

use check::gen::{boolean, f64_in, u64_in, usize_in};
use check::{prop_assert, prop_assert_eq};
use power::breakeven::{break_even_gap, net_energy_saved, LowPowerMode};
use power::{
    HostPowerProfile, PowerCurve, PowerState, PowerStateMachine, PsuModel, TransitionKind,
};
use simcore::{RngStream, SimDuration, SimTime};

/// Linear curves interpolate exactly and stay within [idle, peak].
#[test]
fn linear_curve_bounded() {
    let input = f64_in(0.0, 300.0)
        .zip(&f64_in(0.0, 300.0))
        .zip(&f64_in(-1.0, 2.0));
    check::check("linear curve bounded", &input, |&((idle, extra), u)| {
        let peak = idle + extra;
        let c = PowerCurve::linear(idle, peak);
        let p = c.power_at(u);
        prop_assert!(p >= idle - 1e-9 && p <= peak + 1e-9, "{p} outside curve");
        // Exact at the endpoints regardless of clamping.
        prop_assert!((c.power_at(0.0) - idle).abs() < 1e-12);
        prop_assert!((c.power_at(1.0) - peak).abs() < 1e-12);
        Ok(())
    });
}

/// Energy saved at the break-even gap is ~zero, positive beyond it,
/// negative (or infeasible) short of it.
#[test]
fn breakeven_is_a_zero_crossing() {
    let input = boolean().zip(&u64_in(5..=3599));
    check::check("break-even zero crossing", &input, |&(off, delta_secs)| {
        let p = HostPowerProfile::prototype_rack();
        let mode = if off {
            LowPowerMode::Off
        } else {
            LowPowerMode::Suspend
        };
        let gap = break_even_gap(&p, mode).expect("prototype supports both modes");
        let longer = gap + SimDuration::from_secs(delta_secs);
        prop_assert!(net_energy_saved(&p, mode, longer).expect("feasible beyond break-even") > 0.0);
        if gap.as_secs_f64() > delta_secs as f64 {
            let shorter = gap - SimDuration::from_secs(delta_secs);
            if let Some(saved) = net_energy_saved(&p, mode, shorter) {
                prop_assert!(saved <= 1e-6, "positive saving {saved} before break-even");
            }
        }
        Ok(())
    });
}

/// Energy is conserved across arbitrary legal state walks: the meter
/// total equals the per-state breakdown, and residency equals elapsed
/// time. (Overlaps with the workspace-level walk; this one varies the
/// profile too.)
#[test]
fn machine_accounting_consistent() {
    let input = boolean().zip(&usize_in(1..=24)).zip(&u64_in(0..=u64::MAX));
    check::check(
        "machine accounting consistent",
        &input,
        |&((blade, steps), seed)| {
            let profile = if blade {
                HostPowerProfile::prototype_blade()
            } else {
                HostPowerProfile::prototype_rack()
            };
            let mut rng = RngStream::new(seed);
            let mut m = PowerStateMachine::new(profile, SimTime::ZERO);
            let mut now = SimTime::ZERO;
            for _ in 0..steps {
                now += SimDuration::from_secs(rng.below(1000) + 1);
                if m.state() == PowerState::On {
                    m.set_utilization(now, rng.next_f64());
                }
                let kind = match m.state() {
                    PowerState::On => {
                        if rng.chance(0.5) {
                            TransitionKind::Suspend
                        } else {
                            TransitionKind::Shutdown
                        }
                    }
                    PowerState::Suspended => TransitionKind::Resume,
                    PowerState::Off => TransitionKind::Boot,
                    _ => unreachable!("walk only visits stable states"),
                };
                let done = m.begin(kind, now).expect("legal transition");
                now = done;
                m.complete(done).expect("scheduled completion");
            }
            m.sync(now);
            let by_state: f64 = PowerState::ALL.iter().map(|&s| m.meter().state_j(s)).sum();
            prop_assert!((by_state - m.meter().total_j()).abs() < 1e-6);
            prop_assert_eq!(m.residency().total(), now.since(SimTime::ZERO));
            // Energy is bounded by peak power times elapsed time.
            let max_j = m.profile().curve().peak_w() * now.as_secs_f64();
            prop_assert!(m.meter().total_j() <= max_j + 1e-6);
            Ok(())
        },
    );
}

/// PSU wall power is monotone in DC power and never below it.
#[test]
fn psu_wall_power_monotone() {
    let input = f64_in(100.0, 1000.0)
        .zip(&f64_in(0.0, 500.0))
        .zip(&f64_in(0.0, 500.0));
    check::check("PSU wall power monotone", &input, |&((capacity, a), b)| {
        let psu = PsuModel::eighty_plus_gold(capacity);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let w_lo = psu.wall_power_w(lo);
        let w_hi = psu.wall_power_w(hi);
        prop_assert!(w_lo >= lo && w_hi >= hi);
        prop_assert!(
            w_lo <= w_hi + 1e-9,
            "wall power not monotone: {w_lo} > {w_hi}"
        );
        Ok(())
    });
}

/// with_resume_latency preserves everything except the resume spec.
#[test]
fn resume_latency_override_is_local() {
    check::check(
        "resume latency override is local",
        &u64_in(1..=3999),
        |&secs| {
            let base = HostPowerProfile::prototype_rack();
            let modified = base.with_resume_latency(SimDuration::from_secs(secs));
            prop_assert_eq!(
                modified
                    .transitions()
                    .spec(TransitionKind::Resume)
                    .unwrap()
                    .latency(),
                SimDuration::from_secs(secs)
            );
            for kind in [
                TransitionKind::Suspend,
                TransitionKind::Shutdown,
                TransitionKind::Boot,
            ] {
                prop_assert_eq!(
                    modified.transitions().spec(kind).unwrap().latency(),
                    base.transitions().spec(kind).unwrap().latency()
                );
            }
            prop_assert_eq!(modified.curve(), base.curve());
            Ok(())
        },
    );
}
