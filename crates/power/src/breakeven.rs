//! Break-even analysis for power-down decisions.
//!
//! Powering a host down for an idle gap of length `T` saves energy only if
//! the gap is long enough to amortize the down/up transition costs. With
//! idle draw `P_idle`, low-state draw `P_low`, down transition `(t_d, E_d)`
//! and up transition `(t_u, E_u)`:
//!
//! ```text
//! E_stay(T)  = P_idle · T
//! E_cycle(T) = E_d + E_u + P_low · (T − t_d − t_u)      for T ≥ t_d + t_u
//! saved(T)   = E_stay(T) − E_cycle(T)
//! ```
//!
//! The break-even gap is the `T` where `saved(T) = 0`. Because S3-class
//! transitions are seconds and nearly free, their break-even gap is tens of
//! seconds; S5-class cycles need tens of minutes — this asymmetry is the
//! quantitative heart of the paper's argument, reproduced in experiment F3.

use simcore::SimDuration;

use crate::{HostPowerProfile, TransitionKind};

/// Which low-power state a power-down decision targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LowPowerMode {
    /// Suspend-to-RAM (S3-class): `Suspend` down, `Resume` up.
    Suspend,
    /// Full power-off (S5-class): `Shutdown` down, `Boot` up.
    Off,
}

impl LowPowerMode {
    /// The transition that enters the low-power state.
    pub fn down(self) -> TransitionKind {
        match self {
            LowPowerMode::Suspend => TransitionKind::Suspend,
            LowPowerMode::Off => TransitionKind::Shutdown,
        }
    }

    /// The transition that leaves the low-power state.
    pub fn up(self) -> TransitionKind {
        match self {
            LowPowerMode::Suspend => TransitionKind::Resume,
            LowPowerMode::Off => TransitionKind::Boot,
        }
    }

    /// Resting draw of the low-power state under `profile`, in watts.
    pub fn resting_power_w(self, profile: &HostPowerProfile) -> f64 {
        match self {
            LowPowerMode::Suspend => profile.suspend_power_w(),
            LowPowerMode::Off => profile.off_power_w(),
        }
    }
}

/// Net energy saved (joules) by cycling through `mode` for an idle gap of
/// length `gap`, versus idling the whole time. Negative values mean the
/// cycle *costs* energy.
///
/// Returns `None` if the profile does not support `mode`, or the gap is too
/// short to even complete the down+up transitions.
///
/// # Example
///
/// ```
/// use power::breakeven::{net_energy_saved, LowPowerMode};
/// use power::HostPowerProfile;
/// use simcore::SimDuration;
///
/// let p = HostPowerProfile::prototype_rack();
/// // One idle hour: suspending saves a lot.
/// let saved = net_energy_saved(&p, LowPowerMode::Suspend, SimDuration::from_hours(1)).unwrap();
/// assert!(saved > 0.0);
/// ```
pub fn net_energy_saved(
    profile: &HostPowerProfile,
    mode: LowPowerMode,
    gap: SimDuration,
) -> Option<f64> {
    let down = profile.transitions().spec(mode.down())?;
    let up = profile.transitions().spec(mode.up())?;
    let overhead = down.latency() + up.latency();
    if gap < overhead {
        return None;
    }
    let idle_w = profile.curve().idle_w();
    let low_w = mode.resting_power_w(profile);
    let stay = idle_w * gap.as_secs_f64();
    let cycle = down.energy_j() + up.energy_j() + low_w * (gap - overhead).as_secs_f64();
    Some(stay - cycle)
}

/// The idle-gap length at which cycling through `mode` breaks even with
/// idling (closed form).
///
/// Returns `None` if the profile does not support `mode` or if the
/// low-power state does not actually draw less than idle (no gap ever pays
/// off).
///
/// # Example
///
/// ```
/// use power::breakeven::{break_even_gap, LowPowerMode};
/// use power::HostPowerProfile;
///
/// let p = HostPowerProfile::prototype_rack();
/// let s3 = break_even_gap(&p, LowPowerMode::Suspend).unwrap();
/// let s5 = break_even_gap(&p, LowPowerMode::Off).unwrap();
/// assert!(s3 < s5, "low-latency states pay off far sooner");
/// ```
pub fn break_even_gap(profile: &HostPowerProfile, mode: LowPowerMode) -> Option<SimDuration> {
    let down = profile.transitions().spec(mode.down())?;
    let up = profile.transitions().spec(mode.up())?;
    let idle_w = profile.curve().idle_w();
    let low_w = mode.resting_power_w(profile);
    if idle_w <= low_w {
        return None;
    }
    let overhead = down.latency() + up.latency();
    // Solve idle·T = E_d + E_u + low·(T − t_overhead) for T.
    let t = (down.energy_j() + up.energy_j() - low_w * overhead.as_secs_f64()) / (idle_w - low_w);
    // The cycle also cannot be shorter than the transitions themselves.
    let t = t.max(overhead.as_secs_f64());
    Some(SimDuration::from_secs_f64(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saved_is_zero_at_break_even() {
        let p = HostPowerProfile::prototype_rack();
        for mode in [LowPowerMode::Suspend, LowPowerMode::Off] {
            let gap = break_even_gap(&p, mode).unwrap();
            let saved = net_energy_saved(&p, mode, gap).unwrap();
            // Zero to within the millisecond rounding of the gap.
            assert!(
                saved.abs() < p.curve().idle_w() * 0.002,
                "{mode:?}: {saved}"
            );
        }
    }

    #[test]
    fn saved_is_monotone_in_gap() {
        let p = HostPowerProfile::prototype_rack();
        let mut prev = f64::NEG_INFINITY;
        for mins in [1u64, 2, 5, 10, 30, 60, 120] {
            let saved =
                net_energy_saved(&p, LowPowerMode::Suspend, SimDuration::from_mins(mins)).unwrap();
            assert!(saved > prev);
            prev = saved;
        }
    }

    #[test]
    fn s3_breaks_even_orders_of_magnitude_sooner_than_s5() {
        let p = HostPowerProfile::prototype_rack();
        let s3 = break_even_gap(&p, LowPowerMode::Suspend).unwrap();
        let s5 = break_even_gap(&p, LowPowerMode::Off).unwrap();
        // S3 pays off within a minute, S5 needs several minutes at best.
        assert!(s3 < SimDuration::from_mins(1), "s3 break-even {s3}");
        assert!(s5 > s3 * 5, "s5 {s5} vs s3 {s3}");
    }

    #[test]
    fn too_short_gap_is_none() {
        let p = HostPowerProfile::prototype_rack();
        assert_eq!(
            net_energy_saved(&p, LowPowerMode::Suspend, SimDuration::from_secs(5)),
            None
        );
    }

    #[test]
    fn legacy_profile_has_no_suspend_breakeven() {
        let p = HostPowerProfile::legacy_rack();
        assert!(break_even_gap(&p, LowPowerMode::Suspend).is_none());
        assert!(break_even_gap(&p, LowPowerMode::Off).is_some());
    }

    #[test]
    fn mode_transition_mapping() {
        assert_eq!(LowPowerMode::Suspend.down(), TransitionKind::Suspend);
        assert_eq!(LowPowerMode::Suspend.up(), TransitionKind::Resume);
        assert_eq!(LowPowerMode::Off.down(), TransitionKind::Shutdown);
        assert_eq!(LowPowerMode::Off.up(), TransitionKind::Boot);
    }

    #[test]
    fn long_gap_saving_approaches_idle_minus_low_rate() {
        let p = HostPowerProfile::prototype_rack();
        let day = SimDuration::from_hours(24);
        let saved = net_energy_saved(&p, LowPowerMode::Suspend, day).unwrap();
        let asymptotic = (p.curve().idle_w() - p.suspend_power_w()) * day.as_secs_f64();
        // Within 1% for a full day gap.
        assert!((saved / asymptotic - 1.0).abs() < 0.01);
    }
}
