//! Break-even analysis for power-down decisions.
//!
//! Powering a host down for an idle gap of length `T` saves energy only if
//! the gap is long enough to amortize the down/up transition costs. With
//! idle draw `P_idle`, low-state draw `P_low`, down transition `(t_d, E_d)`
//! and up transition `(t_u, E_u)`:
//!
//! ```text
//! E_stay(T)  = P_idle · T
//! E_cycle(T) = E_d + E_u + P_low · (T − t_d − t_u)      for T ≥ t_d + t_u
//! saved(T)   = E_stay(T) − E_cycle(T)
//! ```
//!
//! The break-even gap is the `T` where `saved(T) = 0`. Because S3-class
//! transitions are seconds and nearly free, their break-even gap is tens of
//! seconds; S5-class cycles need tens of minutes — this asymmetry is the
//! quantitative heart of the paper's argument, reproduced in experiment F3.

use simcore::SimDuration;

use crate::{HostPowerProfile, TransitionKind};

/// Which low-power state a power-down decision targets — one rung of the
/// C6→S3→S5 ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LowPowerMode {
    /// C6-class package idle: `Park` down, `Unpark` up — the shallowest
    /// rung (sub-second entry, ~seconds wake).
    PackageIdle,
    /// Suspend-to-RAM (S3-class): `Suspend` down, `Resume` up.
    Suspend,
    /// Full power-off (S5-class): `Shutdown` down, `Boot` up.
    Off,
}

impl std::fmt::Display for LowPowerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LowPowerMode::PackageIdle => "package-idle",
            LowPowerMode::Suspend => "suspend",
            LowPowerMode::Off => "off",
        })
    }
}

impl LowPowerMode {
    /// All modes, ordered shallow→deep (decreasing resting power,
    /// increasing wake latency on any monotone ladder).
    pub const ALL: [LowPowerMode; 3] = [
        LowPowerMode::PackageIdle,
        LowPowerMode::Suspend,
        LowPowerMode::Off,
    ];

    /// The transition that enters the low-power state.
    pub fn down(self) -> TransitionKind {
        match self {
            LowPowerMode::PackageIdle => TransitionKind::Park,
            LowPowerMode::Suspend => TransitionKind::Suspend,
            LowPowerMode::Off => TransitionKind::Shutdown,
        }
    }

    /// The transition that leaves the low-power state.
    pub fn up(self) -> TransitionKind {
        match self {
            LowPowerMode::PackageIdle => TransitionKind::Unpark,
            LowPowerMode::Suspend => TransitionKind::Resume,
            LowPowerMode::Off => TransitionKind::Boot,
        }
    }

    /// Resting draw of the low-power state under `profile`, in watts.
    /// For [`LowPowerMode::PackageIdle`] on a profile without that rung,
    /// answers the idle floor (the rung saves nothing).
    pub fn resting_power_w(self, profile: &HostPowerProfile) -> f64 {
        match self {
            LowPowerMode::PackageIdle => profile
                .package_idle_power_w()
                .unwrap_or(profile.curve().idle_w()),
            LowPowerMode::Suspend => profile.suspend_power_w(),
            LowPowerMode::Off => profile.off_power_w(),
        }
    }

    /// Whether `profile` implements both of this rung's transitions.
    pub fn supported_by(self, profile: &HostPowerProfile) -> bool {
        profile.transitions().spec(self.down()).is_some()
            && profile.transitions().spec(self.up()).is_some()
    }

    /// Latency of this rung's wake transition under `profile`, if
    /// supported.
    pub fn wake_latency(self, profile: &HostPowerProfile) -> Option<SimDuration> {
        profile
            .transitions()
            .spec(self.up())
            .map(|spec| spec.latency())
    }
}

/// Net energy saved (joules) by cycling through `mode` for an idle gap of
/// length `gap`, versus idling the whole time. Negative values mean the
/// cycle *costs* energy.
///
/// Returns `None` if the profile does not support `mode`, or the gap is too
/// short to even complete the down+up transitions.
///
/// # Example
///
/// ```
/// use power::breakeven::{net_energy_saved, LowPowerMode};
/// use power::HostPowerProfile;
/// use simcore::SimDuration;
///
/// let p = HostPowerProfile::prototype_rack();
/// // One idle hour: suspending saves a lot.
/// let saved = net_energy_saved(&p, LowPowerMode::Suspend, SimDuration::from_hours(1)).unwrap();
/// assert!(saved > 0.0);
/// ```
pub fn net_energy_saved(
    profile: &HostPowerProfile,
    mode: LowPowerMode,
    gap: SimDuration,
) -> Option<f64> {
    let down = profile.transitions().spec(mode.down())?;
    let up = profile.transitions().spec(mode.up())?;
    let overhead = down.latency() + up.latency();
    if gap < overhead {
        return None;
    }
    let idle_w = profile.curve().idle_w();
    let low_w = mode.resting_power_w(profile);
    let stay = idle_w * gap.as_secs_f64();
    let cycle = down.energy_j() + up.energy_j() + low_w * (gap - overhead).as_secs_f64();
    Some(stay - cycle)
}

/// The idle-gap length at which cycling through `mode` breaks even with
/// idling (closed form).
///
/// Returns `None` if the profile does not support `mode` or if the
/// low-power state does not actually draw less than idle (no gap ever pays
/// off).
///
/// # Example
///
/// ```
/// use power::breakeven::{break_even_gap, LowPowerMode};
/// use power::HostPowerProfile;
///
/// let p = HostPowerProfile::prototype_rack();
/// let s3 = break_even_gap(&p, LowPowerMode::Suspend).unwrap();
/// let s5 = break_even_gap(&p, LowPowerMode::Off).unwrap();
/// assert!(s3 < s5, "low-latency states pay off far sooner");
/// ```
pub fn break_even_gap(profile: &HostPowerProfile, mode: LowPowerMode) -> Option<SimDuration> {
    let down = profile.transitions().spec(mode.down())?;
    let up = profile.transitions().spec(mode.up())?;
    let idle_w = profile.curve().idle_w();
    let low_w = mode.resting_power_w(profile);
    if idle_w <= low_w {
        return None;
    }
    let overhead = down.latency() + up.latency();
    // Solve idle·T = E_d + E_u + low·(T − t_overhead) for T.
    let t = (down.energy_j() + up.energy_j() - low_w * overhead.as_secs_f64()) / (idle_w - low_w);
    // The cycle also cannot be shorter than the transitions themselves.
    let t = t.max(overhead.as_secs_f64());
    Some(SimDuration::from_secs_f64(t))
}

/// What a planning round needs to know about one ladder rung, detached
/// from the profile that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RungSummary {
    /// Latency of the rung's wake transition back to `On`.
    pub wake_latency: SimDuration,
    /// The rung's break-even idle gap, or `None` if no gap ever pays off
    /// (resting draw at or above idle).
    pub break_even: Option<SimDuration>,
}

/// A copyable per-profile summary of the power-state ladder: one entry
/// per supported rung, ordered shallow→deep, carrying exactly what a
/// planning round needs — wake latency and break-even gap — without
/// holding the profile itself. Cheap enough to embed in per-host
/// observation snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LadderSummary {
    rungs: [Option<RungSummary>; 3],
}

impl LadderSummary {
    /// Summarizes `profile`'s supported rungs.
    pub fn of(profile: &HostPowerProfile) -> Self {
        let mut rungs = [None; 3];
        for (i, &mode) in LowPowerMode::ALL.iter().enumerate() {
            let Some(wake_latency) = mode.wake_latency(profile) else {
                continue;
            };
            if !mode.supported_by(profile) {
                continue;
            }
            rungs[i] = Some(RungSummary {
                wake_latency,
                break_even: break_even_gap(profile, mode),
            });
        }
        LadderSummary { rungs }
    }

    /// The summary of one rung, if the profile supports it.
    pub fn rung(&self, mode: LowPowerMode) -> Option<RungSummary> {
        let idx = LowPowerMode::ALL
            .iter()
            .position(|&m| m == mode)
            .expect("mode is in ALL");
        self.rungs[idx]
    }

    /// Whether no rung is supported at all.
    pub fn is_empty(&self) -> bool {
        self.rungs.iter().all(Option::is_none)
    }

    /// The shallowest rung whose wake latency fits `wake_slo` — the rung
    /// a warm-pool host parks in.
    pub fn shallowest_within(&self, wake_slo: SimDuration) -> Option<LowPowerMode> {
        LowPowerMode::ALL
            .iter()
            .copied()
            .find(|&mode| self.rung(mode).is_some_and(|r| r.wake_latency <= wake_slo))
    }

    /// Picks the deepest rung that is *affordable* against a latency SLO
    /// and an expected idle gap: the rung's wake latency must not exceed
    /// `wake_slo`, and — when `expected_gap` is known — the rung must at
    /// least break even over that gap. With an unknown gap, any
    /// SLO-feasible rung is assumed to pay off (the manager's hysteresis
    /// already bounds thrashing), so the deepest SLO-feasible rung wins.
    ///
    /// Returns `None` when no supported rung can wake within the SLO —
    /// the caller should then leave the host on.
    pub fn deepest_affordable(
        &self,
        wake_slo: SimDuration,
        expected_gap: Option<SimDuration>,
    ) -> Option<LowPowerMode> {
        let mut best = None;
        for mode in LowPowerMode::ALL {
            let Some(rung) = self.rung(mode) else {
                continue;
            };
            if rung.wake_latency > wake_slo {
                continue;
            }
            let pays_off = match expected_gap {
                None => true,
                Some(gap) => rung.break_even.is_some_and(|be| be <= gap),
            };
            if pays_off {
                // ALL is ordered shallow→deep: keep overwriting with
                // deeper SLO-feasible rungs.
                best = Some(mode);
            }
        }
        best
    }
}

/// Picks the deepest ladder rung of `profile` affordable against a
/// latency SLO and an expected idle gap — see
/// [`LadderSummary::deepest_affordable`].
///
/// # Example
///
/// ```
/// use power::breakeven::{deepest_affordable_rung, LowPowerMode};
/// use power::HostPowerProfile;
/// use simcore::SimDuration;
///
/// let p = HostPowerProfile::prototype_rack_ladder();
/// // A 5 s SLO only the C6 rung can meet.
/// let rung = deepest_affordable_rung(&p, SimDuration::from_secs(5), None);
/// assert_eq!(rung, Some(LowPowerMode::PackageIdle));
/// // A 1-minute SLO admits S3, and S3 is deeper.
/// let rung = deepest_affordable_rung(&p, SimDuration::from_mins(1), None);
/// assert_eq!(rung, Some(LowPowerMode::Suspend));
/// ```
pub fn deepest_affordable_rung(
    profile: &HostPowerProfile,
    wake_slo: SimDuration,
    expected_gap: Option<SimDuration>,
) -> Option<LowPowerMode> {
    LadderSummary::of(profile).deepest_affordable(wake_slo, expected_gap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saved_is_zero_at_break_even() {
        let p = HostPowerProfile::prototype_rack();
        for mode in [LowPowerMode::Suspend, LowPowerMode::Off] {
            let gap = break_even_gap(&p, mode).unwrap();
            let saved = net_energy_saved(&p, mode, gap).unwrap();
            // Zero to within the millisecond rounding of the gap.
            assert!(
                saved.abs() < p.curve().idle_w() * 0.002,
                "{mode:?}: {saved}"
            );
        }
    }

    #[test]
    fn saved_is_monotone_in_gap() {
        let p = HostPowerProfile::prototype_rack();
        let mut prev = f64::NEG_INFINITY;
        for mins in [1u64, 2, 5, 10, 30, 60, 120] {
            let saved =
                net_energy_saved(&p, LowPowerMode::Suspend, SimDuration::from_mins(mins)).unwrap();
            assert!(saved > prev);
            prev = saved;
        }
    }

    #[test]
    fn s3_breaks_even_orders_of_magnitude_sooner_than_s5() {
        let p = HostPowerProfile::prototype_rack();
        let s3 = break_even_gap(&p, LowPowerMode::Suspend).unwrap();
        let s5 = break_even_gap(&p, LowPowerMode::Off).unwrap();
        // S3 pays off within a minute, S5 needs several minutes at best.
        assert!(s3 < SimDuration::from_mins(1), "s3 break-even {s3}");
        assert!(s5 > s3 * 5, "s5 {s5} vs s3 {s3}");
    }

    #[test]
    fn too_short_gap_is_none() {
        let p = HostPowerProfile::prototype_rack();
        assert_eq!(
            net_energy_saved(&p, LowPowerMode::Suspend, SimDuration::from_secs(5)),
            None
        );
    }

    #[test]
    fn legacy_profile_has_no_suspend_breakeven() {
        let p = HostPowerProfile::legacy_rack();
        assert!(break_even_gap(&p, LowPowerMode::Suspend).is_none());
        assert!(break_even_gap(&p, LowPowerMode::Off).is_some());
    }

    #[test]
    fn mode_transition_mapping() {
        assert_eq!(LowPowerMode::Suspend.down(), TransitionKind::Suspend);
        assert_eq!(LowPowerMode::Suspend.up(), TransitionKind::Resume);
        assert_eq!(LowPowerMode::Off.down(), TransitionKind::Shutdown);
        assert_eq!(LowPowerMode::Off.up(), TransitionKind::Boot);
        assert_eq!(LowPowerMode::PackageIdle.down(), TransitionKind::Park);
        assert_eq!(LowPowerMode::PackageIdle.up(), TransitionKind::Unpark);
    }

    #[test]
    fn per_rung_break_even_is_strictly_ordered_on_the_ladder() {
        let p = HostPowerProfile::prototype_rack_ladder();
        let c6 = break_even_gap(&p, LowPowerMode::PackageIdle).unwrap();
        let s3 = break_even_gap(&p, LowPowerMode::Suspend).unwrap();
        let s5 = break_even_gap(&p, LowPowerMode::Off).unwrap();
        assert!(c6 < s3, "c6 {c6} vs s3 {s3}");
        assert!(s3 < s5, "s3 {s3} vs s5 {s5}");
        // C6 pays off within seconds — that is the whole point.
        assert!(c6 < SimDuration::from_secs(10), "c6 break-even {c6}");
    }

    #[test]
    fn package_idle_breakeven_absent_on_three_rung_profile() {
        let p = HostPowerProfile::prototype_rack();
        assert!(!LowPowerMode::PackageIdle.supported_by(&p));
        assert!(break_even_gap(&p, LowPowerMode::PackageIdle).is_none());
    }

    #[test]
    fn deepest_affordable_rung_respects_slo_and_gap() {
        let p = HostPowerProfile::prototype_rack_ladder();
        // A generous SLO with no gap estimate picks the deepest rung.
        assert_eq!(
            deepest_affordable_rung(&p, SimDuration::from_hours(1), None),
            Some(LowPowerMode::Off)
        );
        // A short expected gap disqualifies S5 (its break-even is minutes)
        // but S3 still pays off.
        assert_eq!(
            deepest_affordable_rung(
                &p,
                SimDuration::from_hours(1),
                Some(SimDuration::from_mins(2))
            ),
            Some(LowPowerMode::Suspend)
        );
        // An SLO tighter than every wake latency leaves the host on.
        assert_eq!(
            deepest_affordable_rung(&p, SimDuration::from_millis(100), None),
            None
        );
        // A 3-rung profile under a boot-sized SLO degenerates to suspend.
        let q = HostPowerProfile::prototype_rack();
        assert_eq!(
            deepest_affordable_rung(&q, SimDuration::from_secs(12), None),
            Some(LowPowerMode::Suspend)
        );
    }

    #[test]
    fn long_gap_saving_approaches_idle_minus_low_rate() {
        let p = HostPowerProfile::prototype_rack();
        let day = SimDuration::from_hours(24);
        let saved = net_energy_saved(&p, LowPowerMode::Suspend, day).unwrap();
        let asymptotic = (p.curve().idle_w() - p.suspend_power_w()) * day.as_secs_f64();
        // Within 1% for a full day gap.
        assert!((saved / asymptotic - 1.0).abs() < 0.01);
    }
}
