//! Error types for power-state operations and model configuration.

use std::error::Error;
use std::fmt;

use simcore::SimTime;

use crate::{PowerState, TransitionKind};

/// A rejected model-configuration value, returned by the `try_new`
/// constructor variants on [`crate::HostPowerProfile`] and
/// [`crate::DvfsModel`] (the panicking constructors are thin wrappers
/// with the same message). Mirrors the `try_*` convention of
/// `agile_core::ConfigError`, which this crate cannot depend on.
///
/// Marked `#[non_exhaustive]`: more variants may appear as the models
/// grow validation, so downstream matches need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A scalar parameter is outside its allowed range.
    OutOfRange {
        /// Which parameter was rejected.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// The constraint it violated, e.g. `"must be finite and >= 0"`.
        constraint: &'static str,
    },
    /// A structural constraint failed (empty ladder, unordered levels, …).
    Invalid {
        /// What was wrong, as a complete sentence fragment.
        message: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange {
                field,
                value,
                constraint,
            } => write!(f, "{field} {value} {constraint}"),
            ConfigError::Invalid { message } => write!(f, "{message}"),
        }
    }
}

impl Error for ConfigError {}

/// Errors returned by [`crate::PowerStateMachine`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PowerError {
    /// The requested transition cannot start from the current state
    /// (e.g. `Suspend` while already `Suspended`, or while mid-transition).
    InvalidTransition {
        /// State the machine was in when the transition was requested.
        from: PowerState,
        /// The transition that was requested.
        kind: TransitionKind,
    },
    /// The host's power profile does not implement the requested transition
    /// (e.g. a legacy server without working suspend-to-RAM).
    UnsupportedTransition(TransitionKind),
    /// `complete` was called but no transition is in flight.
    NotTransitioning,
    /// `complete` was called at a different instant than the transition's
    /// scheduled completion time — an event-scheduling bug in the caller.
    CompletionTimeMismatch {
        /// When the in-flight transition is due to complete.
        expected: SimTime,
        /// When `complete` was actually called.
        actual: SimTime,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidTransition { from, kind } => {
                write!(f, "cannot start {kind} transition from state {from}")
            }
            PowerError::UnsupportedTransition(kind) => {
                write!(f, "power profile does not support {kind}")
            }
            PowerError::NotTransitioning => write!(f, "no transition in flight"),
            PowerError::CompletionTimeMismatch { expected, actual } => write!(
                f,
                "transition completes at {expected}, but complete() was called at {actual}"
            ),
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PowerError::InvalidTransition {
            from: PowerState::Suspended,
            kind: TransitionKind::Suspend,
        };
        assert!(e.to_string().contains("suspend"));
        assert!(e.to_string().contains("Suspended"));
        let e = PowerError::CompletionTimeMismatch {
            expected: SimTime::from_secs(10),
            actual: SimTime::from_secs(11),
        };
        assert!(e.to_string().contains("10s"));
    }
}
