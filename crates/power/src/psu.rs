//! Power-supply conversion losses: DC load → AC wall power.
//!
//! The paper characterizes its prototypes at the AC wall plug, where PSU
//! conversion losses apply. Efficiency is strongly load-dependent —
//! poor at light load, peaking near 50 % — which *amplifies* the idle
//! waste of an unconsolidated fleet: an idle server not only draws ~half
//! its peak DC power, its PSU also converts that power less efficiently.
//!
//! A [`PsuModel`] converts the DC-side draw of a
//! [`crate::HostPowerProfile`] into wall power; attach one with
//! [`crate::HostPowerProfile::with_psu`].

/// A load-dependent PSU efficiency model.
///
/// Efficiency is piecewise-linear in the *DC load fraction*
/// (`dc_watts / capacity`); wall power is `dc / efficiency`.
///
/// # Example
///
/// ```
/// use power::PsuModel;
///
/// let psu = PsuModel::eighty_plus_gold(400.0);
/// // At half load a Gold PSU runs ~94% efficient.
/// let wall = psu.wall_power_w(200.0);
/// assert!((wall - 200.0 / 0.94).abs() < 1.0);
/// // Light load is much less efficient.
/// assert!(psu.efficiency_at(10.0) < 0.80);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PsuModel {
    capacity_w: f64,
    /// `(load_fraction, efficiency)` knots, sorted, covering 0.0..=1.0.
    knots: Vec<(f64, f64)>,
}

impl PsuModel {
    /// Builds a PSU model from its rated capacity and efficiency knots.
    ///
    /// # Panics
    ///
    /// Panics if capacity is not positive, fewer than two knots are
    /// given, knots do not start at 0.0 and end at 1.0 in strictly
    /// increasing order, or any efficiency is outside `(0, 1]`.
    pub fn new(capacity_w: f64, knots: Vec<(f64, f64)>) -> Self {
        assert!(
            capacity_w.is_finite() && capacity_w > 0.0,
            "bad PSU capacity {capacity_w}"
        );
        assert!(knots.len() >= 2, "need at least two efficiency knots");
        assert_eq!(knots[0].0, 0.0, "first knot must be at load 0.0");
        assert_eq!(
            knots[knots.len() - 1].0,
            1.0,
            "last knot must be at load 1.0"
        );
        for pair in knots.windows(2) {
            assert!(pair[0].0 < pair[1].0, "knots must be strictly increasing");
        }
        for &(l, e) in &knots {
            assert!(
                l.is_finite() && e.is_finite() && e > 0.0 && e <= 1.0,
                "bad knot ({l}, {e})"
            );
        }
        PsuModel { capacity_w, knots }
    }

    /// An 80 PLUS Gold-class supply: ~87 % at 10 % load, ~94 % at 50 %,
    /// ~91 % at full load, degrading sharply below 10 %.
    pub fn eighty_plus_gold(capacity_w: f64) -> Self {
        PsuModel::new(
            capacity_w,
            vec![
                (0.0, 0.50),
                (0.02, 0.70),
                (0.10, 0.87),
                (0.20, 0.92),
                (0.50, 0.94),
                (1.0, 0.91),
            ],
        )
    }

    /// A legacy non-certified supply: ~65 % at 10 % load, ~78 % peak.
    pub fn legacy(capacity_w: f64) -> Self {
        PsuModel::new(
            capacity_w,
            vec![
                (0.0, 0.40),
                (0.02, 0.50),
                (0.10, 0.65),
                (0.30, 0.74),
                (0.50, 0.78),
                (1.0, 0.75),
            ],
        )
    }

    /// Rated DC output capacity, watts.
    pub fn capacity_w(&self) -> f64 {
        self.capacity_w
    }

    /// Conversion efficiency at a given DC draw (load clamped to
    /// `[0, 1]` of capacity).
    pub fn efficiency_at(&self, dc_watts: f64) -> f64 {
        let load = (dc_watts / self.capacity_w).clamp(0.0, 1.0);
        let seg = self
            .knots
            .windows(2)
            .find(|pair| load <= pair[1].0)
            .expect("knots cover [0,1] by construction");
        let (l0, e0) = seg[0];
        let (l1, e1) = seg[1];
        e0 + (e1 - e0) * (load - l0) / (l1 - l0)
    }

    /// AC wall power for a DC draw, watts (zero stays zero).
    pub fn wall_power_w(&self, dc_watts: f64) -> f64 {
        if dc_watts <= 0.0 {
            return 0.0;
        }
        dc_watts / self.efficiency_at(dc_watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_power_exceeds_dc_power() {
        let psu = PsuModel::eighty_plus_gold(400.0);
        for dc in [5.0, 50.0, 200.0, 400.0] {
            assert!(psu.wall_power_w(dc) > dc, "at {dc} W");
        }
        assert_eq!(psu.wall_power_w(0.0), 0.0);
    }

    #[test]
    fn efficiency_peaks_mid_load() {
        let psu = PsuModel::eighty_plus_gold(400.0);
        let light = psu.efficiency_at(8.0);
        let mid = psu.efficiency_at(200.0);
        let full = psu.efficiency_at(400.0);
        assert!(light < mid, "light {light} vs mid {mid}");
        assert!(full < mid, "full {full} vs mid {mid}");
        assert!((mid - 0.94).abs() < 1e-9);
    }

    #[test]
    fn legacy_is_worse_everywhere() {
        let gold = PsuModel::eighty_plus_gold(400.0);
        let old = PsuModel::legacy(400.0);
        for dc in [10.0, 40.0, 100.0, 200.0, 400.0] {
            assert!(old.efficiency_at(dc) < gold.efficiency_at(dc), "at {dc} W");
        }
    }

    #[test]
    fn relative_loss_grows_at_light_load() {
        // The proportionality-gap amplifier: the overhead *fraction* is
        // worst exactly where idle servers sit.
        let psu = PsuModel::eighty_plus_gold(400.0);
        let frac = |dc: f64| (psu.wall_power_w(dc) - dc) / dc;
        assert!(frac(8.0) > 2.0 * frac(200.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_knots() {
        PsuModel::new(400.0, vec![(0.0, 0.5), (0.5, 0.9), (0.5, 0.92), (1.0, 0.9)]);
    }

    #[test]
    fn overload_clamps_to_full_load_efficiency() {
        let psu = PsuModel::eighty_plus_gold(400.0);
        assert_eq!(psu.efficiency_at(800.0), psu.efficiency_at(400.0));
    }
}
