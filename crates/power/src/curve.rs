//! Utilization-to-power curves for operational (powered-on) hosts.

/// Maps CPU utilization (`0.0..=1.0`) to active power draw in watts.
///
/// Three families cover the hardware in the paper's evaluation:
///
/// * [`PowerCurve::linear`] — the classic `idle + (peak-idle)·u` model; a
///   good fit for the 2008–2013 servers the paper prototypes, whose idle
///   power is 40–60 % of peak (the energy-proportionality gap the work
///   attacks).
/// * [`PowerCurve::piecewise`] — SPECpower-style 11-point curves for
///   hardware whose draw is convex or concave in utilization.
/// * [`PowerCurve::proportional`] — the ideal energy-proportional machine
///   (`peak·u`), used as the theoretical bound in proportionality plots.
///
/// # Example
///
/// ```
/// use power::PowerCurve;
///
/// let c = PowerCurve::linear(150.0, 300.0);
/// assert_eq!(c.power_at(0.0), 150.0);
/// assert_eq!(c.power_at(0.5), 225.0);
/// assert_eq!(c.power_at(1.0), 300.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum PowerCurve {
    /// `idle_w + (peak_w - idle_w) · u`.
    Linear {
        /// Power draw at zero utilization, watts.
        idle_w: f64,
        /// Power draw at full utilization, watts.
        peak_w: f64,
    },
    /// Linear interpolation between `(utilization, watts)` knots.
    Piecewise {
        /// Knots sorted by utilization; must start at 0.0 and end at 1.0.
        points: Vec<(f64, f64)>,
    },
    /// Ideal energy-proportional machine: `peak_w · u`.
    Proportional {
        /// Power draw at full utilization, watts.
        peak_w: f64,
    },
}

impl PowerCurve {
    /// Creates a linear curve.
    ///
    /// # Panics
    ///
    /// Panics if `idle_w` or `peak_w` is negative/non-finite, or
    /// `idle_w > peak_w`.
    pub fn linear(idle_w: f64, peak_w: f64) -> Self {
        assert!(
            idle_w.is_finite() && peak_w.is_finite() && idle_w >= 0.0 && idle_w <= peak_w,
            "bad linear curve: idle {idle_w} W, peak {peak_w} W"
        );
        PowerCurve::Linear { idle_w, peak_w }
    }

    /// Creates a piecewise-linear curve from `(utilization, watts)` knots.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two knots are given, knots are not strictly
    /// increasing in utilization, the first knot is not at 0.0, the last is
    /// not at 1.0, or any power is negative/non-finite.
    pub fn piecewise(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two knots");
        assert_eq!(points[0].0, 0.0, "first knot must be at utilization 0.0");
        assert_eq!(
            points[points.len() - 1].0,
            1.0,
            "last knot must be at utilization 1.0"
        );
        for pair in points.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "knots must be strictly increasing in utilization"
            );
        }
        for &(u, w) in &points {
            assert!(
                u.is_finite() && w.is_finite() && w >= 0.0,
                "bad knot ({u}, {w})"
            );
        }
        PowerCurve::Piecewise { points }
    }

    /// Creates an ideal-proportional curve.
    ///
    /// # Panics
    ///
    /// Panics if `peak_w` is negative or not finite.
    pub fn proportional(peak_w: f64) -> Self {
        assert!(peak_w.is_finite() && peak_w >= 0.0, "bad peak {peak_w}");
        PowerCurve::Proportional { peak_w }
    }

    /// Power draw at utilization `u` (clamped to `[0, 1]`), in watts.
    pub fn power_at(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self {
            PowerCurve::Linear { idle_w, peak_w } => idle_w + (peak_w - idle_w) * u,
            PowerCurve::Proportional { peak_w } => peak_w * u,
            PowerCurve::Piecewise { points } => {
                // Find the segment containing u and interpolate.
                let seg = points
                    .windows(2)
                    .find(|pair| u <= pair[1].0)
                    .expect("knots cover [0,1] by construction");
                let (u0, w0) = seg[0];
                let (u1, w1) = seg[1];
                w0 + (w1 - w0) * (u - u0) / (u1 - u0)
            }
        }
    }

    /// Power at zero utilization (the idle floor), in watts.
    pub fn idle_w(&self) -> f64 {
        self.power_at(0.0)
    }

    /// Power at full utilization, in watts.
    pub fn peak_w(&self) -> f64 {
        self.power_at(1.0)
    }

    /// Idle-to-peak ratio — the energy-proportionality gap. 0.0 is ideal
    /// (proportional), ~0.5 is typical for the paper's server class.
    pub fn idle_fraction(&self) -> f64 {
        if self.peak_w() == 0.0 {
            0.0
        } else {
            self.idle_w() / self.peak_w()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolates() {
        let c = PowerCurve::linear(100.0, 200.0);
        assert_eq!(c.power_at(0.25), 125.0);
        assert_eq!(c.idle_w(), 100.0);
        assert_eq!(c.peak_w(), 200.0);
        assert_eq!(c.idle_fraction(), 0.5);
    }

    #[test]
    fn linear_clamps_utilization() {
        let c = PowerCurve::linear(100.0, 200.0);
        assert_eq!(c.power_at(-0.5), 100.0);
        assert_eq!(c.power_at(1.5), 200.0);
    }

    #[test]
    fn proportional_is_zero_at_idle() {
        let c = PowerCurve::proportional(250.0);
        assert_eq!(c.power_at(0.0), 0.0);
        assert_eq!(c.power_at(0.4), 100.0);
        assert_eq!(c.idle_fraction(), 0.0);
    }

    #[test]
    fn piecewise_interpolates_between_knots() {
        let c = PowerCurve::piecewise(vec![(0.0, 50.0), (0.5, 150.0), (1.0, 170.0)]);
        assert_eq!(c.power_at(0.0), 50.0);
        assert_eq!(c.power_at(0.25), 100.0);
        assert_eq!(c.power_at(0.5), 150.0);
        assert_eq!(c.power_at(0.75), 160.0);
        assert_eq!(c.power_at(1.0), 170.0);
    }

    #[test]
    #[should_panic(expected = "first knot")]
    fn piecewise_requires_zero_start() {
        PowerCurve::piecewise(vec![(0.1, 50.0), (1.0, 170.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_requires_sorted_knots() {
        PowerCurve::piecewise(vec![(0.0, 50.0), (0.5, 100.0), (0.5, 120.0), (1.0, 170.0)]);
    }

    #[test]
    #[should_panic(expected = "bad linear curve")]
    fn linear_rejects_idle_above_peak() {
        PowerCurve::linear(300.0, 200.0);
    }

    #[test]
    fn curve_is_monotone_when_knots_are() {
        let c = PowerCurve::piecewise(vec![(0.0, 60.0), (0.3, 100.0), (0.7, 140.0), (1.0, 200.0)]);
        let mut prev = -1.0;
        for i in 0..=100 {
            let p = c.power_at(i as f64 / 100.0);
            assert!(p >= prev, "non-monotone at {i}");
            prev = p;
        }
    }
}
