//! The host power-state machine.

use std::fmt;
use std::sync::Arc;

use simcore::{SimDuration, SimTime};

use crate::{EnergyMeter, HostPowerProfile, PowerError, TransitionKind};

/// ACPI-like host power states.
///
/// Four *stable* states (`On`, `PackageIdle`, `Suspended`, `Off`) and six
/// *transitional* states, one per [`TransitionKind`]. A host serves load
/// only in `On`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PowerState {
    /// Fully operational; power follows the profile's utilization curve.
    On,
    /// Suspend-to-RAM (S3-class): context held in memory, near-zero power,
    /// low-latency return to `On`.
    Suspended,
    /// Fully powered off (S5-class): minimal standby draw, return to `On`
    /// requires a full boot.
    Off,
    /// In flight: `On` → `Suspended`.
    Suspending,
    /// In flight: `Suspended` → `On`.
    Resuming,
    /// In flight: `On` → `Off`.
    ShuttingDown,
    /// In flight: `Off` → `On`.
    Booting,
    /// C6-class package idle: cores and uncore power-gated with context
    /// retained on-package — draws well below idle, wakes in ~seconds or
    /// less. The shallowest rung of the power-state ladder.
    PackageIdle,
    /// In flight: `On` → `PackageIdle`.
    Parking,
    /// In flight: `PackageIdle` → `On`.
    Unparking,
}

impl PowerState {
    /// Number of power states (length of per-state arrays).
    pub const COUNT: usize = 10;

    /// All states, for iteration in residency reports.
    pub const ALL: [PowerState; PowerState::COUNT] = [
        PowerState::On,
        PowerState::Suspended,
        PowerState::Off,
        PowerState::Suspending,
        PowerState::Resuming,
        PowerState::ShuttingDown,
        PowerState::Booting,
        PowerState::PackageIdle,
        PowerState::Parking,
        PowerState::Unparking,
    ];

    /// Whether this is a stable (non-transitional) state.
    pub fn is_stable(self) -> bool {
        matches!(
            self,
            PowerState::On | PowerState::Suspended | PowerState::Off | PowerState::PackageIdle
        )
    }

    /// Whether a host in this state can serve VM load.
    pub fn is_operational(self) -> bool {
        self == PowerState::On
    }

    /// Dense index for per-state arrays.
    pub(crate) fn index(self) -> usize {
        match self {
            PowerState::On => 0,
            PowerState::Suspended => 1,
            PowerState::Off => 2,
            PowerState::Suspending => 3,
            PowerState::Resuming => 4,
            PowerState::ShuttingDown => 5,
            PowerState::Booting => 6,
            PowerState::PackageIdle => 7,
            PowerState::Parking => 8,
            PowerState::Unparking => 9,
        }
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PowerState::On => "On",
            PowerState::Suspended => "Suspended",
            PowerState::Off => "Off",
            PowerState::Suspending => "Suspending",
            PowerState::Resuming => "Resuming",
            PowerState::ShuttingDown => "ShuttingDown",
            PowerState::Booting => "Booting",
            PowerState::PackageIdle => "PackageIdle",
            PowerState::Parking => "Parking",
            PowerState::Unparking => "Unparking",
        };
        f.write_str(s)
    }
}

/// Cumulative time spent in each power state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateResidency {
    durations: [SimDuration; PowerState::COUNT],
}

impl StateResidency {
    /// Time spent in `state` so far.
    pub fn in_state(&self, state: PowerState) -> SimDuration {
        self.durations[state.index()]
    }

    /// Total time across all states.
    pub fn total(&self) -> SimDuration {
        self.durations
            .iter()
            .fold(SimDuration::ZERO, |acc, &d| acc + d)
    }

    /// Fraction of total time spent in `state` (0 if no time recorded).
    pub fn fraction(&self, state: PowerState) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.in_state(state).as_secs_f64() / total
        }
    }

    fn add(&mut self, state: PowerState, d: SimDuration) {
        self.durations[state.index()] += d;
    }
}

/// The power-state machine of one host.
///
/// Couples a [`HostPowerProfile`] with the current [`PowerState`], validates
/// requested transitions, integrates energy exactly (step-function), and
/// tracks per-state residency and transition counts.
///
/// # Discipline
///
/// The machine is event-driven: the caller requests a transition with
/// [`begin`](Self::begin), receives the completion instant, schedules an
/// event, and calls [`complete`](Self::complete) exactly at that instant.
/// Utilization changes while `On` are reported with
/// [`set_utilization`](Self::set_utilization). All calls must use
/// non-decreasing timestamps.
///
/// # Example
///
/// ```
/// use power::{HostPowerProfile, PowerState, PowerStateMachine, TransitionKind};
/// use simcore::SimTime;
///
/// let mut m = PowerStateMachine::new(HostPowerProfile::prototype_rack(), SimTime::ZERO);
/// m.set_utilization(SimTime::ZERO, 0.6);
/// let done = m.begin(TransitionKind::Suspend, SimTime::from_secs(60))?;
/// m.complete(done)?;
/// assert_eq!(m.state(), PowerState::Suspended);
/// assert!(m.meter().total_j() > 0.0);
/// # Ok::<(), power::PowerError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PowerStateMachine {
    profile: Arc<HostPowerProfile>,
    state: PowerState,
    state_entered: SimTime,
    pending: Option<(TransitionKind, SimTime)>,
    utilization: f64,
    meter: EnergyMeter,
    residency: StateResidency,
    transition_counts: [u64; 6],
    failed_transitions: u64,
    /// Memoized `state_power_w(state, utilization)`, refreshed on every
    /// state or utilization change so [`power_w`](Self::power_w) — called
    /// once per host on every cluster power read — never re-evaluates the
    /// power curve.
    cached_power_w: f64,
}

impl PowerStateMachine {
    /// Creates a machine starting in the `On` state at time `t0` with zero
    /// utilization.
    pub fn new(profile: impl Into<Arc<HostPowerProfile>>, t0: SimTime) -> Self {
        Self::with_initial_state(profile, PowerState::On, t0)
    }

    /// Creates a machine starting in an arbitrary *stable* state.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is a transitional state.
    pub fn with_initial_state(
        profile: impl Into<Arc<HostPowerProfile>>,
        initial: PowerState,
        t0: SimTime,
    ) -> Self {
        assert!(
            initial.is_stable(),
            "initial state must be stable, got {initial}"
        );
        let profile = profile.into();
        let power = profile.state_power_w(initial, 0.0);
        PowerStateMachine {
            profile,
            state: initial,
            state_entered: t0,
            pending: None,
            utilization: 0.0,
            meter: EnergyMeter::new(t0, power),
            residency: StateResidency::default(),
            transition_counts: [0; 6],
            failed_transitions: 0,
            cached_power_w: power,
        }
    }

    /// Enables recording of the full power trace (off by default to keep
    /// large-fleet simulations lean).
    pub fn enable_trace(&mut self) {
        self.meter.enable_trace();
    }

    /// The host's power profile.
    pub fn profile(&self) -> &HostPowerProfile {
        &self.profile
    }

    /// Current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Whether the host can serve load right now.
    pub fn is_operational(&self) -> bool {
        self.state.is_operational()
    }

    /// The in-flight transition and its completion time, if any.
    pub fn pending(&self) -> Option<(TransitionKind, SimTime)> {
        self.pending
    }

    /// Current instantaneous power draw, in watts.
    pub fn power_w(&self) -> f64 {
        debug_assert_eq!(
            self.cached_power_w.to_bits(),
            self.profile
                .state_power_w(self.state, self.utilization)
                .to_bits(),
            "stale power cache in state {}",
            self.state
        );
        self.cached_power_w
    }

    /// Energy accounting (totals, per-state breakdown, optional trace).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Cumulative per-state residency. Time in the current state since the
    /// last event is *not* included; call [`sync`](Self::sync) first for an
    /// up-to-the-instant view.
    pub fn residency(&self) -> &StateResidency {
        &self.residency
    }

    /// How many transitions of `kind` have completed.
    pub fn completed_transitions(&self, kind: TransitionKind) -> u64 {
        self.transition_counts[kind.index()]
    }

    /// Total completed power-state transitions of all kinds.
    pub fn total_transitions(&self) -> u64 {
        self.transition_counts.iter().sum()
    }

    /// How long the machine has been in its current state as of `now`.
    pub fn time_in_state(&self, now: SimTime) -> SimDuration {
        now.since(self.state_entered)
    }

    /// Reports a new CPU utilization (only meaningful while `On`; ignored
    /// with no effect in other states, where draw is fixed).
    pub fn set_utilization(&mut self, now: SimTime, util: f64) {
        let util = util.clamp(0.0, 1.0);
        self.advance(now);
        self.utilization = util;
        let power = self.profile.state_power_w(self.state, util);
        self.cached_power_w = power;
        self.meter.set_power(now, power, self.state);
    }

    /// Begins a power-state transition, returning the instant it completes.
    ///
    /// # Errors
    ///
    /// * [`PowerError::InvalidTransition`] if the machine is not in the
    ///   transition's source state (including when a transition is already
    ///   in flight).
    /// * [`PowerError::UnsupportedTransition`] if the profile lacks the
    ///   transition (e.g. suspend on a legacy host).
    pub fn begin(&mut self, kind: TransitionKind, now: SimTime) -> Result<SimTime, PowerError> {
        if self.state != kind.source() {
            return Err(PowerError::InvalidTransition {
                from: self.state,
                kind,
            });
        }
        let spec = *self
            .profile
            .transitions()
            .spec(kind)
            .ok_or(PowerError::UnsupportedTransition(kind))?;
        let completes_at = now + spec.latency();
        let via = kind.via();
        self.advance(now);
        self.enter_state(via, now);
        self.meter.set_power(now, spec.avg_power_w(), via);
        self.cached_power_w = self.profile.state_power_w(via, self.utilization);
        self.pending = Some((kind, completes_at));
        Ok(completes_at)
    }

    /// Completes the in-flight transition. Must be called exactly at the
    /// instant returned by [`begin`](Self::begin).
    ///
    /// Returns the new (stable) state.
    ///
    /// # Errors
    ///
    /// * [`PowerError::NotTransitioning`] if nothing is in flight.
    /// * [`PowerError::CompletionTimeMismatch`] if called at the wrong time.
    pub fn complete(&mut self, now: SimTime) -> Result<PowerState, PowerError> {
        let (kind, expected) = self.pending.ok_or(PowerError::NotTransitioning)?;
        if now != expected {
            return Err(PowerError::CompletionTimeMismatch {
                expected,
                actual: now,
            });
        }
        self.pending = None;
        let target = kind.target();
        self.advance(now);
        self.enter_state(target, now);
        // A freshly-resumed/booted host starts at its current recorded
        // utilization; the simulator refreshes it on the next tick.
        let power = self.profile.state_power_w(target, self.utilization);
        self.cached_power_w = power;
        self.meter.set_power(now, power, target);
        self.transition_counts[kind.index()] += 1;
        Ok(target)
    }

    /// Fails the in-flight transition: the host spends the transition's
    /// full latency and energy, but lands in the transition's *failure*
    /// state (see [`TransitionKind::failure_target`]) instead of its
    /// target. Must be called exactly at the instant returned by
    /// [`begin`](Self::begin), like [`complete`](Self::complete).
    ///
    /// Returns the state the host landed in.
    ///
    /// # Errors
    ///
    /// * [`PowerError::NotTransitioning`] if nothing is in flight.
    /// * [`PowerError::CompletionTimeMismatch`] if called at the wrong
    ///   time.
    pub fn fail_pending(&mut self, now: SimTime) -> Result<PowerState, PowerError> {
        let (kind, expected) = self.pending.ok_or(PowerError::NotTransitioning)?;
        if now != expected {
            return Err(PowerError::CompletionTimeMismatch {
                expected,
                actual: now,
            });
        }
        self.pending = None;
        let target = kind.failure_target();
        self.advance(now);
        self.enter_state(target, now);
        let power = self.profile.state_power_w(target, self.utilization);
        self.cached_power_w = power;
        self.meter.set_power(now, power, target);
        self.failed_transitions += 1;
        Ok(target)
    }

    /// Stretches the in-flight transition to complete at `new_completion`
    /// instead of the instant [`begin`](Self::begin) returned — a *hung*
    /// transition. The host stays in the transitional state (the "stuck"
    /// interval, observable via [`pending`](Self::pending)) and keeps
    /// burning the transition's average power until the caller invokes
    /// [`complete`](Self::complete) or [`fail_pending`](Self::fail_pending)
    /// exactly at `new_completion`.
    ///
    /// Returns the previously scheduled completion instant.
    ///
    /// # Errors
    ///
    /// [`PowerError::NotTransitioning`] if nothing is in flight.
    ///
    /// # Panics
    ///
    /// Panics if `new_completion` precedes the scheduled completion —
    /// hangs only ever extend a transition.
    pub fn delay_pending(&mut self, new_completion: SimTime) -> Result<SimTime, PowerError> {
        let (kind, expected) = self.pending.ok_or(PowerError::NotTransitioning)?;
        assert!(
            new_completion >= expected,
            "hang must extend the transition ({new_completion} < {expected})"
        );
        self.pending = Some((kind, new_completion));
        Ok(expected)
    }

    /// How many in-flight transitions have failed (via
    /// [`fail_pending`](Self::fail_pending)).
    pub fn failed_transitions(&self) -> u64 {
        self.failed_transitions
    }

    /// Brings residency and energy accounting up to `now` without changing
    /// state. Call at the end of a simulation before reading metrics.
    pub fn sync(&mut self, now: SimTime) {
        self.advance(now);
        self.meter.sync(now);
    }

    /// Accumulates residency for the current state up to `now`.
    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.state_entered);
        if !dt.is_zero() {
            self.residency.add(self.state, dt);
            self.state_entered = now;
        }
    }

    fn enter_state(&mut self, state: PowerState, now: SimTime) {
        self.state = state;
        self.state_entered = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HostPowerProfile;

    fn machine() -> PowerStateMachine {
        PowerStateMachine::new(HostPowerProfile::prototype_rack(), SimTime::ZERO)
    }

    #[test]
    fn starts_on_and_idle() {
        let m = machine();
        assert_eq!(m.state(), PowerState::On);
        assert!(m.is_operational());
        assert_eq!(m.power_w(), m.profile().curve().idle_w());
    }

    #[test]
    fn suspend_resume_cycle() {
        let mut m = machine();
        let done = m
            .begin(TransitionKind::Suspend, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(m.state(), PowerState::Suspending);
        assert!(!m.is_operational());
        assert_eq!(m.pending(), Some((TransitionKind::Suspend, done)));

        assert_eq!(m.complete(done).unwrap(), PowerState::Suspended);
        assert_eq!(m.completed_transitions(TransitionKind::Suspend), 1);

        let done2 = m.begin(TransitionKind::Resume, done).unwrap();
        assert_eq!(m.state(), PowerState::Resuming);
        assert_eq!(m.complete(done2).unwrap(), PowerState::On);
        assert_eq!(m.total_transitions(), 2);
    }

    #[test]
    fn rejects_invalid_source_state() {
        let mut m = machine();
        let err = m.begin(TransitionKind::Resume, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, PowerError::InvalidTransition { .. }));
    }

    #[test]
    fn rejects_double_begin() {
        let mut m = machine();
        m.begin(TransitionKind::Suspend, SimTime::ZERO).unwrap();
        let err = m.begin(TransitionKind::Suspend, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, PowerError::InvalidTransition { .. }));
    }

    #[test]
    fn rejects_unsupported_suspend_on_legacy() {
        let mut m = PowerStateMachine::new(HostPowerProfile::legacy_rack(), SimTime::ZERO);
        let err = m.begin(TransitionKind::Suspend, SimTime::ZERO).unwrap_err();
        assert_eq!(
            err,
            PowerError::UnsupportedTransition(TransitionKind::Suspend)
        );
        // Shutdown still works.
        assert!(m.begin(TransitionKind::Shutdown, SimTime::ZERO).is_ok());
    }

    #[test]
    fn complete_requires_exact_time() {
        let mut m = machine();
        let done = m.begin(TransitionKind::Suspend, SimTime::ZERO).unwrap();
        let err = m.complete(done + SimDuration::from_millis(1)).unwrap_err();
        assert!(matches!(err, PowerError::CompletionTimeMismatch { .. }));
        // The right time still works afterwards.
        assert!(m.complete(done).is_ok());
    }

    #[test]
    fn complete_without_begin_errors() {
        let mut m = machine();
        assert_eq!(
            m.complete(SimTime::ZERO).unwrap_err(),
            PowerError::NotTransitioning
        );
    }

    #[test]
    fn energy_integrates_across_cycle() {
        let mut m = machine();
        let profile = HostPowerProfile::prototype_rack();
        // 100 s idle on.
        let t1 = SimTime::from_secs(100);
        let done = m.begin(TransitionKind::Suspend, t1).unwrap();
        m.complete(done).unwrap();
        // 1000 s suspended.
        let t2 = done + SimDuration::from_secs(1000);
        m.sync(t2);

        let suspend_spec = profile.transitions().spec(TransitionKind::Suspend).unwrap();
        let expected = profile.curve().idle_w() * 100.0
            + suspend_spec.energy_j()
            + profile.suspend_power_w() * 1000.0;
        assert!(
            (m.meter().total_j() - expected).abs() < 1e-6,
            "got {} want {}",
            m.meter().total_j(),
            expected
        );
    }

    #[test]
    fn residency_tracks_states() {
        let mut m = machine();
        let t1 = SimTime::from_secs(50);
        let done = m.begin(TransitionKind::Suspend, t1).unwrap();
        m.complete(done).unwrap();
        let end = done + SimDuration::from_secs(30);
        m.sync(end);
        assert_eq!(
            m.residency().in_state(PowerState::On),
            SimDuration::from_secs(50)
        );
        assert_eq!(
            m.residency().in_state(PowerState::Suspending),
            done.since(t1)
        );
        assert_eq!(
            m.residency().in_state(PowerState::Suspended),
            SimDuration::from_secs(30)
        );
        let frac_on = m.residency().fraction(PowerState::On);
        assert!(frac_on > 0.0 && frac_on < 1.0);
    }

    #[test]
    fn utilization_changes_power() {
        let mut m = machine();
        m.set_utilization(SimTime::ZERO, 1.0);
        assert_eq!(m.power_w(), m.profile().curve().peak_w());
        m.set_utilization(SimTime::from_secs(1), 2.0); // clamps
        assert_eq!(m.power_w(), m.profile().curve().peak_w());
    }

    #[test]
    #[should_panic(expected = "initial state must be stable")]
    fn initial_state_must_be_stable() {
        PowerStateMachine::with_initial_state(
            HostPowerProfile::prototype_rack(),
            PowerState::Booting,
            SimTime::ZERO,
        );
    }

    #[test]
    fn failed_resume_lands_off() {
        let mut m = machine();
        let done = m.begin(TransitionKind::Suspend, SimTime::ZERO).unwrap();
        m.complete(done).unwrap();
        let done2 = m.begin(TransitionKind::Resume, done).unwrap();
        assert_eq!(m.fail_pending(done2).unwrap(), PowerState::Off);
        assert_eq!(m.failed_transitions(), 1);
        assert_eq!(m.completed_transitions(TransitionKind::Resume), 0);
        // Recovery path: boot from off.
        let done3 = m.begin(TransitionKind::Boot, done2).unwrap();
        assert_eq!(m.complete(done3).unwrap(), PowerState::On);
    }

    #[test]
    fn failed_suspend_stays_on() {
        let mut m = machine();
        let done = m.begin(TransitionKind::Suspend, SimTime::ZERO).unwrap();
        assert_eq!(m.fail_pending(done).unwrap(), PowerState::On);
        assert!(m.is_operational());
    }

    #[test]
    fn fail_pending_requires_exact_time() {
        let mut m = machine();
        let done = m.begin(TransitionKind::Suspend, SimTime::ZERO).unwrap();
        assert!(matches!(
            m.fail_pending(done + SimDuration::from_millis(1))
                .unwrap_err(),
            PowerError::CompletionTimeMismatch { .. }
        ));
        assert_eq!(m.fail_pending(done).unwrap(), PowerState::On);
        assert_eq!(
            m.fail_pending(done).unwrap_err(),
            PowerError::NotTransitioning
        );
    }

    #[test]
    fn delayed_transition_hangs_then_fails() {
        let mut m = machine();
        let profile = HostPowerProfile::prototype_rack();
        let done = m.begin(TransitionKind::Suspend, SimTime::ZERO).unwrap();
        // Stretch the transition to 4x its nominal latency: the machine
        // stays Suspending for the whole stuck interval.
        let stuck_done =
            SimTime::ZERO + SimDuration::from_millis(4 * done.since(SimTime::ZERO).as_millis());
        assert_eq!(m.delay_pending(stuck_done).unwrap(), done);
        assert_eq!(m.pending(), Some((TransitionKind::Suspend, stuck_done)));
        assert_eq!(m.state(), PowerState::Suspending);
        // The old completion instant is no longer valid.
        assert!(matches!(
            m.complete(done).unwrap_err(),
            PowerError::CompletionTimeMismatch { .. }
        ));
        // Failing at the stretched instant lands the failure target and
        // counts as a failed transition.
        assert_eq!(m.fail_pending(stuck_done).unwrap(), PowerState::On);
        assert_eq!(m.failed_transitions(), 1);
        // The stuck interval burned transition power the whole time.
        let spec = profile.transitions().spec(TransitionKind::Suspend).unwrap();
        let expected = spec.avg_power_w() * stuck_done.since(SimTime::ZERO).as_secs_f64();
        assert!(
            (m.meter().total_j() - expected).abs() < 1e-6,
            "got {} want {}",
            m.meter().total_j(),
            expected
        );
    }

    #[test]
    fn delay_pending_requires_in_flight_transition() {
        let mut m = machine();
        assert_eq!(
            m.delay_pending(SimTime::from_secs(1)).unwrap_err(),
            PowerError::NotTransitioning
        );
    }

    #[test]
    fn park_unpark_cycle_on_ladder_profile() {
        let mut m =
            PowerStateMachine::new(HostPowerProfile::prototype_rack_ladder(), SimTime::ZERO);
        let done = m
            .begin(TransitionKind::Park, SimTime::from_secs(5))
            .unwrap();
        assert_eq!(m.state(), PowerState::Parking);
        assert!(!m.is_operational());
        assert_eq!(m.complete(done).unwrap(), PowerState::PackageIdle);
        assert!(PowerState::PackageIdle.is_stable());
        assert_eq!(m.completed_transitions(TransitionKind::Park), 1);

        let done2 = m.begin(TransitionKind::Unpark, done).unwrap();
        assert_eq!(m.state(), PowerState::Unparking);
        assert_eq!(m.complete(done2).unwrap(), PowerState::On);
        assert_eq!(m.total_transitions(), 2);
    }

    #[test]
    fn park_unsupported_on_three_rung_profile() {
        let mut m = machine();
        assert_eq!(
            m.begin(TransitionKind::Park, SimTime::ZERO).unwrap_err(),
            PowerError::UnsupportedTransition(TransitionKind::Park)
        );
    }

    #[test]
    fn failed_unpark_lands_off() {
        let mut m =
            PowerStateMachine::new(HostPowerProfile::prototype_rack_ladder(), SimTime::ZERO);
        let done = m.begin(TransitionKind::Park, SimTime::ZERO).unwrap();
        m.complete(done).unwrap();
        let done2 = m.begin(TransitionKind::Unpark, done).unwrap();
        assert_eq!(m.fail_pending(done2).unwrap(), PowerState::Off);
        // Recovery is a cold boot, exactly like a failed resume.
        let done3 = m.begin(TransitionKind::Boot, done2).unwrap();
        assert_eq!(m.complete(done3).unwrap(), PowerState::On);
    }

    #[test]
    fn can_start_off() {
        let mut m = PowerStateMachine::with_initial_state(
            HostPowerProfile::prototype_rack(),
            PowerState::Off,
            SimTime::ZERO,
        );
        assert!(!m.is_operational());
        let done = m.begin(TransitionKind::Boot, SimTime::ZERO).unwrap();
        assert_eq!(m.complete(done).unwrap(), PowerState::On);
    }
}
