//! Host power profiles: curve + state powers + transition table.
//!
//! The presets are calibrated to the hardware class of the paper's
//! prototypes (2013-era 2U rack and blade enterprise servers). The key
//! quantitative relationships the evaluation depends on are preserved:
//!
//! * idle power is ~half of peak (the proportionality gap),
//! * the S3-class suspended state draws a few percent of idle power,
//! * suspend/resume complete in seconds, one to two orders of magnitude
//!   faster and cheaper than the shutdown/boot cycle,
//! * a cold boot burns minutes of near-peak power.

use std::fmt;

use simcore::SimDuration;

use crate::breakeven::LowPowerMode;
use crate::{
    ConfigError, DvfsModel, PowerCurve, PowerState, PsuModel, TransitionKind, TransitionSpec,
    TransitionTable,
};

/// One rung of a profile's power-state ladder, ordered shallow→deep:
/// lower wake latency, higher resting draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderRung {
    /// The low-power mode this rung parks the host in.
    pub mode: LowPowerMode,
    /// Resting draw in the rung's stable state, watts (DC side).
    pub resting_power_w: f64,
    /// Latency of the rung's wake transition back to `On`.
    pub wake_latency: SimDuration,
}

/// A named, immutable description of one server model's power behaviour.
///
/// # Example
///
/// ```
/// use power::{HostPowerProfile, PowerState};
///
/// let p = HostPowerProfile::prototype_rack();
/// assert!(p.supports_suspend());
/// // Suspended draw is a few percent of idle draw.
/// assert!(p.suspend_power_w() < 0.1 * p.curve().idle_w());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HostPowerProfile {
    name: String,
    curve: PowerCurve,
    suspend_power_w: f64,
    off_power_w: f64,
    package_idle_power_w: Option<f64>,
    transitions: TransitionTable,
    psu: Option<PsuModel>,
    dvfs: Option<DvfsModel>,
}

impl HostPowerProfile {
    /// Builds a custom profile.
    ///
    /// # Panics
    ///
    /// Panics on the inputs [`try_new`](Self::try_new) rejects.
    pub fn new(
        name: impl Into<String>,
        curve: PowerCurve,
        suspend_power_w: f64,
        off_power_w: f64,
        transitions: TransitionTable,
    ) -> Self {
        Self::try_new(name, curve, suspend_power_w, off_power_w, transitions)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a custom profile, rejecting bad inputs instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if either low-power draw is negative/non-finite, or
    /// exceeds the curve's idle power (a "low-power" state that draws more
    /// than idle indicates a configuration error).
    pub fn try_new(
        name: impl Into<String>,
        curve: PowerCurve,
        suspend_power_w: f64,
        off_power_w: f64,
        transitions: TransitionTable,
    ) -> Result<Self, ConfigError> {
        if !suspend_power_w.is_finite() || suspend_power_w < 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "suspend power",
                value: suspend_power_w,
                constraint: "must be finite and >= 0",
            });
        }
        if !off_power_w.is_finite() || off_power_w < 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "off power",
                value: off_power_w,
                constraint: "must be finite and >= 0",
            });
        }
        if suspend_power_w > curve.idle_w() || off_power_w > curve.idle_w() {
            return Err(ConfigError::Invalid {
                message: "low-power draw exceeds idle draw",
            });
        }
        Ok(HostPowerProfile {
            name: name.into(),
            curve,
            suspend_power_w,
            off_power_w,
            package_idle_power_w: None,
            transitions,
            psu: None,
            dvfs: None,
        })
    }

    /// Attaches a PSU conversion-loss model: all powers reported by
    /// [`state_power_w`](Self::state_power_w) become AC wall powers. Use
    /// this when the profile's curve and state powers were specified on
    /// the DC side; the built-in prototype presets are already calibrated
    /// as wall measurements and need no PSU.
    pub fn with_psu(mut self, psu: PsuModel) -> Self {
        self.name = format!("{}+psu", self.name);
        self.psu = Some(psu);
        self
    }

    /// The attached PSU model, if any.
    pub fn psu(&self) -> Option<&PsuModel> {
        self.psu.as_ref()
    }

    /// Adds the C6-class package-idle rung: resting draw `power_w`, with
    /// `park`/`unpark` transitions. The rung sits between `On` and
    /// `Suspended` on the ladder — it must draw less than idle.
    ///
    /// # Panics
    ///
    /// Panics on the inputs [`try_with_package_idle`](Self::try_with_package_idle)
    /// rejects.
    pub fn with_package_idle(
        self,
        power_w: f64,
        park: TransitionSpec,
        unpark: TransitionSpec,
    ) -> Self {
        self.try_with_package_idle(power_w, park, unpark)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Adds the package-idle rung, rejecting bad inputs instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if `power_w` is negative/non-finite or exceeds the
    /// curve's idle power.
    pub fn try_with_package_idle(
        mut self,
        power_w: f64,
        park: TransitionSpec,
        unpark: TransitionSpec,
    ) -> Result<Self, ConfigError> {
        if !power_w.is_finite() || power_w < 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "package-idle power",
                value: power_w,
                constraint: "must be finite and >= 0",
            });
        }
        if power_w > self.curve.idle_w() {
            return Err(ConfigError::Invalid {
                message: "low-power draw exceeds idle draw",
            });
        }
        self.name = format!("{}+c6", self.name);
        self.package_idle_power_w = Some(power_w);
        self.transitions = self.transitions.with_package_idle(park, unpark);
        Ok(self)
    }

    /// Attaches a DVFS model: while `On`, the host is assumed to run at
    /// the lowest sufficient frequency for its utilization, so the
    /// `On`-state power reported by [`state_power_w`](Self::state_power_w)
    /// becomes [`DvfsModel::best_power_w`] over the profile's curve. The
    /// built-in presets attach no DVFS model, leaving their `On` draw
    /// exactly on the nominal curve.
    pub fn with_dvfs(mut self, dvfs: DvfsModel) -> Self {
        self.name = format!("{}+dvfs", self.name);
        self.dvfs = Some(dvfs);
        self
    }

    /// The attached DVFS model, if any.
    pub fn dvfs(&self) -> Option<&DvfsModel> {
        self.dvfs.as_ref()
    }

    /// The paper's main prototype class: a 2U rack server with a working
    /// low-latency suspend-to-RAM path.
    ///
    /// Calibration: idle 155 W / peak 315 W (linear), S3 draw 8.5 W, off
    /// standby 4.5 W; suspend 7 s @ 120 W, resume 12 s @ 180 W; shutdown
    /// 80 s @ 140 W, boot 180 s @ 240 W.
    pub fn prototype_rack() -> Self {
        HostPowerProfile::new(
            "prototype-rack-s3",
            PowerCurve::linear(155.0, 315.0),
            8.5,
            4.5,
            TransitionTable::with_suspend(
                TransitionSpec::new(SimDuration::from_secs(7), 120.0),
                TransitionSpec::new(SimDuration::from_secs(12), 180.0),
                TransitionSpec::new(SimDuration::from_secs(80), 140.0),
                TransitionSpec::new(SimDuration::from_secs(180), 240.0),
            ),
        )
    }

    /// The paper's blade prototype class: lower absolute power, slightly
    /// faster transitions.
    pub fn prototype_blade() -> Self {
        HostPowerProfile::new(
            "prototype-blade-s3",
            PowerCurve::linear(95.0, 210.0),
            6.0,
            3.0,
            TransitionTable::with_suspend(
                TransitionSpec::new(SimDuration::from_secs(6), 85.0),
                TransitionSpec::new(SimDuration::from_secs(10), 130.0),
                TransitionSpec::new(SimDuration::from_secs(70), 100.0),
                TransitionSpec::new(SimDuration::from_secs(150), 170.0),
            ),
        )
    }

    /// The rack prototype with a SPECpower-style *sub-linear* curve:
    /// power rises steeply at low utilization and flattens toward peak
    /// (same idle/peak endpoints and transitions as
    /// [`prototype_rack`](Self::prototype_rack)). Used by the curve-shape
    /// ablation (F16): the steeper the low-util region, the more
    /// consolidation pays.
    pub fn prototype_rack_sublinear() -> Self {
        let base = Self::prototype_rack();
        HostPowerProfile::new(
            "prototype-rack-s3-sublinear",
            PowerCurve::piecewise(vec![
                (0.0, 155.0),
                (0.1, 200.0),
                (0.25, 235.0),
                (0.5, 270.0),
                (0.75, 295.0),
                (1.0, 315.0),
            ]),
            base.suspend_power_w(),
            base.off_power_w(),
            base.transitions().clone(),
        )
    }

    /// The rack prototype with a *super-linear* (convex) curve: power
    /// stays near idle until high utilization (same endpoints and
    /// transitions as [`prototype_rack`](Self::prototype_rack)). The
    /// other pole of the F16 curve-shape ablation.
    pub fn prototype_rack_superlinear() -> Self {
        let base = Self::prototype_rack();
        HostPowerProfile::new(
            "prototype-rack-s3-superlinear",
            PowerCurve::piecewise(vec![
                (0.0, 155.0),
                (0.25, 170.0),
                (0.5, 195.0),
                (0.75, 240.0),
                (1.0, 315.0),
            ]),
            base.suspend_power_w(),
            base.off_power_w(),
            base.transitions().clone(),
        )
    }

    /// The rack prototype extended with a C6-class package-idle rung: the
    /// full C6→S3→S5 ladder. Calibration follows AgilePkgC-style package
    /// idle: resting draw 45 W (well below the 155 W idle floor, well
    /// above the 8.5 W S3 draw), sub-second entry (0.5 s @ 140 W) and a
    /// 2 s @ 180 W wake — an order of magnitude faster than the 12 s S3
    /// resume, which is itself an order faster than the 180 s boot.
    pub fn prototype_rack_ladder() -> Self {
        let mut p = Self::prototype_rack().with_package_idle(
            45.0,
            TransitionSpec::new(SimDuration::from_millis(500), 140.0),
            TransitionSpec::new(SimDuration::from_secs(2), 180.0),
        );
        p.name = "prototype-rack-ladder".into();
        p
    }

    /// The blade prototype extended with a package-idle rung (28 W
    /// resting, 0.4 s @ 100 W park, 1.5 s @ 130 W unpark).
    pub fn prototype_blade_ladder() -> Self {
        let mut p = Self::prototype_blade().with_package_idle(
            28.0,
            TransitionSpec::new(SimDuration::from_millis(400), 100.0),
            TransitionSpec::new(SimDuration::from_millis(1500), 130.0),
        );
        p.name = "prototype-blade-ladder".into();
        p
    }

    /// A legacy enterprise server *without* a usable suspend path — the
    /// status quo the paper argues against. Only shutdown/boot available,
    /// and the boot is slow.
    pub fn legacy_rack() -> Self {
        HostPowerProfile::new(
            "legacy-rack",
            PowerCurve::linear(155.0, 315.0),
            8.5, // state power is defined but unreachable: no suspend transition
            4.5,
            TransitionTable::without_suspend(
                TransitionSpec::new(SimDuration::from_secs(90), 140.0),
                TransitionSpec::new(SimDuration::from_secs(240), 240.0),
            ),
        )
    }

    /// The theoretical energy-proportional machine: power tracks load
    /// exactly and transitions are near-free. Used as the lower bound in
    /// proportionality plots.
    pub fn ideal_proportional() -> Self {
        HostPowerProfile::new(
            "ideal-proportional",
            PowerCurve::proportional(315.0),
            0.0,
            0.0,
            TransitionTable::with_suspend(
                TransitionSpec::new(SimDuration::from_millis(1), 0.0),
                TransitionSpec::new(SimDuration::from_millis(1), 0.0),
                TransitionSpec::new(SimDuration::from_millis(1), 0.0),
                TransitionSpec::new(SimDuration::from_millis(1), 0.0),
            ),
        )
    }

    /// A copy of this profile with the resume latency replaced — used by the
    /// wake-latency sensitivity sweep (experiment F7).
    ///
    /// # Panics
    ///
    /// Panics if the profile does not support suspend.
    pub fn with_resume_latency(&self, latency: SimDuration) -> Self {
        let t = &self.transitions;
        let suspend = *t
            .spec(TransitionKind::Suspend)
            .expect("profile must support suspend");
        let resume = t
            .spec(TransitionKind::Resume)
            .expect("suspend implies resume");
        let mut p = self.clone();
        p.name = format!("{}+resume{}", self.name, latency);
        p.transitions = TransitionTable::with_suspend(
            suspend,
            TransitionSpec::new(latency, resume.avg_power_w()),
            *t.spec(TransitionKind::Shutdown).expect("always present"),
            *t.spec(TransitionKind::Boot).expect("always present"),
        );
        p
    }

    /// Model name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The utilization→power curve used while `On`.
    pub fn curve(&self) -> &PowerCurve {
        &self.curve
    }

    /// Draw in the S3-class suspended state, watts.
    pub fn suspend_power_w(&self) -> f64 {
        self.suspend_power_w
    }

    /// Standby draw in the off state, watts.
    pub fn off_power_w(&self) -> f64 {
        self.off_power_w
    }

    /// Resting draw in the C6-class package-idle state, watts — `None` if
    /// the profile has no package-idle rung.
    pub fn package_idle_power_w(&self) -> Option<f64> {
        self.package_idle_power_w
    }

    /// The transition table.
    pub fn transitions(&self) -> &TransitionTable {
        &self.transitions
    }

    /// Whether the suspend/resume pair is available.
    pub fn supports_suspend(&self) -> bool {
        self.transitions.supports_suspend()
    }

    /// Whether the park/unpark (package-idle) pair is available.
    pub fn supports_package_idle(&self) -> bool {
        self.transitions.supports_package_idle()
    }

    /// The profile's power-state ladder: every supported low-power rung,
    /// ordered shallow→deep (package idle, then suspend, then off), with
    /// each rung's resting draw and wake latency. The classic presets
    /// yield the 2-rung {S3, S5} ladder; `*_ladder` presets add C6.
    pub fn ladder(&self) -> Vec<LadderRung> {
        LowPowerMode::ALL
            .iter()
            .filter_map(|&mode| {
                let up = self.transitions.spec(mode.up())?;
                self.transitions.spec(mode.down())?;
                Some(LadderRung {
                    mode,
                    resting_power_w: mode.resting_power_w(self),
                    wake_latency: up.latency(),
                })
            })
            .collect()
    }

    /// Power draw in `state` at utilization `util` (only `On` uses
    /// `util`). If a PSU model is attached, this is AC wall power;
    /// otherwise it is whatever side the profile was calibrated on.
    pub fn state_power_w(&self, state: PowerState, util: f64) -> f64 {
        let dc = self.state_power_dc_w(state, util);
        match &self.psu {
            Some(psu) => psu.wall_power_w(dc),
            None => dc,
        }
    }

    /// The pre-PSU (DC-side) draw in `state` at utilization `util`.
    fn state_power_dc_w(&self, state: PowerState, util: f64) -> f64 {
        match state {
            PowerState::On => match &self.dvfs {
                Some(dvfs) => dvfs.best_power_w(&self.curve, util),
                None => self.curve.power_at(util),
            },
            PowerState::Suspended => self.suspend_power_w,
            PowerState::Off => self.off_power_w,
            // Only reachable with a package-idle rung configured; the
            // idle-floor fallback covers ad-hoc queries on 3-rung profiles.
            PowerState::PackageIdle => self.package_idle_power_w.unwrap_or(self.curve.idle_w()),
            // Transitional power is whatever the in-flight spec says; the
            // state machine overrides the meter directly during
            // transitions, so this path only matters for ad-hoc queries.
            PowerState::Suspending | PowerState::Resuming => self
                .transitions
                .spec(TransitionKind::Suspend)
                .map_or(self.curve.idle_w(), |s| s.avg_power_w()),
            PowerState::ShuttingDown | PowerState::Booting => self
                .transitions
                .spec(TransitionKind::Boot)
                .map_or(self.curve.idle_w(), |s| s.avg_power_w()),
            PowerState::Parking | PowerState::Unparking => self
                .transitions
                .spec(TransitionKind::Park)
                .map_or(self.curve.idle_w(), |s| s.avg_power_w()),
        }
    }
}

impl fmt::Display for HostPowerProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (idle {:.0} W, peak {:.0} W, suspend {:.1} W, off {:.1} W)",
            self.name,
            self.curve.idle_w(),
            self.curve.peak_w(),
            self.suspend_power_w,
            self.off_power_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_preserves_paper_relationships() {
        let p = HostPowerProfile::prototype_rack();
        // Idle is roughly half of peak.
        let frac = p.curve().idle_fraction();
        assert!((0.4..0.6).contains(&frac), "idle fraction {frac}");
        // Suspended draw is a few percent of idle.
        assert!(p.suspend_power_w() < 0.1 * p.curve().idle_w());
        // Suspend+resume is >10x faster than shutdown+boot.
        let t = p.transitions();
        let s3_cycle = t.spec(TransitionKind::Suspend).unwrap().latency()
            + t.spec(TransitionKind::Resume).unwrap().latency();
        let s5_cycle = t.spec(TransitionKind::Shutdown).unwrap().latency()
            + t.spec(TransitionKind::Boot).unwrap().latency();
        assert!(s5_cycle.as_secs_f64() > 10.0 * s3_cycle.as_secs_f64());
        // ...and >10x cheaper in energy.
        let s3_energy = t.spec(TransitionKind::Suspend).unwrap().energy_j()
            + t.spec(TransitionKind::Resume).unwrap().energy_j();
        let s5_energy = t.spec(TransitionKind::Shutdown).unwrap().energy_j()
            + t.spec(TransitionKind::Boot).unwrap().energy_j();
        assert!(s5_energy > 10.0 * s3_energy);
    }

    #[test]
    fn legacy_has_no_suspend() {
        let p = HostPowerProfile::legacy_rack();
        assert!(!p.supports_suspend());
    }

    #[test]
    fn ideal_is_proportional() {
        let p = HostPowerProfile::ideal_proportional();
        assert_eq!(p.state_power_w(PowerState::On, 0.0), 0.0);
        assert_eq!(p.state_power_w(PowerState::On, 0.5), 157.5);
    }

    #[test]
    fn state_power_dispatch() {
        let p = HostPowerProfile::prototype_rack();
        assert_eq!(p.state_power_w(PowerState::On, 1.0), 315.0);
        assert_eq!(p.state_power_w(PowerState::Suspended, 1.0), 8.5);
        assert_eq!(p.state_power_w(PowerState::Off, 1.0), 4.5);
    }

    #[test]
    fn with_resume_latency_overrides_only_resume() {
        let p = HostPowerProfile::prototype_rack();
        let q = p.with_resume_latency(SimDuration::from_secs(99));
        assert_eq!(
            q.transitions()
                .spec(TransitionKind::Resume)
                .unwrap()
                .latency(),
            SimDuration::from_secs(99)
        );
        assert_eq!(
            q.transitions()
                .spec(TransitionKind::Suspend)
                .unwrap()
                .latency(),
            p.transitions()
                .spec(TransitionKind::Suspend)
                .unwrap()
                .latency()
        );
        assert_ne!(q.name(), p.name());
    }

    #[test]
    #[should_panic(expected = "low-power draw exceeds idle draw")]
    fn rejects_suspend_above_idle() {
        HostPowerProfile::new(
            "bad",
            PowerCurve::linear(100.0, 200.0),
            150.0,
            5.0,
            TransitionTable::without_suspend(
                TransitionSpec::new(SimDuration::from_secs(10), 100.0),
                TransitionSpec::new(SimDuration::from_secs(10), 100.0),
            ),
        );
    }

    #[test]
    fn ladder_preset_orders_rungs_shallow_to_deep() {
        let p = HostPowerProfile::prototype_rack_ladder();
        assert!(p.supports_package_idle());
        let ladder = p.ladder();
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0].mode, LowPowerMode::PackageIdle);
        assert_eq!(ladder[1].mode, LowPowerMode::Suspend);
        assert_eq!(ladder[2].mode, LowPowerMode::Off);
        // Deeper rung ⇒ lower resting power, longer wake.
        for pair in ladder.windows(2) {
            assert!(pair[0].resting_power_w > pair[1].resting_power_w);
            assert!(pair[0].wake_latency < pair[1].wake_latency);
        }
    }

    #[test]
    fn three_rung_preset_is_the_special_case() {
        let p = HostPowerProfile::prototype_rack();
        assert!(!p.supports_package_idle());
        assert!(p.package_idle_power_w().is_none());
        let modes: Vec<_> = p.ladder().iter().map(|r| r.mode).collect();
        assert_eq!(modes, vec![LowPowerMode::Suspend, LowPowerMode::Off]);
    }

    #[test]
    fn package_idle_state_power_dispatch() {
        let p = HostPowerProfile::prototype_rack_ladder();
        assert_eq!(p.state_power_w(PowerState::PackageIdle, 1.0), 45.0);
        assert_eq!(p.state_power_w(PowerState::Parking, 0.0), 140.0);
        assert_eq!(p.state_power_w(PowerState::Unparking, 0.0), 140.0);
        // A 3-rung profile answers the idle floor for ad-hoc queries.
        let q = HostPowerProfile::prototype_rack();
        assert_eq!(q.state_power_w(PowerState::PackageIdle, 0.0), 155.0);
    }

    #[test]
    fn dvfs_attachment_scales_only_on_state() {
        let base = HostPowerProfile::prototype_rack();
        let scaled = HostPowerProfile::prototype_rack().with_dvfs(crate::DvfsModel::typical_2013());
        assert!(scaled.name().ends_with("+dvfs"));
        assert!(scaled.dvfs().is_some());
        assert!(
            scaled.state_power_w(PowerState::On, 0.3) < base.state_power_w(PowerState::On, 0.3)
        );
        assert_eq!(
            scaled.state_power_w(PowerState::Suspended, 0.3),
            base.state_power_w(PowerState::Suspended, 0.3)
        );
        // Nothing to scale at full load.
        assert!(
            (scaled.state_power_w(PowerState::On, 1.0) - base.state_power_w(PowerState::On, 1.0))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn try_new_rejects_bad_inputs() {
        let table = || {
            TransitionTable::without_suspend(
                TransitionSpec::new(SimDuration::from_secs(10), 100.0),
                TransitionSpec::new(SimDuration::from_secs(10), 100.0),
            )
        };
        let err = HostPowerProfile::try_new(
            "bad",
            PowerCurve::linear(100.0, 200.0),
            f64::NAN,
            5.0,
            table(),
        )
        .unwrap_err();
        assert!(
            matches!(err, crate::ConfigError::OutOfRange { field, .. } if field.contains("suspend"))
        );
        let err =
            HostPowerProfile::try_new("bad", PowerCurve::linear(100.0, 200.0), 5.0, 150.0, table())
                .unwrap_err();
        assert_eq!(
            err,
            crate::ConfigError::Invalid {
                message: "low-power draw exceeds idle draw"
            }
        );
    }

    #[test]
    fn try_with_package_idle_rejects_draw_above_idle() {
        let err = HostPowerProfile::prototype_rack()
            .try_with_package_idle(
                200.0,
                TransitionSpec::new(SimDuration::from_millis(500), 140.0),
                TransitionSpec::new(SimDuration::from_secs(2), 180.0),
            )
            .unwrap_err();
        assert!(matches!(err, crate::ConfigError::Invalid { .. }));
    }

    #[test]
    fn psu_inflates_all_states() {
        let dc = HostPowerProfile::prototype_rack();
        let wall =
            HostPowerProfile::prototype_rack().with_psu(crate::PsuModel::eighty_plus_gold(400.0));
        for (state, util) in [
            (PowerState::On, 0.0),
            (PowerState::On, 0.7),
            (PowerState::Suspended, 0.0),
            (PowerState::Off, 0.0),
        ] {
            assert!(
                wall.state_power_w(state, util) > dc.state_power_w(state, util),
                "{state} at {util}"
            );
        }
        assert!(wall.name().ends_with("+psu"));
        assert!(wall.psu().is_some());
    }

    #[test]
    fn display_summarizes() {
        let s = HostPowerProfile::prototype_rack().to_string();
        assert!(s.contains("prototype-rack-s3"));
        assert!(s.contains("155"));
    }
}
