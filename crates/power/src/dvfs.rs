//! DVFS (frequency-scaling) modeling — the classic *active* power knob.
//!
//! Before low-latency platform states, the standard dynamic power lever
//! was per-host voltage/frequency scaling: slow the clock when demand is
//! low. DVFS acts in microseconds but only shrinks the *dynamic* power
//! component — the idle floor (leakage, fans, disks, DRAM refresh) stays.
//! That is why the paper pursues platform low-power states instead: the
//! evaluation's DVFS-only baseline (experiment T22) shows frequency
//! scaling alone cannot approach energy proportionality.

use crate::{ConfigError, PowerCurve};

/// A DVFS operating point: relative frequency and the scale factor it
/// applies to the *dynamic* (utilization-dependent) power component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsLevel {
    /// Clock fraction of nominal, in `(0, 1]` — also the capacity
    /// fraction the host can serve at this level.
    pub freq_frac: f64,
    /// Multiplier on the dynamic power component (≈ `f·V²`; sub-linear
    /// voltage scaling makes this fall faster than frequency).
    pub dyn_power_scale: f64,
}

/// A host's DVFS capability: a ladder of operating points.
///
/// # Example
///
/// ```
/// use power::{DvfsModel, PowerCurve};
///
/// let dvfs = DvfsModel::typical_2013();
/// let curve = PowerCurve::linear(155.0, 315.0);
/// // A host at 30% of nominal demand can clock down and save dynamic
/// // power — but never below the idle floor.
/// let scaled = dvfs.best_power_w(&curve, 0.3);
/// assert!(scaled < curve.power_at(0.3));
/// assert!(scaled >= curve.idle_w() * 0.99);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsModel {
    levels: Vec<DvfsLevel>,
}

impl DvfsModel {
    /// Builds a model from operating points.
    ///
    /// # Panics
    ///
    /// Panics on the inputs [`try_new`](Self::try_new) rejects.
    pub fn new(levels: Vec<DvfsLevel>) -> Self {
        Self::try_new(levels).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a model from operating points, rejecting bad inputs instead
    /// of panicking.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if `levels` is empty, frequencies are not strictly
    /// increasing in `(0, 1]`, the top level is not nominal (1.0), or any
    /// power scale is outside `(0, 1]`.
    pub fn try_new(levels: Vec<DvfsLevel>) -> Result<Self, ConfigError> {
        if levels.is_empty() {
            return Err(ConfigError::Invalid {
                message: "need at least one DVFS level",
            });
        }
        for pair in levels.windows(2) {
            if pair[0].freq_frac >= pair[1].freq_frac {
                return Err(ConfigError::Invalid {
                    message: "levels must be strictly increasing in frequency",
                });
            }
        }
        for l in &levels {
            if !(l.freq_frac > 0.0 && l.freq_frac <= 1.0) {
                return Err(ConfigError::OutOfRange {
                    field: "frequency fraction",
                    value: l.freq_frac,
                    constraint: "outside (0,1]",
                });
            }
            if !(l.dyn_power_scale > 0.0 && l.dyn_power_scale <= 1.0) {
                return Err(ConfigError::OutOfRange {
                    field: "dynamic power scale",
                    value: l.dyn_power_scale,
                    constraint: "outside (0,1]",
                });
            }
        }
        if levels.last().expect("non-empty").freq_frac != 1.0 {
            return Err(ConfigError::Invalid {
                message: "top level must be nominal frequency",
            });
        }
        Ok(DvfsModel { levels })
    }

    /// A 2013-era server ladder: 40/60/80/100 % clocks with near-cubic
    /// dynamic-power scaling.
    pub fn typical_2013() -> Self {
        DvfsModel::new(vec![
            DvfsLevel {
                freq_frac: 0.4,
                dyn_power_scale: 0.25,
            },
            DvfsLevel {
                freq_frac: 0.6,
                dyn_power_scale: 0.42,
            },
            DvfsLevel {
                freq_frac: 0.8,
                dyn_power_scale: 0.66,
            },
            DvfsLevel {
                freq_frac: 1.0,
                dyn_power_scale: 1.0,
            },
        ])
    }

    /// The operating points.
    pub fn levels(&self) -> &[DvfsLevel] {
        &self.levels
    }

    /// The lowest level that can serve `util` of nominal capacity
    /// (falls back to nominal for overload).
    pub fn level_for(&self, util: f64) -> DvfsLevel {
        let util = util.clamp(0.0, 1.0);
        *self
            .levels
            .iter()
            .find(|l| l.freq_frac + 1e-12 >= util)
            .unwrap_or(self.levels.last().expect("non-empty"))
    }

    /// Power at `util` of nominal capacity when the host picks its best
    /// (lowest sufficient) DVFS level, given the nominal power curve.
    ///
    /// The idle component (`curve.idle_w()`) is frequency-independent;
    /// only the dynamic component scales. At the chosen level the core
    /// runs at `util / freq_frac` of its (reduced) throughput.
    pub fn best_power_w(&self, curve: &PowerCurve, util: f64) -> f64 {
        let util = util.clamp(0.0, 1.0);
        let level = self.level_for(util);
        let idle = curve.idle_w();
        // Dynamic draw of the nominal curve at the *local* utilization of
        // the slowed core, scaled by the level's dynamic-power factor.
        let local_util = (util / level.freq_frac).clamp(0.0, 1.0);
        let dynamic_nominal = curve.power_at(local_util) - idle;
        idle + dynamic_nominal * level.dyn_power_scale
    }
}

impl Default for DvfsModel {
    fn default() -> Self {
        DvfsModel::typical_2013()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> PowerCurve {
        PowerCurve::linear(155.0, 315.0)
    }

    #[test]
    fn level_selection_is_minimal_sufficient() {
        let d = DvfsModel::typical_2013();
        assert_eq!(d.level_for(0.1).freq_frac, 0.4);
        assert_eq!(d.level_for(0.4).freq_frac, 0.4);
        assert_eq!(d.level_for(0.41).freq_frac, 0.6);
        assert_eq!(d.level_for(0.9).freq_frac, 1.0);
        assert_eq!(d.level_for(1.5).freq_frac, 1.0);
    }

    #[test]
    fn scaling_saves_dynamic_power_only() {
        let d = DvfsModel::typical_2013();
        let c = curve();
        // At low utilization DVFS saves versus nominal...
        assert!(d.best_power_w(&c, 0.2) < c.power_at(0.2));
        // ...but can never beat the idle floor.
        assert!(d.best_power_w(&c, 0.0) >= c.idle_w() - 1e-9);
        // At full utilization there is nothing to scale.
        assert!((d.best_power_w(&c, 1.0) - c.power_at(1.0)).abs() < 1e-9);
    }

    #[test]
    fn power_is_monotone_in_utilization() {
        let d = DvfsModel::typical_2013();
        let c = curve();
        let mut prev = 0.0;
        for i in 0..=100 {
            let p = d.best_power_w(&c, i as f64 / 100.0);
            assert!(p + 1e-9 >= prev, "non-monotone at {i}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn savings_bounded_by_idle_floor() {
        // DVFS can only attack the dynamic component: savings at any
        // utilization are bounded by (peak - idle).
        let d = DvfsModel::typical_2013();
        let c = curve();
        for i in 0..=100 {
            let u = i as f64 / 100.0;
            let saved = c.power_at(u) - d.best_power_w(&c, u);
            assert!(saved <= c.peak_w() - c.idle_w() + 1e-9);
            assert!(saved >= -1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "top level must be nominal")]
    fn rejects_missing_nominal_level() {
        DvfsModel::new(vec![DvfsLevel {
            freq_frac: 0.5,
            dyn_power_scale: 0.4,
        }]);
    }

    #[test]
    fn try_new_reports_each_rejection() {
        use crate::ConfigError;
        assert_eq!(
            DvfsModel::try_new(vec![]).unwrap_err(),
            ConfigError::Invalid {
                message: "need at least one DVFS level"
            }
        );
        let unordered = vec![
            DvfsLevel {
                freq_frac: 0.8,
                dyn_power_scale: 0.6,
            },
            DvfsLevel {
                freq_frac: 0.4,
                dyn_power_scale: 0.3,
            },
        ];
        assert!(matches!(
            DvfsModel::try_new(unordered).unwrap_err(),
            ConfigError::Invalid { .. }
        ));
        let bad_scale = vec![DvfsLevel {
            freq_frac: 1.0,
            dyn_power_scale: 1.5,
        }];
        assert!(matches!(
            DvfsModel::try_new(bad_scale).unwrap_err(),
            ConfigError::OutOfRange {
                field: "dynamic power scale",
                ..
            }
        ));
        assert!(DvfsModel::try_new(DvfsModel::typical_2013().levels().to_vec()).is_ok());
    }
}
