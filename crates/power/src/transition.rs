//! Power-state transitions and their latency/energy specifications.

use std::fmt;

use simcore::SimDuration;

use crate::PowerState;

/// The host power-state transitions the management layer can request.
///
/// Each moves between two *stable* states via a transitional state:
///
/// | Kind       | From          | Via            | To            |
/// |------------|---------------|----------------|---------------|
/// | `Park`     | `On`          | `Parking`      | `PackageIdle` |
/// | `Unpark`   | `PackageIdle` | `Unparking`    | `On`          |
/// | `Suspend`  | `On`          | `Suspending`   | `Suspended`   |
/// | `Resume`   | `Suspended`   | `Resuming`     | `On`          |
/// | `Shutdown` | `On`          | `ShuttingDown` | `Off`         |
/// | `Boot`     | `Off`         | `Booting`      | `On`          |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TransitionKind {
    /// Enter the low-latency suspend-to-RAM (S3-class) state.
    Suspend,
    /// Wake from suspend back to fully operational.
    Resume,
    /// Full power-down to the traditional off (S5-class) state.
    Shutdown,
    /// Cold boot from off to fully operational.
    Boot,
    /// Enter the C6-class package-idle state (cores and uncore power-gated,
    /// context retained on-package — sub-second entry).
    Park,
    /// Leave package idle back to fully operational.
    Unpark,
}

impl TransitionKind {
    /// All transition kinds, for iteration in reports and tables.
    pub const ALL: [TransitionKind; 6] = [
        TransitionKind::Suspend,
        TransitionKind::Resume,
        TransitionKind::Shutdown,
        TransitionKind::Boot,
        TransitionKind::Park,
        TransitionKind::Unpark,
    ];

    /// The stable state this transition starts from.
    pub fn source(self) -> PowerState {
        match self {
            TransitionKind::Suspend | TransitionKind::Shutdown | TransitionKind::Park => {
                PowerState::On
            }
            TransitionKind::Resume => PowerState::Suspended,
            TransitionKind::Boot => PowerState::Off,
            TransitionKind::Unpark => PowerState::PackageIdle,
        }
    }

    /// The transitional state the host occupies while this transition runs.
    pub fn via(self) -> PowerState {
        match self {
            TransitionKind::Suspend => PowerState::Suspending,
            TransitionKind::Resume => PowerState::Resuming,
            TransitionKind::Shutdown => PowerState::ShuttingDown,
            TransitionKind::Boot => PowerState::Booting,
            TransitionKind::Park => PowerState::Parking,
            TransitionKind::Unpark => PowerState::Unparking,
        }
    }

    /// The stable state this transition ends in.
    pub fn target(self) -> PowerState {
        match self {
            TransitionKind::Suspend => PowerState::Suspended,
            TransitionKind::Resume | TransitionKind::Boot | TransitionKind::Unpark => {
                PowerState::On
            }
            TransitionKind::Shutdown => PowerState::Off,
            TransitionKind::Park => PowerState::PackageIdle,
        }
    }

    /// Whether this transition takes the host *out of service*
    /// (`Park`/`Suspend`/`Shutdown`) rather than back into it.
    pub fn is_power_down(self) -> bool {
        matches!(
            self,
            TransitionKind::Suspend | TransitionKind::Shutdown | TransitionKind::Park
        )
    }

    /// The stable state the host lands in when this transition *fails*:
    /// a failed park or suspend aborts harmlessly back to `On`; a failed
    /// unpark or resume loses the retained context and leaves the host
    /// `Off` (a cold boot is then required); failed shutdowns and boots
    /// end `Off`.
    ///
    /// Resume failures are the reliability concern the paper's prototype
    /// work addresses; the simulator injects them via
    /// `dcsim::FailureModel`.
    pub fn failure_target(self) -> PowerState {
        match self {
            TransitionKind::Suspend | TransitionKind::Park => PowerState::On,
            TransitionKind::Resume
            | TransitionKind::Shutdown
            | TransitionKind::Boot
            | TransitionKind::Unpark => PowerState::Off,
        }
    }

    /// Dense index for per-kind arrays (transition counts).
    pub(crate) fn index(self) -> usize {
        match self {
            TransitionKind::Suspend => 0,
            TransitionKind::Resume => 1,
            TransitionKind::Shutdown => 2,
            TransitionKind::Boot => 3,
            TransitionKind::Park => 4,
            TransitionKind::Unpark => 5,
        }
    }
}

impl fmt::Display for TransitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransitionKind::Suspend => "suspend",
            TransitionKind::Resume => "resume",
            TransitionKind::Shutdown => "shutdown",
            TransitionKind::Boot => "boot",
            TransitionKind::Park => "park",
            TransitionKind::Unpark => "unpark",
        };
        f.write_str(s)
    }
}

/// Latency and average power draw of one power-state transition.
///
/// Transition *energy* is derived: `energy_j = latency × avg_power_w`.
/// This mirrors how the paper characterizes its prototypes — a measured
/// wall-clock latency and a measured energy for each action.
///
/// # Example
///
/// ```
/// use power::TransitionSpec;
/// use simcore::SimDuration;
///
/// let resume = TransitionSpec::new(SimDuration::from_secs(12), 180.0);
/// assert_eq!(resume.energy_j(), 12.0 * 180.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionSpec {
    latency: SimDuration,
    avg_power_w: f64,
}

impl TransitionSpec {
    /// Creates a spec from a latency and the average power drawn while the
    /// transition runs.
    ///
    /// # Panics
    ///
    /// Panics if `avg_power_w` is negative or not finite, or if `latency`
    /// is zero (instantaneous transitions hide ordering bugs; use
    /// 1 ms for a "negligible" transition).
    pub fn new(latency: SimDuration, avg_power_w: f64) -> Self {
        assert!(
            avg_power_w.is_finite() && avg_power_w >= 0.0,
            "bad transition power {avg_power_w}"
        );
        assert!(!latency.is_zero(), "transition latency must be non-zero");
        TransitionSpec {
            latency,
            avg_power_w,
        }
    }

    /// Wall-clock latency of the transition.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Average power draw while the transition runs, in watts.
    pub fn avg_power_w(&self) -> f64 {
        self.avg_power_w
    }

    /// Total energy consumed by the transition, in joules.
    pub fn energy_j(&self) -> f64 {
        self.latency.as_secs_f64() * self.avg_power_w
    }
}

/// The set of transitions a host supports, with their specs — the
/// generalized power-state *ladder*.
///
/// `Park`/`Unpark` (C6-class package idle) and `Suspend`/`Resume`
/// (S3-class) are optional rungs: legacy enterprise servers often lack a
/// working suspend-to-RAM path, which is exactly the gap the paper's
/// prototypes close, and package idle is the still-newer rung argued for
/// by AgilePkgC-style work. `Shutdown`/`Boot` (S5-class) are always
/// present. Tables built without package idle are the exact 3-rung
/// special case the original model shipped with.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionTable {
    park: Option<TransitionSpec>,
    unpark: Option<TransitionSpec>,
    suspend: Option<TransitionSpec>,
    resume: Option<TransitionSpec>,
    shutdown: TransitionSpec,
    boot: TransitionSpec,
}

impl TransitionTable {
    /// Builds a table with the suspend/resume and shutdown/boot pairs
    /// (no package idle — the classic 3-rung ladder).
    pub fn with_suspend(
        suspend: TransitionSpec,
        resume: TransitionSpec,
        shutdown: TransitionSpec,
        boot: TransitionSpec,
    ) -> Self {
        TransitionTable {
            park: None,
            unpark: None,
            suspend: Some(suspend),
            resume: Some(resume),
            shutdown,
            boot,
        }
    }

    /// Builds a table for a host without suspend-to-RAM support.
    pub fn without_suspend(shutdown: TransitionSpec, boot: TransitionSpec) -> Self {
        TransitionTable {
            park: None,
            unpark: None,
            suspend: None,
            resume: None,
            shutdown,
            boot,
        }
    }

    /// Adds the package-idle rung: `park` enters it, `unpark` leaves it.
    pub fn with_package_idle(mut self, park: TransitionSpec, unpark: TransitionSpec) -> Self {
        self.park = Some(park);
        self.unpark = Some(unpark);
        self
    }

    /// Looks up the spec for `kind`, or `None` if unsupported.
    pub fn spec(&self, kind: TransitionKind) -> Option<&TransitionSpec> {
        match kind {
            TransitionKind::Suspend => self.suspend.as_ref(),
            TransitionKind::Resume => self.resume.as_ref(),
            TransitionKind::Shutdown => Some(&self.shutdown),
            TransitionKind::Boot => Some(&self.boot),
            TransitionKind::Park => self.park.as_ref(),
            TransitionKind::Unpark => self.unpark.as_ref(),
        }
    }

    /// Whether the suspend/resume pair is available.
    pub fn supports_suspend(&self) -> bool {
        self.suspend.is_some() && self.resume.is_some()
    }

    /// Whether the park/unpark (package-idle) pair is available.
    pub fn supports_package_idle(&self) -> bool {
        self.park.is_some() && self.unpark.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(secs: u64, w: f64) -> TransitionSpec {
        TransitionSpec::new(SimDuration::from_secs(secs), w)
    }

    #[test]
    fn endpoints_are_consistent() {
        for kind in TransitionKind::ALL {
            // A transition's via-state is transitional, endpoints stable.
            assert!(kind.source().is_stable(), "{kind} source");
            assert!(kind.target().is_stable(), "{kind} target");
            assert!(!kind.via().is_stable(), "{kind} via");
        }
        assert_eq!(TransitionKind::Suspend.target(), PowerState::Suspended);
        assert_eq!(TransitionKind::Boot.target(), PowerState::On);
    }

    #[test]
    fn power_down_classification() {
        assert!(TransitionKind::Suspend.is_power_down());
        assert!(TransitionKind::Shutdown.is_power_down());
        assert!(TransitionKind::Park.is_power_down());
        assert!(!TransitionKind::Resume.is_power_down());
        assert!(!TransitionKind::Boot.is_power_down());
        assert!(!TransitionKind::Unpark.is_power_down());
    }

    #[test]
    fn package_idle_endpoints_and_failures() {
        assert_eq!(TransitionKind::Park.source(), PowerState::On);
        assert_eq!(TransitionKind::Park.target(), PowerState::PackageIdle);
        assert_eq!(TransitionKind::Unpark.source(), PowerState::PackageIdle);
        assert_eq!(TransitionKind::Unpark.target(), PowerState::On);
        // A failed park aborts harmlessly; a failed unpark loses context.
        assert_eq!(TransitionKind::Park.failure_target(), PowerState::On);
        assert_eq!(TransitionKind::Unpark.failure_target(), PowerState::Off);
    }

    #[test]
    fn package_idle_rung_is_optional() {
        let three_rung = TransitionTable::with_suspend(
            spec(7, 120.0),
            spec(12, 180.0),
            spec(80, 140.0),
            spec(180, 240.0),
        );
        assert!(!three_rung.supports_package_idle());
        assert!(three_rung.spec(TransitionKind::Park).is_none());

        let ladder = three_rung.with_package_idle(spec(1, 140.0), spec(2, 180.0));
        assert!(ladder.supports_package_idle());
        assert_eq!(
            ladder.spec(TransitionKind::Unpark).unwrap().latency(),
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn energy_is_latency_times_power() {
        let s = spec(10, 150.0);
        assert_eq!(s.energy_j(), 1500.0);
        assert_eq!(s.latency(), SimDuration::from_secs(10));
        assert_eq!(s.avg_power_w(), 150.0);
    }

    #[test]
    #[should_panic(expected = "latency must be non-zero")]
    fn zero_latency_rejected() {
        TransitionSpec::new(SimDuration::ZERO, 100.0);
    }

    #[test]
    fn table_lookup_and_support() {
        let full = TransitionTable::with_suspend(
            spec(7, 120.0),
            spec(12, 180.0),
            spec(80, 140.0),
            spec(180, 220.0),
        );
        assert!(full.supports_suspend());
        assert_eq!(
            full.spec(TransitionKind::Resume).unwrap().latency(),
            SimDuration::from_secs(12)
        );

        let legacy = TransitionTable::without_suspend(spec(80, 140.0), spec(240, 220.0));
        assert!(!legacy.supports_suspend());
        assert!(legacy.spec(TransitionKind::Suspend).is_none());
        assert!(legacy.spec(TransitionKind::Boot).is_some());
    }

    #[test]
    fn display_names() {
        assert_eq!(TransitionKind::Suspend.to_string(), "suspend");
        assert_eq!(TransitionKind::Boot.to_string(), "boot");
    }
}
