//! Server power substrate for the `agilepm` workspace.
//!
//! This crate models everything the management layer needs to know about a
//! physical server's power behaviour, replacing the instrumented hardware
//! prototypes of the ISCA'13 paper with calibrated, table-driven models:
//!
//! * [`PowerState`] and [`PowerStateMachine`] — the ACPI-like host state
//!   machine (`On`, `PackageIdle` (C6-class), `Suspended` (S3-class),
//!   `Off` (S5-class), plus one transitional state per transition kind),
//!   with strict transition validation.
//! * [`TransitionSpec`] and [`TransitionTable`] — per-transition latency and
//!   average power, from which transition *energy* follows; optional
//!   park/unpark and suspend/resume rungs form the generalized
//!   power-state ladder.
//! * [`PowerCurve`] — utilization→power curves (linear, SPECpower-style
//!   piecewise, and ideal-proportional).
//! * [`HostPowerProfile`] — a named bundle of curve + state powers +
//!   transition table, with presets calibrated to the paper's prototype
//!   class of hardware ([`HostPowerProfile::prototype_rack`] etc.).
//! * [`EnergyMeter`] — exact step-function energy integration with a
//!   per-state breakdown and optional power trace.
//! * [`breakeven`] — closed-form break-even analysis: how long must a host
//!   stay idle for a power-down/power-up cycle to save net energy?
//!
//! # Example
//!
//! ```
//! use power::{HostPowerProfile, PowerState, PowerStateMachine, TransitionKind};
//! use simcore::SimTime;
//!
//! let profile = HostPowerProfile::prototype_rack();
//! let mut m = PowerStateMachine::new(profile, SimTime::ZERO);
//! let done = m.begin(TransitionKind::Suspend, SimTime::ZERO)?;
//! assert_eq!(m.state(), PowerState::Suspending);
//! m.complete(done)?;
//! assert_eq!(m.state(), PowerState::Suspended);
//! # Ok::<(), power::PowerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakeven;
mod curve;
mod dvfs;
mod energy;
mod error;
mod profile;
mod psu;
mod state;
mod transition;

pub use curve::PowerCurve;
pub use dvfs::{DvfsLevel, DvfsModel};
pub use energy::EnergyMeter;
pub use error::{ConfigError, PowerError};
pub use profile::{HostPowerProfile, LadderRung};
pub use psu::PsuModel;
pub use state::{PowerState, PowerStateMachine, StateResidency};
pub use transition::{TransitionKind, TransitionSpec, TransitionTable};
