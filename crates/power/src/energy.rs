//! Exact energy accounting for a single host.

use simcore::{SimTime, TimeSeries};

use crate::PowerState;

/// Integrates a host's step-function power draw into energy, with a
/// per-power-state breakdown and an optional full power trace.
///
/// The meter assumes power is constant between [`set_power`](Self::set_power)
/// calls, which is exact for the simulator's event-driven model.
///
/// # Example
///
/// ```
/// use power::{EnergyMeter, PowerState};
/// use simcore::SimTime;
///
/// let mut meter = EnergyMeter::new(SimTime::ZERO, 100.0);
/// meter.set_power(SimTime::from_secs(10), 50.0, PowerState::Suspended);
/// meter.sync(SimTime::from_secs(20));
/// assert_eq!(meter.total_j(), 100.0 * 10.0 + 50.0 * 10.0);
/// assert_eq!(meter.state_j(PowerState::Suspended), 500.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyMeter {
    last_time: SimTime,
    last_power_w: f64,
    last_state: PowerState,
    total_j: f64,
    by_state_j: [f64; PowerState::COUNT],
    trace: Option<TimeSeries>,
}

impl EnergyMeter {
    /// Creates a meter at `t0` with an initial draw of `power_w` attributed
    /// to the `On` state.
    ///
    /// # Panics
    ///
    /// Panics if `power_w` is negative or not finite.
    pub fn new(t0: SimTime, power_w: f64) -> Self {
        assert!(
            power_w.is_finite() && power_w >= 0.0,
            "bad initial power {power_w}"
        );
        EnergyMeter {
            last_time: t0,
            last_power_w: power_w,
            last_state: PowerState::On,
            total_j: 0.0,
            by_state_j: [0.0; PowerState::COUNT],
            trace: None,
        }
    }

    /// Starts recording the full power trace from now on.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            let mut ts = TimeSeries::new();
            ts.record(self.last_time, self.last_power_w);
            self.trace = Some(ts);
        }
    }

    /// Records a new power level taking effect at `now`, attributing the
    /// elapsed interval's energy to the *previous* state.
    ///
    /// A sample that does not advance time (duplicate timestamp) simply
    /// replaces the power level; a sample that *precedes* the previous one
    /// trips a debug assertion and is clamped to zero width in release
    /// builds, so no interval is ever attributed negative energy.
    ///
    /// # Panics
    ///
    /// Panics if `power_w` is negative/non-finite.
    pub fn set_power(&mut self, now: SimTime, power_w: f64, state: PowerState) {
        assert!(power_w.is_finite() && power_w >= 0.0, "bad power {power_w}");
        self.accumulate(now);
        self.last_power_w = power_w;
        self.last_state = state;
        if let Some(ts) = &mut self.trace {
            ts.record(now, power_w);
        }
    }

    /// Brings the integral up to `now` without changing the power level.
    pub fn sync(&mut self, now: SimTime) {
        self.accumulate(now);
    }

    /// Total energy consumed so far, in joules.
    pub fn total_j(&self) -> f64 {
        self.total_j
    }

    /// Total energy in kilowatt-hours.
    pub fn total_kwh(&self) -> f64 {
        self.total_j / 3.6e6
    }

    /// Energy attributed to time spent in `state`, in joules.
    pub fn state_j(&self, state: PowerState) -> f64 {
        self.by_state_j[state.index()]
    }

    /// The recorded power trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&TimeSeries> {
        self.trace.as_ref()
    }

    /// The power level currently being integrated, in watts.
    pub fn current_power_w(&self) -> f64 {
        self.last_power_w
    }

    fn accumulate(&mut self, now: SimTime) {
        debug_assert!(
            now >= self.last_time,
            "EnergyMeter sample went backwards: {now} < {}",
            self.last_time
        );
        // Saturating difference: a non-monotonic sample (caller bug) is
        // clamped to a zero-width interval instead of attributing negative
        // energy or panicking deep inside the accounting.
        let dt = now.saturating_since(self.last_time).as_secs_f64();
        if dt > 0.0 {
            let j = self.last_power_w * dt;
            self.total_j += j;
            self.by_state_j[self.last_state.index()] += j;
            self.last_time = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_step_function() {
        let mut m = EnergyMeter::new(SimTime::ZERO, 200.0);
        m.set_power(SimTime::from_secs(5), 100.0, PowerState::On);
        m.set_power(SimTime::from_secs(15), 0.0, PowerState::Off);
        m.sync(SimTime::from_secs(100));
        assert_eq!(m.total_j(), 200.0 * 5.0 + 100.0 * 10.0);
    }

    #[test]
    fn per_state_breakdown_sums_to_total() {
        let mut m = EnergyMeter::new(SimTime::ZERO, 150.0);
        m.set_power(SimTime::from_secs(10), 120.0, PowerState::Suspending);
        m.set_power(SimTime::from_secs(17), 8.0, PowerState::Suspended);
        m.sync(SimTime::from_secs(1000));
        let sum: f64 = PowerState::ALL.iter().map(|&s| m.state_j(s)).sum();
        assert!((sum - m.total_j()).abs() < 1e-9);
        assert_eq!(m.state_j(PowerState::On), 1500.0);
        assert_eq!(m.state_j(PowerState::Suspending), 120.0 * 7.0);
    }

    #[test]
    fn kwh_conversion() {
        let mut m = EnergyMeter::new(SimTime::ZERO, 1000.0);
        m.sync(SimTime::from_secs(3600));
        assert!((m.total_kwh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut m = EnergyMeter::new(SimTime::ZERO, 100.0);
        m.enable_trace();
        m.set_power(SimTime::from_secs(1), 50.0, PowerState::On);
        let trace = m.trace().unwrap();
        assert_eq!(trace.value_at(SimTime::ZERO), Some(100.0));
        assert_eq!(trace.value_at(SimTime::from_secs(2)), Some(50.0));
    }

    #[test]
    fn no_trace_by_default() {
        let m = EnergyMeter::new(SimTime::ZERO, 100.0);
        assert!(m.trace().is_none());
    }

    #[test]
    fn duplicate_timestamp_replaces_power_without_energy() {
        let mut m = EnergyMeter::new(SimTime::ZERO, 100.0);
        m.set_power(SimTime::from_secs(10), 50.0, PowerState::On);
        // Same instant again: zero-width interval, just a level change.
        m.set_power(SimTime::from_secs(10), 75.0, PowerState::On);
        assert_eq!(m.total_j(), 1000.0);
        assert_eq!(m.current_power_w(), 75.0);
        m.sync(SimTime::from_secs(20));
        assert_eq!(m.total_j(), 1000.0 + 75.0 * 10.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "went backwards"))]
    fn non_monotonic_sample_is_rejected_or_clamped() {
        let mut m = EnergyMeter::new(SimTime::from_secs(10), 100.0);
        // Debug builds assert; release builds clamp to zero width and
        // never attribute negative energy.
        m.set_power(SimTime::from_secs(5), 50.0, PowerState::On);
        m.sync(SimTime::from_secs(10));
        assert!(m.total_j() >= 0.0);
        let sum: f64 = PowerState::ALL.iter().map(|&s| m.state_j(s)).sum();
        assert!((sum - m.total_j()).abs() < 1e-9);
    }

    #[test]
    fn repeated_sync_is_idempotent() {
        let mut m = EnergyMeter::new(SimTime::ZERO, 10.0);
        m.sync(SimTime::from_secs(10));
        let e = m.total_j();
        m.sync(SimTime::from_secs(10));
        assert_eq!(m.total_j(), e);
    }
}
