//! Property tests of the manager, on the [`check`] framework: for any
//! observation the generator can produce, planned actions must be
//! well-formed and internally consistent. Failing observations shrink
//! toward the smallest all-on cluster and replay from the printed seed.

use agile_core::{
    ClusterObservation, HostObservation, ManagementAction, ManagerConfig, PowerPolicy,
    PredictorConfig, VirtManager, VmObservation,
};
use check::gen::{boolean, f64_in, u64_in, usize_in, vec_of, Gen};
use check::prop_assert;
use cluster::{HostId, ServiceClass, VmId};
use power::PowerState;
use simcore::{SimDuration, SimTime};

const HOST_CAP: f64 = 16.0;
const HOST_MEM: f64 = 128.0;

/// Raw material for one VM: (cpu demand, host pick, is-batch).
type RawVm = ((f64, u64), bool);

/// Decodes raw generator choices into a structurally valid observation:
/// VMs land only on operational hosts (the cluster invariant), and host
/// commitments are the sums of their VMs.
fn build_observation(states: Vec<usize>, raw_vms: Vec<RawVm>) -> ClusterObservation {
    let mut hosts: Vec<HostObservation> = states
        .iter()
        .enumerate()
        .map(|(i, &s)| HostObservation {
            id: HostId(i as u32),
            state: match s {
                0 => PowerState::On,
                1 => PowerState::Suspended,
                _ => PowerState::Off,
            },
            pending: None,
            cpu_capacity: HOST_CAP,
            mem_capacity: HOST_MEM,
            mem_committed: 0.0, // filled below
            cpu_demand: 0.0,
            evacuated: true,
            failed_transitions: 0,
            ladder: Default::default(),
        })
        .collect();
    let operational: Vec<usize> = hosts
        .iter()
        .enumerate()
        .filter(|(_, h)| h.state == PowerState::On)
        .map(|(i, _)| i)
        .collect();
    let mut vms = Vec::new();
    for (k, ((demand, pick), batch)) in raw_vms.into_iter().enumerate() {
        let host = if operational.is_empty() {
            None
        } else {
            Some(operational[(pick % operational.len() as u64) as usize])
        };
        if let Some(h) = host {
            hosts[h].mem_committed += 4.0;
            hosts[h].cpu_demand += demand;
            hosts[h].evacuated = false;
        }
        vms.push(VmObservation {
            id: VmId(k as u32),
            host: host.map(|h| HostId(h as u32)),
            cpu_demand: demand,
            cpu_cap: 2.0,
            mem_gb: 4.0,
            migrating: false,
            service_class: if batch {
                ServiceClass::Batch
            } else {
                ServiceClass::Interactive
            },
        });
    }
    ClusterObservation {
        now: SimTime::from_secs(600),
        hosts,
        vms,
    }
}

/// Arbitrary structurally valid observations; shrinks toward two all-on
/// hosts and one idle interactive VM on the first host.
fn observations(max_hosts: usize, max_vms: usize) -> Gen<ClusterObservation> {
    let states = vec_of(&usize_in(0..=2), 2..=max_hosts);
    let raw_vms = vec_of(
        &f64_in(0.0, 2.0).zip(&u64_in(0..=u64::MAX)).zip(&boolean()),
        1..=max_vms,
    );
    states.zip(&raw_vms).map(|(s, v)| build_observation(s, v))
}

/// Every planned action is structurally valid: migrations target
/// operational hosts and move placed, non-migrating VMs; power-downs
/// only hit evacuated hosts; power-ups only hit parked hosts. At most
/// one action per VM and per host.
#[test]
fn planned_actions_are_well_formed() {
    check::check(
        "planned actions well-formed",
        &observations(8, 24).zip(&boolean()),
        |(obs, suspend)| {
            let policy = if *suspend {
                PowerPolicy::reactive_suspend()
            } else {
                PowerPolicy::reactive_off()
            };
            let config = ManagerConfig::for_fleet(policy, obs.hosts.len(), obs.vms.len())
                .with_min_on_time(SimDuration::ZERO)
                .with_predictor(PredictorConfig::LastValue);
            let mut mgr = VirtManager::new(config, obs.hosts.len(), obs.vms.len());
            let actions = mgr.plan(obs);
            prop_assert!(
                mgr.last_round_reasons().len() == actions.len(),
                "reasons and actions disagree"
            );

            let mut moved_vms = std::collections::HashSet::new();
            let mut powered_hosts = std::collections::HashSet::new();
            for action in &actions {
                match *action {
                    ManagementAction::Migrate { vm, to } => {
                        let v = &obs.vms[vm.index()];
                        prop_assert!(v.host.is_some(), "migrating unplaced {vm}");
                        prop_assert!(v.host.unwrap() != to, "self-migration of {vm}");
                        prop_assert!(!v.migrating, "vm {vm} already migrating");
                        prop_assert!(
                            obs.hosts[to.index()].is_operational(),
                            "migrating {vm} to non-operational {to}"
                        );
                        prop_assert!(moved_vms.insert(vm), "vm {vm} moved twice");
                    }
                    ManagementAction::PowerDown { host, .. } => {
                        prop_assert!(
                            obs.hosts[host.index()].evacuated,
                            "powering down non-evacuated {host}"
                        );
                        prop_assert!(
                            obs.hosts[host.index()].is_operational(),
                            "powering down non-operational {host}"
                        );
                        prop_assert!(powered_hosts.insert(host), "host {host} power-cycled twice");
                    }
                    ManagementAction::PowerUp { host } => {
                        prop_assert!(
                            matches!(
                                obs.hosts[host.index()].state,
                                PowerState::Suspended | PowerState::Off
                            ),
                            "waking non-parked {host}"
                        );
                        prop_assert!(powered_hosts.insert(host), "host {host} power-cycled twice");
                    }
                }
            }
            Ok(())
        },
    );
}

/// AlwaysOn never emits power actions, for any observation.
#[test]
fn always_on_never_power_manages() {
    check::check(
        "AlwaysOn never power-manages",
        &observations(6, 16),
        |obs| {
            let config =
                ManagerConfig::for_fleet(PowerPolicy::always_on(), obs.hosts.len(), obs.vms.len());
            let mut mgr = VirtManager::new(config, obs.hosts.len(), obs.vms.len());
            for action in mgr.plan(obs) {
                prop_assert!(!action.is_power_action(), "power action {action}");
            }
            Ok(())
        },
    );
}

/// The migration budget is respected for any observation.
#[test]
fn migration_budget_respected() {
    check::check(
        "migration budget respected",
        &observations(8, 24).zip(&usize_in(1..=3)),
        |(obs, budget)| {
            let config = ManagerConfig::for_fleet(
                PowerPolicy::reactive_suspend(),
                obs.hosts.len(),
                obs.vms.len(),
            )
            .with_max_migrations_per_round(*budget)
            .with_min_on_time(SimDuration::ZERO);
            let mut mgr = VirtManager::new(config, obs.hosts.len(), obs.vms.len());
            let migrations = mgr
                .plan(obs)
                .iter()
                .filter(|a| matches!(a, ManagementAction::Migrate { .. }))
                .count();
            prop_assert!(migrations <= *budget, "{migrations} > budget {budget}");
            Ok(())
        },
    );
}

/// Planning twice on the same observation from the same state is
/// deterministic.
#[test]
fn planning_is_deterministic() {
    check::check("planning is deterministic", &observations(6, 16), |obs| {
        let mk = || {
            let config = ManagerConfig::for_fleet(
                PowerPolicy::reactive_suspend(),
                obs.hosts.len(),
                obs.vms.len(),
            );
            VirtManager::new(config, obs.hosts.len(), obs.vms.len())
        };
        let a = mk().plan(obs);
        let b = mk().plan(obs);
        check::prop_assert_eq!(a, b);
        Ok(())
    });
}
