//! Randomized tests of the manager: for any observation the generator
//! can produce, planned actions must be well-formed and internally
//! consistent.
//!
//! Observations are drawn from [`RngStream`] with fixed seeds, so every
//! run checks the same cases — failures reproduce exactly without a
//! shrinker.

use agile_core::{
    ClusterObservation, HostObservation, ManagementAction, ManagerConfig, PowerPolicy,
    PredictorConfig, VirtManager, VmObservation,
};
use cluster::{HostId, ServiceClass, VmId};
use power::PowerState;
use simcore::{RngStream, SimDuration, SimTime};

const HOST_CAP: f64 = 16.0;
const HOST_MEM: f64 = 128.0;

/// A random but structurally valid observation.
fn observation(rng: &mut RngStream, max_hosts: usize, max_vms: usize) -> ClusterObservation {
    let num_hosts = 2 + rng.below(max_hosts as u64 - 1) as usize;
    let num_vms = 1 + rng.below(max_vms as u64) as usize;
    let mut hosts: Vec<HostObservation> = (0..num_hosts)
        .map(|i| HostObservation {
            id: HostId(i as u32),
            state: match rng.below(3) {
                0 => PowerState::On,
                1 => PowerState::Suspended,
                _ => PowerState::Off,
            },
            pending: None,
            cpu_capacity: HOST_CAP,
            mem_capacity: HOST_MEM,
            mem_committed: 0.0, // filled below
            cpu_demand: 0.0,
            evacuated: true,
        })
        .collect();
    let operational: Vec<usize> = hosts
        .iter()
        .enumerate()
        .filter(|(_, h)| h.state == PowerState::On)
        .map(|(i, _)| i)
        .collect();
    let mut vms = Vec::new();
    for k in 0..num_vms {
        let demand = rng.uniform(0.0, 2.0);
        // Place only on operational hosts (the cluster invariant).
        let host = if operational.is_empty() {
            None
        } else {
            Some(operational[rng.below(operational.len() as u64) as usize])
        };
        if let Some(h) = host {
            hosts[h].mem_committed += 4.0;
            hosts[h].cpu_demand += demand;
            hosts[h].evacuated = false;
        }
        vms.push(VmObservation {
            id: VmId(k as u32),
            host: host.map(|h| HostId(h as u32)),
            cpu_demand: demand,
            cpu_cap: 2.0,
            mem_gb: 4.0,
            migrating: false,
            service_class: if rng.chance(0.5) {
                ServiceClass::Batch
            } else {
                ServiceClass::Interactive
            },
        });
    }
    ClusterObservation {
        now: SimTime::from_secs(600),
        hosts,
        vms,
    }
}

/// Every planned action is structurally valid: migrations target
/// operational hosts and move placed, non-migrating VMs; power-downs
/// only hit evacuated hosts; power-ups only hit parked hosts. At most
/// one action per VM and per host.
#[test]
fn planned_actions_are_well_formed() {
    let mut rng = RngStream::new(0x20);
    for case in 0..64 {
        let obs = observation(&mut rng, 8, 24);
        let policy = if rng.chance(0.5) {
            PowerPolicy::reactive_suspend()
        } else {
            PowerPolicy::reactive_off()
        };
        let config = ManagerConfig::for_fleet(policy, obs.hosts.len(), obs.vms.len())
            .with_min_on_time(SimDuration::ZERO)
            .with_predictor(PredictorConfig::LastValue);
        let mut mgr = VirtManager::new(config, obs.hosts.len(), obs.vms.len());
        let actions = mgr.plan(&obs);
        assert_eq!(mgr.last_round_reasons().len(), actions.len(), "case {case}");

        let mut moved_vms = std::collections::HashSet::new();
        let mut powered_hosts = std::collections::HashSet::new();
        for action in &actions {
            match *action {
                ManagementAction::Migrate { vm, to } => {
                    let v = &obs.vms[vm.index()];
                    assert!(v.host.is_some(), "migrating unplaced {vm}");
                    assert_ne!(v.host.unwrap(), to, "self-migration of {vm}");
                    assert!(!v.migrating, "vm {vm} already migrating");
                    assert!(
                        obs.hosts[to.index()].is_operational(),
                        "migrating {vm} to non-operational {to}"
                    );
                    assert!(moved_vms.insert(vm), "vm {vm} moved twice");
                }
                ManagementAction::PowerDown { host, .. } => {
                    assert!(
                        obs.hosts[host.index()].evacuated,
                        "powering down non-evacuated {host}"
                    );
                    assert!(
                        obs.hosts[host.index()].is_operational(),
                        "powering down non-operational {host}"
                    );
                    assert!(powered_hosts.insert(host), "host {host} power-cycled twice");
                }
                ManagementAction::PowerUp { host } => {
                    assert!(
                        matches!(
                            obs.hosts[host.index()].state,
                            PowerState::Suspended | PowerState::Off
                        ),
                        "waking non-parked {host}"
                    );
                    assert!(powered_hosts.insert(host), "host {host} power-cycled twice");
                }
            }
        }
    }
}

/// AlwaysOn never emits power actions, for any observation.
#[test]
fn always_on_never_power_manages() {
    let mut rng = RngStream::new(0x21);
    for _ in 0..64 {
        let obs = observation(&mut rng, 6, 16);
        let config =
            ManagerConfig::for_fleet(PowerPolicy::always_on(), obs.hosts.len(), obs.vms.len());
        let mut mgr = VirtManager::new(config, obs.hosts.len(), obs.vms.len());
        for action in mgr.plan(&obs) {
            assert!(!action.is_power_action(), "{action}");
        }
    }
}

/// The migration budget is respected for any observation.
#[test]
fn migration_budget_respected() {
    let mut rng = RngStream::new(0x22);
    for _ in 0..64 {
        let obs = observation(&mut rng, 8, 24);
        let budget = 1 + rng.below(3) as usize;
        let config = ManagerConfig::for_fleet(
            PowerPolicy::reactive_suspend(),
            obs.hosts.len(),
            obs.vms.len(),
        )
        .with_max_migrations_per_round(budget)
        .with_min_on_time(SimDuration::ZERO);
        let mut mgr = VirtManager::new(config, obs.hosts.len(), obs.vms.len());
        let migrations = mgr
            .plan(&obs)
            .iter()
            .filter(|a| matches!(a, ManagementAction::Migrate { .. }))
            .count();
        assert!(migrations <= budget, "{migrations} > budget {budget}");
    }
}

/// Planning twice on the same observation from the same state is
/// deterministic.
#[test]
fn planning_is_deterministic() {
    let mut rng = RngStream::new(0x23);
    for _ in 0..64 {
        let obs = observation(&mut rng, 6, 16);
        let mk = || {
            let config = ManagerConfig::for_fleet(
                PowerPolicy::reactive_suspend(),
                obs.hosts.len(),
                obs.vms.len(),
            );
            VirtManager::new(config, obs.hosts.len(), obs.vms.len())
        };
        let a = mk().plan(&obs);
        let b = mk().plan(&obs);
        assert_eq!(a, b);
    }
}
