//! Property-based tests of the manager: for any observation the generator
//! can produce, planned actions must be well-formed and internally
//! consistent.

use agile_core::{
    ClusterObservation, HostObservation, ManagementAction, ManagerConfig, PowerPolicy,
    PredictorConfig, VirtManager, VmObservation,
};
use cluster::{HostId, ServiceClass, VmId};
use power::PowerState;
use proptest::prelude::*;
use simcore::{SimDuration, SimTime};

const HOST_CAP: f64 = 16.0;
const HOST_MEM: f64 = 128.0;

/// Strategy: a random but structurally valid observation.
fn observation(
    max_hosts: usize,
    max_vms: usize,
) -> impl Strategy<Value = ClusterObservation> {
    let host_states = proptest::collection::vec(0u8..3, 2..=max_hosts);
    let vms = proptest::collection::vec((any::<u16>(), 0.0f64..2.0, proptest::bool::ANY), 1..=max_vms);
    (host_states, vms).prop_map(|(states, vm_rows)| {
        let hosts: Vec<HostObservation> = states
            .iter()
            .enumerate()
            .map(|(i, &s)| HostObservation {
                id: HostId(i as u32),
                state: match s {
                    0 => PowerState::On,
                    1 => PowerState::Suspended,
                    _ => PowerState::Off,
                },
                pending: None,
                cpu_capacity: HOST_CAP,
                mem_capacity: HOST_MEM,
                mem_committed: 0.0, // filled below
                cpu_demand: 0.0,
                evacuated: true,
            })
            .collect();
        let operational: Vec<usize> = hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.state == PowerState::On)
            .map(|(i, _)| i)
            .collect();
        let mut hosts = hosts;
        let mut vms = Vec::new();
        for (k, (placement_roll, demand, batch)) in vm_rows.into_iter().enumerate() {
            // Place only on operational hosts (the cluster invariant).
            let host = if operational.is_empty() {
                None
            } else {
                Some(operational[placement_roll as usize % operational.len()])
            };
            if let Some(h) = host {
                hosts[h].mem_committed += 4.0;
                hosts[h].cpu_demand += demand;
                hosts[h].evacuated = false;
            }
            vms.push(VmObservation {
                id: VmId(k as u32),
                host: host.map(|h| HostId(h as u32)),
                cpu_demand: demand,
                cpu_cap: 2.0,
                mem_gb: 4.0,
                migrating: false,
                service_class: if batch {
                    ServiceClass::Batch
                } else {
                    ServiceClass::Interactive
                },
            });
        }
        ClusterObservation {
            now: SimTime::from_secs(600),
            hosts,
            vms,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every planned action is structurally valid: migrations target
    /// operational hosts and move placed, non-migrating VMs; power-downs
    /// only hit evacuated hosts; power-ups only hit parked hosts. At most
    /// one action per VM and per host.
    #[test]
    fn planned_actions_are_well_formed(obs in observation(8, 24), suspend in proptest::bool::ANY) {
        let policy = if suspend {
            PowerPolicy::reactive_suspend()
        } else {
            PowerPolicy::reactive_off()
        };
        let config = ManagerConfig::for_fleet(policy, obs.hosts.len(), obs.vms.len())
            .with_min_on_time(SimDuration::ZERO)
            .with_predictor(PredictorConfig::LastValue);
        let mut mgr = VirtManager::new(config, obs.hosts.len(), obs.vms.len());
        let actions = mgr.plan(&obs);
        prop_assert_eq!(mgr.last_round_reasons().len(), actions.len());

        let mut moved_vms = std::collections::HashSet::new();
        let mut powered_hosts = std::collections::HashSet::new();
        for action in &actions {
            match *action {
                ManagementAction::Migrate { vm, to } => {
                    let v = &obs.vms[vm.index()];
                    prop_assert!(v.host.is_some(), "migrating unplaced {}", vm);
                    prop_assert_ne!(v.host.unwrap(), to, "self-migration of {}", vm);
                    prop_assert!(!v.migrating, "vm {} already migrating", vm);
                    prop_assert!(
                        obs.hosts[to.index()].is_operational(),
                        "migrating {} to non-operational {}",
                        vm,
                        to
                    );
                    prop_assert!(moved_vms.insert(vm), "vm {} moved twice", vm);
                }
                ManagementAction::PowerDown { host, .. } => {
                    prop_assert!(
                        obs.hosts[host.index()].evacuated,
                        "powering down non-evacuated {}",
                        host
                    );
                    prop_assert!(
                        obs.hosts[host.index()].is_operational(),
                        "powering down non-operational {}",
                        host
                    );
                    prop_assert!(powered_hosts.insert(host), "host {} power-cycled twice", host);
                }
                ManagementAction::PowerUp { host } => {
                    prop_assert!(
                        matches!(
                            obs.hosts[host.index()].state,
                            PowerState::Suspended | PowerState::Off
                        ),
                        "waking non-parked {}",
                        host
                    );
                    prop_assert!(powered_hosts.insert(host), "host {} power-cycled twice", host);
                }
            }
        }
    }

    /// AlwaysOn never emits power actions, for any observation.
    #[test]
    fn always_on_never_power_manages(obs in observation(6, 16)) {
        let config = ManagerConfig::for_fleet(PowerPolicy::always_on(), obs.hosts.len(), obs.vms.len());
        let mut mgr = VirtManager::new(config, obs.hosts.len(), obs.vms.len());
        for action in mgr.plan(&obs) {
            prop_assert!(!action.is_power_action(), "{}", action);
        }
    }

    /// The migration budget is respected for any observation.
    #[test]
    fn migration_budget_respected(obs in observation(8, 24), budget in 1usize..4) {
        let config = ManagerConfig::for_fleet(
            PowerPolicy::reactive_suspend(),
            obs.hosts.len(),
            obs.vms.len(),
        )
        .with_max_migrations_per_round(budget)
        .with_min_on_time(SimDuration::ZERO);
        let mut mgr = VirtManager::new(config, obs.hosts.len(), obs.vms.len());
        let migrations = mgr
            .plan(&obs)
            .iter()
            .filter(|a| matches!(a, ManagementAction::Migrate { .. }))
            .count();
        prop_assert!(migrations <= budget, "{migrations} > budget {budget}");
    }

    /// Planning twice on the same observation from the same state is
    /// deterministic.
    #[test]
    fn planning_is_deterministic(obs in observation(6, 16)) {
        let mk = || {
            let config = ManagerConfig::for_fleet(
                PowerPolicy::reactive_suspend(),
                obs.hosts.len(),
                obs.vms.len(),
            );
            VirtManager::new(config, obs.hosts.len(), obs.vms.len())
        };
        let a = mk().plan(&obs);
        let b = mk().plan(&obs);
        prop_assert_eq!(a, b);
    }
}
