//! Decision attribution: why the manager did what it did each round.
//!
//! A [`DecisionRecord`] captures the inputs the planner saw (observed vs
//! predicted demand, capacity requirement, candidate set) and the outputs
//! it produced (per-reason action counts), so a trace reader can explain
//! any power action without replaying the run. The record is pure data:
//! building it never changes what the planner decides.

use obs::{Json, Quantiles};
use simcore::SimTime;

/// What pushed the planner off the steady state this round.
///
/// The three flags are independent — a round can simultaneously mitigate
/// an overload and drain an underloaded host — so the record keeps all
/// three and [`label`](Self::label) picks the dominant one for display.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionTrigger {
    /// Some operational host was predicted above the overload threshold.
    pub overload: bool,
    /// Some operational host was predicted below the underload threshold
    /// (a consolidation candidate).
    pub underload: bool,
    /// The time-of-day profile's forecast raised the capacity
    /// requirement above instantaneous predicted demand.
    pub prewake: bool,
}

impl DecisionTrigger {
    /// The dominant trigger, in urgency order: overload beats prewake
    /// beats underload; none of the three is `"steady"`.
    pub fn label(&self) -> &'static str {
        if self.overload {
            "overload"
        } else if self.prewake {
            "prewake"
        } else if self.underload {
            "underload"
        } else {
            "steady"
        }
    }
}

/// Actions emitted this round, bucketed by the planning step that
/// produced them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionActions {
    /// Live migrations requested (all reasons).
    pub migrations: u64,
    /// Migrations relieving overloaded hosts.
    pub overload_migrations: u64,
    /// Migrations evacuating underloaded hosts.
    pub consolidation_migrations: u64,
    /// Background load-balancing migrations.
    pub rebalance_migrations: u64,
    /// Host power-ups requested.
    pub power_ups: u64,
    /// Host power-downs requested.
    pub power_downs: u64,
}

/// One management round's inputs and outputs.
///
/// Produced by `VirtManager::plan` and retrievable via
/// `VirtManager::last_decision`; the simulator forwards it to the trace
/// sink as a `manager-decision` record.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Management round number (1-based, matches `RoundStats::rounds`).
    pub round: u64,
    /// Simulated time of the observation.
    pub now: SimTime,
    /// What pushed the planner off the steady state.
    pub trigger: DecisionTrigger,
    /// Total CPU demand the cluster reported (cores).
    pub observed_demand: f64,
    /// Total demand the per-VM predictors expect next round (cores).
    pub predicted_demand: f64,
    /// Forecast from the time-of-day profile, when pre-waking is
    /// enabled and the profile had data (cores).
    pub prewake_forecast: Option<f64>,
    /// Capacity the planner required: urgent demand at target
    /// utilization plus the spare-host reserve (cores).
    pub required_capacity: f64,
    /// Capacity on, arriving, or un-drained after the capacity step
    /// (cores).
    pub available_capacity: f64,
    /// Operational, non-draining hosts — the migration target
    /// candidate set.
    pub candidate_hosts: usize,
    /// Hosts predicted above the overload threshold.
    pub overloaded_hosts: usize,
    /// Operational hosts predicted below the underload threshold.
    pub underloaded_hosts: usize,
    /// Hosts marked draining when the round ended.
    pub draining_hosts: usize,
    /// Hosts quarantined by the recovery tracker this round.
    pub quarantined_hosts: usize,
    /// Whether the fleet fail-safe suppressed consolidation and parking.
    pub failsafe: bool,
    /// Actions emitted, bucketed by planning step.
    pub actions: DecisionActions,
    /// Percentile summary (conservative upper bounds) of total actions
    /// per round across all rounds so far, from the manager's
    /// deterministic log-bucket histogram. `None` only when the
    /// histogram is empty.
    pub actions_per_round: Option<Quantiles>,
}

impl DecisionRecord {
    /// Spare capacity beyond the requirement (negative while waking
    /// hosts that have not yet arrived).
    pub fn headroom(&self) -> f64 {
        self.available_capacity - self.required_capacity
    }

    /// Renders the record as a JSON object (the `manager-decision`
    /// trace schema).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("record", Json::Str("manager-decision".into())),
            ("round", Json::Int(self.round as i64)),
            ("t_seconds", Json::Num(self.now.as_secs_f64())),
            ("trigger", Json::Str(self.trigger.label().into())),
            ("overload", Json::Bool(self.trigger.overload)),
            ("underload", Json::Bool(self.trigger.underload)),
            ("prewake", Json::Bool(self.trigger.prewake)),
            ("observed_demand", Json::Num(self.observed_demand)),
            ("predicted_demand", Json::Num(self.predicted_demand)),
            (
                "prewake_forecast",
                match self.prewake_forecast {
                    Some(f) => Json::Num(f),
                    None => Json::Null,
                },
            ),
            ("required_capacity", Json::Num(self.required_capacity)),
            ("available_capacity", Json::Num(self.available_capacity)),
            ("headroom", Json::Num(self.headroom())),
            ("candidate_hosts", Json::Int(self.candidate_hosts as i64)),
            ("overloaded_hosts", Json::Int(self.overloaded_hosts as i64)),
            (
                "underloaded_hosts",
                Json::Int(self.underloaded_hosts as i64),
            ),
            ("draining_hosts", Json::Int(self.draining_hosts as i64)),
            (
                "quarantined_hosts",
                Json::Int(self.quarantined_hosts as i64),
            ),
            ("failsafe", Json::Bool(self.failsafe)),
            ("migrations", Json::Int(self.actions.migrations as i64)),
            (
                "overload_migrations",
                Json::Int(self.actions.overload_migrations as i64),
            ),
            (
                "consolidation_migrations",
                Json::Int(self.actions.consolidation_migrations as i64),
            ),
            (
                "rebalance_migrations",
                Json::Int(self.actions.rebalance_migrations as i64),
            ),
            ("power_ups", Json::Int(self.actions.power_ups as i64)),
            ("power_downs", Json::Int(self.actions.power_downs as i64)),
            (
                "actions_per_round_p50",
                match self.actions_per_round {
                    Some(q) => Json::Num(q.p50),
                    None => Json::Null,
                },
            ),
            (
                "actions_per_round_p95",
                match self.actions_per_round {
                    Some(q) => Json::Num(q.p95),
                    None => Json::Null,
                },
            ),
            (
                "actions_per_round_p99",
                match self.actions_per_round {
                    Some(q) => Json::Num(q.p99),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> DecisionRecord {
        DecisionRecord {
            round: 3,
            now: SimTime::from_secs(900),
            trigger: DecisionTrigger {
                overload: true,
                underload: false,
                prewake: true,
            },
            observed_demand: 10.0,
            predicted_demand: 12.0,
            prewake_forecast: Some(14.0),
            required_capacity: 20.0,
            available_capacity: 24.0,
            candidate_hosts: 3,
            overloaded_hosts: 1,
            underloaded_hosts: 0,
            draining_hosts: 0,
            quarantined_hosts: 1,
            failsafe: false,
            actions: DecisionActions {
                migrations: 2,
                overload_migrations: 2,
                ..DecisionActions::default()
            },
            actions_per_round: Some(Quantiles {
                p50: 2.0,
                p95: 4.0,
                p99: 4.0,
            }),
        }
    }

    #[test]
    fn trigger_priority() {
        assert_eq!(DecisionTrigger::default().label(), "steady");
        assert_eq!(
            DecisionTrigger {
                overload: true,
                underload: true,
                prewake: true
            }
            .label(),
            "overload"
        );
        assert_eq!(
            DecisionTrigger {
                overload: false,
                underload: true,
                prewake: true
            }
            .label(),
            "prewake"
        );
        assert_eq!(
            DecisionTrigger {
                overload: false,
                underload: true,
                prewake: false
            }
            .label(),
            "underload"
        );
    }

    #[test]
    fn headroom_is_available_minus_required() {
        assert!((record().headroom() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_fields() {
        let j = record().to_json();
        assert_eq!(j.get("record").unwrap().as_str(), Some("manager-decision"));
        assert_eq!(j.get("trigger").unwrap().as_str(), Some("overload"));
        assert_eq!(j.get("round").unwrap().as_i64(), Some(3));
        assert_eq!(j.get("t_seconds").unwrap().as_f64(), Some(900.0));
        assert_eq!(j.get("prewake_forecast").unwrap().as_f64(), Some(14.0));
        assert_eq!(j.get("overload_migrations").unwrap().as_i64(), Some(2));
        assert_eq!(j.get("quarantined_hosts").unwrap().as_i64(), Some(1));
        assert_eq!(j.get("failsafe").unwrap().as_bool(), Some(false));
        assert_eq!(j.get("actions_per_round_p95").unwrap().as_f64(), Some(4.0));
        // Compact text parses back.
        let parsed = obs::Json::parse(&j.to_string_compact()).unwrap();
        assert_eq!(parsed, j);
    }
}
