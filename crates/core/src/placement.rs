//! The shared placement store: the commit point of the distributed
//! control plane.
//!
//! With one global planner, plans are self-consistent by construction —
//! the planner saw the whole fleet an instant ago and never claims the
//! same VM or the same host headroom twice in one round. With N
//! schedulers planning concurrently over partially-stale views (and with
//! a control-loop latency between planning and committing), that
//! guarantee disappears: two schedulers can race for the headroom of one
//! destination host, a scheduler can re-plan a migration that is already
//! in flight, or it can try to park a host another scheduler is about to
//! fill. The [`PlacementStore`] is the single arbiter that turns those
//! races into deterministic, attributable rejections.
//!
//! ## Commit protocol
//!
//! Each control round the simulator presents one batch per scheduler, in
//! scheduler order, action order within a batch. [`PlacementStore::admit`]
//! checks every action against
//!
//! * **ground truth** at commit time (a [`PlacementFacts`] adapter over
//!   the live cluster), which catches stale beliefs: the VM moved, the
//!   destination died, the host is mid-transition; and
//! * the **claim ledger** of the current round, which catches races
//!   *between* schedulers in the same round: the same VM moved twice, the
//!   same host headroom consumed twice, power actions colliding with
//!   inbound migrations.
//!
//! Accepted actions update the ledger (claims fold in arbitration order:
//! scheduler id, then plan order); rejected actions are dropped with a
//! [`ConflictReason`] and the owning scheduler simply re-plans from a
//! fresher view next round. Because arbitration order is a pure function
//! of the batch contents, the whole control plane stays bit-reproducible
//! at any scheduler count.
//!
//! The headroom check mirrors the planner's own admission arithmetic
//! (`mem_committed + vm_mem > mem_capacity + 1e-9`, destination-add with
//! no source-subtract until the migration completes) bit-for-bit, so a
//! single fresh scheduler — `schedulers = 1, staleness = 0, latency = 0`
//! — has every action admitted and reproduces the global planner
//! byte-identically.

use std::ops::Range;

use cluster::{HostId, VmId};
use power::PowerState;

use crate::action::ManagementAction;

/// Ground truth the store consults at commit time. Implemented by the
/// simulator as a thin adapter over the live cluster (and by tests as a
/// table).
pub trait PlacementFacts {
    /// Current host of `vm`, `None` when unplaced.
    fn host_of(&self, vm: VmId) -> Option<HostId>;
    /// Whether `vm` is currently mid-migration.
    fn is_migrating(&self, vm: VmId) -> bool;
    /// Memory footprint of `vm` in GB.
    fn vm_mem_gb(&self, vm: VmId) -> f64;
    /// Memory currently committed on `host` in GB (in-flight inbound
    /// migrations included).
    fn mem_committed_gb(&self, host: HostId) -> f64;
    /// Memory capacity of `host` in GB.
    fn mem_capacity_gb(&self, host: HostId) -> f64;
    /// Whether `host` is powered on and able to run VMs.
    fn is_operational(&self, host: HostId) -> bool;
    /// Current power state of `host`.
    fn power_state(&self, host: HostId) -> PowerState;
    /// Whether `host` has a power transition in flight.
    fn has_pending_transition(&self, host: HostId) -> bool;
    /// Whether `host` currently runs no VMs.
    fn is_evacuated(&self, host: HostId) -> bool;
}

/// Why the store refused to commit an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ConflictReason {
    /// The VM is unplaced, already mid-migration, or already sits on the
    /// planned destination — the plan's belief about it is out of date.
    VmBusy,
    /// Another scheduler already claimed a move of this VM this round.
    VmRace,
    /// The VM's current host lies outside the committing scheduler's
    /// partition — it moved since the plan was computed.
    NotOwner,
    /// The migration destination is not operational (or was claimed for
    /// power-down earlier this round).
    DestUnavailable,
    /// Admitting the VM would overcommit the destination's memory once
    /// the claims already accepted this round are counted.
    Headroom,
    /// The host's power state was already claimed this round (or it was
    /// claimed as a migration destination and may no longer park).
    PowerClash,
    /// The host's observed power state no longer matches what the action
    /// assumes (wrong state for a wake, busy/occupied for a park).
    PowerStale,
}

impl ConflictReason {
    /// Stable machine-readable label (used in event JSON and counters).
    pub fn label(self) -> &'static str {
        match self {
            ConflictReason::VmBusy => "vm-busy",
            ConflictReason::VmRace => "vm-race",
            ConflictReason::NotOwner => "not-owner",
            ConflictReason::DestUnavailable => "dest-unavailable",
            ConflictReason::Headroom => "headroom",
            ConflictReason::PowerClash => "power-clash",
            ConflictReason::PowerStale => "power-stale",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<ConflictReason> {
        Some(match label {
            "vm-busy" => ConflictReason::VmBusy,
            "vm-race" => ConflictReason::VmRace,
            "not-owner" => ConflictReason::NotOwner,
            "dest-unavailable" => ConflictReason::DestUnavailable,
            "headroom" => ConflictReason::Headroom,
            "power-clash" => ConflictReason::PowerClash,
            "power-stale" => ConflictReason::PowerStale,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ConflictReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Deterministic commit-ledger counters, folded into the metrics
/// snapshot as `work.commit.*` (same discipline as
/// [`WorkCounters`](crate::WorkCounters)).
///
/// The ledger identity `planned == accepted + rejected +
/// dropped_unowned + expired` holds at the end of every run: every
/// planned action is either committed, rejected by the store, filtered
/// as out-of-partition at plan time, or still in flight when the
/// horizon ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Actions emitted by any scheduler's planner.
    pub planned: u64,
    /// Actions admitted by the store and handed to the cluster.
    pub accepted: u64,
    /// Actions refused by the store's conflict check.
    pub rejected: u64,
    /// Actions filtered at plan time because their subject lay outside
    /// the planning scheduler's partition (per its own view).
    pub dropped_unowned: u64,
    /// Actions still in the control-latency window when the run ended.
    pub expired: u64,
    /// The migration-only slices of `rejected`/`dropped_unowned`/
    /// `expired` — these close the planner's migration ledger
    /// (`work.plan.migrations_planned == work.migrations.executed +
    /// work.migrations.aborted + the three below`).
    pub migrations_rejected: u64,
    /// See `migrations_rejected`.
    pub migrations_dropped: u64,
    /// See `migrations_rejected`.
    pub migrations_expired: u64,
    /// Rejections attributed to [`ConflictReason::VmBusy`].
    pub rejected_vm_busy: u64,
    /// Rejections attributed to [`ConflictReason::VmRace`].
    pub rejected_vm_race: u64,
    /// Rejections attributed to [`ConflictReason::NotOwner`].
    pub rejected_not_owner: u64,
    /// Rejections attributed to [`ConflictReason::DestUnavailable`].
    pub rejected_dest_unavailable: u64,
    /// Rejections attributed to [`ConflictReason::Headroom`].
    pub rejected_headroom: u64,
    /// Rejections attributed to [`ConflictReason::PowerClash`].
    pub rejected_power_clash: u64,
    /// Rejections attributed to [`ConflictReason::PowerStale`].
    pub rejected_power_stale: u64,
}

impl CommitStats {
    /// All counters as `(name, value)` pairs in a stable order, for
    /// folding into a metrics registry under a `work.commit.` prefix.
    pub fn entries(&self) -> [(&'static str, u64); 15] {
        [
            ("planned", self.planned),
            ("accepted", self.accepted),
            ("rejected", self.rejected),
            ("dropped_unowned", self.dropped_unowned),
            ("expired", self.expired),
            ("migrations_rejected", self.migrations_rejected),
            ("migrations_dropped", self.migrations_dropped),
            ("migrations_expired", self.migrations_expired),
            ("rejected_vm_busy", self.rejected_vm_busy),
            ("rejected_vm_race", self.rejected_vm_race),
            ("rejected_not_owner", self.rejected_not_owner),
            ("rejected_dest_unavailable", self.rejected_dest_unavailable),
            ("rejected_headroom", self.rejected_headroom),
            ("rejected_power_clash", self.rejected_power_clash),
            ("rejected_power_stale", self.rejected_power_stale),
        ]
    }

    /// The ledger identity every finished run must satisfy.
    pub fn is_balanced(&self) -> bool {
        self.planned == self.accepted + self.rejected + self.dropped_unowned + self.expired
    }

    fn note_rejected(&mut self, action: &ManagementAction, reason: ConflictReason) {
        self.rejected += 1;
        if !action.is_power_action() {
            self.migrations_rejected += 1;
        }
        let slot = match reason {
            ConflictReason::VmBusy => &mut self.rejected_vm_busy,
            ConflictReason::VmRace => &mut self.rejected_vm_race,
            ConflictReason::NotOwner => &mut self.rejected_not_owner,
            ConflictReason::DestUnavailable => &mut self.rejected_dest_unavailable,
            ConflictReason::Headroom => &mut self.rejected_headroom,
            ConflictReason::PowerClash => &mut self.rejected_power_clash,
            ConflictReason::PowerStale => &mut self.rejected_power_stale,
        };
        *slot += 1;
    }
}

/// The shared, conflict-checked placement store (see the module docs for
/// the protocol).
///
/// The per-round claim ledger is reset in O(claims), not O(fleet):
/// every touched slot is remembered and cleared on
/// [`begin_round`](Self::begin_round), so a quiet round costs nothing
/// even at 65536 hosts.
#[derive(Debug)]
pub struct PlacementStore {
    /// VMs claimed for migration this round.
    vm_claimed: Vec<bool>,
    touched_vms: Vec<usize>,
    /// Hosts whose power state was claimed this round.
    power_claimed: Vec<bool>,
    /// Hosts claimed as migration destinations this round (may not park).
    inbound_claimed: Vec<bool>,
    touched_hosts: Vec<usize>,
    /// Lazily-materialized committed-memory view of destination hosts,
    /// seeded from ground truth on first touch and advanced per accepted
    /// claim — mirrors the planner's own `mem_committed` arithmetic.
    mem_view: Vec<f64>,
    mem_loaded: Vec<bool>,
    touched_mem: Vec<usize>,
    stats: CommitStats,
}

impl PlacementStore {
    /// A store for a fleet of `num_hosts` hosts and `num_vms` VMs.
    pub fn new(num_hosts: usize, num_vms: usize) -> Self {
        PlacementStore {
            vm_claimed: vec![false; num_vms],
            touched_vms: Vec::new(),
            power_claimed: vec![false; num_hosts],
            inbound_claimed: vec![false; num_hosts],
            touched_hosts: Vec::new(),
            mem_view: vec![0.0; num_hosts],
            mem_loaded: vec![false; num_hosts],
            touched_mem: Vec::new(),
            stats: CommitStats::default(),
        }
    }

    /// Commit-ledger counters accumulated so far.
    pub fn stats(&self) -> &CommitStats {
        &self.stats
    }

    /// Records an action emitted by a planner (before any filtering).
    pub fn note_planned(&mut self, _action: &ManagementAction) {
        self.stats.planned += 1;
    }

    /// Records an action filtered at plan time as out-of-partition.
    pub fn note_dropped_unowned(&mut self, action: &ManagementAction) {
        self.stats.dropped_unowned += 1;
        if !action.is_power_action() {
            self.stats.migrations_dropped += 1;
        }
    }

    /// Records an action still in the latency window at end of run.
    pub fn note_expired(&mut self, action: &ManagementAction) {
        self.stats.expired += 1;
        if !action.is_power_action() {
            self.stats.migrations_expired += 1;
        }
    }

    /// Opens a new commit round: clears the claim ledger (in O(claims)
    /// of the previous round).
    pub fn begin_round(&mut self) {
        for &vm in &self.touched_vms {
            self.vm_claimed[vm] = false;
        }
        self.touched_vms.clear();
        for &h in &self.touched_hosts {
            self.power_claimed[h] = false;
            self.inbound_claimed[h] = false;
        }
        self.touched_hosts.clear();
        for &h in &self.touched_mem {
            self.mem_loaded[h] = false;
        }
        self.touched_mem.clear();
    }

    /// Checks one action against ground truth and the round's claim
    /// ledger; on success the claims are recorded, on failure the stats
    /// are charged and the caller must drop the action.
    ///
    /// `owned` is the committing scheduler's host partition; it gates
    /// migration sources (the VM's *actual* host must be owned — a stale
    /// belief that it still is gets a [`ConflictReason::NotOwner`]).
    /// Power-action ownership is already enforced by the plan-time
    /// filter, since host partitions are static.
    ///
    /// # Errors
    ///
    /// Returns the [`ConflictReason`] that refused the action.
    pub fn admit<F: PlacementFacts>(
        &mut self,
        owned: &Range<usize>,
        action: &ManagementAction,
        facts: &F,
    ) -> Result<(), ConflictReason> {
        let verdict = self.check(owned, action, facts);
        match verdict {
            Ok(()) => {
                self.stats.accepted += 1;
                self.claim(action, facts);
            }
            Err(reason) => self.stats.note_rejected(action, reason),
        }
        verdict
    }

    fn check<F: PlacementFacts>(
        &self,
        owned: &Range<usize>,
        action: &ManagementAction,
        facts: &F,
    ) -> Result<(), ConflictReason> {
        match *action {
            ManagementAction::Migrate { vm, to } => {
                let Some(source) = facts.host_of(vm) else {
                    return Err(ConflictReason::VmBusy);
                };
                if facts.is_migrating(vm) || source == to {
                    return Err(ConflictReason::VmBusy);
                }
                if !owned.contains(&source.index()) {
                    return Err(ConflictReason::NotOwner);
                }
                if self.vm_claimed[vm.index()] {
                    return Err(ConflictReason::VmRace);
                }
                if !facts.is_operational(to) || self.power_claimed[to.index()] {
                    return Err(ConflictReason::DestUnavailable);
                }
                let committed = if self.mem_loaded[to.index()] {
                    self.mem_view[to.index()]
                } else {
                    facts.mem_committed_gb(to)
                };
                // Bitwise the planner's own admission line (`can_accept`).
                if committed + facts.vm_mem_gb(vm) > facts.mem_capacity_gb(to) + 1e-9 {
                    return Err(ConflictReason::Headroom);
                }
                Ok(())
            }
            ManagementAction::PowerUp { host } => {
                if self.power_claimed[host.index()] {
                    return Err(ConflictReason::PowerClash);
                }
                if facts.has_pending_transition(host) {
                    return Err(ConflictReason::PowerStale);
                }
                match facts.power_state(host) {
                    PowerState::PackageIdle | PowerState::Suspended | PowerState::Off => Ok(()),
                    _ => Err(ConflictReason::PowerStale),
                }
            }
            ManagementAction::PowerDown { host, .. } => {
                if self.power_claimed[host.index()] || self.inbound_claimed[host.index()] {
                    return Err(ConflictReason::PowerClash);
                }
                if facts.has_pending_transition(host)
                    || !facts.is_operational(host)
                    || !facts.is_evacuated(host)
                {
                    return Err(ConflictReason::PowerStale);
                }
                Ok(())
            }
        }
    }

    fn claim<F: PlacementFacts>(&mut self, action: &ManagementAction, facts: &F) {
        match *action {
            ManagementAction::Migrate { vm, to } => {
                self.vm_claimed[vm.index()] = true;
                self.touched_vms.push(vm.index());
                let base = if self.mem_loaded[to.index()] {
                    self.mem_view[to.index()]
                } else {
                    self.mem_loaded[to.index()] = true;
                    self.touched_mem.push(to.index());
                    facts.mem_committed_gb(to)
                };
                self.mem_view[to.index()] = base + facts.vm_mem_gb(vm);
                if !self.inbound_claimed[to.index()] {
                    self.inbound_claimed[to.index()] = true;
                    self.touched_hosts.push(to.index());
                }
            }
            ManagementAction::PowerUp { host } | ManagementAction::PowerDown { host, .. } => {
                if !self.power_claimed[host.index()] {
                    self.power_claimed[host.index()] = true;
                    self.touched_hosts.push(host.index());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power::breakeven::LowPowerMode;

    /// A table-backed facts world for exercising the store directly.
    struct World {
        host_of: Vec<Option<HostId>>,
        migrating: Vec<bool>,
        vm_mem: Vec<f64>,
        mem_committed: Vec<f64>,
        mem_capacity: Vec<f64>,
        operational: Vec<bool>,
        state: Vec<PowerState>,
        pending: Vec<bool>,
    }

    impl World {
        fn new(hosts: usize, vms: usize) -> Self {
            World {
                host_of: vec![Some(HostId(0)); vms],
                migrating: vec![false; vms],
                vm_mem: vec![8.0; vms],
                mem_committed: vec![0.0; hosts],
                mem_capacity: vec![32.0; hosts],
                operational: vec![true; hosts],
                state: vec![PowerState::On; hosts],
                pending: vec![false; hosts],
            }
        }
    }

    impl PlacementFacts for World {
        fn host_of(&self, vm: VmId) -> Option<HostId> {
            self.host_of[vm.index()]
        }
        fn is_migrating(&self, vm: VmId) -> bool {
            self.migrating[vm.index()]
        }
        fn vm_mem_gb(&self, vm: VmId) -> f64 {
            self.vm_mem[vm.index()]
        }
        fn mem_committed_gb(&self, host: HostId) -> f64 {
            self.mem_committed[host.index()]
        }
        fn mem_capacity_gb(&self, host: HostId) -> f64 {
            self.mem_capacity[host.index()]
        }
        fn is_operational(&self, host: HostId) -> bool {
            self.operational[host.index()]
        }
        fn power_state(&self, host: HostId) -> PowerState {
            self.state[host.index()]
        }
        fn has_pending_transition(&self, host: HostId) -> bool {
            self.pending[host.index()]
        }
        fn is_evacuated(&self, host: HostId) -> bool {
            !self
                .host_of
                .iter()
                .any(|h| *h == Some(host) && self.operational[host.index()])
        }
    }

    fn migrate(vm: u32, to: u32) -> ManagementAction {
        ManagementAction::Migrate {
            vm: VmId(vm),
            to: HostId(to),
        }
    }

    #[test]
    fn fresh_self_consistent_batch_is_fully_admitted() {
        let world = World::new(4, 4);
        let mut store = PlacementStore::new(4, 4);
        store.begin_round();
        let all = 0..4usize;
        assert_eq!(store.admit(&all, &migrate(0, 1), &world), Ok(()));
        assert_eq!(store.admit(&all, &migrate(1, 2), &world), Ok(()));
        assert_eq!(
            store.admit(&all, &ManagementAction::PowerUp { host: HostId(3) }, &world),
            Err(ConflictReason::PowerStale),
            "waking an On host is stale"
        );
        let stats = store.stats();
        assert_eq!(
            stats.planned, 0,
            "planned is noted by the engine, not admit"
        );
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.rejected_power_stale, 1);
    }

    #[test]
    fn second_claim_of_a_vm_is_a_race() {
        let world = World::new(4, 4);
        let mut store = PlacementStore::new(4, 4);
        store.begin_round();
        let left = 0..2usize;
        assert_eq!(store.admit(&left, &migrate(0, 1), &world), Ok(()));
        assert_eq!(
            store.admit(&left, &migrate(0, 2), &world),
            Err(ConflictReason::VmRace)
        );
        // Next round the claim is released.
        store.begin_round();
        assert_eq!(store.admit(&left, &migrate(0, 2), &world), Ok(()));
    }

    #[test]
    fn headroom_claims_accumulate_across_schedulers() {
        let mut world = World::new(3, 4);
        world.mem_capacity[2] = 20.0;
        world.vm_mem = vec![12.0; 4];
        // VMs live on different hosts so each migration has a distinct owner.
        world.host_of = vec![
            Some(HostId(0)),
            Some(HostId(1)),
            Some(HostId(0)),
            Some(HostId(1)),
        ];
        let mut store = PlacementStore::new(3, 4);
        store.begin_round();
        // Scheduler 0 fills host 2 (12 of 20 GB)…
        assert_eq!(store.admit(&(0..1), &migrate(0, 2), &world), Ok(()));
        // …so scheduler 1's race for the same headroom must lose.
        assert_eq!(
            store.admit(&(1..2), &migrate(1, 2), &world),
            Err(ConflictReason::Headroom)
        );
        assert_eq!(store.stats().rejected_headroom, 1);
    }

    #[test]
    fn stale_source_belief_is_not_owner() {
        let mut world = World::new(4, 2);
        world.host_of[0] = Some(HostId(3)); // actually moved to a remote host
        let mut store = PlacementStore::new(4, 2);
        store.begin_round();
        assert_eq!(
            store.admit(&(0..2), &migrate(0, 1), &world),
            Err(ConflictReason::NotOwner)
        );
    }

    #[test]
    fn in_flight_vm_and_noop_move_are_busy() {
        let mut world = World::new(4, 2);
        world.migrating[0] = true;
        let mut store = PlacementStore::new(4, 2);
        store.begin_round();
        let all = 0..4usize;
        assert_eq!(
            store.admit(&all, &migrate(0, 1), &world),
            Err(ConflictReason::VmBusy)
        );
        assert_eq!(
            store.admit(&all, &migrate(1, 0), &world),
            Err(ConflictReason::VmBusy),
            "vm 1 already sits on host 0"
        );
    }

    #[test]
    fn park_collides_with_inbound_migration() {
        let mut world = World::new(4, 2);
        world.host_of = vec![Some(HostId(0)), Some(HostId(2))];
        let mut store = PlacementStore::new(4, 2);
        store.begin_round();
        let all = 0..4usize;
        assert_eq!(store.admit(&all, &migrate(0, 1), &world), Ok(()));
        assert_eq!(
            store.admit(
                &all,
                &ManagementAction::PowerDown {
                    host: HostId(1),
                    mode: LowPowerMode::Suspend,
                },
                &world,
            ),
            Err(ConflictReason::PowerClash)
        );
        // And the reverse: migrating onto a host parked this round fails.
        assert_eq!(
            store.admit(
                &all,
                &ManagementAction::PowerDown {
                    host: HostId(3),
                    mode: LowPowerMode::Suspend,
                },
                &world,
            ),
            Ok(())
        );
        assert_eq!(
            store.admit(&all, &migrate(1, 3), &world),
            Err(ConflictReason::DestUnavailable)
        );
    }

    #[test]
    fn ledger_identity_balances() {
        let world = World::new(4, 4);
        let mut store = PlacementStore::new(4, 4);
        let all = 0..4usize;
        store.begin_round();
        for action in [migrate(0, 1), migrate(0, 2), migrate(1, 1)] {
            store.note_planned(&action);
            let _ = store.admit(&all, &action, &world);
        }
        store.note_planned(&migrate(2, 3));
        store.note_dropped_unowned(&migrate(2, 3));
        store.note_planned(&migrate(3, 1));
        store.note_expired(&migrate(3, 1));
        let stats = store.stats();
        assert!(stats.is_balanced(), "{stats:?}");
        assert_eq!(stats.planned, 5);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.migrations_dropped, 1);
        assert_eq!(stats.migrations_expired, 1);
    }

    #[test]
    fn entries_cover_every_counter_in_stable_order() {
        let stats = CommitStats {
            planned: 1,
            accepted: 2,
            rejected: 3,
            ..CommitStats::default()
        };
        let entries = stats.entries();
        assert_eq!(entries[0], ("planned", 1));
        assert_eq!(entries[1], ("accepted", 2));
        assert_eq!(entries[2], ("rejected", 3));
        let names: Vec<&str> = entries.iter().map(|(n, _)| *n).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate counter name");
    }

    #[test]
    fn conflict_labels_round_trip() {
        for reason in [
            ConflictReason::VmBusy,
            ConflictReason::VmRace,
            ConflictReason::NotOwner,
            ConflictReason::DestUnavailable,
            ConflictReason::Headroom,
            ConflictReason::PowerClash,
            ConflictReason::PowerStale,
        ] {
            assert_eq!(ConflictReason::from_label(reason.label()), Some(reason));
        }
        assert_eq!(ConflictReason::from_label("nope"), None);
    }
}
