//! The management loop body.

use cluster::HostId;
use power::breakeven::LowPowerMode;
use power::PowerState;

use crate::plan::PlanContext;
use crate::{
    consolidate, drm, ActionReason, ClusterObservation, DayProfile, DecisionActions,
    DecisionRecord, DecisionTrigger, HysteresisGate, IndexWorkCounters, ManagementAction,
    ManagerConfig, PowerPolicy, Predictor, RecoveryTracker, WorkCounters,
};
use obs::{Histogram, SpanTracer};
use simcore::{pool, SimDuration};

/// Cumulative counts of actions the manager has requested — the
/// "management overhead" the paper compares against base DRM (experiment
/// T9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Management rounds executed.
    pub rounds: u64,
    /// Live migrations requested.
    pub migrations_requested: u64,
    /// Host power-ups requested.
    pub power_ups_requested: u64,
    /// Host power-downs requested.
    pub power_downs_requested: u64,
    /// Migrations attributed to overload mitigation (base DRM work).
    pub overload_migrations: u64,
    /// Migrations attributed to consolidation (power-management work).
    pub consolidation_migrations: u64,
    /// Migrations attributed to background rebalancing.
    pub rebalance_migrations: u64,
    /// Fresh power-transition failures the recovery tracker detected.
    pub failures_detected: u64,
    /// Hosts newly quarantined by the recovery tracker.
    pub quarantines: u64,
    /// Rounds planned with the fleet fail-safe tripped.
    pub failsafe_rounds: u64,
}

impl RoundStats {
    /// Total power actions (up + down).
    pub fn power_actions(&self) -> u64 {
        self.power_ups_requested + self.power_downs_requested
    }
}

/// The power-aware virtualization manager.
///
/// Owns the per-VM demand predictors, the hysteresis gate, and the set of
/// hosts currently being drained. Each management round,
/// [`plan`](Self::plan) turns a [`ClusterObservation`] into a list of
/// [`ManagementAction`]s:
///
/// 1. **Capacity assurance** — if predicted demand (plus spares) exceeds
///    the capacity that is on or arriving, first cancel drains, then wake
///    parked hosts (suspended before off — the cheap state first).
/// 2. **DRM overload mitigation** — migrate VMs off hosts predicted above
///    the overload threshold (this step alone is the `AlwaysOn`
///    baseline).
/// 3. **Consolidation** — evacuate underloaded hosts (all-or-nothing per
///    host) and mark them draining.
/// 4. **Power-down** — drained hosts that are now empty are parked in the
///    policy's low-power state.
///
/// # Example
///
/// ```
/// use agile_core::{ManagerConfig, PowerPolicy, VirtManager};
///
/// let mut mgr = VirtManager::new(ManagerConfig::new(PowerPolicy::always_on()), 4, 16);
/// assert_eq!(mgr.stats().rounds, 0);
/// ```
#[derive(Debug, Clone)]
pub struct VirtManager {
    config: ManagerConfig,
    predictors: Vec<Predictor>,
    gate: HysteresisGate,
    draining: Vec<bool>,
    recovery: RecoveryTracker,
    profile: Option<DayProfile>,
    last_reasons: Vec<ActionReason>,
    last_decision: Option<DecisionRecord>,
    stats: RoundStats,
    /// Reusable per-round buffers: predictions and the planning context
    /// keep their allocations across rounds so steady-state planning
    /// allocates nothing.
    predicted_buf: Vec<f64>,
    ctx: PlanContext,
    /// Worker threads for the sharded prediction fill and consolidation
    /// candidate scan; `1` keeps planning fully serial.
    threads: usize,
    /// Log-bucket histogram of total actions per round — deterministic
    /// (counts actions, not time), feeds the decision record's
    /// percentile summary.
    actions_hist: Histogram,
}

/// Capacity requirement vs. supply, assessed before any action.
struct CapacityAssessment {
    /// Capacity urgent demand alone requires (no spares).
    required_urgent: f64,
    /// Full requirement: urgent demand plus the spare-host reserve.
    required: f64,
    /// Capacity on, arriving, or un-drained at assessment time.
    available: f64,
    /// Raw time-of-day forecast, when the profile produced one.
    forecast: Option<f64>,
}

impl VirtManager {
    /// Creates a manager for a cluster of `num_hosts` hosts and `num_vms`
    /// VMs.
    ///
    /// # Panics
    ///
    /// Panics if `config` violates its cross-field invariants (see
    /// [`ManagerConfig::validate`]).
    pub fn new(config: ManagerConfig, num_hosts: usize, num_vms: usize) -> Self {
        config.validate();
        let predictors = (0..num_vms)
            .map(|_| Predictor::new(config.predictor()))
            .collect();
        let gate = HysteresisGate::new(config.min_on_time(), config.min_off_time(), num_hosts);
        let profile = config
            .prewake_lookahead()
            .map(|_| DayProfile::new(SimDuration::from_mins(30), 0.5));
        let recovery = RecoveryTracker::new(config.recovery().clone(), num_hosts);
        let mut ctx = PlanContext::default();
        ctx.mode = config.plan_mode();
        VirtManager {
            config,
            predictors,
            gate,
            draining: vec![false; num_hosts],
            recovery,
            profile,
            last_reasons: Vec::new(),
            last_decision: None,
            stats: RoundStats::default(),
            predicted_buf: Vec::new(),
            ctx,
            threads: 1,
            actions_hist: Histogram::new(),
        }
    }

    /// Sets the worker-thread count for the sharded planning paths (the
    /// per-VM prediction fill and the consolidation candidate scan). `1`
    /// (the default) keeps planning fully serial; any count produces
    /// bit-identical plans — shard boundaries are fixed and every
    /// floating-point reduction stays on the calling thread in index
    /// order.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The worker-thread count for sharded planning.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configuration.
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// Cumulative action counts.
    pub fn stats(&self) -> &RoundStats {
        &self.stats
    }

    /// Why each action of the most recent [`plan`](Self::plan) round was
    /// taken, aligned index-for-index with the returned actions.
    pub fn last_round_reasons(&self) -> &[ActionReason] {
        &self.last_reasons
    }

    /// The decision record of the most recent [`plan`](Self::plan)
    /// round: what the planner saw and why it acted. `None` before the
    /// first round and under the analytic `Oracle` policy, which never
    /// plans.
    pub fn last_decision(&self) -> Option<&DecisionRecord> {
        self.last_decision.as_ref()
    }

    /// The failure-recovery tracker: per-host backoff, health, and
    /// quarantine state plus the fleet fail-safe.
    pub fn recovery(&self) -> &RecoveryTracker {
        &self.recovery
    }

    /// Hosts currently marked for evacuation.
    pub fn draining_hosts(&self) -> Vec<HostId> {
        self.draining
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| HostId(i as u32))
            .collect()
    }

    /// Deterministic counts of the planning work done so far (candidate
    /// scans, trial evacuations, rollbacks, destination re-scores),
    /// accumulated across rounds.
    pub fn work_counters(&self) -> WorkCounters {
        self.ctx.work
    }

    /// Deterministic counts of the utilization-index maintenance work done
    /// so far (refreshes, re-buckets, inserts, removes, overlay folds).
    /// All zero under [`PlanMode::Scan`](crate::PlanMode::Scan).
    pub fn index_work_counters(&self) -> IndexWorkCounters {
        self.ctx.index_work
    }

    /// Runs one management round.
    ///
    /// # Panics
    ///
    /// Panics if the observation's host/VM counts differ from what the
    /// manager was created with.
    pub fn plan(&mut self, obs: &ClusterObservation) -> Vec<ManagementAction> {
        self.plan_traced(obs, &mut SpanTracer::new())
    }

    /// Runs one management round, recording each planning step as a
    /// child span of the caller's current span (`rescore`,
    /// `capacity_wake`, `overload`, `index_maintain`, `consolidate` with
    /// its `candidate_scan`/`trial`/`undo` subtree, `rebalance`, `park`).
    ///
    /// Tracing observes and never steers: with a disabled tracer this is
    /// byte-for-byte the same plan as [`plan`](Self::plan).
    ///
    /// # Panics
    ///
    /// Panics if the observation's host/VM counts differ from what the
    /// manager was created with.
    pub fn plan_traced(
        &mut self,
        obs: &ClusterObservation,
        tracer: &mut SpanTracer,
    ) -> Vec<ManagementAction> {
        assert_eq!(obs.hosts.len(), self.draining.len(), "host count changed");
        assert_eq!(obs.vms.len(), self.predictors.len(), "VM count changed");
        self.stats.rounds += 1;

        let s_rescore = tracer.name("rescore");
        let s_wake = tracer.name("capacity_wake");
        let s_overload = tracer.name("overload");
        let s_index = tracer.name("index_maintain");
        let s_consolidate = tracer.name("consolidate");
        let s_rebalance = tracer.name("rebalance");
        let s_park = tracer.name("park");
        tracer.enter(s_rescore);

        // Detect fresh transition failures before any planning: backoff,
        // quarantine, and the fleet fail-safe gate the steps below.
        self.recovery.observe(obs);
        let rstats = *self.recovery.stats();
        self.stats.failures_detected = rstats.failures_observed;
        self.stats.quarantines = rstats.quarantines;
        self.stats.failsafe_rounds = rstats.failsafe_rounds;

        // Feed the predictors and collect per-VM predictions into the
        // reusable buffer. Each prediction only touches its own predictor
        // and output slot, so the sharded fill is trivially identical to
        // the serial one.
        let n_vms = obs.vms.len();
        if self.threads > 1 && n_vms > 1 {
            self.predicted_buf.clear();
            self.predicted_buf.resize(n_vms, 0.0);
            let ranges = pool::shard_ranges(n_vms, self.threads);
            let mut pred_it = pool::split_mut(&mut self.predictors, &ranges).into_iter();
            let mut out_it = pool::split_mut(&mut self.predicted_buf, &ranges).into_iter();
            let shards: Vec<_> = ranges
                .iter()
                .map(|r| {
                    (
                        &obs.vms[r.clone()],
                        pred_it.next().expect("one chunk per range"),
                        out_it.next().expect("one chunk per range"),
                    )
                })
                .collect();
            pool::for_each_shard(self.threads, shards, |_, (vms, preds, out)| {
                for ((vm, p), o) in vms.iter().zip(preds.iter_mut()).zip(out.iter_mut()) {
                    p.observe(vm.cpu_demand);
                    *o = p.predict().clamp(0.0, vm.cpu_cap);
                }
            });
        } else {
            self.predicted_buf.clear();
            let predictors = &mut self.predictors;
            self.predicted_buf
                .extend(obs.vms.iter().zip(predictors).map(|(vm, p)| {
                    p.observe(vm.cpu_demand);
                    p.predict().clamp(0.0, vm.cpu_cap)
                }));
        }

        // Feed the time-of-day profile (proactive pre-waking).
        if let Some(profile) = &mut self.profile {
            profile.observe(obs.now, obs.total_vm_demand());
        }

        if matches!(self.config.policy(), PowerPolicy::Oracle) {
            // Oracle is evaluated analytically by the simulator; the
            // manager never acts.
            tracer.exit(s_rescore);
            self.last_decision = None;
            return Vec::new();
        }

        let mut ctx = std::mem::take(&mut self.ctx);
        ctx.rebuild(obs, &self.predicted_buf, &self.draining);

        // Recovery gating: a quarantined host must not keep draining (its
        // power-down would never be issued), and a tripped fail-safe
        // cancels every drain — the fleet holds near AlwaysOn until the
        // failure burst clears.
        let failsafe = self.recovery.failsafe_active();
        for h in 0..ctx.num_hosts() {
            if ctx.draining[h] && (failsafe || self.recovery.is_quarantined(h)) {
                ctx.draining[h] = false;
                self.draining[h] = false;
            }
        }
        let mut actions = Vec::new();
        let mut budget = self.config.max_migrations_per_round();
        let power_managed = self.config.policy().is_power_managed();

        // Snapshot the planner's view before any step mutates it — the
        // decision record explains this round from these inputs.
        let predicted_demand = ctx.total_predicted();
        let overloaded_hosts = (0..ctx.num_hosts())
            .filter(|&h| ctx.operational[h] && ctx.util(h) > self.config.overload_threshold())
            .count();
        let underloaded_hosts = (0..ctx.num_hosts())
            .filter(|&h| {
                ctx.operational[h]
                    && !ctx.draining[h]
                    && ctx.util(h) < self.config.underload_threshold()
            })
            .count();
        let candidate_hosts = (0..ctx.num_hosts())
            .filter(|&h| ctx.operational[h] && !ctx.draining[h])
            .count();
        let capacity = self.assess_capacity(&ctx, obs);
        tracer.exit(s_rescore);

        // Attribute each action to the step that produced it by tracking
        // step boundaries in the action list.
        let mut reasons: Vec<ActionReason> = Vec::new();
        let mark = |reasons: &mut Vec<ActionReason>, upto: usize, r: ActionReason| {
            while reasons.len() < upto {
                reasons.push(r);
            }
        };

        let mut available_capacity = capacity.available;
        tracer.enter(s_wake);
        if power_managed {
            available_capacity = self.ensure_capacity(&mut ctx, obs, &mut actions, &capacity);
        }
        tracer.exit(s_wake);
        mark(&mut reasons, actions.len(), ActionReason::CapacityWake);
        // Bring the utilization index up to date with this round's fresh
        // predictions before the first destination pick. It sits after
        // the capacity wake (which rewrites `draining`/`arriving`
        // directly) and before overload mitigation, whose per-VM
        // least-loaded picks are the first index consumers; every later
        // mutation flows through `move_vm`/`set_draining_trial`, which
        // keep the index current. Under `PlanMode::Scan` (or when
        // consolidation is skipped) this is a no-op and the index stays
        // invalid, so every lookup falls back to the full scan.
        tracer.enter(s_index);
        if power_managed && !failsafe {
            ctx.refresh_index();
        }
        tracer.exit(s_index);
        tracer.enter(s_overload);
        drm::mitigate_overloads(&mut ctx, &self.config, &mut actions, &mut budget);
        tracer.exit(s_overload);
        mark(
            &mut reasons,
            actions.len(),
            ActionReason::OverloadMitigation,
        );
        tracer.enter(s_consolidate);
        if power_managed && !failsafe {
            consolidate::plan_consolidation(
                &mut ctx,
                &self.config,
                &self.gate,
                &self.recovery,
                obs.now,
                &mut actions,
                &mut budget,
                self.threads,
                tracer,
            );
        }
        tracer.exit(s_consolidate);
        mark(&mut reasons, actions.len(), ActionReason::Consolidation);
        // Rebalance after consolidation so the trickle never refills a
        // host that is being drained.
        tracer.enter(s_rebalance);
        drm::rebalance(&mut ctx, &self.config, &mut actions, &mut budget);
        tracer.exit(s_rebalance);
        mark(&mut reasons, actions.len(), ActionReason::Rebalance);
        tracer.enter(s_park);
        if power_managed {
            self.draining.clear();
            self.draining.extend_from_slice(&ctx.draining);
            if !failsafe {
                self.park_drained(obs, &mut actions);
            }
        }
        tracer.exit(s_park);
        mark(&mut reasons, actions.len(), ActionReason::Park);
        // Hand the context back for reuse next round.
        self.ctx = ctx;

        let mut round_actions = DecisionActions::default();
        for (a, reason) in actions.iter().zip(&reasons) {
            match a {
                ManagementAction::Migrate { .. } => {
                    self.stats.migrations_requested += 1;
                    round_actions.migrations += 1;
                    match reason {
                        ActionReason::OverloadMitigation => {
                            self.stats.overload_migrations += 1;
                            round_actions.overload_migrations += 1;
                        }
                        ActionReason::Consolidation => {
                            self.stats.consolidation_migrations += 1;
                            round_actions.consolidation_migrations += 1;
                        }
                        ActionReason::Rebalance => {
                            self.stats.rebalance_migrations += 1;
                            round_actions.rebalance_migrations += 1;
                        }
                        _ => {}
                    }
                }
                ManagementAction::PowerUp { .. } => {
                    self.stats.power_ups_requested += 1;
                    round_actions.power_ups += 1;
                }
                ManagementAction::PowerDown { .. } => {
                    self.stats.power_downs_requested += 1;
                    round_actions.power_downs += 1;
                }
            }
        }
        self.last_reasons = reasons;
        self.actions_hist.observe(actions.len() as f64);
        self.last_decision = Some(DecisionRecord {
            round: self.stats.rounds,
            now: obs.now,
            trigger: DecisionTrigger {
                overload: overloaded_hosts > 0,
                underload: underloaded_hosts > 0,
                prewake: capacity.forecast.is_some_and(|f| f > predicted_demand),
            },
            observed_demand: obs.total_vm_demand(),
            predicted_demand,
            prewake_forecast: capacity.forecast,
            required_capacity: capacity.required,
            available_capacity,
            candidate_hosts,
            overloaded_hosts,
            underloaded_hosts,
            draining_hosts: self.draining.iter().filter(|&&d| d).count(),
            quarantined_hosts: self.recovery.quarantined_count(),
            failsafe,
            actions: round_actions,
            actions_per_round: self.actions_hist.quantiles(),
        });
        actions
    }

    /// Measures required vs. available capacity without acting — the
    /// shared input of [`ensure_capacity`](Self::ensure_capacity) and the
    /// round's decision record.
    fn assess_capacity(&self, ctx: &PlanContext, obs: &ClusterObservation) -> CapacityAssessment {
        let cfg = &self.config;
        let mut total_pred = ctx.total_predicted();
        // Proactive pre-wake: recurring ramps visible in the learned
        // profile raise the capacity requirement ahead of time.
        let mut forecast = None;
        if let (Some(profile), Some(lookahead)) = (&self.profile, cfg.prewake_lookahead()) {
            if let Some(f) = profile.forecast_max(obs.now, lookahead) {
                forecast = Some(f);
                total_pred = total_pred.max(f);
            }
        }
        let max_cap = (0..ctx.num_hosts())
            .map(|h| ctx.cpu_capacity[h])
            .fold(0.0, f64::max);
        let required_urgent = total_pred / cfg.target_utilization();
        let required = required_urgent + cfg.spare_hosts() as f64 * max_cap;
        let available: f64 = (0..ctx.num_hosts())
            .filter(|&h| (ctx.operational[h] && !ctx.draining[h]) || ctx.arriving[h])
            .map(|h| ctx.cpu_capacity[h])
            .sum();
        CapacityAssessment {
            required_urgent,
            required,
            available,
            forecast,
        }
    }

    /// Step 1: cancel drains and wake parked hosts until predicted demand
    /// (plus spares) fits the capacity that is on or arriving. Returns
    /// the available capacity after the actions it planned.
    fn ensure_capacity(
        &mut self,
        ctx: &mut PlanContext,
        obs: &ClusterObservation,
        actions: &mut Vec<ManagementAction>,
        capacity: &CapacityAssessment,
    ) -> f64 {
        let required_urgent = capacity.required_urgent;
        let required = capacity.required;
        let mut available = capacity.available;

        // Cancelling a drain is free capacity: most-loaded drains first
        // (they have the most VMs to avoid moving).
        if available < required {
            let mut drains: Vec<usize> = (0..ctx.num_hosts())
                .filter(|&h| ctx.draining[h] && ctx.operational[h])
                .collect();
            drains.sort_by(|&a, &b| {
                ctx.util(b)
                    .partial_cmp(&ctx.util(a))
                    .expect("utilization is finite")
            });
            for h in drains {
                if available >= required {
                    break;
                }
                ctx.draining[h] = false;
                self.draining[h] = false;
                available += ctx.cpu_capacity[h];
            }
        }

        // Wake parked hosts shallowest rung first: package idle (near
        // instant), then suspended, then off.
        let mut pool: Vec<HostId> = obs.hosts_in_state(PowerState::PackageIdle).collect();
        pool.extend(obs.hosts_in_state(PowerState::Suspended));
        pool.extend(obs.hosts_in_state(PowerState::Off));
        for host in pool {
            if available >= required {
                break;
            }
            // Recovery gating: no wake attempts into a quarantined host
            // or inside a post-failure backoff window.
            if !self.recovery.may_power_cycle(host.index(), obs.now) {
                continue;
            }
            let urgent = available < required_urgent;
            if !urgent && !self.gate.may_power_up_nonurgent(host, obs.now) {
                continue;
            }
            actions.push(ManagementAction::PowerUp { host });
            self.gate.record_power_up(host, obs.now);
            ctx.arriving[host.index()] = true;
            available += ctx.cpu_capacity[host.index()];
        }
        available
    }

    /// Step 4: park drained hosts that are now empty.
    ///
    /// Under a `Reactive` policy every host parks in the policy's fixed
    /// low-power mode. Under `JointLadder` each host picks its own rung:
    /// the deepest one whose wake latency fits the policy's SLO and — when
    /// a pre-wake lookahead bounds the expected idle gap — whose
    /// break-even gap that lookahead affords; a warm pool sized from the
    /// day-profile forecast stays on the shallowest SLO-feasible rung to
    /// absorb recurring ramps without paying deep-wake latency.
    fn park_drained(&mut self, obs: &ClusterObservation, actions: &mut Vec<ManagementAction>) {
        let ladder_slo = match *self.config.policy() {
            PowerPolicy::JointLadder { wake_slo } => Some(wake_slo),
            _ => None,
        };
        let fixed_mode = if ladder_slo.is_none() {
            Some(
                self.config
                    .policy()
                    .low_power_mode()
                    .expect("park_drained only runs under a power-managed policy"),
            )
        } else {
            None
        };
        let expected_gap = self.config.prewake_lookahead();
        let mut warm_budget = if ladder_slo.is_some() {
            self.warm_pool_deficit(obs)
        } else {
            0
        };
        for host in &obs.hosts {
            let i = host.id.index();
            // Recovery gating: a host in backoff keeps draining and parks
            // once the window expires; a quarantined host never parks.
            if !self.recovery.may_power_cycle(i, obs.now) {
                continue;
            }
            if self.draining[i] && host.evacuated && host.is_operational() && host.pending.is_none()
            {
                let mode = match (fixed_mode, ladder_slo) {
                    (Some(mode), _) => mode,
                    (None, Some(wake_slo)) => {
                        let deep = host.ladder.deepest_affordable(wake_slo, expected_gap);
                        let shallow = host.ladder.shallowest_within(wake_slo);
                        let pick = if warm_budget > 0 {
                            shallow.or(deep)
                        } else {
                            deep
                        };
                        let Some(mode) = pick else {
                            // No rung wakes within the SLO: the host
                            // stays on (and stops draining, so it can
                            // serve again next round).
                            self.draining[i] = false;
                            continue;
                        };
                        warm_budget = warm_budget.saturating_sub(1);
                        mode
                    }
                    (None, None) => unreachable!("one of fixed_mode/ladder_slo is set"),
                };
                actions.push(ManagementAction::PowerDown {
                    host: host.id,
                    mode,
                });
                self.draining[i] = false;
                self.gate.record_power_down(host.id, obs.now);
            }
        }
    }

    /// How many more hosts the joint-ladder policy should hold on the
    /// shallowest rung: the day-profile forecast's ramp over current
    /// demand, converted to hosts at the target utilization, minus hosts
    /// already warm. Zero without a pre-wake lookahead (no forecast — the
    /// policy degenerates to pure deepest-affordable parking).
    fn warm_pool_deficit(&self, obs: &ClusterObservation) -> usize {
        let (Some(profile), Some(lookahead)) = (&self.profile, self.config.prewake_lookahead())
        else {
            return 0;
        };
        let Some(forecast) = profile.forecast_max(obs.now, lookahead) else {
            return 0;
        };
        let ramp = forecast - obs.total_vm_demand();
        if ramp <= 0.0 {
            return 0;
        }
        let per_host = obs.hosts.iter().map(|h| h.cpu_capacity).fold(0.0, f64::max)
            * self.config.target_utilization();
        if per_host <= 0.0 {
            return 0;
        }
        let target = (ramp / per_host).ceil() as usize;
        // Warm means sitting on (or entering) the fleet's shallowest
        // rung: package idle where any host has a C6-class rung, suspend
        // otherwise.
        let has_c6 = obs
            .hosts
            .iter()
            .any(|h| h.ladder.rung(LowPowerMode::PackageIdle).is_some());
        let warm = obs
            .hosts
            .iter()
            .filter(|h| {
                if has_c6 {
                    matches!(h.state, PowerState::PackageIdle | PowerState::Parking)
                } else {
                    matches!(h.state, PowerState::Suspended | PowerState::Suspending)
                }
            })
            .count();
        target.saturating_sub(warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostObservation, VmObservation};
    use cluster::VmId;
    use power::breakeven::LowPowerMode;
    use simcore::{SimDuration, SimTime};

    /// Synthetic observation builder: hosts described by (state, vm demands).
    fn obs(now: SimTime, hosts: &[(PowerState, &[f64])]) -> ClusterObservation {
        let mut host_obs = Vec::new();
        let mut vms = Vec::new();
        for (h, (state, demands)) in hosts.iter().enumerate() {
            host_obs.push(HostObservation {
                id: HostId(h as u32),
                state: *state,
                pending: None,
                cpu_capacity: 8.0,
                mem_capacity: 64.0,
                mem_committed: demands.len() as f64 * 8.0,
                cpu_demand: demands.iter().sum(),
                evacuated: demands.is_empty(),
                failed_transitions: 0,
                ladder: Default::default(),
            });
            for &d in *demands {
                vms.push(VmObservation {
                    id: VmId(vms.len() as u32),
                    host: Some(HostId(h as u32)),
                    cpu_demand: d,
                    cpu_cap: 8.0,
                    mem_gb: 8.0,
                    migrating: false,
                    service_class: Default::default(),
                });
            }
        }
        ClusterObservation {
            now,
            hosts: host_obs,
            vms,
        }
    }

    fn agile_config() -> ManagerConfig {
        ManagerConfig::new(PowerPolicy::reactive_suspend())
            .with_spare_hosts(0)
            .with_min_on_time(SimDuration::ZERO)
            .with_min_off_time(SimDuration::ZERO)
            .with_predictor(crate::PredictorConfig::LastValue)
    }

    #[test]
    fn always_on_never_touches_power() {
        let cfg = ManagerConfig::new(PowerPolicy::always_on());
        let mut mgr = VirtManager::new(cfg, 3, 3);
        // Wildly underloaded: a power-managing policy would drain hosts.
        let o = obs(
            SimTime::ZERO,
            &[
                (PowerState::On, &[0.5]),
                (PowerState::On, &[0.3]),
                (PowerState::On, &[0.2]),
            ],
        );
        let actions = mgr.plan(&o);
        assert!(actions.iter().all(|a| !a.is_power_action()));
        assert_eq!(mgr.stats().power_actions(), 0);
    }

    #[test]
    fn oracle_never_acts() {
        let cfg = ManagerConfig::new(PowerPolicy::oracle());
        let mut mgr = VirtManager::new(cfg, 2, 2);
        let o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[0.5, 0.5]), (PowerState::On, &[])],
        );
        assert!(mgr.plan(&o).is_empty());
    }

    #[test]
    fn consolidates_and_parks_underloaded_host() {
        let mut mgr = VirtManager::new(agile_config(), 2, 2);
        // Two lightly-loaded hosts: host 1 should drain into host 0.
        let o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[1.0]), (PowerState::On, &[0.5])],
        );
        let actions = mgr.plan(&o);
        assert!(
            actions.iter().any(|a| matches!(
                a,
                ManagementAction::Migrate {
                    vm: VmId(1),
                    to: HostId(0)
                }
            )),
            "{actions:?}"
        );
        assert_eq!(mgr.draining_hosts(), vec![HostId(1)]);

        // Next round: host 1 is evacuated -> power-down with suspend.
        let o2 = obs(
            SimTime::from_secs(300),
            &[(PowerState::On, &[1.0, 0.5]), (PowerState::On, &[])],
        );
        let actions2 = mgr.plan(&o2);
        assert!(
            actions2.iter().any(|a| matches!(
                a,
                ManagementAction::PowerDown {
                    host: HostId(1),
                    mode: LowPowerMode::Suspend
                }
            )),
            "{actions2:?}"
        );
        assert!(mgr.draining_hosts().is_empty());
        assert_eq!(mgr.stats().power_downs_requested, 1);
    }

    #[test]
    fn off_policy_parks_with_shutdown() {
        let cfg = ManagerConfig::new(PowerPolicy::reactive_off())
            .with_spare_hosts(0)
            .with_min_on_time(SimDuration::ZERO)
            .with_predictor(crate::PredictorConfig::LastValue);
        let mut mgr = VirtManager::new(cfg, 2, 1);
        let o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[1.0]), (PowerState::On, &[])],
        );
        let actions = mgr.plan(&o);
        assert!(
            actions.iter().any(|a| matches!(
                a,
                ManagementAction::PowerDown {
                    host: HostId(1),
                    mode: LowPowerMode::Off
                }
            )),
            "{actions:?}"
        );
    }

    #[test]
    fn wakes_suspended_host_when_demand_rises() {
        let mut mgr = VirtManager::new(agile_config(), 2, 2);
        // Host 1 is suspended; demand on host 0 nearly saturates it.
        let mut o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[4.0, 3.5]), (PowerState::Suspended, &[])],
        );
        o.hosts[1].evacuated = true;
        let actions = mgr.plan(&o);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, ManagementAction::PowerUp { host: HostId(1) })),
            "{actions:?}"
        );
        assert_eq!(mgr.stats().power_ups_requested, 1);
    }

    #[test]
    fn prefers_suspended_over_off_when_waking() {
        let mut mgr = VirtManager::new(agile_config(), 3, 2);
        let mut o = obs(
            SimTime::ZERO,
            &[
                (PowerState::On, &[4.0, 3.5]),
                (PowerState::Off, &[]),
                (PowerState::Suspended, &[]),
            ],
        );
        o.hosts[1].evacuated = true;
        o.hosts[2].evacuated = true;
        let actions = mgr.plan(&o);
        let wakes: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                ManagementAction::PowerUp { host } => Some(*host),
                _ => None,
            })
            .collect();
        assert_eq!(
            wakes.first(),
            Some(&HostId(2)),
            "suspended host wakes first"
        );
    }

    #[test]
    fn cancels_drain_before_waking() {
        let mut mgr = VirtManager::new(agile_config(), 2, 2);
        // Round 1: drain host 1.
        let o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[1.0]), (PowerState::On, &[0.5])],
        );
        mgr.plan(&o);
        assert_eq!(mgr.draining_hosts(), vec![HostId(1)]);
        // Round 2: demand explodes before the drain finished; the drain
        // must be cancelled rather than waking anything (nothing to wake).
        let o2 = obs(
            SimTime::from_secs(300),
            &[(PowerState::On, &[7.0]), (PowerState::On, &[6.0])],
        );
        let actions = mgr.plan(&o2);
        assert!(mgr.draining_hosts().is_empty());
        assert!(actions
            .iter()
            .all(|a| !matches!(a, ManagementAction::PowerDown { .. })));
    }

    #[test]
    fn spare_pool_keeps_extra_host() {
        let cfg = agile_config().with_spare_hosts(1);
        let mut mgr = VirtManager::new(cfg, 2, 1);
        // One VM, trivially fits on host 0; with one spare required,
        // host 1 must NOT be drained.
        let o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[1.0]), (PowerState::On, &[])],
        );
        let actions = mgr.plan(&o);
        assert!(actions.iter().all(|a| !a.is_power_action()), "{actions:?}");
    }

    #[test]
    fn stats_accumulate() {
        let mut mgr = VirtManager::new(agile_config(), 2, 2);
        let o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[1.0]), (PowerState::On, &[0.5])],
        );
        mgr.plan(&o);
        assert_eq!(mgr.stats().rounds, 1);
        assert!(mgr.stats().migrations_requested >= 1);
    }

    #[test]
    fn reasons_align_with_actions() {
        let mut mgr = VirtManager::new(agile_config(), 2, 2);
        // Consolidation round: the migration off host 1 must be
        // attributed to consolidation.
        let o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[1.0]), (PowerState::On, &[0.5])],
        );
        let actions = mgr.plan(&o);
        let reasons = mgr.last_round_reasons();
        assert_eq!(actions.len(), reasons.len());
        let migration_idx = actions
            .iter()
            .position(|a| matches!(a, ManagementAction::Migrate { .. }))
            .expect("consolidation migrates");
        assert_eq!(reasons[migration_idx], crate::ActionReason::Consolidation);
        assert_eq!(mgr.stats().consolidation_migrations, 1);
        assert_eq!(mgr.stats().overload_migrations, 0);

        // Park round: power-down attributed to Park.
        let o2 = obs(
            SimTime::from_secs(300),
            &[(PowerState::On, &[1.0, 0.5]), (PowerState::On, &[])],
        );
        let actions2 = mgr.plan(&o2);
        let reasons2 = mgr.last_round_reasons();
        let park_idx = actions2
            .iter()
            .position(|a| matches!(a, ManagementAction::PowerDown { .. }))
            .expect("drained host parks");
        assert_eq!(reasons2[park_idx], crate::ActionReason::Park);
    }

    #[test]
    fn quarantined_host_is_not_woken() {
        let cfg = agile_config().with_recovery(crate::RecoveryConfig::new().with_max_retries(1));
        let mut mgr = VirtManager::new(cfg, 2, 2);
        // Host 1 is suspended and just failed a resume: one strike
        // quarantines it, so even saturating demand must not wake it.
        let mut o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[4.0, 3.5]), (PowerState::Suspended, &[])],
        );
        o.hosts[1].evacuated = true;
        o.hosts[1].failed_transitions = 1;
        let actions = mgr.plan(&o);
        assert!(mgr.recovery().is_quarantined(1));
        assert!(
            actions
                .iter()
                .all(|a| !matches!(a, ManagementAction::PowerUp { .. })),
            "{actions:?}"
        );
        assert_eq!(mgr.stats().quarantines, 1);
        assert_eq!(mgr.stats().failures_detected, 1);
    }

    #[test]
    fn backoff_defers_wake_until_window_expires() {
        let recovery = crate::RecoveryConfig::new()
            .with_max_retries(10)
            .with_backoff(SimDuration::from_mins(2), SimDuration::from_mins(32));
        let mut mgr = VirtManager::new(agile_config().with_recovery(recovery), 2, 2);
        let mut o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[4.0, 3.5]), (PowerState::Suspended, &[])],
        );
        o.hosts[1].evacuated = true;
        o.hosts[1].failed_transitions = 1;
        // Round 1: inside the 2-minute backoff window — no wake.
        let actions = mgr.plan(&o);
        assert!(!mgr.recovery().is_quarantined(1));
        assert!(actions
            .iter()
            .all(|a| !matches!(a, ManagementAction::PowerUp { .. })));
        // Round 2, past the window: the retry goes out.
        let mut o2 = o.clone();
        o2.now = SimTime::from_secs(300);
        let actions2 = mgr.plan(&o2);
        assert!(
            actions2
                .iter()
                .any(|a| matches!(a, ManagementAction::PowerUp { host: HostId(1) })),
            "{actions2:?}"
        );
    }

    #[test]
    fn failsafe_suppresses_consolidation_and_parking() {
        let recovery = crate::RecoveryConfig::new()
            .with_max_retries(100)
            .with_health(0.001, 0.05)
            .with_failsafe(SimDuration::from_mins(30), 1);
        let mut mgr = VirtManager::new(agile_config().with_recovery(recovery), 2, 2);
        // Wildly underloaded — without the fail-safe this consolidates
        // (see `consolidates_and_parks_underloaded_host`) — but one
        // fleet failure trips the single-failure fail-safe.
        let mut o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[1.0]), (PowerState::On, &[0.5])],
        );
        o.hosts[0].failed_transitions = 1;
        let actions = mgr.plan(&o);
        assert!(mgr.recovery().failsafe_active());
        assert!(actions.is_empty(), "{actions:?}");
        assert!(mgr.draining_hosts().is_empty());
        let d = mgr.last_decision().unwrap();
        assert!(d.failsafe);
        assert_eq!(mgr.stats().failsafe_rounds, 1);

        // Once the window drains the fail-safe clears and consolidation
        // resumes.
        let mut o2 = o.clone();
        o2.now = SimTime::from_secs(40 * 60);
        let actions2 = mgr.plan(&o2);
        assert!(!mgr.recovery().failsafe_active());
        assert!(
            actions2
                .iter()
                .any(|a| matches!(a, ManagementAction::Migrate { .. })),
            "{actions2:?}"
        );
    }

    #[test]
    fn quarantined_drain_is_cancelled_not_parked() {
        let mut mgr = VirtManager::new(
            agile_config().with_recovery(crate::RecoveryConfig::new().with_max_retries(1)),
            2,
            2,
        );
        // Round 1: host 1 drains normally.
        let o = obs(
            SimTime::ZERO,
            &[(PowerState::On, &[1.0]), (PowerState::On, &[0.5])],
        );
        mgr.plan(&o);
        assert_eq!(mgr.draining_hosts(), vec![HostId(1)]);
        // Round 2: host 1 is evacuated but reports a transition failure
        // (e.g. a previous suspend attempt failed): the drain is
        // cancelled and no power-down is issued.
        let mut o2 = obs(
            SimTime::from_secs(300),
            &[(PowerState::On, &[1.0, 0.5]), (PowerState::On, &[])],
        );
        o2.hosts[1].failed_transitions = 1;
        let actions2 = mgr.plan(&o2);
        assert!(mgr.recovery().is_quarantined(1));
        assert!(
            actions2
                .iter()
                .all(|a| !matches!(a, ManagementAction::PowerDown { .. })),
            "{actions2:?}"
        );
        // Quarantine cancels host 1's drain (it may still *serve*, so the
        // planner is free to consolidate onto it — just never cycle it).
        assert!(!mgr.draining_hosts().contains(&HostId(1)));
        assert_eq!(mgr.last_decision().unwrap().quarantined_hosts, 1);
    }

    #[test]
    #[should_panic(expected = "host count changed")]
    fn rejects_mismatched_observation() {
        let mut mgr = VirtManager::new(agile_config(), 3, 2);
        let o = obs(SimTime::ZERO, &[(PowerState::On, &[1.0, 0.5])]);
        mgr.plan(&o);
    }
}
