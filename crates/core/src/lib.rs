//! The paper's contribution: agile, power-aware virtualization management.
//!
//! This crate implements the end-to-end management solution of
//! *"Agile, efficient virtualization power management with low-latency
//! server power states"* (ISCA'13): a distributed-resource-management
//! (DRM) load balancer extended with a power manager that consolidates
//! VMs during demand troughs and parks the evacuated hosts in a low-power
//! state — the **low-latency suspend-to-RAM (S3-class) state** the paper
//! prototypes, or the traditional off (S5-class) state it compares
//! against.
//!
//! The pieces:
//!
//! * [`VirtManager`] — the control loop body. Each management round it
//!   receives a [`ClusterObservation`] and emits [`ManagementAction`]s.
//! * [`PowerPolicy`] — `AlwaysOn` (base DRM, no power management),
//!   `Reactive` with a [`power::breakeven::LowPowerMode`]
//!   (suspend vs. full off), or `Oracle` (analytic proportional bound,
//!   evaluated by the simulator without a manager).
//! * [`ManagerConfig`] — thresholds, headroom, hysteresis, prediction —
//!   every knob the paper's sensitivity studies sweep.
//! * [`Predictor`] — per-VM demand prediction (last-value / EWMA /
//!   windowed max).
//! * [`HysteresisGate`] — minimum-residency timers that keep the manager
//!   from flapping hosts between power states.
//!
//! # Example
//!
//! ```
//! use agile_core::{ManagerConfig, PowerPolicy, VirtManager};
//!
//! let config = ManagerConfig::new(PowerPolicy::reactive_suspend());
//! let manager = VirtManager::new(config, 16, 64);
//! assert_eq!(manager.config().policy(), &PowerPolicy::reactive_suspend());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod config;
mod consolidate;
mod decision;
mod drm;
mod hysteresis;
mod index;
mod manager;
mod observation;
mod placement;
mod plan;
mod predict;
mod prewake;
mod recovery;
pub mod schedview;
mod work;

pub use action::{ActionReason, ManagementAction};
pub use config::{ConfigError, ManagerConfig, PackingPolicy, PowerPolicy};
pub use decision::{DecisionActions, DecisionRecord, DecisionTrigger};
pub use hysteresis::HysteresisGate;
pub use index::{pairwise_sum, IndexWorkCounters, PlanMode, SumTree, UtilizationIndex};
pub use manager::{RoundStats, VirtManager};
pub use observation::{ClusterObservation, HostObservation, VmObservation};
pub use placement::{CommitStats, ConflictReason, PlacementFacts, PlacementStore};
pub use predict::{Predictor, PredictorConfig};
pub use prewake::DayProfile;
pub use recovery::{RecoveryConfig, RecoveryStats, RecoveryTracker};
pub use work::WorkCounters;
