//! Failure detection and bounded-retry recovery.
//!
//! A real management plane has to survive hosts that refuse to come back:
//! a resume that fails once is noise, a host that fails every attempt is a
//! hardware problem, and a burst of failures across the fleet means the
//! manager itself should stop making things worse. This module gives
//! [`crate::VirtManager`] that judgement:
//!
//! * **Detection** — each round, the tracker diffs every host's cumulative
//!   [`crate::HostObservation::failed_transitions`] counter against the
//!   previous round; the delta is the number of fresh failures.
//! * **Bounded retries with backoff** — after a failure the host enters an
//!   exponential backoff window (`base * 2^(consecutive-1)`, capped);
//!   the capacity planner will not pick it for a wake until the window
//!   expires. Retries are bounded by `max_retries` consecutive failures.
//! * **Health-score quarantine** — every failure halves the host's health
//!   score; clean operational rounds earn a little back. A host whose
//!   retries are exhausted or whose health drops below the floor is
//!   *quarantined*: removed from the park-candidate and wake pools for a
//!   probation window. Quarantine release is **monotone** — new failures
//!   during probation can only push the release later, never earlier.
//! * **Fleet fail-safe** — a sliding window counts failures fleet-wide;
//!   past a threshold the manager trips into a degraded mode that cancels
//!   drains and stops consolidating/parking (drifting toward `AlwaysOn`)
//!   until the window drains below half the threshold (hysteresis).
//!
//! With zero observed failures every query returns its permissive default,
//! so a fault-free run plans byte-for-byte the same actions as a build
//! without this module.

use std::collections::VecDeque;

use simcore::{SimDuration, SimTime};

use crate::{ClusterObservation, ConfigError};

/// Knobs of the failure-recovery policy.
///
/// # Example
///
/// ```
/// use agile_core::RecoveryConfig;
/// use simcore::SimDuration;
///
/// let cfg = RecoveryConfig::new()
///     .with_max_retries(2)
///     .with_backoff(SimDuration::from_mins(1), SimDuration::from_mins(16))
///     .with_probation(SimDuration::from_mins(30));
/// assert_eq!(cfg.max_retries(), 2);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    max_retries: u32,
    backoff_base: SimDuration,
    backoff_cap: SimDuration,
    health_floor: f64,
    health_recovery: f64,
    probation: SimDuration,
    failsafe_window: SimDuration,
    failsafe_trip: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::new()
    }
}

impl RecoveryConfig {
    /// The default operating point: three strikes, 2–32 min backoff,
    /// one-hour probation, fleet fail-safe at 8 failures in 30 min.
    pub fn new() -> Self {
        RecoveryConfig {
            max_retries: 3,
            backoff_base: SimDuration::from_mins(2),
            backoff_cap: SimDuration::from_mins(32),
            health_floor: 0.25,
            health_recovery: 0.05,
            probation: SimDuration::from_mins(60),
            failsafe_window: SimDuration::from_mins(30),
            failsafe_trip: 8,
        }
    }

    /// Sets the consecutive-failure count that quarantines a host.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    /// [`try_with_max_retries`](Self::try_with_max_retries) is the
    /// non-panicking variant.
    pub fn with_max_retries(self, n: u32) -> Self {
        match self.try_with_max_retries(n) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`with_max_retries`](Self::with_max_retries).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] if `n` is zero.
    pub fn try_with_max_retries(mut self, n: u32) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::Invalid {
                message: "need at least one retry before quarantine",
            });
        }
        self.max_retries = n;
        Ok(self)
    }

    /// Sets the exponential-backoff base and cap.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero or `cap < base`.
    /// [`try_with_backoff`](Self::try_with_backoff) is the non-panicking
    /// variant.
    pub fn with_backoff(self, base: SimDuration, cap: SimDuration) -> Self {
        match self.try_with_backoff(base, cap) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`with_backoff`](Self::with_backoff).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] if `base` is zero or `cap < base`.
    pub fn try_with_backoff(
        mut self,
        base: SimDuration,
        cap: SimDuration,
    ) -> Result<Self, ConfigError> {
        if base.is_zero() {
            return Err(ConfigError::Invalid {
                message: "backoff base must be non-zero",
            });
        }
        if cap < base {
            return Err(ConfigError::Invalid {
                message: "backoff cap below base",
            });
        }
        self.backoff_base = base;
        self.backoff_cap = cap;
        Ok(self)
    }

    /// Sets the health floor below which a host is quarantined and the
    /// per-clean-round recovery increment.
    ///
    /// # Panics
    ///
    /// Panics unless both lie in `(0, 1)`.
    /// [`try_with_health`](Self::try_with_health) is the non-panicking
    /// variant.
    pub fn with_health(self, floor: f64, recovery: f64) -> Self {
        match self.try_with_health(floor, recovery) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`with_health`](Self::with_health).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] unless both lie in `(0, 1)`.
    pub fn try_with_health(mut self, floor: f64, recovery: f64) -> Result<Self, ConfigError> {
        if !(floor > 0.0 && floor < 1.0) {
            return Err(ConfigError::OutOfRange {
                field: "health floor",
                value: floor,
                constraint: "outside (0,1)",
            });
        }
        if !(recovery > 0.0 && recovery < 1.0) {
            return Err(ConfigError::OutOfRange {
                field: "health recovery",
                value: recovery,
                constraint: "outside (0,1)",
            });
        }
        self.health_floor = floor;
        self.health_recovery = recovery;
        Ok(self)
    }

    /// Sets the quarantine probation window.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    /// [`try_with_probation`](Self::try_with_probation) is the
    /// non-panicking variant.
    pub fn with_probation(self, d: SimDuration) -> Self {
        match self.try_with_probation(d) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`with_probation`](Self::with_probation).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] if `d` is zero.
    pub fn try_with_probation(mut self, d: SimDuration) -> Result<Self, ConfigError> {
        if d.is_zero() {
            return Err(ConfigError::Invalid {
                message: "probation must be non-zero",
            });
        }
        self.probation = d;
        Ok(self)
    }

    /// Sets the fleet fail-safe: trip after `trip` failures inside
    /// `window`; clear when the window drains to `trip / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `trip` is zero.
    /// [`try_with_failsafe`](Self::try_with_failsafe) is the non-panicking
    /// variant.
    pub fn with_failsafe(self, window: SimDuration, trip: u32) -> Self {
        match self.try_with_failsafe(window, trip) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`with_failsafe`](Self::with_failsafe).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] if `window` is zero or `trip` is
    /// zero.
    pub fn try_with_failsafe(
        mut self,
        window: SimDuration,
        trip: u32,
    ) -> Result<Self, ConfigError> {
        if window.is_zero() {
            return Err(ConfigError::Invalid {
                message: "fail-safe window must be non-zero",
            });
        }
        if trip == 0 {
            return Err(ConfigError::Invalid {
                message: "fail-safe trip threshold must be non-zero",
            });
        }
        self.failsafe_window = window;
        self.failsafe_trip = trip;
        Ok(self)
    }

    /// Consecutive failures before quarantine.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Backoff after the first consecutive failure.
    pub fn backoff_base(&self) -> SimDuration {
        self.backoff_base
    }

    /// Upper bound on any backoff window.
    pub fn backoff_cap(&self) -> SimDuration {
        self.backoff_cap
    }

    /// Health score below which a host is quarantined.
    pub fn health_floor(&self) -> f64 {
        self.health_floor
    }

    /// Health earned back per clean operational round.
    pub fn health_recovery(&self) -> f64 {
        self.health_recovery
    }

    /// Quarantine probation window.
    pub fn probation(&self) -> SimDuration {
        self.probation
    }

    /// Fleet fail-safe sliding window.
    pub fn failsafe_window(&self) -> SimDuration {
        self.failsafe_window
    }

    /// Fleet failures inside the window that trip the fail-safe.
    pub fn failsafe_trip(&self) -> u32 {
        self.failsafe_trip
    }
}

/// Cumulative recovery-subsystem counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Fresh transition failures detected across all rounds.
    pub failures_observed: u64,
    /// Hosts newly placed in quarantine (re-quarantines after readmission
    /// count again; extensions during probation do not).
    pub quarantines: u64,
    /// Hosts readmitted after their probation expired.
    pub readmissions: u64,
    /// Rounds planned with the fleet fail-safe tripped.
    pub failsafe_rounds: u64,
}

/// Per-host failure bookkeeping plus the fleet fail-safe.
///
/// Owned by [`crate::VirtManager`]; `observe` runs once per management
/// round *before* planning, and the query methods gate which hosts the
/// planner may power-cycle.
#[derive(Debug, Clone)]
pub struct RecoveryTracker {
    config: RecoveryConfig,
    /// Last-seen cumulative failure counter per host.
    last_failed: Vec<u64>,
    /// Consecutive failures since the last clean operational round.
    consecutive: Vec<u32>,
    /// Health score in `[0, 1]`; 1.0 is pristine.
    health: Vec<f64>,
    /// No wake attempts before this instant.
    backoff_until: Vec<SimTime>,
    /// Quarantine release time, when quarantined.
    quarantined_until: Vec<Option<SimTime>>,
    /// Timestamps of recent fleet-wide failures (the fail-safe window).
    recent: VecDeque<SimTime>,
    failsafe: bool,
    stats: RecoveryStats,
}

impl RecoveryTracker {
    /// Creates a tracker for `num_hosts` pristine hosts.
    pub fn new(config: RecoveryConfig, num_hosts: usize) -> Self {
        RecoveryTracker {
            config,
            last_failed: vec![0; num_hosts],
            consecutive: vec![0; num_hosts],
            health: vec![1.0; num_hosts],
            backoff_until: vec![SimTime::ZERO; num_hosts],
            quarantined_until: vec![None; num_hosts],
            recent: VecDeque::new(),
            failsafe: false,
            stats: RecoveryStats::default(),
        }
    }

    /// Ingests one round's observation: detects fresh failures, updates
    /// backoff/health/quarantine per host, and advances the fleet
    /// fail-safe window.
    ///
    /// # Panics
    ///
    /// Panics if the observation's host count differs from construction.
    pub fn observe(&mut self, obs: &ClusterObservation) {
        assert_eq!(
            obs.hosts.len(),
            self.last_failed.len(),
            "host count changed"
        );
        let now = obs.now;
        for h in &obs.hosts {
            let i = h.id.index();
            let delta = h.failed_transitions.saturating_sub(self.last_failed[i]);
            self.last_failed[i] = h.failed_transitions;
            if delta > 0 {
                self.stats.failures_observed += delta;
                for _ in 0..delta {
                    self.recent.push_back(now);
                }
                self.consecutive[i] =
                    self.consecutive[i].saturating_add(delta.min(u32::MAX as u64) as u32);
                // Each failure halves the health score.
                self.health[i] *= 0.5f64.powi(delta.min(64) as i32);
                // Exponential backoff, doubling per consecutive failure.
                let exp = (self.consecutive[i] - 1).min(16);
                let backoff =
                    (self.config.backoff_base * (1u64 << exp)).min(self.config.backoff_cap);
                self.backoff_until[i] = now + backoff;
                if self.consecutive[i] >= self.config.max_retries
                    || self.health[i] < self.config.health_floor
                {
                    let release = now + self.config.probation;
                    match self.quarantined_until[i] {
                        // Monotone during probation: only ever extend.
                        Some(cur) => self.quarantined_until[i] = Some(cur.max(release)),
                        None => {
                            self.quarantined_until[i] = Some(release);
                            self.stats.quarantines += 1;
                        }
                    }
                }
            } else if h.is_operational() {
                // A clean round in service: the retry budget resets and
                // the host earns a little health back.
                self.consecutive[i] = 0;
                self.health[i] = (self.health[i] + self.config.health_recovery).min(1.0);
            }
            // Probation expiry: readmit on a short leash — retries reset,
            // but health re-enters exactly at the floor so a single
            // relapse re-quarantines.
            if let Some(release) = self.quarantined_until[i] {
                if now >= release {
                    self.quarantined_until[i] = None;
                    self.consecutive[i] = 0;
                    self.health[i] = self.health[i].max(self.config.health_floor);
                    self.stats.readmissions += 1;
                }
            }
        }

        // Fleet fail-safe: slide the window, then apply hysteresis.
        while self
            .recent
            .front()
            .is_some_and(|&t| t + self.config.failsafe_window < now)
        {
            self.recent.pop_front();
        }
        let in_window = self.recent.len() as u32;
        if self.failsafe {
            if in_window <= self.config.failsafe_trip / 2 {
                self.failsafe = false;
            }
        } else if in_window >= self.config.failsafe_trip {
            self.failsafe = true;
        }
        if self.failsafe {
            self.stats.failsafe_rounds += 1;
        }
    }

    /// Whether `host` is still inside its post-failure backoff window.
    pub fn in_backoff(&self, host: usize, now: SimTime) -> bool {
        now < self.backoff_until[host]
    }

    /// Whether `host` is quarantined (excluded from wake and park pools).
    pub fn is_quarantined(&self, host: usize) -> bool {
        self.quarantined_until[host].is_some()
    }

    /// When `host`'s quarantine releases, if it is quarantined.
    pub fn quarantine_release(&self, host: usize) -> Option<SimTime> {
        self.quarantined_until[host]
    }

    /// Whether `host` may be power-cycled at all this round.
    pub fn may_power_cycle(&self, host: usize, now: SimTime) -> bool {
        !self.is_quarantined(host) && !self.in_backoff(host, now)
    }

    /// The host's current health score in `[0, 1]`.
    pub fn health(&self, host: usize) -> f64 {
        self.health[host]
    }

    /// Whether the fleet fail-safe is tripped.
    pub fn failsafe_active(&self) -> bool {
        self.failsafe
    }

    /// Number of currently quarantined hosts.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined_until
            .iter()
            .filter(|q| q.is_some())
            .count()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &RecoveryStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostObservation, VmObservation};
    use cluster::HostId;
    use power::PowerState;

    /// One-host observation with the given cumulative failure counter.
    fn obs(now: SimTime, failed: &[u64], states: &[PowerState]) -> ClusterObservation {
        let hosts = failed
            .iter()
            .zip(states)
            .enumerate()
            .map(|(i, (&f, &state))| HostObservation {
                id: HostId(i as u32),
                state,
                pending: None,
                cpu_capacity: 8.0,
                mem_capacity: 64.0,
                mem_committed: 0.0,
                cpu_demand: 0.0,
                evacuated: true,
                failed_transitions: f,
                ladder: Default::default(),
            })
            .collect();
        ClusterObservation {
            now,
            hosts,
            vms: Vec::<VmObservation>::new(),
        }
    }

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn zero_failures_leave_everything_permissive() {
        let mut t = RecoveryTracker::new(RecoveryConfig::new(), 2);
        for round in 0..10u64 {
            let now = SimTime::from_secs(round * 300);
            t.observe(&obs(now, &[0, 0], &[PowerState::On; 2]));
            assert!(t.may_power_cycle(0, now));
            assert!(t.may_power_cycle(1, now));
            assert!(!t.failsafe_active());
        }
        assert_eq!(*t.stats(), RecoveryStats::default());
        assert_eq!(t.health(0), 1.0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = RecoveryConfig::new().with_backoff(mins(2), mins(8));
        let mut t = RecoveryTracker::new(cfg, 1);
        // Failure 1: backoff 2 min.
        t.observe(&obs(SimTime::ZERO, &[1], &[PowerState::On]));
        assert!(t.in_backoff(0, SimTime::from_secs(119)));
        assert!(!t.in_backoff(0, SimTime::from_secs(120)));
        // Failure 2 at t=5min: backoff 4 min.
        let t2 = SimTime::from_secs(300);
        t.observe(&obs(t2, &[2], &[PowerState::On]));
        assert!(t.in_backoff(0, t2 + SimDuration::from_secs(239)));
        assert!(!t.in_backoff(0, t2 + SimDuration::from_secs(240)));
        // Failure 3 at t=15min would be 8 min; failure 4 stays capped at 8.
        let t3 = SimTime::from_secs(900);
        t.observe(&obs(t3, &[3], &[PowerState::On]));
        let t4 = SimTime::from_secs(2400);
        t.observe(&obs(t4, &[4], &[PowerState::On]));
        assert!(t.in_backoff(0, t4 + SimDuration::from_secs(479)));
        assert!(!t.in_backoff(0, t4 + SimDuration::from_secs(480)));
    }

    #[test]
    fn retries_exhausted_quarantines_then_readmits() {
        let cfg = RecoveryConfig::new()
            .with_max_retries(3)
            .with_probation(mins(60));
        let mut t = RecoveryTracker::new(cfg, 1);
        t.observe(&obs(SimTime::from_secs(0), &[1], &[PowerState::On]));
        t.observe(&obs(SimTime::from_secs(300), &[2], &[PowerState::On]));
        assert!(!t.is_quarantined(0));
        let t3 = SimTime::from_secs(600);
        t.observe(&obs(t3, &[3], &[PowerState::On]));
        assert!(t.is_quarantined(0));
        assert_eq!(t.quarantine_release(0), Some(t3 + mins(60)));
        assert_eq!(t.stats().quarantines, 1);
        // Probation expires after a clean hour: readmitted with retries
        // reset and health at the floor.
        let after = t3 + mins(60);
        t.observe(&obs(after, &[3], &[PowerState::On]));
        assert!(!t.is_quarantined(0));
        assert_eq!(t.stats().readmissions, 1);
        assert!(t.may_power_cycle(0, after + mins(60)));
        assert!((t.health(0) - RecoveryConfig::new().health_floor()).abs() < 1e-12);
    }

    #[test]
    fn quarantine_release_is_monotone_during_probation() {
        let cfg = RecoveryConfig::new()
            .with_max_retries(1)
            .with_probation(mins(60));
        let mut t = RecoveryTracker::new(cfg, 1);
        t.observe(&obs(SimTime::from_secs(0), &[1], &[PowerState::On]));
        let first = t.quarantine_release(0).unwrap();
        // A new failure mid-probation extends the release.
        t.observe(&obs(SimTime::from_secs(600), &[2], &[PowerState::On]));
        let second = t.quarantine_release(0).unwrap();
        assert!(second > first, "{second} !> {first}");
        // Still one quarantine event — extensions do not recount.
        assert_eq!(t.stats().quarantines, 1);
    }

    #[test]
    fn health_floor_quarantines_even_below_retry_limit() {
        // Halving twice from the floor-adjacent score crosses the floor
        // before three consecutive failures accumulate: fail, recover
        // (resetting the consecutive count), fail again repeatedly.
        let cfg = RecoveryConfig::new()
            .with_max_retries(10)
            .with_health(0.25, 0.01);
        let mut t = RecoveryTracker::new(cfg, 1);
        let mut failed = 0;
        let mut now = SimTime::ZERO;
        for round in 0..20 {
            // Alternate failure / clean round so consecutive never
            // reaches 10, while health ratchets down (×0.5 then +0.01).
            if round % 2 == 0 {
                failed += 1;
            }
            t.observe(&obs(now, &[failed], &[PowerState::On]));
            if t.is_quarantined(0) {
                break;
            }
            now += mins(5);
        }
        assert!(t.is_quarantined(0), "health floor never tripped");
        assert!(t.stats().failures_observed < 10);
    }

    #[test]
    fn clean_rounds_restore_health() {
        let mut t = RecoveryTracker::new(RecoveryConfig::new(), 1);
        t.observe(&obs(SimTime::ZERO, &[1], &[PowerState::On]));
        let degraded = t.health(0);
        assert!((degraded - 0.5).abs() < 1e-12);
        for round in 1..=20u64 {
            t.observe(&obs(
                SimTime::from_secs(round * 300),
                &[1],
                &[PowerState::On],
            ));
        }
        assert_eq!(t.health(0), 1.0);
        assert_eq!(t.consecutive[0], 0);
    }

    #[test]
    fn parked_hosts_do_not_earn_health() {
        // A suspended host has no clean *operational* rounds; its health
        // stays where the last failure left it.
        let mut t = RecoveryTracker::new(RecoveryConfig::new(), 1);
        t.observe(&obs(SimTime::ZERO, &[1], &[PowerState::On]));
        for round in 1..=5u64 {
            t.observe(&obs(
                SimTime::from_secs(round * 300),
                &[1],
                &[PowerState::Suspended],
            ));
        }
        assert!((t.health(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failsafe_trips_and_clears_with_hysteresis() {
        let cfg = RecoveryConfig::new().with_failsafe(mins(30), 4);
        let mut t = RecoveryTracker::new(cfg, 4);
        // Four failures in one round (one per host) trip the fail-safe.
        t.observe(&obs(SimTime::ZERO, &[1; 4], &[PowerState::On; 4]));
        assert!(t.failsafe_active());
        assert_eq!(t.stats().failsafe_rounds, 1);
        // Five minutes later the window still holds all four: still on.
        t.observe(&obs(SimTime::from_secs(300), &[1; 4], &[PowerState::On; 4]));
        assert!(t.failsafe_active());
        // Past the window the count drops to zero <= trip/2: clears.
        t.observe(&obs(
            SimTime::ZERO + mins(31),
            &[1; 4],
            &[PowerState::On; 4],
        ));
        assert!(!t.failsafe_active());
        assert_eq!(t.stats().failsafe_rounds, 2);
    }

    #[test]
    fn quarantined_count_tracks_membership() {
        let cfg = RecoveryConfig::new().with_max_retries(1);
        let mut t = RecoveryTracker::new(cfg, 3);
        t.observe(&obs(SimTime::ZERO, &[1, 0, 1], &[PowerState::On; 3]));
        assert_eq!(t.quarantined_count(), 2);
        assert!(t.is_quarantined(0));
        assert!(!t.is_quarantined(1));
        assert!(t.is_quarantined(2));
    }

    #[test]
    #[should_panic(expected = "host count changed")]
    fn rejects_mismatched_observation() {
        let mut t = RecoveryTracker::new(RecoveryConfig::new(), 2);
        t.observe(&obs(SimTime::ZERO, &[0], &[PowerState::On]));
    }

    #[test]
    #[should_panic(expected = "backoff cap below base")]
    fn rejects_inverted_backoff() {
        let _ = RecoveryConfig::new().with_backoff(mins(10), mins(2));
    }
}
