//! Policy and configuration for the manager.

use std::fmt;

use power::breakeven::LowPowerMode;
use simcore::SimDuration;

use crate::{PlanMode, PredictorConfig, RecoveryConfig};

/// A rejected configuration value, returned by the `try_with_*` builder
/// variants on [`ManagerConfig`] and [`RecoveryConfig`] (the `with_*`
/// builders panic with the same message instead).
///
/// Marked `#[non_exhaustive]`: more variants may appear as knobs grow
/// validation, so downstream matches need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A scalar knob is outside its allowed range.
    OutOfRange {
        /// Which knob was rejected.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// The constraint it violated, e.g. `"outside (0,1]"`.
        constraint: &'static str,
    },
    /// Two knobs must be strictly ordered and are not.
    Ordering {
        /// Name of the knob that must be smaller.
        lower: &'static str,
        /// Its value.
        lower_value: f64,
        /// Name of the knob that must be larger.
        upper: &'static str,
        /// Its value.
        upper_value: f64,
    },
    /// A structural constraint failed (zero count, zero window, …).
    Invalid {
        /// What was wrong, as a complete sentence fragment.
        message: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange {
                field,
                value,
                constraint,
            } => write!(f, "{field} {value} {constraint}"),
            ConfigError::Ordering {
                lower,
                lower_value,
                upper,
                upper_value,
            } => write!(
                f,
                "{lower} {lower_value} must be below {upper} {upper_value}"
            ),
            ConfigError::Invalid { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How consolidation picks destinations when evacuating a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackingPolicy {
    /// Best-fit decreasing: place each VM on the feasible host with the
    /// *highest* resulting utilization — packs tightest, frees the most
    /// hosts (the default, and what the paper's consolidation needs).
    #[default]
    BestFit,
    /// Worst-fit: place on the *least* loaded feasible host — spreads
    /// load (lower queueing stretch) at the cost of freeing fewer hosts.
    /// The T24 ablation's comparison point.
    LeastLoaded,
}

/// Which power-management regime the manager runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerPolicy {
    /// Base DRM only: load balancing via migration, every host stays on.
    /// This is the widely-deployed baseline whose *overheads* power
    /// management must match.
    AlwaysOn,
    /// DRM plus reactive consolidation and power cycling through `mode` —
    /// `Suspend` is the paper's proposal, `Off` the traditional
    /// comparison point.
    Reactive {
        /// Low-power state to park evacuated hosts in.
        mode: LowPowerMode,
    },
    /// The analytic energy-proportionality bound: no manager runs; the
    /// simulator computes the ideal power directly from offered load.
    Oracle,
    /// Joint sleep + speed scaling over the full C6→S3→S5 power-state
    /// ladder: each round the manager parks every drained host on the
    /// *deepest* rung whose wake latency fits `wake_slo` (and whose
    /// break-even gap the demand forecast affords), keeps a warm pool of
    /// shallow-rung hosts sized ahead of forecast ramps, and wakes
    /// shallowest-first. Pair with a DVFS-attached ladder profile for the
    /// full joint policy (speed scaling is then implicit in the `On`-state
    /// power model).
    JointLadder {
        /// Upper bound on the wake latency of any rung a host may be
        /// parked in — the latency SLO the fleet must honour when demand
        /// ramps.
        wake_slo: SimDuration,
    },
}

impl PowerPolicy {
    /// Base DRM, no power management.
    pub fn always_on() -> Self {
        PowerPolicy::AlwaysOn
    }

    /// The paper's proposal: consolidation with S3-class suspend.
    pub fn reactive_suspend() -> Self {
        PowerPolicy::Reactive {
            mode: LowPowerMode::Suspend,
        }
    }

    /// The traditional alternative: consolidation with S5-class off.
    pub fn reactive_off() -> Self {
        PowerPolicy::Reactive {
            mode: LowPowerMode::Off,
        }
    }

    /// The analytic proportional bound.
    pub fn oracle() -> Self {
        PowerPolicy::Oracle
    }

    /// Joint ladder + DVFS policy against a wake-latency SLO.
    pub fn joint_ladder(wake_slo: SimDuration) -> Self {
        PowerPolicy::JointLadder { wake_slo }
    }

    /// The *fixed* low-power mode used by this policy, if it power-manages
    /// with one. [`PowerPolicy::JointLadder`] answers `None`: it chooses a
    /// rung per host per round.
    pub fn low_power_mode(&self) -> Option<LowPowerMode> {
        match self {
            PowerPolicy::Reactive { mode } => Some(*mode),
            _ => None,
        }
    }

    /// The wake-latency SLO, for the ladder policy.
    pub fn wake_slo(&self) -> Option<SimDuration> {
        match self {
            PowerPolicy::JointLadder { wake_slo } => Some(*wake_slo),
            _ => None,
        }
    }

    /// Whether this policy consolidates and power-cycles hosts.
    pub fn is_power_managed(&self) -> bool {
        matches!(
            self,
            PowerPolicy::Reactive { .. } | PowerPolicy::JointLadder { .. }
        )
    }

    /// A short stable label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            PowerPolicy::AlwaysOn => "AlwaysOn",
            PowerPolicy::Reactive {
                mode: LowPowerMode::PackageIdle,
            } => "PM-Park(C6)",
            PowerPolicy::Reactive {
                mode: LowPowerMode::Suspend,
            } => "PM-Suspend(S3)",
            PowerPolicy::Reactive {
                mode: LowPowerMode::Off,
            } => "PM-OffOn(S5)",
            PowerPolicy::Oracle => "Oracle",
            PowerPolicy::JointLadder { .. } => "Joint-Ladder",
        }
    }
}

/// All knobs of the management loop.
///
/// Defaults follow the paper's operating point; the sensitivity
/// experiments (F10, F11, T12) sweep individual fields via the builder
/// methods.
///
/// # Example
///
/// ```
/// use agile_core::{ManagerConfig, PowerPolicy, PredictorConfig};
/// use simcore::SimDuration;
///
/// let cfg = ManagerConfig::new(PowerPolicy::reactive_suspend())
///     .with_target_utilization(0.8)
///     .with_min_on_time(SimDuration::from_mins(2))
///     .with_predictor(PredictorConfig::LastValue);
/// assert_eq!(cfg.target_utilization(), 0.8);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerConfig {
    policy: PowerPolicy,
    target_utilization: f64,
    overload_threshold: f64,
    underload_threshold: f64,
    min_on_time: SimDuration,
    min_off_time: SimDuration,
    spare_hosts: usize,
    max_migrations_per_round: usize,
    max_drains_per_round: usize,
    imbalance_threshold: f64,
    drain_deadband_frac: f64,
    prewake_lookahead: Option<SimDuration>,
    packing: PackingPolicy,
    predictor: PredictorConfig,
    recovery: RecoveryConfig,
    plan_mode: PlanMode,
}

impl ManagerConfig {
    /// Creates a configuration with the paper's default operating point,
    /// sized for a small cluster. For larger fleets prefer
    /// [`for_fleet`](Self::for_fleet), which scales the per-round action
    /// caps.
    pub fn new(policy: PowerPolicy) -> Self {
        ManagerConfig {
            policy,
            target_utilization: 0.75,
            overload_threshold: 0.90,
            underload_threshold: 0.65,
            min_on_time: SimDuration::from_mins(10),
            min_off_time: SimDuration::from_mins(5),
            spare_hosts: 1,
            max_migrations_per_round: 8,
            max_drains_per_round: 2,
            imbalance_threshold: 0.25,
            drain_deadband_frac: 0.5,
            prewake_lookahead: None,
            packing: PackingPolicy::default(),
            predictor: PredictorConfig::default(),
            recovery: RecoveryConfig::new(),
            plan_mode: PlanMode::default(),
        }
    }

    /// Creates a configuration whose per-round action caps and spare pool
    /// scale with fleet size, so consolidation keeps pace with the demand
    /// swing on large clusters.
    pub fn for_fleet(policy: PowerPolicy, num_hosts: usize, num_vms: usize) -> Self {
        ManagerConfig::new(policy)
            .with_spare_hosts((num_hosts / 32).max(1))
            .with_max_migrations_per_round((num_vms / 8).max(8))
            .with_max_drains_per_round((num_hosts / 16).max(2))
    }

    /// Sets the consolidation headroom: the manager packs hosts up to this
    /// predicted utilization.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < t <= 1` and `t` stays below the overload
    /// threshold. [`try_with_target_utilization`](Self::try_with_target_utilization)
    /// is the non-panicking variant.
    pub fn with_target_utilization(self, t: f64) -> Self {
        match self.try_with_target_utilization(t) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of
    /// [`with_target_utilization`](Self::with_target_utilization).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] unless `0 < t <= 1`.
    pub fn try_with_target_utilization(mut self, t: f64) -> Result<Self, ConfigError> {
        if !(t > 0.0 && t <= 1.0) {
            return Err(ConfigError::OutOfRange {
                field: "target",
                value: t,
                constraint: "outside (0,1]",
            });
        }
        self.target_utilization = t;
        Ok(self)
    }

    /// Sets the DRM overload trigger.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < t <= 1.5` and it stays above the target.
    /// [`try_with_overload_threshold`](Self::try_with_overload_threshold)
    /// is the non-panicking variant.
    pub fn with_overload_threshold(self, t: f64) -> Self {
        match self.try_with_overload_threshold(t) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of
    /// [`with_overload_threshold`](Self::with_overload_threshold).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] unless `0 < t <= 1.5`.
    pub fn try_with_overload_threshold(mut self, t: f64) -> Result<Self, ConfigError> {
        if !(t > 0.0 && t <= 1.5) {
            return Err(ConfigError::OutOfRange {
                field: "overload threshold",
                value: t,
                constraint: "out of range",
            });
        }
        self.overload_threshold = t;
        Ok(self)
    }

    /// Sets the underload threshold below which a host becomes an
    /// evacuation candidate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= t < 1` and it stays below the target.
    /// [`try_with_underload_threshold`](Self::try_with_underload_threshold)
    /// is the non-panicking variant.
    pub fn with_underload_threshold(self, t: f64) -> Self {
        match self.try_with_underload_threshold(t) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of
    /// [`with_underload_threshold`](Self::with_underload_threshold).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] unless `0 <= t < 1`.
    pub fn try_with_underload_threshold(mut self, t: f64) -> Result<Self, ConfigError> {
        if !(0.0..1.0).contains(&t) {
            return Err(ConfigError::OutOfRange {
                field: "underload threshold",
                value: t,
                constraint: "out of range",
            });
        }
        self.underload_threshold = t;
        Ok(self)
    }

    /// Sets the minimum in-service residency before a host may be drained.
    pub fn with_min_on_time(mut self, d: SimDuration) -> Self {
        self.min_on_time = d;
        self
    }

    /// Sets the minimum parked residency before a non-urgent wake.
    pub fn with_min_off_time(mut self, d: SimDuration) -> Self {
        self.min_off_time = d;
        self
    }

    /// Sets the number of spare powered-on hosts kept beyond predicted
    /// need.
    pub fn with_spare_hosts(mut self, n: usize) -> Self {
        self.spare_hosts = n;
        self
    }

    /// Caps migrations emitted per management round.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    /// [`try_with_max_migrations_per_round`](Self::try_with_max_migrations_per_round)
    /// is the non-panicking variant.
    pub fn with_max_migrations_per_round(self, n: usize) -> Self {
        match self.try_with_max_migrations_per_round(n) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of
    /// [`with_max_migrations_per_round`](Self::with_max_migrations_per_round).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] if `n` is zero.
    pub fn try_with_max_migrations_per_round(mut self, n: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::Invalid {
                message: "need at least one migration per round",
            });
        }
        self.max_migrations_per_round = n;
        Ok(self)
    }

    /// Caps hosts newly selected for draining per round.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    /// [`try_with_max_drains_per_round`](Self::try_with_max_drains_per_round)
    /// is the non-panicking variant.
    pub fn with_max_drains_per_round(self, n: usize) -> Self {
        match self.try_with_max_drains_per_round(n) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of
    /// [`with_max_drains_per_round`](Self::with_max_drains_per_round).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] if `n` is zero.
    pub fn try_with_max_drains_per_round(mut self, n: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::Invalid {
                message: "need at least one drain per round",
            });
        }
        self.max_drains_per_round = n;
        Ok(self)
    }

    /// Sets the utilization spread (hottest minus coldest host) beyond
    /// which DRM rebalances even without an overload.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < t <= 1`.
    /// [`try_with_imbalance_threshold`](Self::try_with_imbalance_threshold)
    /// is the non-panicking variant.
    pub fn with_imbalance_threshold(self, t: f64) -> Self {
        match self.try_with_imbalance_threshold(t) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of
    /// [`with_imbalance_threshold`](Self::with_imbalance_threshold).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] unless `0 < t <= 1`.
    pub fn try_with_imbalance_threshold(mut self, t: f64) -> Result<Self, ConfigError> {
        if !(t > 0.0 && t <= 1.0) {
            return Err(ConfigError::OutOfRange {
                field: "imbalance threshold",
                value: t,
                constraint: "out of range",
            });
        }
        self.imbalance_threshold = t;
        Ok(self)
    }

    /// Sets the drain dead-band: the surplus capacity (as a fraction of
    /// one host) that must exist *beyond* the wake trigger before a new
    /// drain starts. Zero disables the dead-band, leaving the hysteresis
    /// timers as the only flap damper (how experiment F11 isolates them).
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    /// [`try_with_drain_deadband`](Self::try_with_drain_deadband) is the
    /// non-panicking variant.
    pub fn with_drain_deadband(self, f: f64) -> Self {
        match self.try_with_drain_deadband(f) {
            Ok(cfg) => cfg,
            Err(e) => panic!("bad {e}"),
        }
    }

    /// Fallible variant of [`with_drain_deadband`](Self::with_drain_deadband).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] if `f` is negative or not
    /// finite.
    pub fn try_with_drain_deadband(mut self, f: f64) -> Result<Self, ConfigError> {
        if !(f.is_finite() && f >= 0.0) {
            return Err(ConfigError::OutOfRange {
                field: "dead-band",
                value: f,
                constraint: "must be finite and non-negative",
            });
        }
        self.drain_deadband_frac = f;
        Ok(self)
    }

    /// Enables proactive pre-waking: capacity decisions also consider the
    /// learned time-of-day demand profile `lookahead` into the future, so
    /// slow boots can be started before a *recurring* ramp arrives.
    /// Choose a lookahead at least as long as the wake transition.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero.
    /// [`try_with_prewake`](Self::try_with_prewake) is the non-panicking
    /// variant.
    pub fn with_prewake(self, lookahead: SimDuration) -> Self {
        match self.try_with_prewake(lookahead) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`with_prewake`](Self::with_prewake).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] if `lookahead` is zero.
    pub fn try_with_prewake(mut self, lookahead: SimDuration) -> Result<Self, ConfigError> {
        if lookahead.is_zero() {
            return Err(ConfigError::Invalid {
                message: "lookahead must be non-zero",
            });
        }
        self.prewake_lookahead = Some(lookahead);
        Ok(self)
    }

    /// Sets the consolidation packing policy.
    pub fn with_packing(mut self, packing: PackingPolicy) -> Self {
        self.packing = packing;
        self
    }

    /// Sets the demand predictor.
    ///
    /// # Panics
    ///
    /// Panics if the predictor configuration is invalid.
    pub fn with_predictor(mut self, p: PredictorConfig) -> Self {
        p.validate();
        self.predictor = p;
        self
    }

    /// Sets the failure-recovery policy (bounded retries, quarantine,
    /// fleet fail-safe). [`RecoveryConfig`]'s own builders validate the
    /// individual knobs.
    pub fn with_recovery(mut self, r: RecoveryConfig) -> Self {
        self.recovery = r;
        self
    }

    /// Selects the consolidation planner: the reference full-fleet
    /// `Scan` (the default) or the utilization-bucketed `Indexed` path.
    /// Both produce bit-identical plans; see [`PlanMode`].
    pub fn with_plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }

    /// Checks the cross-field invariants (underload < target < overload).
    /// [`crate::VirtManager::new`] calls this, so an inconsistent
    /// configuration fails fast at manager construction rather than
    /// mid-simulation.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds are not strictly ordered.
    /// [`try_validate`](Self::try_validate) is the non-panicking variant.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Fallible variant of [`validate`](Self::validate): checks the
    /// cross-field invariants (underload < target < overload).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Ordering`] if the thresholds are not
    /// strictly ordered.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.underload_threshold >= self.target_utilization {
            return Err(ConfigError::Ordering {
                lower: "underload",
                lower_value: self.underload_threshold,
                upper: "target",
                upper_value: self.target_utilization,
            });
        }
        if self.target_utilization >= self.overload_threshold {
            return Err(ConfigError::Ordering {
                lower: "target",
                lower_value: self.target_utilization,
                upper: "overload",
                upper_value: self.overload_threshold,
            });
        }
        Ok(())
    }

    /// The power policy.
    pub fn policy(&self) -> &PowerPolicy {
        &self.policy
    }

    /// Consolidation headroom target.
    pub fn target_utilization(&self) -> f64 {
        self.target_utilization
    }

    /// DRM overload trigger.
    pub fn overload_threshold(&self) -> f64 {
        self.overload_threshold
    }

    /// Evacuation-candidate threshold.
    pub fn underload_threshold(&self) -> f64 {
        self.underload_threshold
    }

    /// Minimum in-service residency before draining.
    pub fn min_on_time(&self) -> SimDuration {
        self.min_on_time
    }

    /// Minimum parked residency before non-urgent wake.
    pub fn min_off_time(&self) -> SimDuration {
        self.min_off_time
    }

    /// Spare powered-on hosts kept beyond predicted need.
    pub fn spare_hosts(&self) -> usize {
        self.spare_hosts
    }

    /// Migration cap per round.
    pub fn max_migrations_per_round(&self) -> usize {
        self.max_migrations_per_round
    }

    /// Drain-selection cap per round.
    pub fn max_drains_per_round(&self) -> usize {
        self.max_drains_per_round
    }

    /// Utilization spread that triggers DRM rebalancing.
    pub fn imbalance_threshold(&self) -> f64 {
        self.imbalance_threshold
    }

    /// Drain dead-band as a fraction of one host's capacity.
    pub fn drain_deadband_frac(&self) -> f64 {
        self.drain_deadband_frac
    }

    /// Pre-wake lookahead window, if proactive pre-waking is enabled.
    pub fn prewake_lookahead(&self) -> Option<SimDuration> {
        self.prewake_lookahead
    }

    /// The consolidation packing policy.
    pub fn packing(&self) -> PackingPolicy {
        self.packing
    }

    /// The demand predictor configuration.
    pub fn predictor(&self) -> PredictorConfig {
        self.predictor
    }

    /// The failure-recovery policy.
    pub fn recovery(&self) -> &RecoveryConfig {
        &self.recovery
    }

    /// The consolidation planner selection.
    pub fn plan_mode(&self) -> PlanMode {
        self.plan_mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(PowerPolicy::always_on().label(), "AlwaysOn");
        assert_eq!(PowerPolicy::reactive_suspend().label(), "PM-Suspend(S3)");
        assert_eq!(PowerPolicy::reactive_off().label(), "PM-OffOn(S5)");
        assert_eq!(PowerPolicy::oracle().label(), "Oracle");
    }

    #[test]
    fn low_power_mode_mapping() {
        assert_eq!(
            PowerPolicy::reactive_suspend().low_power_mode(),
            Some(LowPowerMode::Suspend)
        );
        assert_eq!(PowerPolicy::always_on().low_power_mode(), None);
        assert_eq!(PowerPolicy::oracle().low_power_mode(), None);
    }

    #[test]
    fn builder_round_trips() {
        let cfg = ManagerConfig::new(PowerPolicy::reactive_off())
            .with_target_utilization(0.8)
            .with_overload_threshold(0.95)
            .with_underload_threshold(0.3)
            .with_min_on_time(SimDuration::from_mins(20))
            .with_min_off_time(SimDuration::from_mins(1))
            .with_spare_hosts(2)
            .with_max_migrations_per_round(16)
            .with_max_drains_per_round(4)
            .with_predictor(PredictorConfig::LastValue);
        assert_eq!(cfg.target_utilization(), 0.8);
        assert_eq!(cfg.overload_threshold(), 0.95);
        assert_eq!(cfg.underload_threshold(), 0.3);
        assert_eq!(cfg.min_on_time(), SimDuration::from_mins(20));
        assert_eq!(cfg.spare_hosts(), 2);
        assert_eq!(cfg.max_migrations_per_round(), 16);
        assert_eq!(cfg.max_drains_per_round(), 4);
        assert_eq!(cfg.predictor(), PredictorConfig::LastValue);
    }

    #[test]
    fn for_fleet_scales_caps() {
        let small = ManagerConfig::for_fleet(PowerPolicy::reactive_suspend(), 8, 32);
        assert_eq!(small.spare_hosts(), 1);
        assert_eq!(small.max_migrations_per_round(), 8);
        assert_eq!(small.max_drains_per_round(), 2);
        let big = ManagerConfig::for_fleet(PowerPolicy::reactive_suspend(), 512, 3072);
        assert_eq!(big.spare_hosts(), 16);
        assert_eq!(big.max_migrations_per_round(), 384);
        assert_eq!(big.max_drains_per_round(), 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn imbalance_threshold_validated() {
        let _ = ManagerConfig::new(PowerPolicy::always_on()).with_imbalance_threshold(0.0);
    }

    #[test]
    #[should_panic(expected = "must be below overload")]
    fn target_above_overload_rejected() {
        ManagerConfig::new(PowerPolicy::always_on())
            .with_target_utilization(0.95)
            .validate();
    }

    #[test]
    #[should_panic(expected = "must be below target")]
    fn underload_above_target_rejected() {
        ManagerConfig::new(PowerPolicy::always_on())
            .with_underload_threshold(0.7)
            .with_target_utilization(0.69)
            .validate();
    }

    #[test]
    fn setter_order_does_not_matter() {
        // Lowering the target below the default underload is fine as long
        // as the final state is consistent.
        let cfg = ManagerConfig::new(PowerPolicy::always_on())
            .with_target_utilization(0.5)
            .with_underload_threshold(0.3)
            .with_overload_threshold(0.9);
        cfg.validate();
    }
}
