//! Per-signal demand prediction.
//!
//! The manager predicts each VM's near-future demand from its measured
//! history. The paper's argument is that *low-latency power states shrink
//! the cost of misprediction*: with a 12-second resume, a conservative
//! predictor is unnecessary — experiment T12 quantifies this by swapping
//! predictors under both power-state regimes.

/// Which prediction algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorConfig {
    /// Predict the last observed value (most reactive, no smoothing).
    LastValue,
    /// Exponentially weighted moving average with smoothing factor
    /// `alpha` (1.0 degenerates to last-value).
    Ewma {
        /// Weight of the newest observation, in `(0, 1]`.
        alpha: f64,
    },
    /// Maximum over the last `window` observations (most conservative;
    /// trades energy for safety).
    WindowMax {
        /// History length.
        window: usize,
    },
}

impl PredictorConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or `window` is zero.
    pub fn validate(&self) {
        match *self {
            PredictorConfig::LastValue => {}
            PredictorConfig::Ewma { alpha } => {
                assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} outside (0, 1]");
            }
            PredictorConfig::WindowMax { window } => {
                assert!(window > 0, "window must be positive");
            }
        }
    }
}

impl Default for PredictorConfig {
    /// EWMA with `alpha = 0.5`: reactive but with some smoothing.
    fn default() -> Self {
        PredictorConfig::Ewma { alpha: 0.5 }
    }
}

/// A single signal's prediction state.
///
/// # Example
///
/// ```
/// use agile_core::{Predictor, PredictorConfig};
///
/// let mut p = Predictor::new(PredictorConfig::Ewma { alpha: 0.5 });
/// p.observe(1.0);
/// p.observe(0.0);
/// assert_eq!(p.predict(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Predictor {
    config: PredictorConfig,
    state: State,
}

#[derive(Debug, Clone, PartialEq)]
enum State {
    Scalar(Option<f64>),
    Window(Vec<f64>),
}

impl Predictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`PredictorConfig::validate`]).
    pub fn new(config: PredictorConfig) -> Self {
        config.validate();
        let state = match config {
            PredictorConfig::WindowMax { .. } => State::Window(Vec::new()),
            _ => State::Scalar(None),
        };
        Predictor { config, state }
    }

    /// Feeds a new observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn observe(&mut self, value: f64) {
        assert!(value.is_finite(), "non-finite observation {value}");
        match (&mut self.state, self.config) {
            (State::Scalar(s), PredictorConfig::LastValue) => *s = Some(value),
            (State::Scalar(s), PredictorConfig::Ewma { alpha }) => {
                *s = Some(match *s {
                    None => value,
                    Some(prev) => alpha * value + (1.0 - alpha) * prev,
                });
            }
            (State::Window(w), PredictorConfig::WindowMax { window }) => {
                w.push(value);
                if w.len() > window {
                    w.remove(0);
                }
            }
            _ => unreachable!("state/config mismatch"),
        }
    }

    /// The current prediction (0.0 before any observation).
    pub fn predict(&self) -> f64 {
        match &self.state {
            State::Scalar(s) => s.unwrap_or(0.0),
            State::Window(w) => w.iter().copied().fold(0.0, f64::max),
        }
    }

    /// The configuration this predictor runs.
    pub fn config(&self) -> PredictorConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks_immediately() {
        let mut p = Predictor::new(PredictorConfig::LastValue);
        assert_eq!(p.predict(), 0.0);
        p.observe(0.7);
        assert_eq!(p.predict(), 0.7);
        p.observe(0.1);
        assert_eq!(p.predict(), 0.1);
    }

    #[test]
    fn ewma_smooths() {
        let mut p = Predictor::new(PredictorConfig::Ewma { alpha: 0.5 });
        p.observe(1.0);
        assert_eq!(p.predict(), 1.0); // first observation seeds directly
        p.observe(0.0);
        assert_eq!(p.predict(), 0.5);
        p.observe(0.0);
        assert_eq!(p.predict(), 0.25);
    }

    #[test]
    fn ewma_alpha_one_is_last_value() {
        let mut p = Predictor::new(PredictorConfig::Ewma { alpha: 1.0 });
        p.observe(0.3);
        p.observe(0.9);
        assert_eq!(p.predict(), 0.9);
    }

    #[test]
    fn window_max_holds_peak() {
        let mut p = Predictor::new(PredictorConfig::WindowMax { window: 3 });
        for v in [0.2, 0.9, 0.1, 0.1] {
            p.observe(v);
        }
        assert_eq!(p.predict(), 0.9); // 0.9 still in window
        p.observe(0.1);
        assert_eq!(p.predict(), 0.1); // 0.9 aged out
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        Predictor::new(PredictorConfig::Ewma { alpha: 0.0 });
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_zero_window() {
        Predictor::new(PredictorConfig::WindowMax { window: 0 });
    }
}
