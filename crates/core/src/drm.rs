//! Base distributed resource management: overload mitigation and load
//! balancing.
//!
//! This is the widely-deployed baseline the paper builds on (DRS-class
//! load balancing), in two steps:
//!
//! 1. **Overload mitigation** — when a host's predicted utilization
//!    exceeds the overload threshold, migrate VMs away until it is back
//!    under the target, placing them on the least-loaded feasible hosts.
//! 2. **Rebalancing** — when the utilization spread between the hottest
//!    and coldest active host exceeds the imbalance threshold, trickle
//!    VMs from hot to cold. This gives base DRM its steady background
//!    action rate — the overhead bar the paper's power manager is
//!    compared against (experiment T9).

use cluster::{HostId, VmId};

use crate::plan::PlanContext;
use crate::{ManagementAction, ManagerConfig};

/// Plans migrations that relieve overloaded hosts.
///
/// Mutates `ctx` to reflect the tentative moves, appends the actions, and
/// decrements `budget` per migration. Hosts are handled worst-first; on
/// each host, the largest movable VMs leave first (fastest relief per
/// migration).
pub(crate) fn mitigate_overloads(
    ctx: &mut PlanContext,
    cfg: &ManagerConfig,
    actions: &mut Vec<ManagementAction>,
    budget: &mut usize,
) {
    // Worst offenders first.
    let mut overloaded: Vec<usize> = (0..ctx.num_hosts())
        .filter(|&h| ctx.operational[h] && ctx.util(h) > cfg.overload_threshold())
        .collect();
    overloaded.sort_by(|&a, &b| {
        ctx.util(b)
            .partial_cmp(&ctx.util(a))
            .expect("utilization is finite")
    });

    for host in overloaded {
        // Batch victims first, largest first within each class.
        let candidates = ctx.disruption_candidates(host);
        for vm in candidates {
            if *budget == 0 {
                return;
            }
            if ctx.util(host) <= cfg.target_utilization() {
                break;
            }
            let Some(dest) = ctx.least_loaded_destination(vm, cfg) else {
                continue; // this VM fits nowhere; try a smaller one
            };
            ctx.move_vm(vm, dest);
            ctx.work.migrations_planned += 1;
            actions.push(ManagementAction::Migrate {
                vm: VmId(vm as u32),
                to: HostId(dest as u32),
            });
            *budget -= 1;
        }
    }
}

/// How many rebalancing moves one round may make — a trickle, so base
/// DRM stays cheap.
const REBALANCE_MOVES_PER_ROUND: usize = 2;

/// Plans load-balancing migrations from the hottest active hosts to the
/// coldest while the utilization spread exceeds the imbalance threshold.
pub(crate) fn rebalance(
    ctx: &mut PlanContext,
    cfg: &ManagerConfig,
    actions: &mut Vec<ManagementAction>,
    budget: &mut usize,
) {
    for _ in 0..REBALANCE_MOVES_PER_ROUND {
        if *budget == 0 {
            return;
        }
        let active: Vec<usize> = (0..ctx.num_hosts())
            .filter(|&h| ctx.operational[h] && !ctx.draining[h])
            .collect();
        if active.len() < 2 {
            return;
        }
        let by_util = |&a: &usize, &b: &usize| {
            ctx.util(a)
                .partial_cmp(&ctx.util(b))
                .expect("utilization is finite")
        };
        let hottest = *active
            .iter()
            .max_by(|a, b| by_util(a, b))
            .expect("non-empty");
        let coldest = *active
            .iter()
            .min_by(|a, b| by_util(a, b))
            .expect("non-empty");
        let spread = ctx.util(hottest) - ctx.util(coldest);
        if spread <= cfg.imbalance_threshold() {
            return;
        }
        // Move the VM whose size best halves the spread without
        // overshooting: the largest VM at most half the gap (in cores).
        let gap_cores = spread * ctx.cpu_capacity[hottest] / 2.0;
        let vm = ctx
            .movable_vms(hottest)
            .into_iter()
            .filter(|&v| ctx.predicted_vm[v] <= gap_cores && ctx.can_accept(coldest, v, cfg))
            .max_by(|&a, &b| {
                ctx.predicted_vm[a]
                    .partial_cmp(&ctx.predicted_vm[b])
                    .expect("prediction is finite")
            });
        let Some(vm) = vm else {
            return; // nothing movable closes the gap
        };
        ctx.move_vm(vm, coldest);
        ctx.work.migrations_planned += 1;
        actions.push(ManagementAction::Migrate {
            vm: VmId(vm as u32),
            to: HostId(coldest as u32),
        });
        *budget -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterObservation, HostObservation, PowerPolicy, VmObservation};
    use power::PowerState;
    use simcore::SimTime;

    fn obs(host_demands: &[&[f64]]) -> (ClusterObservation, Vec<f64>) {
        let mut hosts = Vec::new();
        let mut vms = Vec::new();
        let mut preds = Vec::new();
        for (h, demands) in host_demands.iter().enumerate() {
            hosts.push(HostObservation {
                id: HostId(h as u32),
                state: PowerState::On,
                pending: None,
                cpu_capacity: 8.0,
                mem_capacity: 64.0,
                mem_committed: demands.len() as f64 * 8.0,
                cpu_demand: demands.iter().sum(),
                evacuated: demands.is_empty(),
                failed_transitions: 0,
                ladder: Default::default(),
            });
            for &d in *demands {
                vms.push(VmObservation {
                    id: VmId(vms.len() as u32),
                    host: Some(HostId(h as u32)),
                    cpu_demand: d,
                    cpu_cap: 8.0,
                    mem_gb: 8.0,
                    migrating: false,
                    service_class: Default::default(),
                });
                preds.push(d);
            }
        }
        (
            ClusterObservation {
                now: SimTime::ZERO,
                hosts,
                vms,
            },
            preds,
        )
    }

    #[test]
    fn relieves_overload_to_least_loaded() {
        // Host 0 at 7.5/8 (over 0.9 threshold); hosts 1 and 2 lightly
        // loaded.
        let (o, preds) = obs(&[&[3.0, 2.5, 2.0], &[1.0], &[0.5]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 3]);
        let cfg = ManagerConfig::new(PowerPolicy::always_on());
        let mut actions = Vec::new();
        let mut budget = 8;
        mitigate_overloads(&mut ctx, &cfg, &mut actions, &mut budget);
        assert!(!actions.is_empty());
        // Host 0 ends at or below target.
        assert!(ctx.util(0) <= cfg.target_utilization() + 1e-9);
        // First move goes to the least-loaded host (host 2).
        assert_eq!(
            actions[0],
            ManagementAction::Migrate {
                vm: VmId(0),
                to: HostId(2)
            }
        );
    }

    #[test]
    fn no_action_when_under_threshold() {
        let (o, preds) = obs(&[&[3.0, 2.0], &[1.0]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 2]);
        let cfg = ManagerConfig::new(PowerPolicy::always_on());
        let mut actions = Vec::new();
        let mut budget = 8;
        mitigate_overloads(&mut ctx, &cfg, &mut actions, &mut budget);
        assert!(actions.is_empty());
        assert_eq!(budget, 8);
    }

    #[test]
    fn respects_budget() {
        let (o, preds) = obs(&[&[2.0, 2.0, 2.0, 2.0], &[], &[]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 3]);
        let cfg = ManagerConfig::new(PowerPolicy::always_on());
        let mut actions = Vec::new();
        let mut budget = 1;
        mitigate_overloads(&mut ctx, &cfg, &mut actions, &mut budget);
        assert_eq!(actions.len(), 1);
        assert_eq!(budget, 0);
    }

    #[test]
    fn stuck_when_no_destination_fits() {
        // Single host overloaded, no other host exists.
        let (o, preds) = obs(&[&[4.0, 4.0]]);
        let mut ctx = PlanContext::new(&o, preds, &[false]);
        let cfg = ManagerConfig::new(PowerPolicy::always_on());
        let mut actions = Vec::new();
        let mut budget = 8;
        mitigate_overloads(&mut ctx, &cfg, &mut actions, &mut budget);
        assert!(actions.is_empty());
    }

    #[test]
    fn rebalance_narrows_spread() {
        // Host 0 hot (6.0/8), host 1 cold (0.5/8): spread 0.69 > 0.25.
        let (o, preds) = obs(&[&[2.5, 2.0, 1.5], &[0.5]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 2]);
        let cfg = ManagerConfig::new(PowerPolicy::always_on());
        let mut actions = Vec::new();
        let mut budget = 8;
        rebalance(&mut ctx, &cfg, &mut actions, &mut budget);
        assert!(!actions.is_empty());
        let spread = ctx.util(0) - ctx.util(1);
        assert!(spread < 0.69, "spread {spread} did not narrow");
        // And it never overshoots into reversing the imbalance.
        assert!(ctx.util(0) >= ctx.util(1));
    }

    #[test]
    fn rebalance_idle_when_balanced() {
        let (o, preds) = obs(&[&[2.0, 1.0], &[2.0]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 2]);
        let cfg = ManagerConfig::new(PowerPolicy::always_on());
        let mut actions = Vec::new();
        let mut budget = 8;
        rebalance(&mut ctx, &cfg, &mut actions, &mut budget);
        assert!(actions.is_empty());
        assert_eq!(budget, 8);
    }

    #[test]
    fn rebalance_skips_draining_hosts() {
        let (o, preds) = obs(&[&[2.5, 2.0, 1.5], &[0.5], &[1.0]]);
        // The coldest host (1) is draining; moves must go to host 2.
        let mut ctx = PlanContext::new(&o, preds, &[false, true, false]);
        let cfg = ManagerConfig::new(PowerPolicy::always_on());
        let mut actions = Vec::new();
        let mut budget = 8;
        rebalance(&mut ctx, &cfg, &mut actions, &mut budget);
        for a in &actions {
            if let ManagementAction::Migrate { to, .. } = a {
                assert_ne!(*to, HostId(1));
            }
        }
    }

    #[test]
    fn migrating_vms_are_not_moved_again() {
        let (o, mut preds) = obs(&[&[4.0, 4.0], &[]]);
        preds[0] = 4.0;
        let mut o = o;
        o.vms[0].migrating = true;
        let mut ctx = PlanContext::new(&o, preds, &[false; 2]);
        let cfg = ManagerConfig::new(PowerPolicy::always_on());
        let mut actions = Vec::new();
        let mut budget = 8;
        mitigate_overloads(&mut ctx, &cfg, &mut actions, &mut budget);
        // Only vm1 is movable.
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            ManagementAction::Migrate { vm: VmId(1), .. }
        ));
    }
}
