//! Anti-flapping timers for power-state decisions.
//!
//! With traditional S5-class states, a mispredicted power-down costs
//! minutes of unavailability plus a boot-energy spike, so managers guard
//! power-downs with long minimum-residency windows — and lose agility.
//! Low-latency states shrink the penalty, letting the window shrink too.
//! Experiment F11 sweeps this window under both regimes.

use cluster::HostId;
use simcore::{SimDuration, SimTime};

/// Per-host minimum-residency gate.
///
/// * A host may be *drained for power-down* only after `min_on_time` in
///   service since its last power-up (or since the start, if never
///   cycled).
/// * A parked host may be woken for *non-urgent* reasons (spare-pool
///   top-up) only after `min_off_time` parked; urgent capacity wakes
///   always pass.
///
/// # Example
///
/// ```
/// use agile_core::HysteresisGate;
/// use cluster::HostId;
/// use simcore::{SimDuration, SimTime};
///
/// let mut gate = HysteresisGate::new(SimDuration::from_mins(10), SimDuration::from_mins(5), 4);
/// let h = HostId(0);
/// assert!(gate.may_power_down(h, SimTime::ZERO)); // never cycled
/// gate.record_power_up(h, SimTime::from_secs(60));
/// assert!(!gate.may_power_down(h, SimTime::from_secs(120)));
/// assert!(gate.may_power_down(h, SimTime::from_secs(60 + 600)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HysteresisGate {
    min_on_time: SimDuration,
    min_off_time: SimDuration,
    last_up: Vec<Option<SimTime>>,
    last_down: Vec<Option<SimTime>>,
}

impl HysteresisGate {
    /// Creates a gate for `num_hosts` hosts.
    pub fn new(min_on_time: SimDuration, min_off_time: SimDuration, num_hosts: usize) -> Self {
        HysteresisGate {
            min_on_time,
            min_off_time,
            last_up: vec![None; num_hosts],
            last_down: vec![None; num_hosts],
        }
    }

    /// Whether `host` has been in service long enough to be drained.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn may_power_down(&self, host: HostId, now: SimTime) -> bool {
        match self.last_up[host.index()] {
            None => true,
            Some(up) => now.saturating_since(up) >= self.min_on_time,
        }
    }

    /// Whether `host` has been parked long enough for a non-urgent wake.
    /// Urgent (capacity-driven) wakes should bypass this check.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn may_power_up_nonurgent(&self, host: HostId, now: SimTime) -> bool {
        match self.last_down[host.index()] {
            None => true,
            Some(down) => now.saturating_since(down) >= self.min_off_time,
        }
    }

    /// Records that `host` was brought into service at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn record_power_up(&mut self, host: HostId, now: SimTime) {
        self.last_up[host.index()] = Some(now);
    }

    /// Records that `host` was powered down at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn record_power_down(&mut self, host: HostId, now: SimTime) {
        self.last_down[host.index()] = Some(now);
    }

    /// The configured minimum in-service residency.
    pub fn min_on_time(&self) -> SimDuration {
        self.min_on_time
    }

    /// The configured minimum parked residency.
    pub fn min_off_time(&self) -> SimDuration {
        self.min_off_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> HysteresisGate {
        HysteresisGate::new(SimDuration::from_mins(10), SimDuration::from_mins(5), 2)
    }

    #[test]
    fn fresh_hosts_pass_both_gates() {
        let g = gate();
        assert!(g.may_power_down(HostId(0), SimTime::ZERO));
        assert!(g.may_power_up_nonurgent(HostId(1), SimTime::ZERO));
    }

    #[test]
    fn power_down_blocked_within_min_on() {
        let mut g = gate();
        g.record_power_up(HostId(0), SimTime::from_secs(100));
        assert!(!g.may_power_down(HostId(0), SimTime::from_secs(100 + 599)));
        assert!(g.may_power_down(HostId(0), SimTime::from_secs(100 + 600)));
        // Other host unaffected.
        assert!(g.may_power_down(HostId(1), SimTime::from_secs(100)));
    }

    #[test]
    fn nonurgent_wake_blocked_within_min_off() {
        let mut g = gate();
        g.record_power_down(HostId(1), SimTime::from_secs(0));
        assert!(!g.may_power_up_nonurgent(HostId(1), SimTime::from_secs(299)));
        assert!(g.may_power_up_nonurgent(HostId(1), SimTime::from_secs(300)));
    }

    #[test]
    fn accessors() {
        let g = gate();
        assert_eq!(g.min_on_time(), SimDuration::from_mins(10));
        assert_eq!(g.min_off_time(), SimDuration::from_mins(5));
    }
}
