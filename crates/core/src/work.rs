//! Deterministic op-counters for the planning hot paths.
//!
//! [`WorkCounters`] counts *work*, not time: candidate scans, trial
//! evacuations, rollbacks, destination re-scores. Every field is a pure
//! function of the scenario seed — no clocks, no thread interleaving —
//! so the counters are bit-identical across serial vs sharded and
//! incremental vs scan runs, and the differential suite verifies them
//! the same way it verifies energy totals. They are the superlinearity
//! evidence for indexed candidate structures: plot
//! `candidates_scanned` against fleet size and the O(hosts) scan per
//! drain pick is visible directly, without wall-clock noise.
//!
//! Sharding must not change the counts, so the sharded scan paths
//! increment once per *logical* element on the coordinating side (e.g.
//! `candidates_scanned += num_hosts` per pick) rather than inside
//! worker closures.

use obs::Json;

/// Deterministic counts of planning and execution work.
///
/// The manager accumulates these across rounds (they survive planning
/// context rebuilds between rounds) and the engine
/// folds them into the metrics snapshot as `work.*` counters at the end
/// of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Hosts examined by consolidation's drain-candidate scans.
    pub candidates_scanned: u64,
    /// All-or-nothing trial evacuations attempted.
    pub trials_attempted: u64,
    /// Trial evacuations rolled back (candidate could not fully drain).
    pub trials_rolled_back: u64,
    /// Journaled moves reversed by rollbacks.
    pub rollback_moves: u64,
    /// Deepest undo journal observed across all trials.
    pub undo_depth_max: u64,
    /// Hosts examined by destination-selection scans
    /// (best-fit / least-loaded placement).
    pub hosts_rescored: u64,
    /// Migration actions the manager committed to plans.
    pub migrations_planned: u64,
    /// Elements folded by consolidation's capacity-aggregate reductions.
    pub fold_elements: u64,
}

impl WorkCounters {
    /// `(name suffix, value)` pairs in stable order, for folding into a
    /// metrics registry under a `work.plan.` prefix.
    pub fn entries(&self) -> [(&'static str, u64); 8] {
        [
            ("candidates_scanned", self.candidates_scanned),
            ("trials_attempted", self.trials_attempted),
            ("trials_rolled_back", self.trials_rolled_back),
            ("rollback_moves", self.rollback_moves),
            ("undo_depth_max", self.undo_depth_max),
            ("hosts_rescored", self.hosts_rescored),
            ("migrations_planned", self.migrations_planned),
            ("fold_elements", self.fold_elements),
        ]
    }

    /// JSON object rendering (for bench artifacts).
    pub fn to_json(&self) -> Json {
        Json::Object(
            self.entries()
                .iter()
                .map(|&(k, v)| (k.to_string(), Json::Int(v as i64)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_cover_every_field_once() {
        let w = WorkCounters {
            candidates_scanned: 1,
            trials_attempted: 2,
            trials_rolled_back: 3,
            rollback_moves: 4,
            undo_depth_max: 5,
            hosts_rescored: 6,
            migrations_planned: 7,
            fold_elements: 8,
        };
        let entries = w.entries();
        let mut values: Vec<u64> = entries.iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        assert_eq!(values, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let json = w.to_json();
        assert_eq!(json.get("undo_depth_max").unwrap().as_i64(), Some(5));
    }
}
