//! The manager's view of the cluster at one management round.
//!
//! The observation deliberately carries only what a real management plane
//! can see — power states, capacities, commitments, and measured demand —
//! so policies cannot accidentally peek at simulator internals (e.g.
//! future demand traces).

use cluster::{HostId, ServiceClass, VmId};
use power::breakeven::LadderSummary;
use power::{PowerState, TransitionKind};
use simcore::SimTime;

/// What the manager sees about one host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostObservation {
    /// The host's id.
    pub id: HostId,
    /// Current power state.
    pub state: PowerState,
    /// In-flight power transition, if any.
    pub pending: Option<TransitionKind>,
    /// CPU capacity, cores.
    pub cpu_capacity: f64,
    /// Memory capacity, GB.
    pub mem_capacity: f64,
    /// Memory committed (placed VMs + inbound migration reservations), GB.
    pub mem_committed: f64,
    /// Measured CPU demand this round (including migration tax), cores.
    pub cpu_demand: f64,
    /// Whether the host currently hosts no VMs and has no inbound
    /// migrations (i.e. may be powered down).
    pub evacuated: bool,
    /// Cumulative power transitions that failed on this host — the error
    /// feed a real management plane gets from the BMC/IPMI path. The
    /// manager diffs it against the previous round to detect fresh
    /// failures.
    pub failed_transitions: u64,
    /// Summary of the host's power-state ladder (supported rungs with
    /// wake latency and break-even gap) — the datasheet-class facts a
    /// management plane knows about its fleet. Empty under profiles with
    /// no low-power rungs.
    pub ladder: LadderSummary,
}

impl Default for HostObservation {
    /// A zero-capacity placeholder (`Off`, id 0) — the pre-fill value of
    /// reusable observation buffers; the sharded observation fill
    /// overwrites every slot before the manager sees it.
    fn default() -> Self {
        HostObservation {
            id: HostId(0),
            state: PowerState::Off,
            pending: None,
            cpu_capacity: 0.0,
            mem_capacity: 0.0,
            mem_committed: 0.0,
            cpu_demand: 0.0,
            evacuated: false,
            failed_transitions: 0,
            ladder: LadderSummary::default(),
        }
    }
}

impl HostObservation {
    /// Free memory after commitments, GB.
    pub fn mem_free(&self) -> f64 {
        (self.mem_capacity - self.mem_committed).max(0.0)
    }

    /// Measured utilization fraction (demand may exceed capacity under
    /// overload, so this can exceed 1.0).
    pub fn utilization(&self) -> f64 {
        if self.cpu_capacity > 0.0 {
            self.cpu_demand / self.cpu_capacity
        } else {
            0.0
        }
    }

    /// Whether the host is serving load (`On`).
    pub fn is_operational(&self) -> bool {
        self.state.is_operational()
    }

    /// Whether the host is `On` or on its way to `On`.
    pub fn is_arriving_or_on(&self) -> bool {
        matches!(
            self.state,
            PowerState::On | PowerState::Resuming | PowerState::Booting
        )
    }
}

/// What the manager sees about one VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmObservation {
    /// The VM's id.
    pub id: VmId,
    /// The host the VM currently runs on (`None` only before initial
    /// placement).
    pub host: Option<HostId>,
    /// Measured CPU demand this round, cores.
    pub cpu_demand: f64,
    /// Configured CPU cap, cores.
    pub cpu_cap: f64,
    /// Memory footprint, GB.
    pub mem_gb: f64,
    /// Whether a live migration of this VM is in flight.
    pub migrating: bool,
    /// The VM's service class (the manager prefers disrupting batch VMs).
    pub service_class: ServiceClass,
}

impl Default for VmObservation {
    /// An unplaced, idle placeholder (id 0) — the pre-fill value of
    /// reusable observation buffers; the sharded observation fill
    /// overwrites every slot before the manager sees it.
    fn default() -> Self {
        VmObservation {
            id: VmId(0),
            host: None,
            cpu_demand: 0.0,
            cpu_cap: 0.0,
            mem_gb: 0.0,
            migrating: false,
            service_class: ServiceClass::default(),
        }
    }
}

/// A full snapshot handed to [`crate::VirtManager::plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterObservation {
    /// The time of this management round.
    pub now: SimTime,
    /// Per-host observations, indexed by `HostId::index()`.
    pub hosts: Vec<HostObservation>,
    /// Per-VM observations, indexed by `VmId::index()`.
    pub vms: Vec<VmObservation>,
}

impl Default for ClusterObservation {
    /// An empty observation at time zero — the initial state of reusable
    /// observation buffers (see the engine's per-tick buffer reuse).
    fn default() -> Self {
        ClusterObservation {
            now: SimTime::ZERO,
            hosts: Vec::new(),
            vms: Vec::new(),
        }
    }
}

impl ClusterObservation {
    /// Total measured VM demand, cores (excludes migration tax).
    pub fn total_vm_demand(&self) -> f64 {
        self.vms.iter().map(|v| v.cpu_demand).sum()
    }

    /// Ids of hosts currently in `state`.
    pub fn hosts_in_state(&self, state: PowerState) -> impl Iterator<Item = HostId> + '_ {
        self.hosts
            .iter()
            .filter(move |h| h.state == state)
            .map(|h| h.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(state: PowerState, demand: f64) -> HostObservation {
        HostObservation {
            id: HostId(0),
            state,
            pending: None,
            cpu_capacity: 8.0,
            mem_capacity: 32.0,
            mem_committed: 24.0,
            cpu_demand: demand,
            evacuated: false,
            failed_transitions: 0,
            ladder: LadderSummary::default(),
        }
    }

    #[test]
    fn host_derived_quantities() {
        let h = host(PowerState::On, 4.0);
        assert_eq!(h.mem_free(), 8.0);
        assert_eq!(h.utilization(), 0.5);
        assert!(h.is_operational());
        assert!(h.is_arriving_or_on());
    }

    #[test]
    fn arriving_states() {
        assert!(host(PowerState::Resuming, 0.0).is_arriving_or_on());
        assert!(host(PowerState::Booting, 0.0).is_arriving_or_on());
        assert!(!host(PowerState::Suspended, 0.0).is_arriving_or_on());
        assert!(!host(PowerState::Suspending, 0.0).is_arriving_or_on());
    }

    #[test]
    fn overload_utilization_exceeds_one() {
        let h = host(PowerState::On, 12.0);
        assert_eq!(h.utilization(), 1.5);
    }

    #[test]
    fn observation_aggregates() {
        let obs = ClusterObservation {
            now: SimTime::ZERO,
            hosts: vec![host(PowerState::On, 1.0), host(PowerState::Suspended, 0.0)],
            vms: vec![
                VmObservation {
                    id: VmId(0),
                    host: Some(HostId(0)),
                    cpu_demand: 1.5,
                    cpu_cap: 2.0,
                    mem_gb: 8.0,
                    migrating: false,
                    service_class: Default::default(),
                },
                VmObservation {
                    id: VmId(1),
                    host: None,
                    cpu_demand: 0.5,
                    cpu_cap: 2.0,
                    mem_gb: 8.0,
                    migrating: false,
                    service_class: Default::default(),
                },
            ],
        };
        assert_eq!(obs.total_vm_demand(), 2.0);
        assert_eq!(obs.hosts_in_state(PowerState::Suspended).count(), 1);
    }
}
