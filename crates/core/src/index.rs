//! Indexed candidate planning: utilization-bucketed host indices and
//! fixed-shape capacity aggregates.
//!
//! The consolidation planner repeatedly asks order statistics of the
//! fleet — "least-loaded qualifying drain candidate", "tightest feasible
//! migration destination" — and the scan path answers each query with an
//! O(hosts) sweep. [`UtilizationIndex`] answers the same queries from
//! utilization buckets maintained once per round, so steady-state rounds
//! examine only the few buckets near the decision thresholds.
//!
//! # The bit-identity contract
//!
//! Indexed planning ([`PlanMode::Indexed`]) must produce `SimReport`s
//! bit-identical to the scan planner ([`PlanMode::Scan`]) — the
//! differential suite enforces it. That contract pins three design
//! choices:
//!
//! * **Monotone quantization.** A host's bucket is
//!   `floor(util × 1024)` (clamped), so every host in bucket `b` has
//!   strictly smaller utilization than every host in any bucket
//!   `b' > b`. The winner of a minimum (maximum) query therefore lives
//!   in the first non-empty qualifying bucket of an ascending
//!   (descending) walk, and equal utilizations always share a bucket —
//!   cross-bucket ordering can never reorder a tie.
//! * **Lexicographic tie-breaks.** The scan paths use
//!   `Iterator::min_by` (first-wins: lowest index among equal minima)
//!   and `Iterator::max_by` (last-wins: highest index among equal
//!   maxima). Both are exactly the lexicographic min/max of
//!   `(utilization, host index)`, which is iteration-order independent —
//!   so bucket walks and the touched-host overlay can be merged without
//!   replaying the scan's exact visit order.
//! * **Fixed-shape aggregates.** The drain-candidate capacity gate sums
//!   active and arriving capacity. A running sum updated incrementally
//!   would round differently from the scan's fold, so both modes use the
//!   same fixed-shape pairwise reduction: [`pairwise_sum`] recomputed
//!   from scratch (scan) and [`SumTree`] with O(log n) leaf updates
//!   (indexed) produce bitwise-equal roots by construction — every tree
//!   node is a pure function of its leaves.
//!
//! Only the ordering key (predicted utilization) is indexed. All
//! qualification predicates — operational, draining, hysteresis,
//! quarantine, capacity gates, `can_accept` — are evaluated live per
//! examined host, so the index can never serve a stale answer for
//! anything but the ordering itself, and in-round moves are handled by
//! marking the endpoints *touched*: touched hosts are skipped during
//! bucket walks and re-examined linearly from the overlay instead.

use obs::Json;

/// Consolidation planner selection (scan sweep vs bucket index), the
/// planning analogue of `cluster::AccountingMode`.
///
/// Both modes produce bit-identical `SimReport`s; `Indexed` replaces the
/// per-decision O(hosts) sweeps with bucket walks so candidate work per
/// round is sublinear in fleet size at steady state. `Scan` remains the
/// default reference semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanMode {
    /// Full-fleet linear sweeps per decision (the reference semantics).
    #[default]
    Scan,
    /// Utilization-bucketed host indices refreshed once per round.
    Indexed,
}

impl PlanMode {
    /// Stable lowercase label (artifact and CLI naming).
    pub fn label(&self) -> &'static str {
        match self {
            PlanMode::Scan => "scan",
            PlanMode::Indexed => "indexed",
        }
    }
}

/// Buckets per unit of utilization: fine enough that steady-state walks
/// examine few hosts, coarse enough that bucket churn stays cheap.
///
/// A destination walk must examine every untouched member of the bucket
/// it stops in (the lexicographic tie-break needs all of them), so the
/// per-pick cost floor is the population of one bucket around the
/// packed-fleet utilization — at 64k hosts and 1/128 granularity that
/// was hundreds of hosts per pick. Kept a power of two so every bucket
/// floor `b / BUCKETS_PER_UNIT` is exactly representable, which the
/// ascending walk's floor-exit compares bit-for-bit.
const BUCKETS_PER_UNIT: f64 = 1024.0;

/// Highest bucket index; utilizations at or above
/// `MAX_BUCKET / BUCKETS_PER_UNIT` (2.0) all land here. The clamp keeps
/// the walk correct: the top bucket's utilizations still dominate every
/// lower bucket's, and ties within it are resolved by the full
/// within-bucket comparison like everywhere else.
const MAX_BUCKET: usize = 2048;

/// Sentinel for "host is not in any bucket".
const NOT_INDEXED: u32 = u32::MAX;

// The fixed-shape pairwise-summation pair lives in `simcore` (the
// cluster's cached power/capacity totals use it too); re-exported here
// because the planner's aggregates are its original and primary client.
pub use simcore::{pairwise_sum, SumTree};

/// Utilization-bucketed host index with a touched-host overlay, plus the
/// capacity aggregates the drain gate needs ([`SumTree`]s for active and
/// arriving capacity).
///
/// Hosts are bucketed by quantized utilization
/// (`floor(util × 1024)`, clamped); each bucket keeps its hosts sorted
/// ascending so within-bucket iteration is in index order. Membership is
/// the caller's notion of "operational": every operational host is in
/// exactly one bucket, non-operational hosts are in none —
/// [`check_membership`](Self::check_membership) verifies exactly that,
/// and the model-check suite drives arbitrary
/// insert/remove/rescore/touch sequences against a recomputed-from-
/// scratch oracle.
///
/// The index stores only the ordering key. Callers evaluate every
/// qualification predicate live per examined host and handle in-round
/// utilization changes by [`touch`](Self::touch)ing the affected hosts:
/// a touched host's stored bucket is ignored (walks skip it) and the
/// caller re-examines the overlay linearly instead.
#[derive(Debug, Clone, Default)]
pub struct UtilizationIndex {
    /// `buckets[b]` = hosts with quantized utilization `b`, ascending.
    buckets: Vec<Vec<u32>>,
    /// Bucket of each host, `NOT_INDEXED` when absent.
    host_bucket: Vec<u32>,
    /// Overlay membership flag per host.
    touched_flag: Vec<bool>,
    /// Overlay insertion list (order is irrelevant to callers — queries
    /// over the overlay are lexicographic min/max, which are
    /// order-independent).
    touched: Vec<u32>,
    /// Per-bucket upper bound on the free memory (GB) of any *untouched*
    /// member host. Conservatively maintained: raised whenever a host is
    /// inserted or rescored into a bucket, reset to exact values only at
    /// the per-round refresh ([`reset_mem_ubs`](Self::reset_mem_ubs)
    /// followed by a full re-insert/rescore pass). A stale-high bound is
    /// harmless — a walk merely examines a bucket it could have skipped —
    /// while the raise-only discipline guarantees the bound never drops
    /// below a resident host's free memory, so skipping a bucket whose
    /// bound cannot fit a VM is lossless. Touched hosts are exempt: they
    /// live in the overlay, which every walk scans in full.
    bucket_mem_ub: Vec<f64>,
    /// Active capacity aggregate (leaf = capacity if operational and not
    /// draining, else 0.0). Maintained by the planning context.
    pub(crate) active_tree: SumTree,
    /// Arriving capacity aggregate (leaf = capacity if arriving).
    pub(crate) arriving_tree: SumTree,
    /// Largest single-host capacity, recomputed per refresh (constant
    /// within a round: capacities never change mid-round).
    pub(crate) max_host_cap: f64,
    /// Smallest strictly-positive host capacity (0.0 when none), used to
    /// bound the `1e-9` feasibility slop in utilization terms when
    /// pruning descending destination walks.
    pub(crate) min_host_cap: f64,
    /// Whether the bucket contents describe the current round. Set by
    /// the per-round refresh, cleared when the planning context is
    /// rebuilt on fresh predictions.
    pub(crate) valid: bool,
}

impl UtilizationIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a utilization value quantizes to.
    pub fn bucket_of(util: f64) -> usize {
        ((util * BUCKETS_PER_UNIT).floor() as isize).clamp(0, MAX_BUCKET as isize) as usize
    }

    /// Number of bucket slots (fixed).
    pub fn num_buckets() -> usize {
        MAX_BUCKET + 1
    }

    /// The smallest utilization that quantizes into bucket `b` — the
    /// bucket's closed lower boundary. A host whose utilization is
    /// bitwise equal to this floor cannot be beaten by anything later in
    /// an ascending first-wins walk of the same bucket (later hosts have
    /// utilization ≥ the floor and a larger index), which lets dense
    /// boundary buckets — thousands of idle hosts at exactly 0.0 —
    /// terminate in one examination.
    pub fn bucket_floor(b: usize) -> f64 {
        b as f64 / BUCKETS_PER_UNIT
    }

    /// Sizes the per-host tables for `num_hosts`, preserving bucket
    /// contents for hosts that remain in range (allocations are reused
    /// across rounds).
    pub fn ensure_hosts(&mut self, num_hosts: usize) {
        if self.buckets.is_empty() {
            self.buckets = vec![Vec::new(); Self::num_buckets()];
            self.bucket_mem_ub = vec![0.0; Self::num_buckets()];
        }
        if self.host_bucket.len() != num_hosts {
            for b in &mut self.buckets {
                b.clear();
            }
            self.bucket_mem_ub.fill(0.0);
            self.host_bucket.clear();
            self.host_bucket.resize(num_hosts, NOT_INDEXED);
            self.touched_flag.clear();
            self.touched_flag.resize(num_hosts, false);
            self.touched.clear();
        }
    }

    /// Resets every bucket's free-memory upper bound to zero, ahead of a
    /// refresh pass that re-inserts or rescores every member (each such
    /// call raises its bucket's bound back to the member's live free
    /// memory). Without the periodic reset the raise-only bounds would
    /// ratchet upward forever and stop pruning anything.
    pub fn reset_mem_ubs(&mut self) {
        self.bucket_mem_ub.fill(0.0);
    }

    /// Upper bound on the free memory of any untouched host in bucket
    /// `b`. A walk may skip the bucket entirely when the VM's memory
    /// demand exceeds this bound (plus the feasibility slop) — no
    /// resident host can accept it.
    pub fn bucket_mem_ub(&self, b: usize) -> f64 {
        self.bucket_mem_ub[b]
    }

    /// Whether `host` currently sits in a bucket.
    pub fn is_indexed(&self, host: usize) -> bool {
        self.host_bucket[host] != NOT_INDEXED
    }

    /// The bucket `host` currently sits in, if any.
    pub fn bucket_of_host(&self, host: usize) -> Option<usize> {
        match self.host_bucket[host] {
            NOT_INDEXED => None,
            b => Some(b as usize),
        }
    }

    /// Hosts in bucket `b`, ascending by index.
    pub fn bucket_hosts(&self, b: usize) -> &[u32] {
        &self.buckets[b]
    }

    /// Inserts `host` with utilization `util`.
    ///
    /// # Panics
    ///
    /// Panics if the host is already indexed.
    pub fn insert(&mut self, host: usize, util: f64, mem_free: f64) {
        assert!(!self.is_indexed(host), "host {host} already indexed");
        let b = Self::bucket_of(util);
        let list = &mut self.buckets[b];
        let pos = list.partition_point(|&h| (h as usize) < host);
        list.insert(pos, host as u32);
        self.host_bucket[host] = b as u32;
        if mem_free > self.bucket_mem_ub[b] {
            self.bucket_mem_ub[b] = mem_free;
        }
    }

    /// Removes `host` from its bucket.
    ///
    /// # Panics
    ///
    /// Panics if the host is not indexed.
    pub fn remove(&mut self, host: usize) {
        let b = self.host_bucket[host];
        assert!(b != NOT_INDEXED, "host {host} not indexed");
        let list = &mut self.buckets[b as usize];
        let pos = list
            .binary_search(&(host as u32))
            .expect("indexed host missing from its bucket");
        list.remove(pos);
        self.host_bucket[host] = NOT_INDEXED;
    }

    /// Moves `host` to the bucket for `util` if it changed; returns
    /// whether a move happened. The destination bucket's free-memory
    /// bound is raised to cover `mem_free` even when the bucket is
    /// unchanged — an overlay fold can hand back a host whose free
    /// memory grew (a rolled-back migration released its reservation).
    ///
    /// # Panics
    ///
    /// Panics if the host is not indexed.
    pub fn rescore(&mut self, host: usize, util: f64, mem_free: f64) -> bool {
        let b = self.host_bucket[host];
        assert!(b != NOT_INDEXED, "host {host} not indexed");
        let target = Self::bucket_of(util) as u32;
        if target == b {
            if mem_free > self.bucket_mem_ub[b as usize] {
                self.bucket_mem_ub[b as usize] = mem_free;
            }
            return false;
        }
        self.remove(host);
        self.insert(host, util, mem_free);
        true
    }

    /// Marks `host` touched (its in-round utilization diverged from its
    /// bucket); returns whether it was newly touched.
    pub fn touch(&mut self, host: usize) -> bool {
        if self.touched_flag[host] {
            return false;
        }
        self.touched_flag[host] = true;
        self.touched.push(host as u32);
        true
    }

    /// Whether `host` is in the touched overlay.
    pub fn is_touched(&self, host: usize) -> bool {
        self.touched_flag[host]
    }

    /// The touched overlay, in insertion order.
    pub fn touched_hosts(&self) -> &[u32] {
        &self.touched
    }

    /// Number of touched hosts.
    pub fn overlay_len(&self) -> usize {
        self.touched.len()
    }

    /// Clears the touched overlay.
    pub fn clear_touched(&mut self) {
        for &h in &self.touched {
            self.touched_flag[h as usize] = false;
        }
        self.touched.clear();
    }

    /// Verifies the membership invariant against ground truth: every
    /// host with `member[h]` true sits in exactly one bucket — the
    /// bucket of `utils[h]` unless the host is touched — every
    /// non-member is in no bucket, every bucket list is strictly
    /// ascending, and no untouched member's free memory (`mem_free[h]`)
    /// exceeds its bucket's free-memory upper bound (which would let a
    /// walk skip a feasible destination). Returns a description of the
    /// first violation.
    pub fn check_membership(
        &self,
        member: &[bool],
        utils: &[f64],
        mem_free: &[f64],
    ) -> Result<(), String> {
        let mut seen = vec![0u32; member.len()];
        for (b, list) in self.buckets.iter().enumerate() {
            for pair in list.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!("bucket {b} is not strictly ascending: {list:?}"));
                }
            }
            for &h in list {
                let h = h as usize;
                if h >= member.len() {
                    return Err(format!("bucket {b} holds out-of-range host {h}"));
                }
                seen[h] += 1;
                if self.host_bucket[h] != b as u32 {
                    return Err(format!(
                        "host {h} is in bucket {b} but host_bucket says {}",
                        self.host_bucket[h]
                    ));
                }
                if !self.touched_flag[h] && Self::bucket_of(utils[h]) != b {
                    return Err(format!(
                        "untouched host {h} (util {}) sits in bucket {b}, expected {}",
                        utils[h],
                        Self::bucket_of(utils[h])
                    ));
                }
                if !self.touched_flag[h] && mem_free[h] > self.bucket_mem_ub[b] {
                    return Err(format!(
                        "untouched host {h} has {} GB free but bucket {b}'s bound is {} — \
                         a memory-pruned walk could skip a feasible destination",
                        mem_free[h], self.bucket_mem_ub[b]
                    ));
                }
            }
        }
        for (h, &m) in member.iter().enumerate() {
            let count = seen[h];
            if m && count != 1 {
                return Err(format!("member host {h} is in {count} buckets, expected 1"));
            }
            if !m && count != 0 {
                return Err(format!("non-member host {h} is in {count} buckets"));
            }
        }
        Ok(())
    }
}

/// Deterministic op-counters for the index maintenance work, the
/// `work.index.*` siblings of [`crate::WorkCounters`].
///
/// Like the plan counters these are pure functions of the scenario seed
/// and count logical work on the coordinating side. They are
/// mode-variant by design — a `Scan` run leaves them at zero — and the
/// invariant catalog pins `rebuckets <= work.cluster.dirty_marks`: a
/// host may only change bucket when some cluster observation actually
/// changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexWorkCounters {
    /// Per-round index refresh passes.
    pub refreshes: u64,
    /// Hosts moved between buckets by a refresh (utilization drift).
    pub rebuckets: u64,
    /// Hosts newly inserted (initial build, hosts turning operational).
    pub inserts: u64,
    /// Hosts removed (hosts leaving the operational set).
    pub removes: u64,
    /// Hosts re-bucketed by in-round overlay compaction (the overlay
    /// exceeded its size bound mid-round and was folded back).
    pub overlay_folds: u64,
}

impl IndexWorkCounters {
    /// `(name suffix, value)` pairs in stable order, for folding into a
    /// metrics registry under a `work.index.` prefix.
    pub fn entries(&self) -> [(&'static str, u64); 5] {
        [
            ("refreshes", self.refreshes),
            ("rebuckets", self.rebuckets),
            ("inserts", self.inserts),
            ("removes", self.removes),
            ("overlay_folds", self.overlay_folds),
        ]
    }

    /// JSON object rendering (for bench artifacts).
    pub fn to_json(&self) -> Json {
        Json::Object(
            self.entries()
                .iter()
                .map(|&(k, v)| (k.to_string(), Json::Int(v as i64)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_matches_tree_after_updates() {
        for n in [0usize, 1, 2, 3, 5, 8, 13, 100] {
            let leaf = |i: usize| (i as f64) * 0.1 + 0.003;
            let mut tree = SumTree::new();
            tree.rebuild(n, leaf);
            assert_eq!(tree.root().to_bits(), pairwise_sum(n, leaf).to_bits());
            // Update a few leaves and re-check bitwise equality against
            // a from-scratch pairwise sum of the new values.
            if n > 0 {
                let mut vals: Vec<f64> = (0..n).map(leaf).collect();
                for step in 0..n.min(7) {
                    let i = (step * 3) % n;
                    vals[i] = 1.0 / (step as f64 + 3.0);
                    tree.set(i, vals[i]);
                    assert_eq!(
                        tree.root().to_bits(),
                        pairwise_sum(n, |j| vals[j]).to_bits(),
                        "n={n} step={step}"
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_quantization_is_monotone_and_clamped() {
        assert_eq!(UtilizationIndex::bucket_of(0.0), 0);
        assert_eq!(UtilizationIndex::bucket_of(0.5), 512);
        assert!(UtilizationIndex::bucket_of(0.49) < UtilizationIndex::bucket_of(0.51));
        assert_eq!(UtilizationIndex::bucket_of(1e9), MAX_BUCKET);
        assert_eq!(UtilizationIndex::bucket_of(-0.5), 0);
        // Equal utils share a bucket (ties stay intra-bucket).
        assert_eq!(
            UtilizationIndex::bucket_of(0.333),
            UtilizationIndex::bucket_of(0.333)
        );
    }

    #[test]
    fn insert_remove_rescore_keep_membership() {
        let mut idx = UtilizationIndex::new();
        idx.ensure_hosts(4);
        let mut utils = [0.1, 0.5, 0.5, 0.9];
        let mem = [4.0, 8.0, 2.0, 0.0];
        let member = [true, true, true, false];
        for h in 0..3 {
            idx.insert(h, utils[h], mem[h]);
        }
        idx.check_membership(&member, &utils, &mem).unwrap();
        // Hosts 1 and 2 share a bucket, ascending; the bucket's memory
        // bound covers the freer of the two.
        assert_eq!(idx.bucket_hosts(UtilizationIndex::bucket_of(0.5)), &[1, 2]);
        assert_eq!(idx.bucket_mem_ub(UtilizationIndex::bucket_of(0.5)), 8.0);
        utils[1] = 0.2;
        assert!(idx.rescore(1, utils[1], mem[1]));
        assert!(!idx.rescore(1, utils[1], mem[1]));
        idx.check_membership(&member, &utils, &mem).unwrap();
        idx.remove(2);
        assert!(idx
            .check_membership(&member, &utils, &mem)
            .unwrap_err()
            .contains("member host 2"));
    }

    #[test]
    fn mem_bound_raises_only_and_resets_exactly() {
        let mut idx = UtilizationIndex::new();
        idx.ensure_hosts(2);
        let utils = [0.4, 0.4];
        idx.insert(0, utils[0], 6.0);
        idx.insert(1, utils[1], 2.0);
        let b = UtilizationIndex::bucket_of(0.4);
        assert_eq!(idx.bucket_mem_ub(b), 6.0);
        // Same-bucket rescore with more free memory raises the bound…
        assert!(!idx.rescore(1, utils[1], 9.0));
        assert_eq!(idx.bucket_mem_ub(b), 9.0);
        // …a lower value never lowers it (raise-only between resets)…
        assert!(!idx.rescore(1, utils[1], 1.0));
        assert_eq!(idx.bucket_mem_ub(b), 9.0);
        // …and an under-bound ground truth is caught by the audit.
        assert!(idx
            .check_membership(&[true, true], &utils, &[6.0, 10.0])
            .unwrap_err()
            .contains("memory-pruned"));
        // The refresh pattern — reset, then rescore every member —
        // restores the exact per-bucket maximum.
        idx.reset_mem_ubs();
        assert!(!idx.rescore(0, utils[0], 6.0));
        assert!(!idx.rescore(1, utils[1], 2.0));
        assert_eq!(idx.bucket_mem_ub(b), 6.0);
        idx.check_membership(&[true, true], &utils, &[6.0, 2.0])
            .unwrap();
    }

    #[test]
    fn touched_hosts_are_exempt_from_bucket_accuracy() {
        let mut idx = UtilizationIndex::new();
        idx.ensure_hosts(2);
        let mut utils = [0.1, 0.8];
        let mem = [4.0, 4.0];
        idx.insert(0, utils[0], mem[0]);
        idx.insert(1, utils[1], mem[1]);
        utils[0] = 0.7; // drifted in-round
        assert!(idx.check_membership(&[true, true], &utils, &mem).is_err());
        assert!(idx.touch(0));
        assert!(!idx.touch(0));
        idx.check_membership(&[true, true], &utils, &mem).unwrap();
        idx.clear_touched();
        assert!(!idx.is_touched(0));
    }

    #[test]
    fn index_counter_entries_cover_every_field_once() {
        let w = IndexWorkCounters {
            refreshes: 1,
            rebuckets: 2,
            inserts: 3,
            removes: 4,
            overlay_folds: 5,
        };
        let mut values: Vec<u64> = w.entries().iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        assert_eq!(values, vec![1, 2, 3, 4, 5]);
        assert_eq!(w.to_json().get("rebuckets").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn plan_mode_labels() {
        assert_eq!(PlanMode::default(), PlanMode::Scan);
        assert_eq!(PlanMode::Scan.label(), "scan");
        assert_eq!(PlanMode::Indexed.label(), "indexed");
    }
}
