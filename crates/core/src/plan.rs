//! Working state for one management round.
//!
//! The manager plans several actions per round; each tentative migration
//! changes the capacity picture for the next decision. `PlanContext`
//! carries that evolving view so the round's actions are mutually
//! consistent (no destination is overcommitted by two moves that were
//! each individually fine).

use cluster::ServiceClass;

use crate::{
    ClusterObservation, IndexWorkCounters, ManagerConfig, PlanMode, UtilizationIndex, WorkCounters,
};

/// Touched-overlay size bound: past this many in-round-moved hosts the
/// overlay is folded back into the buckets, so overlay scans during
/// mass-consolidation waves stay O(bound) instead of growing with every
/// committed drain.
const OVERLAY_FOLD_LIMIT: usize = 128;

/// Mutable planning view of the cluster for one round.
///
/// The manager owns one instance and [`rebuild`](Self::rebuild)s it each
/// round, so the ~13 vectors below keep their allocations across rounds
/// and steady-state planning allocates nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlanContext {
    /// Predicted demand per VM, cores.
    pub predicted_vm: Vec<f64>,
    /// Predicted demand per host after tentative moves, cores.
    pub host_pred_cpu: Vec<f64>,
    /// Committed memory per host after tentative moves, GB.
    pub mem_committed: Vec<f64>,
    /// CPU capacity per host, cores.
    pub cpu_capacity: Vec<f64>,
    /// Memory capacity per host, GB.
    pub mem_capacity: Vec<f64>,
    /// Host is `On`.
    pub operational: Vec<bool>,
    /// Host is `Resuming`/`Booting` (capacity arriving soon).
    pub arriving: Vec<bool>,
    /// Host is marked for evacuation (copied from manager state; mutated
    /// by undrain/drain decisions this round).
    pub draining: Vec<bool>,
    /// VM has a live migration in flight (not movable this round).
    pub migrating_vm: Vec<bool>,
    /// Tentative host of each VM (by index), `None` if unplaced.
    pub vm_host: Vec<Option<usize>>,
    /// Memory per VM, GB.
    pub vm_mem: Vec<f64>,
    /// Whether each VM is batch-class (preferred for disruption).
    pub vm_batch: Vec<bool>,
    /// VMs per host under the tentative plan.
    pub vms_by_host: Vec<Vec<usize>>,
    /// Sum of `predicted_vm`, computed once per rebuild (predictions are
    /// immutable within a round, so hot paths read this instead of
    /// re-summing O(VMs)).
    total_predicted_cache: f64,
    /// Deterministic op-counters, accumulated *across* rounds —
    /// [`rebuild`](Self::rebuild) deliberately leaves them untouched.
    pub work: WorkCounters,
    /// Consolidation planner selection (set once at manager
    /// construction; [`rebuild`](Self::rebuild) leaves it untouched).
    pub mode: PlanMode,
    /// Utilization-bucket index for [`PlanMode::Indexed`]. Invalidated
    /// by every rebuild (fresh predictions), revalidated by
    /// [`refresh_index`](Self::refresh_index) once per round.
    pub index: UtilizationIndex,
    /// Index-maintenance op-counters, accumulated across rounds like
    /// [`Self::work`].
    pub index_work: IndexWorkCounters,
}

/// Lexicographic minimum over `(utilization, host index)` — exactly
/// `Iterator::min_by` on utilization over ascending indices (first-wins
/// on ties), but iteration-order independent.
pub(crate) fn lex_min(best: &mut Option<(f64, usize)>, cand: (f64, usize)) {
    let replace = match *best {
        None => true,
        Some((u, h)) => cand.0 < u || (cand.0 == u && cand.1 < h),
    };
    if replace {
        *best = Some(cand);
    }
}

/// Lexicographic maximum over `(utilization, host index)` — exactly
/// `Iterator::max_by` on utilization over ascending indices (last-wins
/// on ties), but iteration-order independent.
pub(crate) fn lex_max(best: &mut Option<(f64, usize)>, cand: (f64, usize)) {
    let replace = match *best {
        None => true,
        Some((u, h)) => cand.0 > u || (cand.0 == u && cand.1 > h),
    };
    if replace {
        *best = Some(cand);
    }
}

impl PlanContext {
    /// Builds a fresh context from an observation, per-VM predictions,
    /// and the manager's persistent drain set.
    #[cfg(test)]
    pub fn new(obs: &ClusterObservation, predicted_vm: Vec<f64>, draining: &[bool]) -> Self {
        let mut ctx = PlanContext::default();
        ctx.rebuild(obs, &predicted_vm, draining);
        ctx
    }

    /// Refills the context in place from this round's observation,
    /// reusing every vector's allocation from the previous round.
    pub fn rebuild(&mut self, obs: &ClusterObservation, predicted_vm: &[f64], draining: &[bool]) {
        let nh = obs.hosts.len();
        assert_eq!(draining.len(), nh, "drain set length mismatch");
        assert_eq!(
            predicted_vm.len(),
            obs.vms.len(),
            "prediction length mismatch"
        );

        self.predicted_vm.clear();
        self.predicted_vm.extend_from_slice(predicted_vm);

        // Keep inner per-host Vec allocations alive across rounds.
        self.vms_by_host.truncate(nh);
        for v in &mut self.vms_by_host {
            v.clear();
        }
        self.vms_by_host.resize_with(nh, Vec::new);

        self.vm_host.clear();
        for (i, vm) in obs.vms.iter().enumerate() {
            let h = vm.host.map(|h| h.index());
            if let Some(h) = h {
                self.vms_by_host[h].push(i);
            }
            self.vm_host.push(h);
        }
        // Host predicted demand = sum of its VMs' predictions (migration
        // tax is transient; plans are made on VM demand).
        self.host_pred_cpu.clear();
        self.host_pred_cpu.resize(nh, 0.0);
        for (i, &h) in self.vm_host.iter().enumerate() {
            if let Some(h) = h {
                self.host_pred_cpu[h] += predicted_vm[i];
            }
        }

        self.mem_committed.clear();
        self.mem_committed
            .extend(obs.hosts.iter().map(|h| h.mem_committed));
        self.cpu_capacity.clear();
        self.cpu_capacity
            .extend(obs.hosts.iter().map(|h| h.cpu_capacity));
        self.mem_capacity.clear();
        self.mem_capacity
            .extend(obs.hosts.iter().map(|h| h.mem_capacity));
        self.operational.clear();
        self.operational
            .extend(obs.hosts.iter().map(|h| h.is_operational()));
        self.arriving.clear();
        self.arriving.extend(
            obs.hosts
                .iter()
                .map(|h| h.is_arriving_or_on() && !h.is_operational()),
        );
        self.draining.clear();
        self.draining.extend_from_slice(draining);
        self.migrating_vm.clear();
        self.migrating_vm
            .extend(obs.vms.iter().map(|v| v.migrating));
        self.vm_mem.clear();
        self.vm_mem.extend(obs.vms.iter().map(|v| v.mem_gb));
        self.vm_batch.clear();
        self.vm_batch.extend(
            obs.vms
                .iter()
                .map(|v| v.service_class == ServiceClass::Batch),
        );
        self.total_predicted_cache = self.predicted_vm.iter().sum();
        // Fresh predictions: whatever the bucket index held last round no
        // longer describes the fleet. The per-round refresh revalidates.
        self.index.valid = false;
    }

    /// Rebuilds the utilization-bucket index and capacity aggregates for
    /// this round's predictions (no-op under [`PlanMode::Scan`]).
    ///
    /// Every host is re-scored (one divide and compare) but only hosts
    /// whose *bucket* changed pay list surgery — counted as
    /// `work.index.rebuckets`, which the invariant catalog bounds by
    /// `work.cluster.dirty_marks`: a bucket can only move when some
    /// cluster observation actually changed.
    pub fn refresh_index(&mut self) {
        if self.mode != PlanMode::Indexed {
            return;
        }
        let n = self.num_hosts();
        self.index.ensure_hosts(n);
        self.index.clear_touched();
        // Every member is re-inserted or rescored below, so the
        // raise-only free-memory bounds can be recomputed exactly here.
        self.index.reset_mem_ubs();
        self.index_work.refreshes += 1;
        for h in 0..n {
            let member = self.operational[h];
            let mem_free = self.mem_capacity[h] - self.mem_committed[h];
            match (self.index.is_indexed(h), member) {
                (false, true) => {
                    self.index.insert(h, self.util(h), mem_free);
                    self.index_work.inserts += 1;
                }
                (true, false) => {
                    self.index.remove(h);
                    self.index_work.removes += 1;
                }
                (true, true) => {
                    if self.index.rescore(h, self.util(h), mem_free) {
                        self.index_work.rebuckets += 1;
                    }
                }
                (false, false) => {}
            }
        }
        // Capacity aggregates: fixed-shape pairwise trees whose roots are
        // bitwise equal to the scan path's `pairwise_sum` over the same
        // leaves. Rebuilt per refresh, leaf-updated on trial drain flips.
        let ops = &self.operational;
        let draining = &self.draining;
        let arriving = &self.arriving;
        let cap = &self.cpu_capacity;
        self.index
            .active_tree
            .rebuild(n, |h| if ops[h] && !draining[h] { cap[h] } else { 0.0 });
        self.index
            .arriving_tree
            .rebuild(n, |h| if arriving[h] { cap[h] } else { 0.0 });
        self.work.fold_elements += 2 * n as u64;
        let mut max_cap = 0.0f64;
        let mut min_pos_cap = f64::INFINITY;
        for &c in cap {
            max_cap = max_cap.max(c);
            if c > 0.0 {
                min_pos_cap = min_pos_cap.min(c);
            }
        }
        self.index.max_host_cap = max_cap;
        self.index.min_host_cap = if min_pos_cap.is_finite() {
            min_pos_cap
        } else {
            0.0
        };
        self.index.valid = true;
        debug_assert_eq!(
            self.index.check_membership(
                &self.operational,
                &(0..n).map(|h| self.util(h)).collect::<Vec<_>>(),
                &(0..n)
                    .map(|h| self.mem_capacity[h] - self.mem_committed[h])
                    .collect::<Vec<_>>(),
            ),
            Ok(())
        );
    }

    /// Whether indexed queries may be served this round (mode is
    /// `Indexed` and the per-round refresh has run since the last
    /// rebuild). Callers outside that window — e.g. a failsafe round,
    /// where the refresh is skipped entirely — fall back to the scan
    /// paths, which return the identical answer.
    pub fn index_valid(&self) -> bool {
        self.mode == PlanMode::Indexed && self.index.valid
    }

    /// Marks `host`'s bucket stale after an in-round utilization change
    /// (a tentative move or its undo). No-op when the index is not live.
    ///
    /// Folds the overlay back into the buckets past its size bound so
    /// overlay scans stay O(bound) during mass-consolidation waves.
    fn touch_host(&mut self, host: usize) {
        if !self.index_valid() {
            return;
        }
        self.index.touch(host);
        if self.index.overlay_len() > OVERLAY_FOLD_LIMIT {
            self.fold_overlay();
        }
    }

    /// Re-buckets every touched host at its current utilization and
    /// clears the overlay.
    fn fold_overlay(&mut self) {
        for i in 0..self.index.overlay_len() {
            let h = self.index.touched_hosts()[i] as usize;
            let mem_free = self.mem_capacity[h] - self.mem_committed[h];
            if self.index.is_indexed(h) && self.index.rescore(h, self.util(h), mem_free) {
                self.index_work.overlay_folds += 1;
            }
        }
        self.index.clear_touched();
    }

    /// Flips `draining[host]` for a consolidation trial (or its
    /// rollback), keeping the active-capacity aggregate current when the
    /// index is live. The flip itself is exactly the plain assignment
    /// the scan path performs.
    pub fn set_draining_trial(&mut self, host: usize, draining: bool) {
        self.draining[host] = draining;
        if self.index_valid() {
            let leaf = if self.operational[host] && !draining {
                self.cpu_capacity[host]
            } else {
                0.0
            };
            self.index.active_tree.set(host, leaf);
        }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.cpu_capacity.len()
    }

    /// Predicted utilization of `host` under the tentative plan.
    pub fn util(&self, host: usize) -> f64 {
        if self.cpu_capacity[host] > 0.0 {
            self.host_pred_cpu[host] / self.cpu_capacity[host]
        } else {
            0.0
        }
    }

    /// Whether `host` can accept `vm` under the plan: operational, not
    /// draining, memory fits, and predicted utilization stays at or below
    /// the config's target.
    pub fn can_accept(&self, host: usize, vm: usize, cfg: &ManagerConfig) -> bool {
        if !self.operational[host] || self.draining[host] {
            return false;
        }
        if self.vm_host[vm] == Some(host) {
            return false;
        }
        if self.mem_committed[host] + self.vm_mem[vm] > self.mem_capacity[host] + 1e-9 {
            return false;
        }
        let new_cpu = self.host_pred_cpu[host] + self.predicted_vm[vm];
        new_cpu <= cfg.target_utilization() * self.cpu_capacity[host] + 1e-9
    }

    /// Tentatively moves `vm` to `to`, updating demand and memory views.
    ///
    /// Memory stays committed on the source as well — mirroring the real
    /// cluster, which reserves memory on both endpoints while the
    /// migration is in flight — so subsequent decisions this round remain
    /// conservative.
    ///
    /// # Panics
    ///
    /// Panics if the VM is unplaced or already at `to`.
    pub fn move_vm(&mut self, vm: usize, to: usize) {
        let from = self.vm_host[vm].expect("moving unplaced VM");
        assert_ne!(from, to, "moving VM to its own host");
        self.host_pred_cpu[from] -= self.predicted_vm[vm];
        self.host_pred_cpu[to] += self.predicted_vm[vm];
        self.mem_committed[to] += self.vm_mem[vm];
        self.vms_by_host[from].retain(|&v| v != vm);
        self.vms_by_host[to].push(vm);
        self.vm_host[vm] = Some(to);
        self.migrating_vm[vm] = true; // one move per VM per round
                                      // Both endpoints' utilizations changed; their stored buckets are
                                      // stale until the overlay folds or the next refresh.
        self.touch_host(from);
        self.touch_host(to);
    }

    /// Marks both endpoints of an undone move stale (the undo restores
    /// their utilizations bitwise, but not necessarily to the bucketed
    /// values if earlier committed moves touched the same hosts).
    pub fn note_undone_move(&mut self, from: usize, to: usize) {
        self.touch_host(from);
        self.touch_host(to);
    }

    /// Movable VMs on `host` (placed there and not migrating).
    pub fn movable_vms(&self, host: usize) -> Vec<usize> {
        self.vms_by_host[host]
            .iter()
            .copied()
            .filter(|&v| !self.migrating_vm[v])
            .collect()
    }

    /// Movable VMs on `host`, ordered for disruption: batch VMs first,
    /// then by descending predicted demand within each class. Used
    /// wherever the manager must pick victims to migrate.
    pub fn disruption_candidates(&self, host: usize) -> Vec<usize> {
        let mut vms = self.movable_vms(host);
        vms.sort_by(|&a, &b| {
            // Batch (true) sorts before interactive (false)...
            self.vm_batch[b]
                .cmp(&self.vm_batch[a])
                // ...then larger predicted demand first.
                .then(
                    self.predicted_vm[b]
                        .partial_cmp(&self.predicted_vm[a])
                        .expect("prediction is finite"),
                )
        });
        vms
    }

    /// Total predicted VM demand, cores.
    pub fn total_predicted(&self) -> f64 {
        debug_assert_eq!(
            self.total_predicted_cache.to_bits(),
            self.predicted_vm.iter().sum::<f64>().to_bits(),
            "stale total-prediction cache"
        );
        self.total_predicted_cache
    }

    /// Chooses the feasible destination for `vm` with the *lowest*
    /// resulting utilization (load-balancing placement, used by DRM).
    ///
    /// Takes `&mut self` only to count the re-scoring work; the scan
    /// itself never mutates the plan. With a live index the answer comes
    /// from an ascending bucket walk instead of the full sweep — the
    /// tie-break (first-wins: lowest index among equal minima) is
    /// preserved exactly, so both paths return the same host.
    pub fn least_loaded_destination(&mut self, vm: usize, cfg: &ManagerConfig) -> Option<usize> {
        if self.index_valid() {
            return self.least_loaded_destination_indexed(vm, cfg);
        }
        self.work.hosts_rescored += self.num_hosts() as u64;
        (0..self.num_hosts())
            .filter(|&h| self.can_accept(h, vm, cfg))
            .min_by(|&a, &b| {
                self.util(a)
                    .partial_cmp(&self.util(b))
                    .expect("utilization is finite")
            })
    }

    /// Chooses the feasible destination for `vm` with the *highest*
    /// resulting utilization (best-fit-decreasing packing, used by
    /// consolidation).
    ///
    /// Takes `&mut self` only to count the re-scoring work; the scan
    /// itself never mutates the plan. With a live index the answer comes
    /// from a descending bucket walk instead of the full sweep — the
    /// tie-break (last-wins: highest index among equal maxima, matching
    /// `Iterator::max_by`) is preserved exactly.
    pub fn tightest_destination(&mut self, vm: usize, cfg: &ManagerConfig) -> Option<usize> {
        if self.index_valid() {
            return self.tightest_destination_indexed(vm, cfg);
        }
        self.work.hosts_rescored += self.num_hosts() as u64;
        (0..self.num_hosts())
            .filter(|&h| self.can_accept(h, vm, cfg))
            .max_by(|&a, &b| {
                self.util(a)
                    .partial_cmp(&self.util(b))
                    .expect("utilization is finite")
            })
    }

    /// Indexed twin of [`least_loaded_destination`]: the touched overlay
    /// is scanned in full, then buckets ascend until the first one
    /// holding a feasible untouched host — which must contain the
    /// untouched minimum, because every host in a later bucket has
    /// strictly larger utilization. The two lexicographic minima merge
    /// into the global first-wins answer.
    ///
    /// [`least_loaded_destination`]: Self::least_loaded_destination
    fn least_loaded_destination_indexed(
        &mut self,
        vm: usize,
        cfg: &ManagerConfig,
    ) -> Option<usize> {
        let mut examined = 0u64;
        let mut best: Option<(f64, usize)> = None;
        for &h in self.index.touched_hosts() {
            let h = h as usize;
            examined += 1;
            if self.can_accept(h, vm, cfg) {
                lex_min(&mut best, (self.util(h), h));
            }
        }
        // CPU-feasibility ceiling — the mirror image of the descending
        // walk's start bound: `can_accept` demands
        // `util ≤ target − vm_pred / cap (+1e-9/cap)`, and
        // `vm_pred / max_cap` underestimates every host's own deduction,
        // so a bucket whose floor exceeds `target − vm_pred/max_cap
        // (+slop)` holds only hosts that reject the VM on CPU grounds.
        // Without this stop a pick with *no* feasible destination
        // ascends through the entire packed fleet, paying one
        // `can_accept` per host — the dominant cost at 64k hosts.
        let slop = if self.index.min_host_cap > 0.0 {
            1e-9 / self.index.min_host_cap
        } else {
            0.0
        };
        let vm_util = if self.index.max_host_cap > 0.0 {
            self.predicted_vm[vm] / self.index.max_host_cap
        } else {
            0.0
        };
        let stop = UtilizationIndex::bucket_of(cfg.target_utilization() - vm_util + slop);
        'walk: for b in 0..=stop {
            // Memory prune: `can_accept` needs `vm_mem ≤ free + 1e-9`,
            // and the bound dominates every untouched member's free
            // memory, so a bucket below the VM's demand holds no
            // feasible destination. At steady state this skips the dense
            // packed-to-memory buckets without examining a single host.
            if self.vm_mem[vm] > self.index.bucket_mem_ub(b) + 1e-9 {
                continue;
            }
            let mut found = false;
            for &h in self.index.bucket_hosts(b) {
                let h = h as usize;
                if self.index.is_touched(h) {
                    continue;
                }
                examined += 1;
                if self.can_accept(h, vm, cfg) {
                    let u = self.util(h);
                    lex_min(&mut best, (u, h));
                    found = true;
                    // A feasible host sitting exactly on the bucket floor
                    // is unbeatable: later in-bucket hosts have util ≥
                    // the floor and a larger index, later buckets are
                    // strictly higher, and the overlay already merged.
                    if u.to_bits() == UtilizationIndex::bucket_floor(b).to_bits() {
                        break 'walk;
                    }
                }
            }
            if found {
                break 'walk;
            }
        }
        self.work.hosts_rescored += examined;
        best.map(|(_, h)| h)
    }

    /// Indexed twin of [`tightest_destination`]: overlay scan plus a
    /// descending bucket walk. The walk starts at the highest bucket any
    /// *feasible* host can occupy for **this** VM: `can_accept` demands
    /// `host_pred + vm_pred ≤ target × capacity (+1e-9)`, i.e.
    /// `util ≤ target − vm_pred / capacity (+slop)`, so every bucket
    /// above `target − vm_pred / max_capacity` holds only hosts that
    /// would reject the VM on CPU grounds. At steady state the fleet's
    /// packed hosts cluster *just below target* — exactly the dense
    /// buckets this VM-specific bound skips — which is what keeps the
    /// per-pick examination count sublinear instead of degenerating to a
    /// scan of the packed cluster.
    ///
    /// [`tightest_destination`]: Self::tightest_destination
    fn tightest_destination_indexed(&mut self, vm: usize, cfg: &ManagerConfig) -> Option<usize> {
        let mut examined = 0u64;
        let mut best: Option<(f64, usize)> = None;
        for &h in self.index.touched_hosts() {
            let h = h as usize;
            examined += 1;
            if self.can_accept(h, vm, cfg) {
                lex_max(&mut best, (self.util(h), h));
            }
        }
        // The `1e-9` core slop translates to at most `1e-9 / min_cap` in
        // utilization; widening the start bucket by that much keeps the
        // prune conservative for any capacity scale. `vm_pred / max_cap`
        // underestimates every host's own `vm_pred / cap` deduction, so
        // the threshold stays an upper bound for heterogeneous fleets.
        let slop = if self.index.min_host_cap > 0.0 {
            1e-9 / self.index.min_host_cap
        } else {
            0.0
        };
        let vm_util = if self.index.max_host_cap > 0.0 {
            self.predicted_vm[vm] / self.index.max_host_cap
        } else {
            0.0
        };
        let start = UtilizationIndex::bucket_of(cfg.target_utilization() - vm_util + slop);
        'walk: for b in (0..=start).rev() {
            // Memory prune — same bound as the ascending walk: no
            // untouched member of a bucket below the VM's memory demand
            // can accept it.
            if self.vm_mem[vm] > self.index.bucket_mem_ub(b) + 1e-9 {
                continue;
            }
            let mut found = false;
            for &h in self.index.bucket_hosts(b) {
                let h = h as usize;
                if self.index.is_touched(h) {
                    continue;
                }
                examined += 1;
                if self.can_accept(h, vm, cfg) {
                    lex_max(&mut best, (self.util(h), h));
                    found = true;
                }
            }
            if found {
                break 'walk;
            }
        }
        self.work.hosts_rescored += examined;
        best.map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostObservation, PowerPolicy, VmObservation};
    use cluster::{HostId, VmId};
    use power::PowerState;
    use simcore::SimTime;

    fn obs2() -> ClusterObservation {
        let host = |id: u32, state: PowerState, mem_committed: f64| HostObservation {
            id: HostId(id),
            state,
            pending: None,
            cpu_capacity: 8.0,
            mem_capacity: 32.0,
            mem_committed,
            cpu_demand: 0.0,
            evacuated: mem_committed == 0.0,
            failed_transitions: 0,
            ladder: Default::default(),
        };
        let vm = |id: u32, h: u32, demand: f64| VmObservation {
            id: VmId(id),
            host: Some(HostId(h)),
            cpu_demand: demand,
            cpu_cap: 4.0,
            mem_gb: 8.0,
            migrating: false,
            service_class: Default::default(),
        };
        ClusterObservation {
            now: SimTime::ZERO,
            hosts: vec![host(0, PowerState::On, 16.0), host(1, PowerState::On, 0.0)],
            vms: vec![vm(0, 0, 3.0), vm(1, 0, 2.0)],
        }
    }

    fn cfg() -> ManagerConfig {
        ManagerConfig::new(PowerPolicy::reactive_suspend())
    }

    #[test]
    fn builds_host_views_from_vms() {
        let ctx = PlanContext::new(&obs2(), vec![3.0, 2.0], &[false, false]);
        assert_eq!(ctx.host_pred_cpu[0], 5.0);
        assert_eq!(ctx.host_pred_cpu[1], 0.0);
        assert_eq!(ctx.util(0), 5.0 / 8.0);
        assert_eq!(ctx.vms_by_host[0], vec![0, 1]);
        assert_eq!(ctx.total_predicted(), 5.0);
    }

    #[test]
    fn move_updates_both_sides() {
        let mut ctx = PlanContext::new(&obs2(), vec![3.0, 2.0], &[false, false]);
        ctx.move_vm(0, 1);
        assert_eq!(ctx.host_pred_cpu[0], 2.0);
        assert_eq!(ctx.host_pred_cpu[1], 3.0);
        // Memory reserved on destination, retained on source.
        assert_eq!(ctx.mem_committed[1], 8.0);
        assert_eq!(ctx.mem_committed[0], 16.0);
        assert_eq!(ctx.vm_host[0], Some(1));
        assert!(ctx.migrating_vm[0]);
        assert_eq!(ctx.movable_vms(0), vec![1]);
    }

    #[test]
    fn can_accept_honours_target_and_memory() {
        let mut ctx = PlanContext::new(&obs2(), vec![3.0, 2.0], &[false, false]);
        let cfg = cfg(); // target 0.75 -> 6.0 cores on an 8-core host
        assert!(ctx.can_accept(1, 0, &cfg));
        // Fill host 1's CPU near target.
        ctx.host_pred_cpu[1] = 5.0;
        assert!(!ctx.can_accept(1, 0, &cfg)); // 5 + 3 > 6
        ctx.host_pred_cpu[1] = 0.0;
        ctx.mem_committed[1] = 30.0;
        assert!(!ctx.can_accept(1, 0, &cfg)); // 30 + 8 > 32
    }

    #[test]
    fn draining_and_non_operational_hosts_rejected() {
        let mut obs = obs2();
        obs.hosts[1].state = PowerState::Suspended;
        let ctx = PlanContext::new(&obs, vec![3.0, 2.0], &[false, false]);
        assert!(!ctx.can_accept(1, 0, &cfg()));

        let ctx2 = PlanContext::new(&obs2(), vec![3.0, 2.0], &[false, true]);
        assert!(!ctx2.can_accept(1, 0, &cfg()));
    }

    #[test]
    fn destination_selection_prefers_right_ends() {
        let mut obs = obs2();
        obs.hosts.push(HostObservation {
            id: HostId(2),
            state: PowerState::On,
            pending: None,
            cpu_capacity: 8.0,
            mem_capacity: 32.0,
            mem_committed: 0.0,
            cpu_demand: 0.0,
            evacuated: true,
            failed_transitions: 0,
            ladder: Default::default(),
        });
        let mut ctx = PlanContext::new(&obs, vec![1.0, 1.0], &[false, false, false]);
        ctx.host_pred_cpu[1] = 3.0; // host1 busier than host2
        let cfg = cfg();
        assert_eq!(ctx.least_loaded_destination(0, &cfg), Some(2));
        assert_eq!(ctx.tightest_destination(0, &cfg), Some(1));
    }
}
