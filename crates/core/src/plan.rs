//! Working state for one management round.
//!
//! The manager plans several actions per round; each tentative migration
//! changes the capacity picture for the next decision. `PlanContext`
//! carries that evolving view so the round's actions are mutually
//! consistent (no destination is overcommitted by two moves that were
//! each individually fine).

use cluster::ServiceClass;

use crate::{ClusterObservation, ManagerConfig, WorkCounters};

/// Mutable planning view of the cluster for one round.
///
/// The manager owns one instance and [`rebuild`](Self::rebuild)s it each
/// round, so the ~13 vectors below keep their allocations across rounds
/// and steady-state planning allocates nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlanContext {
    /// Predicted demand per VM, cores.
    pub predicted_vm: Vec<f64>,
    /// Predicted demand per host after tentative moves, cores.
    pub host_pred_cpu: Vec<f64>,
    /// Committed memory per host after tentative moves, GB.
    pub mem_committed: Vec<f64>,
    /// CPU capacity per host, cores.
    pub cpu_capacity: Vec<f64>,
    /// Memory capacity per host, GB.
    pub mem_capacity: Vec<f64>,
    /// Host is `On`.
    pub operational: Vec<bool>,
    /// Host is `Resuming`/`Booting` (capacity arriving soon).
    pub arriving: Vec<bool>,
    /// Host is marked for evacuation (copied from manager state; mutated
    /// by undrain/drain decisions this round).
    pub draining: Vec<bool>,
    /// VM has a live migration in flight (not movable this round).
    pub migrating_vm: Vec<bool>,
    /// Tentative host of each VM (by index), `None` if unplaced.
    pub vm_host: Vec<Option<usize>>,
    /// Memory per VM, GB.
    pub vm_mem: Vec<f64>,
    /// Whether each VM is batch-class (preferred for disruption).
    pub vm_batch: Vec<bool>,
    /// VMs per host under the tentative plan.
    pub vms_by_host: Vec<Vec<usize>>,
    /// Sum of `predicted_vm`, computed once per rebuild (predictions are
    /// immutable within a round, so hot paths read this instead of
    /// re-summing O(VMs)).
    total_predicted_cache: f64,
    /// Deterministic op-counters, accumulated *across* rounds —
    /// [`rebuild`](Self::rebuild) deliberately leaves them untouched.
    pub work: WorkCounters,
}

impl PlanContext {
    /// Builds a fresh context from an observation, per-VM predictions,
    /// and the manager's persistent drain set.
    #[cfg(test)]
    pub fn new(obs: &ClusterObservation, predicted_vm: Vec<f64>, draining: &[bool]) -> Self {
        let mut ctx = PlanContext::default();
        ctx.rebuild(obs, &predicted_vm, draining);
        ctx
    }

    /// Refills the context in place from this round's observation,
    /// reusing every vector's allocation from the previous round.
    pub fn rebuild(&mut self, obs: &ClusterObservation, predicted_vm: &[f64], draining: &[bool]) {
        let nh = obs.hosts.len();
        assert_eq!(draining.len(), nh, "drain set length mismatch");
        assert_eq!(
            predicted_vm.len(),
            obs.vms.len(),
            "prediction length mismatch"
        );

        self.predicted_vm.clear();
        self.predicted_vm.extend_from_slice(predicted_vm);

        // Keep inner per-host Vec allocations alive across rounds.
        self.vms_by_host.truncate(nh);
        for v in &mut self.vms_by_host {
            v.clear();
        }
        self.vms_by_host.resize_with(nh, Vec::new);

        self.vm_host.clear();
        for (i, vm) in obs.vms.iter().enumerate() {
            let h = vm.host.map(|h| h.index());
            if let Some(h) = h {
                self.vms_by_host[h].push(i);
            }
            self.vm_host.push(h);
        }
        // Host predicted demand = sum of its VMs' predictions (migration
        // tax is transient; plans are made on VM demand).
        self.host_pred_cpu.clear();
        self.host_pred_cpu.resize(nh, 0.0);
        for (i, &h) in self.vm_host.iter().enumerate() {
            if let Some(h) = h {
                self.host_pred_cpu[h] += predicted_vm[i];
            }
        }

        self.mem_committed.clear();
        self.mem_committed
            .extend(obs.hosts.iter().map(|h| h.mem_committed));
        self.cpu_capacity.clear();
        self.cpu_capacity
            .extend(obs.hosts.iter().map(|h| h.cpu_capacity));
        self.mem_capacity.clear();
        self.mem_capacity
            .extend(obs.hosts.iter().map(|h| h.mem_capacity));
        self.operational.clear();
        self.operational
            .extend(obs.hosts.iter().map(|h| h.is_operational()));
        self.arriving.clear();
        self.arriving.extend(
            obs.hosts
                .iter()
                .map(|h| h.is_arriving_or_on() && !h.is_operational()),
        );
        self.draining.clear();
        self.draining.extend_from_slice(draining);
        self.migrating_vm.clear();
        self.migrating_vm
            .extend(obs.vms.iter().map(|v| v.migrating));
        self.vm_mem.clear();
        self.vm_mem.extend(obs.vms.iter().map(|v| v.mem_gb));
        self.vm_batch.clear();
        self.vm_batch.extend(
            obs.vms
                .iter()
                .map(|v| v.service_class == ServiceClass::Batch),
        );
        self.total_predicted_cache = self.predicted_vm.iter().sum();
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.cpu_capacity.len()
    }

    /// Predicted utilization of `host` under the tentative plan.
    pub fn util(&self, host: usize) -> f64 {
        if self.cpu_capacity[host] > 0.0 {
            self.host_pred_cpu[host] / self.cpu_capacity[host]
        } else {
            0.0
        }
    }

    /// Whether `host` can accept `vm` under the plan: operational, not
    /// draining, memory fits, and predicted utilization stays at or below
    /// the config's target.
    pub fn can_accept(&self, host: usize, vm: usize, cfg: &ManagerConfig) -> bool {
        if !self.operational[host] || self.draining[host] {
            return false;
        }
        if self.vm_host[vm] == Some(host) {
            return false;
        }
        if self.mem_committed[host] + self.vm_mem[vm] > self.mem_capacity[host] + 1e-9 {
            return false;
        }
        let new_cpu = self.host_pred_cpu[host] + self.predicted_vm[vm];
        new_cpu <= cfg.target_utilization() * self.cpu_capacity[host] + 1e-9
    }

    /// Tentatively moves `vm` to `to`, updating demand and memory views.
    ///
    /// Memory stays committed on the source as well — mirroring the real
    /// cluster, which reserves memory on both endpoints while the
    /// migration is in flight — so subsequent decisions this round remain
    /// conservative.
    ///
    /// # Panics
    ///
    /// Panics if the VM is unplaced or already at `to`.
    pub fn move_vm(&mut self, vm: usize, to: usize) {
        let from = self.vm_host[vm].expect("moving unplaced VM");
        assert_ne!(from, to, "moving VM to its own host");
        self.host_pred_cpu[from] -= self.predicted_vm[vm];
        self.host_pred_cpu[to] += self.predicted_vm[vm];
        self.mem_committed[to] += self.vm_mem[vm];
        self.vms_by_host[from].retain(|&v| v != vm);
        self.vms_by_host[to].push(vm);
        self.vm_host[vm] = Some(to);
        self.migrating_vm[vm] = true; // one move per VM per round
    }

    /// Movable VMs on `host` (placed there and not migrating).
    pub fn movable_vms(&self, host: usize) -> Vec<usize> {
        self.vms_by_host[host]
            .iter()
            .copied()
            .filter(|&v| !self.migrating_vm[v])
            .collect()
    }

    /// Movable VMs on `host`, ordered for disruption: batch VMs first,
    /// then by descending predicted demand within each class. Used
    /// wherever the manager must pick victims to migrate.
    pub fn disruption_candidates(&self, host: usize) -> Vec<usize> {
        let mut vms = self.movable_vms(host);
        vms.sort_by(|&a, &b| {
            // Batch (true) sorts before interactive (false)...
            self.vm_batch[b]
                .cmp(&self.vm_batch[a])
                // ...then larger predicted demand first.
                .then(
                    self.predicted_vm[b]
                        .partial_cmp(&self.predicted_vm[a])
                        .expect("prediction is finite"),
                )
        });
        vms
    }

    /// Total predicted VM demand, cores.
    pub fn total_predicted(&self) -> f64 {
        debug_assert_eq!(
            self.total_predicted_cache.to_bits(),
            self.predicted_vm.iter().sum::<f64>().to_bits(),
            "stale total-prediction cache"
        );
        self.total_predicted_cache
    }

    /// Chooses the feasible destination for `vm` with the *lowest*
    /// resulting utilization (load-balancing placement, used by DRM).
    ///
    /// Takes `&mut self` only to count the re-scoring work; the scan
    /// itself never mutates the plan.
    pub fn least_loaded_destination(&mut self, vm: usize, cfg: &ManagerConfig) -> Option<usize> {
        self.work.hosts_rescored += self.num_hosts() as u64;
        (0..self.num_hosts())
            .filter(|&h| self.can_accept(h, vm, cfg))
            .min_by(|&a, &b| {
                self.util(a)
                    .partial_cmp(&self.util(b))
                    .expect("utilization is finite")
            })
    }

    /// Chooses the feasible destination for `vm` with the *highest*
    /// resulting utilization (best-fit-decreasing packing, used by
    /// consolidation).
    ///
    /// Takes `&mut self` only to count the re-scoring work; the scan
    /// itself never mutates the plan.
    pub fn tightest_destination(&mut self, vm: usize, cfg: &ManagerConfig) -> Option<usize> {
        self.work.hosts_rescored += self.num_hosts() as u64;
        (0..self.num_hosts())
            .filter(|&h| self.can_accept(h, vm, cfg))
            .max_by(|&a, &b| {
                self.util(a)
                    .partial_cmp(&self.util(b))
                    .expect("utilization is finite")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostObservation, PowerPolicy, VmObservation};
    use cluster::{HostId, VmId};
    use power::PowerState;
    use simcore::SimTime;

    fn obs2() -> ClusterObservation {
        let host = |id: u32, state: PowerState, mem_committed: f64| HostObservation {
            id: HostId(id),
            state,
            pending: None,
            cpu_capacity: 8.0,
            mem_capacity: 32.0,
            mem_committed,
            cpu_demand: 0.0,
            evacuated: mem_committed == 0.0,
            failed_transitions: 0,
        };
        let vm = |id: u32, h: u32, demand: f64| VmObservation {
            id: VmId(id),
            host: Some(HostId(h)),
            cpu_demand: demand,
            cpu_cap: 4.0,
            mem_gb: 8.0,
            migrating: false,
            service_class: Default::default(),
        };
        ClusterObservation {
            now: SimTime::ZERO,
            hosts: vec![host(0, PowerState::On, 16.0), host(1, PowerState::On, 0.0)],
            vms: vec![vm(0, 0, 3.0), vm(1, 0, 2.0)],
        }
    }

    fn cfg() -> ManagerConfig {
        ManagerConfig::new(PowerPolicy::reactive_suspend())
    }

    #[test]
    fn builds_host_views_from_vms() {
        let ctx = PlanContext::new(&obs2(), vec![3.0, 2.0], &[false, false]);
        assert_eq!(ctx.host_pred_cpu[0], 5.0);
        assert_eq!(ctx.host_pred_cpu[1], 0.0);
        assert_eq!(ctx.util(0), 5.0 / 8.0);
        assert_eq!(ctx.vms_by_host[0], vec![0, 1]);
        assert_eq!(ctx.total_predicted(), 5.0);
    }

    #[test]
    fn move_updates_both_sides() {
        let mut ctx = PlanContext::new(&obs2(), vec![3.0, 2.0], &[false, false]);
        ctx.move_vm(0, 1);
        assert_eq!(ctx.host_pred_cpu[0], 2.0);
        assert_eq!(ctx.host_pred_cpu[1], 3.0);
        // Memory reserved on destination, retained on source.
        assert_eq!(ctx.mem_committed[1], 8.0);
        assert_eq!(ctx.mem_committed[0], 16.0);
        assert_eq!(ctx.vm_host[0], Some(1));
        assert!(ctx.migrating_vm[0]);
        assert_eq!(ctx.movable_vms(0), vec![1]);
    }

    #[test]
    fn can_accept_honours_target_and_memory() {
        let mut ctx = PlanContext::new(&obs2(), vec![3.0, 2.0], &[false, false]);
        let cfg = cfg(); // target 0.75 -> 6.0 cores on an 8-core host
        assert!(ctx.can_accept(1, 0, &cfg));
        // Fill host 1's CPU near target.
        ctx.host_pred_cpu[1] = 5.0;
        assert!(!ctx.can_accept(1, 0, &cfg)); // 5 + 3 > 6
        ctx.host_pred_cpu[1] = 0.0;
        ctx.mem_committed[1] = 30.0;
        assert!(!ctx.can_accept(1, 0, &cfg)); // 30 + 8 > 32
    }

    #[test]
    fn draining_and_non_operational_hosts_rejected() {
        let mut obs = obs2();
        obs.hosts[1].state = PowerState::Suspended;
        let ctx = PlanContext::new(&obs, vec![3.0, 2.0], &[false, false]);
        assert!(!ctx.can_accept(1, 0, &cfg()));

        let ctx2 = PlanContext::new(&obs2(), vec![3.0, 2.0], &[false, true]);
        assert!(!ctx2.can_accept(1, 0, &cfg()));
    }

    #[test]
    fn destination_selection_prefers_right_ends() {
        let mut obs = obs2();
        obs.hosts.push(HostObservation {
            id: HostId(2),
            state: PowerState::On,
            pending: None,
            cpu_capacity: 8.0,
            mem_capacity: 32.0,
            mem_committed: 0.0,
            cpu_demand: 0.0,
            evacuated: true,
            failed_transitions: 0,
        });
        let mut ctx = PlanContext::new(&obs, vec![1.0, 1.0], &[false, false, false]);
        ctx.host_pred_cpu[1] = 3.0; // host1 busier than host2
        let cfg = cfg();
        assert_eq!(ctx.least_loaded_destination(0, &cfg), Some(2));
        assert_eq!(ctx.tightest_destination(0, &cfg), Some(1));
    }
}
