//! Per-scheduler partitioned views of the fleet.
//!
//! Each scheduler in the distributed control plane owns one fixed,
//! contiguous host partition (built with `simcore::pool::shard_ranges`)
//! and plans over the **whole** fleet — but while its own partition is
//! observed fresh every round, the remote partitions are seen through a
//! configurably-stale snapshot. This module builds that merged view and
//! classifies planned actions by partition ownership.
//!
//! Two properties matter for reproducibility:
//!
//! * the merge is a pure index-wise splice of two observations, so a
//!   scheduler's view is a deterministic function of
//!   `(fresh, stale, partition)`; and
//! * when one scheduler owns every host, the merge degenerates to the
//!   fresh observation regardless of the staleness setting — which is
//!   why `schedulers = 1` reproduces the global planner byte-identically
//!   at *any* configured staleness.

use std::ops::Range;

use crate::action::ManagementAction;
use crate::observation::ClusterObservation;

/// Splices a scheduler's merged view into `into`: fresh entries for the
/// owned host partition (and for VMs whose fresh host is owned, plus
/// unplaced VMs), stale entries for everything else.
///
/// `fresh` and `stale` must describe the same fleet (same host/VM index
/// spaces); the simulator guarantees that by snapshotting its own
/// observation buffer.
pub fn merge_view(
    into: &mut ClusterObservation,
    fresh: &ClusterObservation,
    stale: &ClusterObservation,
    owned: &Range<usize>,
) {
    debug_assert_eq!(fresh.hosts.len(), stale.hosts.len(), "host spaces differ");
    debug_assert_eq!(fresh.vms.len(), stale.vms.len(), "vm spaces differ");
    into.now = fresh.now;
    into.hosts.clear();
    into.hosts.extend(
        fresh
            .hosts
            .iter()
            .zip(&stale.hosts)
            .enumerate()
            .map(|(i, (f, s))| if owned.contains(&i) { *f } else { *s }),
    );
    into.vms.clear();
    into.vms
        .extend(fresh.vms.iter().zip(&stale.vms).map(|(f, s)| {
            let fresh_owned = match f.host {
                Some(h) => owned.contains(&h.index()),
                // Unplaced VMs belong to no partition; everyone sees them fresh.
                None => true,
            };
            if fresh_owned {
                *f
            } else {
                *s
            }
        }));
}

/// Whether `action` falls inside the scheduler's own partition, judged
/// from the scheduler's *view* (its belief): a migration belongs to the
/// owner of the VM's current host, a power action to the owner of the
/// host. The commit-time conflict check re-verifies against ground
/// truth, so a stale belief here costs a rejected commit, never a
/// misrouted action.
pub fn owns_action(
    view: &ClusterObservation,
    owned: &Range<usize>,
    action: &ManagementAction,
) -> bool {
    match *action {
        ManagementAction::Migrate { vm, .. } => view
            .vms
            .get(vm.index())
            .and_then(|v| v.host)
            .is_some_and(|h| owned.contains(&h.index())),
        ManagementAction::PowerUp { host } | ManagementAction::PowerDown { host, .. } => {
            owned.contains(&host.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{HostObservation, VmObservation};
    use cluster::{HostId, VmId};
    use simcore::SimTime;

    fn obs(now_secs: u64, cpu: f64, hosts: usize, vm_hosts: &[Option<u32>]) -> ClusterObservation {
        ClusterObservation {
            now: SimTime::from_secs(now_secs),
            hosts: (0..hosts)
                .map(|i| HostObservation {
                    id: HostId(i as u32),
                    cpu_demand: cpu,
                    ..HostObservation::default()
                })
                .collect(),
            vms: vm_hosts
                .iter()
                .enumerate()
                .map(|(i, h)| VmObservation {
                    id: VmId(i as u32),
                    host: h.map(HostId),
                    cpu_demand: cpu,
                    ..VmObservation::default()
                })
                .collect(),
        }
    }

    #[test]
    fn merge_splices_fresh_owned_and_stale_remote() {
        let fresh = obs(100, 2.0, 4, &[Some(0), Some(3), None]);
        let stale = obs(40, 1.0, 4, &[Some(0), Some(1), Some(2)]);
        let mut view = ClusterObservation::default();
        merge_view(&mut view, &fresh, &stale, &(0..2));
        assert_eq!(view.now, fresh.now);
        // Hosts 0-1 fresh, hosts 2-3 stale.
        assert_eq!(view.hosts[0].cpu_demand, 2.0);
        assert_eq!(view.hosts[1].cpu_demand, 2.0);
        assert_eq!(view.hosts[2].cpu_demand, 1.0);
        assert_eq!(view.hosts[3].cpu_demand, 1.0);
        // VM 0 sits on an owned host: fresh. VM 1 moved to remote host 3:
        // stale entry (which still believes host 1). VM 2 is unplaced in
        // the fresh view: fresh wins.
        assert_eq!(view.vms[0].cpu_demand, 2.0);
        assert_eq!(view.vms[1].host, Some(HostId(1)));
        assert_eq!(view.vms[1].cpu_demand, 1.0);
        assert_eq!(view.vms[2].host, None);
    }

    #[test]
    fn full_partition_merge_is_the_fresh_view() {
        let fresh = obs(100, 2.0, 3, &[Some(0), Some(2)]);
        let stale = obs(40, 1.0, 3, &[Some(1), Some(1)]);
        let mut view = ClusterObservation::default();
        merge_view(&mut view, &fresh, &stale, &(0..3));
        assert_eq!(view.hosts, fresh.hosts);
        assert_eq!(view.vms, fresh.vms);
        assert_eq!(view.now, fresh.now);
    }

    #[test]
    fn ownership_follows_the_viewed_source_host() {
        let view = obs(0, 1.0, 4, &[Some(1), Some(3), None]);
        let owned = 0..2usize;
        let mine = ManagementAction::Migrate {
            vm: VmId(0),
            to: HostId(3),
        };
        let remote = ManagementAction::Migrate {
            vm: VmId(1),
            to: HostId(0),
        };
        let unplaced = ManagementAction::Migrate {
            vm: VmId(2),
            to: HostId(0),
        };
        assert!(owns_action(&view, &owned, &mine), "source host 1 is owned");
        assert!(!owns_action(&view, &owned, &remote));
        assert!(!owns_action(&view, &owned, &unplaced));
        assert!(owns_action(
            &view,
            &owned,
            &ManagementAction::PowerUp { host: HostId(1) }
        ));
        assert!(!owns_action(
            &view,
            &owned,
            &ManagementAction::PowerUp { host: HostId(2) }
        ));
    }
}
