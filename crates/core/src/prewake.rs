//! Proactive pre-waking from a learned time-of-day demand profile.
//!
//! The traditional answer to slow power states is *prediction*: learn the
//! diurnal demand profile and boot hosts ahead of the morning ramp, so
//! the boot latency is hidden. This module implements that alternative so
//! the evaluation can contrast it with the paper's proposal (experiment
//! T18): prediction compensates for *recurring* patterns, but flash
//! crowds are unpredictable by construction — only low-latency states
//! cover those.

use simcore::{SimDuration, SimTime};

use crate::ConfigError;

/// An online time-of-day demand profile: EWMA of observed total demand
/// per time-of-day bucket, learned across days.
///
/// # Example
///
/// ```
/// use agile_core::DayProfile;
/// use simcore::{SimDuration, SimTime};
///
/// let mut p = DayProfile::new(SimDuration::from_mins(30), 0.5);
/// p.observe(SimTime::from_secs(9 * 3600), 120.0); // 9am, day 1
/// // Next day, same time-of-day: the forecast knows.
/// let tomorrow = SimTime::from_secs((24 + 9) * 3600);
/// assert_eq!(p.forecast(tomorrow), Some(120.0));
/// // A never-observed bucket has no forecast.
/// assert_eq!(p.forecast(SimTime::from_secs(3 * 3600)), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DayProfile {
    bucket_len: SimDuration,
    buckets: Vec<f64>,
    seen: Vec<bool>,
    alpha: f64,
}

impl DayProfile {
    /// Creates a profile with the given bucket length and EWMA factor.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_len` is zero, does not divide 24 h evenly, or
    /// `alpha` is outside `(0, 1]`. [`try_new`](Self::try_new) is the
    /// non-panicking variant.
    pub fn new(bucket_len: SimDuration, alpha: f64) -> Self {
        match Self::try_new(bucket_len, alpha) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new): rejects a zero bucket
    /// length, a bucket length that does not divide 24 h evenly, and an
    /// EWMA factor outside `(0, 1]`.
    pub fn try_new(bucket_len: SimDuration, alpha: f64) -> Result<Self, ConfigError> {
        if bucket_len.is_zero() {
            return Err(ConfigError::Invalid {
                message: "bucket length must be non-zero",
            });
        }
        let day_ms = SimDuration::from_hours(24).as_millis();
        if !day_ms.is_multiple_of(bucket_len.as_millis()) {
            return Err(ConfigError::Invalid {
                message: "bucket length must divide 24 h evenly",
            });
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(ConfigError::OutOfRange {
                field: "alpha",
                value: alpha,
                constraint: "outside (0,1]",
            });
        }
        let n = (day_ms / bucket_len.as_millis()) as usize;
        Ok(DayProfile {
            bucket_len,
            buckets: vec![0.0; n],
            seen: vec![false; n],
            alpha,
        })
    }

    fn bucket_of(&self, t: SimTime) -> usize {
        let day_ms = SimDuration::from_hours(24).as_millis();
        ((t.as_millis() % day_ms) / self.bucket_len.as_millis()) as usize
    }

    /// Feeds one total-demand observation at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is negative or not finite.
    pub fn observe(&mut self, t: SimTime, demand: f64) {
        assert!(
            demand.is_finite() && demand >= 0.0,
            "bad demand observation {demand}"
        );
        let b = self.bucket_of(t);
        if self.seen[b] {
            self.buckets[b] = self.alpha * demand + (1.0 - self.alpha) * self.buckets[b];
        } else {
            self.buckets[b] = demand;
            self.seen[b] = true;
        }
    }

    /// The learned demand for the time-of-day bucket containing `t`, or
    /// `None` if that bucket has never been observed.
    pub fn forecast(&self, t: SimTime) -> Option<f64> {
        let b = self.bucket_of(t);
        self.seen[b].then(|| self.buckets[b])
    }

    /// The largest learned demand over `[from, from + window]`, if every
    /// covered bucket has been observed — what a pre-wake decision needs
    /// (capacity must cover the whole lookahead window).
    pub fn forecast_max(&self, from: SimTime, window: SimDuration) -> Option<f64> {
        let mut t = from;
        let end = from + window;
        let mut max: Option<f64> = None;
        loop {
            let f = self.forecast(t)?;
            max = Some(max.map_or(f, |m: f64| m.max(f)));
            if t >= end {
                return max;
            }
            t = t + self
                .bucket_len
                .min(end.since(t).max(SimDuration::from_millis(1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DayProfile {
        DayProfile::new(SimDuration::from_hours(1), 0.5)
    }

    #[test]
    fn buckets_wrap_by_day() {
        let mut p = profile();
        p.observe(SimTime::from_secs(10 * 3600), 50.0);
        // 10am on day 3 maps to the same bucket.
        let day3 = SimTime::from_secs((48 + 10) * 3600);
        assert_eq!(p.forecast(day3), Some(50.0));
    }

    #[test]
    fn ewma_updates_across_days() {
        let mut p = profile();
        p.observe(SimTime::from_secs(8 * 3600), 100.0);
        p.observe(SimTime::from_secs((24 + 8) * 3600), 200.0);
        assert_eq!(p.forecast(SimTime::from_secs(8 * 3600)), Some(150.0));
    }

    #[test]
    fn forecast_max_needs_full_window() {
        let mut p = profile();
        p.observe(SimTime::from_secs(8 * 3600), 100.0);
        // Window reaching into the unseen 9am bucket: no forecast.
        assert_eq!(
            p.forecast_max(
                SimTime::from_secs(8 * 3600 + 1800),
                SimDuration::from_hours(1)
            ),
            None
        );
        p.observe(SimTime::from_secs(9 * 3600), 300.0);
        assert_eq!(
            p.forecast_max(
                SimTime::from_secs(8 * 3600 + 1800),
                SimDuration::from_hours(1)
            ),
            Some(300.0)
        );
    }

    #[test]
    fn same_bucket_window_works() {
        let mut p = profile();
        p.observe(SimTime::from_secs(8 * 3600), 100.0);
        assert_eq!(
            p.forecast_max(SimTime::from_secs(8 * 3600), SimDuration::from_mins(5)),
            Some(100.0)
        );
    }

    #[test]
    #[should_panic(expected = "divide 24 h evenly")]
    fn rejects_uneven_bucket() {
        DayProfile::new(SimDuration::from_mins(7), 0.5);
    }

    #[test]
    fn try_new_reports_each_rejection() {
        assert!(matches!(
            DayProfile::try_new(SimDuration::ZERO, 0.5),
            Err(ConfigError::Invalid { message }) if message.contains("non-zero")
        ));
        assert!(matches!(
            DayProfile::try_new(SimDuration::from_mins(7), 0.5),
            Err(ConfigError::Invalid { message }) if message.contains("divide 24 h")
        ));
        assert!(matches!(
            DayProfile::try_new(SimDuration::from_mins(30), 0.0),
            Err(ConfigError::OutOfRange { field: "alpha", .. })
        ));
        assert!(matches!(
            DayProfile::try_new(SimDuration::from_mins(30), 1.5),
            Err(ConfigError::OutOfRange { field: "alpha", .. })
        ));
        assert!(DayProfile::try_new(SimDuration::from_mins(30), 1.0).is_ok());
    }

    /// Regression: an observation at exactly `k·24 h` belongs to the
    /// first bucket of the new day, not the last bucket of the old one.
    #[test]
    fn day_boundary_maps_to_first_bucket() {
        let mut p = profile();
        for day in 0..3 {
            p.observe(SimTime::from_secs(day * 24 * 3600), 75.0);
        }
        // Midnight forecast comes from the 00:00 bucket...
        assert_eq!(p.forecast(SimTime::from_secs(5 * 24 * 3600)), Some(75.0));
        // ...and the 23:00 bucket stayed untouched.
        assert_eq!(p.forecast(SimTime::from_secs(23 * 3600)), None);
    }

    /// Regression: the last millisecond of a day still bucketizes into
    /// that day's final bucket (no off-by-one into the next day).
    #[test]
    fn last_millisecond_of_day_stays_in_final_bucket() {
        let mut p = profile();
        let last_ms = SimTime::from_secs(24 * 3600) - SimDuration::from_millis(1);
        p.observe(last_ms, 42.0);
        assert_eq!(p.forecast(SimTime::from_secs(23 * 3600)), Some(42.0));
        assert_eq!(p.forecast(SimTime::from_secs(24 * 3600)), None);
        // Same instant next day lands in the same bucket.
        let next_day_last_ms = last_ms + SimDuration::from_hours(24);
        assert_eq!(p.forecast(next_day_last_ms), Some(42.0));
    }
}
