//! Actions the manager can request from the cluster.

use std::fmt;

use cluster::{HostId, VmId};
use power::breakeven::LowPowerMode;

/// One management action, emitted by [`crate::VirtManager::plan`] and
/// executed by the simulator (or, in a real deployment, the orchestration
/// layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagementAction {
    /// Live-migrate a VM to another host.
    Migrate {
        /// The VM to move.
        vm: VmId,
        /// The destination host.
        to: HostId,
    },
    /// Park an evacuated host in a low-power state.
    PowerDown {
        /// The host to park (must be evacuated).
        host: HostId,
        /// Which low-power state to use (S3-class suspend vs. S5-class
        /// off) — the policy's choice.
        mode: LowPowerMode,
    },
    /// Bring a parked host back into service (resume from suspend or boot
    /// from off, depending on its current state).
    PowerUp {
        /// The host to wake.
        host: HostId,
    },
}

/// Which management step produced an action — operator-facing
/// attribution for debugging and overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionReason {
    /// Step 1: waking/undraining to cover predicted demand.
    CapacityWake,
    /// Step 2: migrating off an overloaded host (base DRM).
    OverloadMitigation,
    /// Step 3: evacuating an underloaded host for power-down.
    Consolidation,
    /// DRM background rebalancing.
    Rebalance,
    /// Step 4: parking a drained, empty host.
    Park,
}

impl fmt::Display for ActionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActionReason::CapacityWake => "capacity-wake",
            ActionReason::OverloadMitigation => "overload",
            ActionReason::Consolidation => "consolidation",
            ActionReason::Rebalance => "rebalance",
            ActionReason::Park => "park",
        };
        f.write_str(s)
    }
}

impl ManagementAction {
    /// Whether this is a power-state action (up or down) rather than a
    /// migration.
    pub fn is_power_action(&self) -> bool {
        matches!(
            self,
            ManagementAction::PowerDown { .. } | ManagementAction::PowerUp { .. }
        )
    }
}

impl fmt::Display for ManagementAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagementAction::Migrate { vm, to } => write!(f, "migrate {vm} -> {to}"),
            ManagementAction::PowerDown { host, mode } => {
                let state = match mode {
                    LowPowerMode::PackageIdle => "package-idle",
                    LowPowerMode::Suspend => "suspend",
                    LowPowerMode::Off => "off",
                };
                write!(f, "power down {host} ({state})")
            }
            ManagementAction::PowerUp { host } => write!(f, "power up {host}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_display() {
        assert_eq!(ActionReason::CapacityWake.to_string(), "capacity-wake");
        assert_eq!(ActionReason::Consolidation.to_string(), "consolidation");
    }

    #[test]
    fn classification_and_display() {
        let m = ManagementAction::Migrate {
            vm: VmId(1),
            to: HostId(2),
        };
        assert!(!m.is_power_action());
        assert_eq!(m.to_string(), "migrate vm1 -> host2");

        let d = ManagementAction::PowerDown {
            host: HostId(3),
            mode: LowPowerMode::Suspend,
        };
        assert!(d.is_power_action());
        assert_eq!(d.to_string(), "power down host3 (suspend)");

        let u = ManagementAction::PowerUp { host: HostId(4) };
        assert!(u.is_power_action());
        assert_eq!(u.to_string(), "power up host4");
    }
}
