//! Consolidation: evacuate underloaded hosts so they can be parked.
//!
//! The power manager's core loop: whenever predicted demand fits in fewer
//! hosts (with headroom and spares), pick the least-loaded hosts, migrate
//! their VMs onto the remaining fleet with best-fit-decreasing packing,
//! and mark them *draining*. Once a draining host is empty, the manager
//! emits the power-down.

use cluster::{HostId, VmId};
use simcore::SimTime;

use crate::plan::PlanContext;
use crate::{HysteresisGate, ManagementAction, ManagerConfig, PackingPolicy};

/// Continues evacuating hosts already marked as draining, then selects new
/// drain candidates while spare capacity allows.
///
/// Mutates `ctx.draining` (the manager copies it back), appends migration
/// actions, and decrements `budget`.
pub(crate) fn plan_consolidation(
    ctx: &mut PlanContext,
    cfg: &ManagerConfig,
    gate: &HysteresisGate,
    now: SimTime,
    actions: &mut Vec<ManagementAction>,
    budget: &mut usize,
) {
    // Phase 1: keep draining hosts draining — evacuate what we can.
    for host in 0..ctx.num_hosts() {
        if ctx.draining[host] && ctx.operational[host] {
            evacuate(ctx, cfg, host, actions, budget);
        }
    }

    // Phase 2: select new candidates, least-loaded first.
    let mut new_drains = 0;
    loop {
        if new_drains >= cfg.max_drains_per_round() || *budget == 0 {
            return;
        }
        let Some(candidate) = pick_candidate(ctx, cfg, gate, now) else {
            return;
        };
        // A candidate only commits if its *entire* evacuation fits the
        // plan; otherwise we would strand VMs on a half-drained host.
        let mut trial_actions = Vec::new();
        let mut trial_budget = *budget;
        let snapshot = snapshot(ctx);
        ctx.draining[candidate] = true;
        let complete = evacuate(ctx, cfg, candidate, &mut trial_actions, &mut trial_budget);
        if complete {
            actions.extend(trial_actions);
            *budget = trial_budget;
            new_drains += 1;
        } else {
            restore(ctx, snapshot);
            // This candidate cannot be emptied; no smaller-utilization
            // candidate will appear this round either, so stop.
            return;
        }
    }
}

/// Picks the least-loaded drainable host, if the fleet can spare it.
fn pick_candidate(
    ctx: &PlanContext,
    cfg: &ManagerConfig,
    gate: &HysteresisGate,
    now: SimTime,
) -> Option<usize> {
    let active: Vec<usize> = (0..ctx.num_hosts())
        .filter(|&h| ctx.operational[h] && !ctx.draining[h])
        .collect();
    let active_capacity: f64 = active.iter().map(|&h| ctx.cpu_capacity[h]).sum();
    let arriving_capacity: f64 = (0..ctx.num_hosts())
        .filter(|&h| ctx.arriving[h])
        .map(|h| ctx.cpu_capacity[h])
        .sum();
    let total_pred = ctx.total_predicted();
    let max_host_cap = (0..ctx.num_hosts())
        .map(|h| ctx.cpu_capacity[h])
        .fold(0.0, f64::max);
    // The dead-band separates the drain trigger from the wake trigger so
    // demand noise across a single threshold cannot cycle hosts.
    let required = total_pred / cfg.target_utilization()
        + (cfg.spare_hosts() as f64 + cfg.drain_deadband_frac()) * max_host_cap;

    active
        .into_iter()
        .filter(|&h| {
            ctx.util(h) < cfg.underload_threshold()
                && gate.may_power_down(HostId(h as u32), now)
                // Removing this host must still leave enough capacity.
                && active_capacity + arriving_capacity - ctx.cpu_capacity[h] >= required
        })
        .min_by(|&a, &b| {
            ctx.util(a)
                .partial_cmp(&ctx.util(b))
                .expect("utilization is finite")
        })
}

/// Moves VMs off `host` with best-fit-decreasing packing. Returns whether
/// the host's evacuation is fully planned (no movable VM left behind and
/// none were unmovable).
///
/// All-or-nothing callers should snapshot/restore around this; for
/// incremental drains (phase 1) partial progress is fine — completion is
/// reported truthfully either way.
fn evacuate(
    ctx: &mut PlanContext,
    cfg: &ManagerConfig,
    host: usize,
    actions: &mut Vec<ManagementAction>,
    budget: &mut usize,
) -> bool {
    // Batch victims first, largest first within each class. There may
    // also be unmovable (already-migrating) VMs; the host is not fully
    // evacuated until they land elsewhere, but those migrations are
    // already in flight toward other hosts, so they do not block planning.
    let vms = ctx.disruption_candidates(host);
    for vm in vms {
        if *budget == 0 {
            return false;
        }
        let dest = match cfg.packing() {
            PackingPolicy::BestFit => ctx.tightest_destination(vm, cfg),
            PackingPolicy::LeastLoaded => ctx.least_loaded_destination(vm, cfg),
        };
        let Some(dest) = dest else {
            return false;
        };
        ctx.move_vm(vm, dest);
        actions.push(ManagementAction::Migrate {
            vm: VmId(vm as u32),
            to: HostId(dest as u32),
        });
        *budget -= 1;
    }
    ctx.movable_vms(host).is_empty()
}

/// Cheap undo support for the all-or-nothing candidate trial.
struct Snapshot {
    host_pred_cpu: Vec<f64>,
    mem_committed: Vec<f64>,
    vm_host: Vec<Option<usize>>,
    migrating_vm: Vec<bool>,
    vms_by_host: Vec<Vec<usize>>,
    draining: Vec<bool>,
}

fn snapshot(ctx: &PlanContext) -> Snapshot {
    Snapshot {
        host_pred_cpu: ctx.host_pred_cpu.clone(),
        mem_committed: ctx.mem_committed.clone(),
        vm_host: ctx.vm_host.clone(),
        migrating_vm: ctx.migrating_vm.clone(),
        vms_by_host: ctx.vms_by_host.clone(),
        draining: ctx.draining.clone(),
    }
}

fn restore(ctx: &mut PlanContext, s: Snapshot) {
    ctx.host_pred_cpu = s.host_pred_cpu;
    ctx.mem_committed = s.mem_committed;
    ctx.vm_host = s.vm_host;
    ctx.migrating_vm = s.migrating_vm;
    ctx.vms_by_host = s.vms_by_host;
    ctx.draining = s.draining;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterObservation, HostObservation, PowerPolicy, VmObservation};
    use power::PowerState;
    use simcore::SimDuration;

    /// Builds an observation where host `h` carries `demands[h]`.
    fn obs(host_demands: &[&[f64]]) -> (ClusterObservation, Vec<f64>) {
        let mut hosts = Vec::new();
        let mut vms = Vec::new();
        let mut preds = Vec::new();
        for (h, demands) in host_demands.iter().enumerate() {
            hosts.push(HostObservation {
                id: HostId(h as u32),
                state: PowerState::On,
                pending: None,
                cpu_capacity: 8.0,
                mem_capacity: 64.0,
                mem_committed: demands.len() as f64 * 8.0,
                cpu_demand: demands.iter().sum(),
                evacuated: demands.is_empty(),
            });
            for &d in *demands {
                vms.push(VmObservation {
                    id: VmId(vms.len() as u32),
                    host: Some(HostId(h as u32)),
                    cpu_demand: d,
                    cpu_cap: 8.0,
                    mem_gb: 8.0,
                    migrating: false,
                    service_class: Default::default(),
                });
                preds.push(d);
            }
        }
        (
            ClusterObservation {
                now: SimTime::ZERO,
                hosts,
                vms,
            },
            preds,
        )
    }

    fn cfg() -> ManagerConfig {
        ManagerConfig::new(PowerPolicy::reactive_suspend()).with_spare_hosts(0)
    }

    fn open_gate(n: usize) -> HysteresisGate {
        HysteresisGate::new(SimDuration::ZERO, SimDuration::ZERO, n)
    }

    #[test]
    fn drains_underloaded_host() {
        // Three hosts, light load everywhere: the least-loaded empties.
        let (o, preds) = obs(&[&[2.0, 1.0], &[1.5], &[0.5]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 3]);
        let c = cfg();
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &open_gate(3),
            SimTime::ZERO,
            &mut actions,
            &mut budget,
        );
        // Host 2 (util 0.5/8) is the prime candidate and must fully drain.
        assert!(ctx.draining[2]);
        assert!(ctx.movable_vms(2).is_empty());
        assert!(actions
            .iter()
            .any(|a| matches!(a, ManagementAction::Migrate { vm: VmId(3), .. })));
    }

    #[test]
    fn keeps_enough_capacity() {
        // Heavy total load: no host can be spared.
        let (o, preds) = obs(&[&[5.0], &[5.0], &[5.0]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 3]);
        let c = cfg();
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &open_gate(3),
            SimTime::ZERO,
            &mut actions,
            &mut budget,
        );
        assert!(actions.is_empty());
        assert!(!ctx.draining.iter().any(|&d| d));
    }

    #[test]
    fn hysteresis_blocks_recent_power_ups() {
        let (o, preds) = obs(&[&[2.0], &[1.0], &[0.5]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 3]);
        let c = cfg();
        let mut gate = HysteresisGate::new(SimDuration::from_mins(10), SimDuration::ZERO, 3);
        // Every host just powered up.
        for h in 0..3 {
            gate.record_power_up(HostId(h), SimTime::ZERO);
        }
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &gate,
            SimTime::from_secs(60),
            &mut actions,
            &mut budget,
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn all_or_nothing_rolls_back() {
        // Candidate host's VMs cannot all fit elsewhere (memory-bound).
        let mut hosts = Vec::new();
        let mut vms = Vec::new();
        let mut preds = Vec::new();
        // Host 0: tiny demand but two big-memory VMs; host 1: almost no
        // free memory.
        hosts.push(HostObservation {
            id: HostId(0),
            state: PowerState::On,
            pending: None,
            cpu_capacity: 8.0,
            mem_capacity: 64.0,
            mem_committed: 48.0,
            cpu_demand: 0.4,
            evacuated: false,
        });
        hosts.push(HostObservation {
            id: HostId(1),
            state: PowerState::On,
            pending: None,
            cpu_capacity: 8.0,
            mem_capacity: 64.0,
            mem_committed: 40.0,
            cpu_demand: 2.0,
            evacuated: false,
        });
        for (i, (h, mem)) in [(0u32, 24.0), (0, 24.0), (1, 40.0)].iter().enumerate() {
            vms.push(VmObservation {
                id: VmId(i as u32),
                host: Some(HostId(*h)),
                cpu_demand: 0.2,
                cpu_cap: 8.0,
                mem_gb: *mem,
                migrating: false,
                service_class: Default::default(),
            });
            preds.push(0.2);
        }
        let o = ClusterObservation {
            now: SimTime::ZERO,
            hosts,
            vms,
        };
        let mut ctx = PlanContext::new(&o, preds, &[false; 2]);
        let c = cfg();
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &open_gate(2),
            SimTime::ZERO,
            &mut actions,
            &mut budget,
        );
        // Only one 24 GB VM fits on host 1 (24 free); evacuation is
        // partial, so everything must roll back.
        assert!(actions.is_empty(), "{actions:?}");
        assert!(!ctx.draining[0]);
        assert_eq!(ctx.vm_host[0], Some(0));
        assert_eq!(budget, 8);
    }

    #[test]
    fn continues_existing_drains_first() {
        let (o, preds) = obs(&[&[0.5, 0.5], &[2.0], &[2.0]]);
        // Host 0 was already marked draining in a previous round.
        let mut ctx = PlanContext::new(&o, preds, &[true, false, false]);
        let c = cfg();
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &open_gate(3),
            SimTime::ZERO,
            &mut actions,
            &mut budget,
        );
        assert!(ctx.movable_vms(0).is_empty());
        assert!(actions.len() >= 2);
    }
}
