//! Consolidation: evacuate underloaded hosts so they can be parked.
//!
//! The power manager's core loop: whenever predicted demand fits in fewer
//! hosts (with headroom and spares), pick the least-loaded hosts, migrate
//! their VMs onto the remaining fleet with best-fit-decreasing packing,
//! and mark them *draining*. Once a draining host is empty, the manager
//! emits the power-down.

use std::ops::Range;

use cluster::{HostId, VmId};
use obs::SpanTracer;
use simcore::{pool, SimTime};

use crate::plan::PlanContext;
use crate::{
    pairwise_sum, HysteresisGate, ManagementAction, ManagerConfig, PackingPolicy, RecoveryTracker,
    UtilizationIndex,
};

/// Continues evacuating hosts already marked as draining, then selects new
/// drain candidates while spare capacity allows.
///
/// Mutates `ctx.draining` (the manager copies it back), appends migration
/// actions, and decrements `budget`. `threads > 1` shards the candidate
/// scoring scan across worker threads (deterministically — see
/// [`pick_candidate`]); planning, evacuation, and the LIFO undo journal
/// always stay serial.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_consolidation(
    ctx: &mut PlanContext,
    cfg: &ManagerConfig,
    gate: &HysteresisGate,
    recovery: &RecoveryTracker,
    now: SimTime,
    actions: &mut Vec<ManagementAction>,
    budget: &mut usize,
    threads: usize,
    tracer: &mut SpanTracer,
) {
    let s_drain = tracer.name("drain");
    let s_scan = tracer.name("candidate_scan");
    let s_trial = tracer.name("trial");
    let s_undo = tracer.name("undo");

    // Phase 1: keep draining hosts draining — evacuate what we can.
    tracer.enter(s_drain);
    for host in 0..ctx.num_hosts() {
        if ctx.draining[host] && ctx.operational[host] {
            let before = actions.len();
            evacuate(ctx, cfg, host, actions, budget, None);
            ctx.work.migrations_planned += (actions.len() - before) as u64;
        }
    }
    tracer.exit(s_drain);

    // Phase 2: select new candidates, least-loaded first.
    let mut new_drains = 0;
    let mut trial_actions = Vec::new();
    let mut journal = Vec::new();
    loop {
        if new_drains >= cfg.max_drains_per_round() || *budget == 0 {
            return;
        }
        tracer.enter(s_scan);
        let picked = pick_candidate(ctx, cfg, gate, recovery, now, threads);
        tracer.exit(s_scan);
        let Some(candidate) = picked else {
            return;
        };
        // A candidate only commits if its *entire* evacuation fits the
        // plan; otherwise we would strand VMs on a half-drained host.
        trial_actions.clear();
        journal.clear();
        let mut trial_budget = *budget;
        ctx.set_draining_trial(candidate, true);
        ctx.work.trials_attempted += 1;
        tracer.enter(s_trial);
        let complete = evacuate(
            ctx,
            cfg,
            candidate,
            &mut trial_actions,
            &mut trial_budget,
            Some(&mut journal),
        );
        ctx.work.undo_depth_max = ctx.work.undo_depth_max.max(journal.len() as u64);
        let committed = if complete {
            actions.append(&mut trial_actions);
            *budget = trial_budget;
            new_drains += 1;
            ctx.work.migrations_planned += journal.len() as u64;
            true
        } else {
            tracer.enter(s_undo);
            undo_moves(ctx, &journal);
            tracer.exit(s_undo);
            ctx.set_draining_trial(candidate, false);
            ctx.work.trials_rolled_back += 1;
            ctx.work.rollback_moves += journal.len() as u64;
            false
        };
        tracer.exit(s_trial);
        if !committed {
            // This candidate cannot be emptied; no smaller-utilization
            // candidate will appear this round either, so stop.
            return;
        }
    }
}

/// Picks the least-loaded drainable host, if the fleet can spare it.
///
/// With `threads > 1` the qualification scan is sharded: each worker
/// finds its shard's first-wins minimum over a fixed contiguous index
/// range, and the shard winners are merged here in ascending shard order
/// with the same strict less-than rule. Because shard ranges are
/// ascending and first-wins-within-shard plus first-wins-across-shards
/// composes to first-wins-globally, the result is identical to the
/// serial scan for any thread count.
fn pick_candidate(
    ctx: &mut PlanContext,
    cfg: &ManagerConfig,
    gate: &HysteresisGate,
    recovery: &RecoveryTracker,
    now: SimTime,
    threads: usize,
) -> Option<usize> {
    if ctx.index_valid() {
        return pick_candidate_indexed(ctx, cfg, gate, recovery, now);
    }
    // Work accounting happens up front, on the coordinating side, so the
    // counts are identical for every thread count: the aggregate fold and
    // the qualification scan each visit every host exactly once.
    ctx.work.fold_elements += ctx.num_hosts() as u64;
    ctx.work.candidates_scanned += ctx.num_hosts() as u64;
    let ctx = &*ctx;
    // Capacity aggregates use the fixed-shape pairwise reduction shared
    // with the indexed planner's maintained trees, so a from-scratch scan
    // recompute and an incrementally-updated tree root are bitwise equal
    // by construction (every tree node is a pure function of its leaves).
    let n = ctx.num_hosts();
    let active_capacity = pairwise_sum(n, |h| {
        if ctx.operational[h] && !ctx.draining[h] {
            ctx.cpu_capacity[h]
        } else {
            0.0
        }
    });
    let arriving_capacity = pairwise_sum(n, |h| {
        if ctx.arriving[h] {
            ctx.cpu_capacity[h]
        } else {
            0.0
        }
    });
    let mut max_host_cap = 0.0f64;
    for h in 0..n {
        max_host_cap = max_host_cap.max(ctx.cpu_capacity[h]);
    }
    let total_pred = ctx.total_predicted();
    // The dead-band separates the drain trigger from the wake trigger so
    // demand noise across a single threshold cannot cycle hosts.
    let required = total_pred / cfg.target_utilization()
        + (cfg.spare_hosts() as f64 + cfg.drain_deadband_frac()) * max_host_cap;

    // Least-loaded qualifying host; first wins on ties, matching
    // `Iterator::min_by` over ascending indices.
    let scan_range = |range: Range<usize>| -> Option<usize> {
        let mut best: Option<usize> = None;
        for h in range {
            let qualifies = ctx.operational[h]
                && !ctx.draining[h]
                && ctx.util(h) < cfg.underload_threshold()
                && gate.may_power_down(HostId(h as u32), now)
                // Quarantined hosts stay out of the park-candidate set:
                // evacuating one would strand it on (its power-down is
                // blocked) while paying the migration cost anyway.
                && !recovery.is_quarantined(h)
                // Removing this host must still leave enough capacity.
                && active_capacity + arriving_capacity - ctx.cpu_capacity[h] >= required;
            if !qualifies {
                continue;
            }
            best = match best {
                Some(b)
                    if ctx
                        .util(h)
                        .partial_cmp(&ctx.util(b))
                        .expect("utilization is finite")
                        .is_lt() =>
                {
                    Some(h)
                }
                Some(b) => Some(b),
                None => Some(h),
            };
        }
        best
    };
    let n = ctx.num_hosts();
    if threads > 1 && n > 1 {
        let ranges = pool::shard_ranges(n, threads);
        let winners = pool::map_shards(threads, ranges, |_, r| scan_range(r));
        // Merge in ascending shard order with the same strict less-than:
        // an earlier shard's winner survives a tie, matching first-wins.
        let mut best: Option<usize> = None;
        for h in winners.into_iter().flatten() {
            best = match best {
                Some(b)
                    if ctx
                        .util(h)
                        .partial_cmp(&ctx.util(b))
                        .expect("utilization is finite")
                        .is_lt() =>
                {
                    Some(h)
                }
                Some(b) => Some(b),
                None => Some(h),
            };
        }
        best
    } else {
        scan_range(0..n)
    }
}

/// Indexed twin of [`pick_candidate`]: the capacity aggregates come from
/// the maintained [`SumTree`](crate::SumTree) roots (bitwise equal to
/// the scan's pairwise recompute), the touched overlay is scanned in
/// full, and buckets ascend from 0 to the underload-threshold bucket
/// until the first one holding a qualifying untouched host — which must
/// contain the untouched minimum, because every host in a later bucket
/// has strictly larger utilization. Merging the two lexicographic minima
/// reproduces the scan's first-wins answer exactly.
///
/// `work.plan.candidates_scanned` is charged with the hosts actually
/// examined — the sublinearity evidence — so it is deliberately
/// mode-variant, unlike the decision counters.
fn pick_candidate_indexed(
    ctx: &mut PlanContext,
    cfg: &ManagerConfig,
    gate: &HysteresisGate,
    recovery: &RecoveryTracker,
    now: SimTime,
) -> Option<usize> {
    let active_capacity = ctx.index.active_tree.root();
    let arriving_capacity = ctx.index.arriving_tree.root();
    let max_host_cap = ctx.index.max_host_cap;
    let total_pred = ctx.total_predicted();
    let required = total_pred / cfg.target_utilization()
        + (cfg.spare_hosts() as f64 + cfg.drain_deadband_frac()) * max_host_cap;
    let qualifies = |ctx: &PlanContext, h: usize| {
        ctx.operational[h]
            && !ctx.draining[h]
            && ctx.util(h) < cfg.underload_threshold()
            && gate.may_power_down(HostId(h as u32), now)
            && !recovery.is_quarantined(h)
            && active_capacity + arriving_capacity - ctx.cpu_capacity[h] >= required
    };
    let mut examined = 0u64;
    let mut best: Option<(f64, usize)> = None;
    for &h in ctx.index.touched_hosts() {
        let h = h as usize;
        examined += 1;
        if qualifies(ctx, h) {
            crate::plan::lex_min(&mut best, (ctx.util(h), h));
        }
    }
    // Qualification requires util strictly below the underload threshold,
    // so no bucket past the threshold's own can hold a candidate.
    let limit = UtilizationIndex::bucket_of(cfg.underload_threshold());
    'walk: for b in 0..=limit {
        let mut found = false;
        for &h in ctx.index.bucket_hosts(b) {
            let h = h as usize;
            if ctx.index.is_touched(h) {
                continue;
            }
            examined += 1;
            if qualifies(ctx, h) {
                let u = ctx.util(h);
                crate::plan::lex_min(&mut best, (u, h));
                found = true;
                // A qualifying host exactly on the bucket floor is
                // unbeatable (see `UtilizationIndex::bucket_floor`):
                // dense boundary buckets terminate in one hit.
                if u.to_bits() == UtilizationIndex::bucket_floor(b).to_bits() {
                    break 'walk;
                }
            }
        }
        if found {
            break 'walk;
        }
    }
    ctx.work.candidates_scanned += examined;
    best.map(|(_, h)| h)
}

/// Moves VMs off `host` with best-fit-decreasing packing. Returns whether
/// the host's evacuation is fully planned (no movable VM left behind and
/// none were unmovable).
///
/// All-or-nothing callers pass a `journal` and roll back with
/// [`undo_moves`] on failure; for incremental drains (phase 1) partial
/// progress is fine — completion is reported truthfully either way.
fn evacuate(
    ctx: &mut PlanContext,
    cfg: &ManagerConfig,
    host: usize,
    actions: &mut Vec<ManagementAction>,
    budget: &mut usize,
    mut journal: Option<&mut Vec<MoveUndo>>,
) -> bool {
    // Batch victims first, largest first within each class. There may
    // also be unmovable (already-migrating) VMs; the host is not fully
    // evacuated until they land elsewhere, but those migrations are
    // already in flight toward other hosts, so they do not block planning.
    let vms = ctx.disruption_candidates(host);
    for vm in vms {
        if *budget == 0 {
            return false;
        }
        let dest = match cfg.packing() {
            PackingPolicy::BestFit => ctx.tightest_destination(vm, cfg),
            PackingPolicy::LeastLoaded => ctx.least_loaded_destination(vm, cfg),
        };
        let Some(dest) = dest else {
            return false;
        };
        if let Some(journal) = journal.as_deref_mut() {
            journal.push(MoveUndo::capture(ctx, vm, dest));
        }
        ctx.move_vm(vm, dest);
        actions.push(ManagementAction::Migrate {
            vm: VmId(vm as u32),
            to: HostId(dest as u32),
        });
        *budget -= 1;
    }
    ctx.movable_vms(host).is_empty()
}

/// One journaled migration, holding the bitwise-original values
/// [`PlanContext::move_vm`] overwrote. Rolling back restores those saved
/// values rather than re-deriving them arithmetically, so an undone trial
/// leaves the context *exactly* as it was — no accumulated floating-point
/// drift that could flip a later threshold comparison.
struct MoveUndo {
    vm: usize,
    from: usize,
    to: usize,
    /// Position of `vm` in `vms_by_host[from]` before the move, so the
    /// rollback reinserts it in place (order is the tie-break for the
    /// stable disruption-candidate sort).
    from_idx: usize,
    old_pred_from: f64,
    old_pred_to: f64,
    old_mem_to: f64,
}

impl MoveUndo {
    fn capture(ctx: &PlanContext, vm: usize, to: usize) -> Self {
        let from = ctx.vm_host[vm].expect("journaling unplaced VM");
        MoveUndo {
            vm,
            from,
            to,
            from_idx: ctx.vms_by_host[from]
                .iter()
                .position(|&v| v == vm)
                .expect("VM missing from its host list"),
            old_pred_from: ctx.host_pred_cpu[from],
            old_pred_to: ctx.host_pred_cpu[to],
            old_mem_to: ctx.mem_committed[to],
        }
    }
}

/// Reverses journaled moves in LIFO order. Each undo step sees exactly
/// the state its move produced, so the saved values and list positions
/// apply verbatim.
fn undo_moves(ctx: &mut PlanContext, journal: &[MoveUndo]) {
    for u in journal.iter().rev() {
        let popped = ctx.vms_by_host[u.to].pop();
        debug_assert_eq!(popped, Some(u.vm), "undo out of order");
        ctx.vms_by_host[u.from].insert(u.from_idx, u.vm);
        ctx.vm_host[u.vm] = Some(u.from);
        // Trial moves only ever pick non-migrating VMs, so the flag's
        // prior value is always false.
        ctx.migrating_vm[u.vm] = false;
        ctx.host_pred_cpu[u.from] = u.old_pred_from;
        ctx.host_pred_cpu[u.to] = u.old_pred_to;
        ctx.mem_committed[u.to] = u.old_mem_to;
        // The endpoints' utilizations changed again; keep their overlay
        // marks current for the indexed planner (no-op under Scan).
        ctx.note_undone_move(u.from, u.to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ClusterObservation, HostObservation, PlanMode, PowerPolicy, RecoveryConfig, VmObservation,
    };
    use power::PowerState;
    use simcore::SimDuration;

    /// Builds an observation where host `h` carries `demands[h]`.
    fn obs(host_demands: &[&[f64]]) -> (ClusterObservation, Vec<f64>) {
        let mut hosts = Vec::new();
        let mut vms = Vec::new();
        let mut preds = Vec::new();
        for (h, demands) in host_demands.iter().enumerate() {
            hosts.push(HostObservation {
                id: HostId(h as u32),
                state: PowerState::On,
                pending: None,
                cpu_capacity: 8.0,
                mem_capacity: 64.0,
                mem_committed: demands.len() as f64 * 8.0,
                cpu_demand: demands.iter().sum(),
                evacuated: demands.is_empty(),
                failed_transitions: 0,
                ladder: Default::default(),
            });
            for &d in *demands {
                vms.push(VmObservation {
                    id: VmId(vms.len() as u32),
                    host: Some(HostId(h as u32)),
                    cpu_demand: d,
                    cpu_cap: 8.0,
                    mem_gb: 8.0,
                    migrating: false,
                    service_class: Default::default(),
                });
                preds.push(d);
            }
        }
        (
            ClusterObservation {
                now: SimTime::ZERO,
                hosts,
                vms,
            },
            preds,
        )
    }

    fn cfg() -> ManagerConfig {
        ManagerConfig::new(PowerPolicy::reactive_suspend()).with_spare_hosts(0)
    }

    fn open_gate(n: usize) -> HysteresisGate {
        HysteresisGate::new(SimDuration::ZERO, SimDuration::ZERO, n)
    }

    fn clean_recovery(n: usize) -> RecoveryTracker {
        RecoveryTracker::new(RecoveryConfig::new(), n)
    }

    #[test]
    fn drains_underloaded_host() {
        // Three hosts, light load everywhere: the least-loaded empties.
        let (o, preds) = obs(&[&[2.0, 1.0], &[1.5], &[0.5]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 3]);
        let c = cfg();
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &open_gate(3),
            &clean_recovery(3),
            SimTime::ZERO,
            &mut actions,
            &mut budget,
            1,
            &mut SpanTracer::new(),
        );
        // Host 2 (util 0.5/8) is the prime candidate and must fully drain.
        assert!(ctx.draining[2]);
        assert!(ctx.movable_vms(2).is_empty());
        assert!(actions
            .iter()
            .any(|a| matches!(a, ManagementAction::Migrate { vm: VmId(3), .. })));
    }

    #[test]
    fn quarantined_host_is_not_a_drain_candidate() {
        // Same fleet as `drains_underloaded_host`, but the prime
        // candidate (host 2) is quarantined: the next-least-loaded host
        // must be picked instead.
        let (o, preds) = obs(&[&[2.0, 1.0], &[1.5], &[0.5]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 3]);
        let c = cfg();
        let mut recovery = RecoveryTracker::new(RecoveryConfig::new().with_max_retries(1), 3);
        let mut failing = o.clone();
        failing.hosts[2].failed_transitions = 1;
        recovery.observe(&failing);
        assert!(recovery.is_quarantined(2));
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &open_gate(3),
            &recovery,
            SimTime::ZERO,
            &mut actions,
            &mut budget,
            1,
            &mut SpanTracer::new(),
        );
        assert!(!ctx.draining[2], "quarantined host was drained");
        assert!(ctx.draining[1], "healthy underloaded host should drain");
    }

    #[test]
    fn keeps_enough_capacity() {
        // Heavy total load: no host can be spared.
        let (o, preds) = obs(&[&[5.0], &[5.0], &[5.0]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 3]);
        let c = cfg();
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &open_gate(3),
            &clean_recovery(3),
            SimTime::ZERO,
            &mut actions,
            &mut budget,
            1,
            &mut SpanTracer::new(),
        );
        assert!(actions.is_empty());
        assert!(!ctx.draining.iter().any(|&d| d));
    }

    #[test]
    fn hysteresis_blocks_recent_power_ups() {
        let (o, preds) = obs(&[&[2.0], &[1.0], &[0.5]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 3]);
        let c = cfg();
        let mut gate = HysteresisGate::new(SimDuration::from_mins(10), SimDuration::ZERO, 3);
        // Every host just powered up.
        for h in 0..3 {
            gate.record_power_up(HostId(h), SimTime::ZERO);
        }
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &gate,
            &clean_recovery(3),
            SimTime::from_secs(60),
            &mut actions,
            &mut budget,
            1,
            &mut SpanTracer::new(),
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn all_or_nothing_rolls_back() {
        // Candidate host's VMs cannot all fit elsewhere (memory-bound).
        let mut hosts = Vec::new();
        let mut vms = Vec::new();
        let mut preds = Vec::new();
        // Host 0: tiny demand but two big-memory VMs; host 1: almost no
        // free memory.
        hosts.push(HostObservation {
            id: HostId(0),
            state: PowerState::On,
            pending: None,
            cpu_capacity: 8.0,
            mem_capacity: 64.0,
            mem_committed: 48.0,
            cpu_demand: 0.4,
            evacuated: false,
            failed_transitions: 0,
            ladder: Default::default(),
        });
        hosts.push(HostObservation {
            id: HostId(1),
            state: PowerState::On,
            pending: None,
            cpu_capacity: 8.0,
            mem_capacity: 64.0,
            mem_committed: 40.0,
            cpu_demand: 2.0,
            evacuated: false,
            failed_transitions: 0,
            ladder: Default::default(),
        });
        for (i, (h, mem)) in [(0u32, 24.0), (0, 24.0), (1, 40.0)].iter().enumerate() {
            vms.push(VmObservation {
                id: VmId(i as u32),
                host: Some(HostId(*h)),
                cpu_demand: 0.2,
                cpu_cap: 8.0,
                mem_gb: *mem,
                migrating: false,
                service_class: Default::default(),
            });
            preds.push(0.2);
        }
        let o = ClusterObservation {
            now: SimTime::ZERO,
            hosts,
            vms,
        };
        let mut ctx = PlanContext::new(&o, preds, &[false; 2]);
        let c = cfg();
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &open_gate(2),
            &clean_recovery(2),
            SimTime::ZERO,
            &mut actions,
            &mut budget,
            1,
            &mut SpanTracer::new(),
        );
        // Only one 24 GB VM fits on host 1 (24 free); evacuation is
        // partial, so everything must roll back.
        assert!(actions.is_empty(), "{actions:?}");
        assert!(!ctx.draining[0]);
        assert_eq!(ctx.vm_host[0], Some(0));
        assert_eq!(budget, 8);
    }

    #[test]
    fn rollback_restores_total_predicted_bitwise() {
        // Pins the `total_predicted` cache contract across a failed
        // trial: the undo journal restores every `host_pred_cpu` slot
        // from the recorded values (bitwise, not recomputed), so the
        // cached fleet total must come back bit-exact after a rollback.
        // Same memory-bound fixture as `all_or_nothing_rolls_back`, at
        // the minimal fleet size that can attempt and fail a trial.
        let mut hosts = Vec::new();
        let mut vms = Vec::new();
        let mut preds = Vec::new();
        hosts.push(HostObservation {
            id: HostId(0),
            state: PowerState::On,
            pending: None,
            cpu_capacity: 8.0,
            mem_capacity: 64.0,
            mem_committed: 48.0,
            cpu_demand: 0.4,
            evacuated: false,
            failed_transitions: 0,
            ladder: Default::default(),
        });
        hosts.push(HostObservation {
            id: HostId(1),
            state: PowerState::On,
            pending: None,
            cpu_capacity: 8.0,
            mem_capacity: 64.0,
            mem_committed: 40.0,
            cpu_demand: 2.0,
            evacuated: false,
            failed_transitions: 0,
            ladder: Default::default(),
        });
        // Awkward mantissas so a recomputed (re-associated) total would
        // differ in the low bits and fail this test.
        for (i, (h, mem, demand)) in [
            (0u32, 24.0, 0.1 + 0.2),
            (0, 24.0, 1.0 / 3.0),
            (1, 40.0, 0.7),
        ]
        .iter()
        .enumerate()
        {
            vms.push(VmObservation {
                id: VmId(i as u32),
                host: Some(HostId(*h)),
                cpu_demand: *demand,
                cpu_cap: 8.0,
                mem_gb: *mem,
                migrating: false,
                service_class: Default::default(),
            });
            preds.push(*demand);
        }
        let o = ClusterObservation {
            now: SimTime::ZERO,
            hosts,
            vms,
        };
        let mut ctx = PlanContext::new(&o, preds, &[false; 2]);
        let c = cfg();
        let before_total = ctx.total_predicted().to_bits();
        let before_hosts: Vec<u64> = ctx.host_pred_cpu.iter().map(|v| v.to_bits()).collect();
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &open_gate(2),
            &clean_recovery(2),
            SimTime::ZERO,
            &mut actions,
            &mut budget,
            1,
            &mut SpanTracer::new(),
        );
        assert!(
            ctx.work.trials_rolled_back > 0,
            "fixture no longer exercises a rollback"
        );
        assert_eq!(
            ctx.total_predicted().to_bits(),
            before_total,
            "total_predicted cache drifted across a rollback"
        );
        let after_hosts: Vec<u64> = ctx.host_pred_cpu.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            before_hosts, after_hosts,
            "host_pred_cpu not restored bitwise"
        );
    }

    #[test]
    fn indexed_mode_picks_identically_to_scan() {
        // The same fleet planned in both modes must drain the same host
        // and emit the same migrations — the unit-scale version of the
        // differential suite's bit-identity property.
        let run = |mode: PlanMode| {
            let (o, preds) = obs(&[&[2.0, 1.0], &[1.5], &[0.5], &[0.7]]);
            let mut ctx = PlanContext::new(&o, preds, &[false; 4]);
            ctx.mode = mode;
            ctx.refresh_index();
            let c = cfg();
            let mut actions = Vec::new();
            let mut budget = 8;
            plan_consolidation(
                &mut ctx,
                &c,
                &open_gate(4),
                &clean_recovery(4),
                SimTime::ZERO,
                &mut actions,
                &mut budget,
                1,
                &mut SpanTracer::new(),
            );
            (actions, ctx.draining.clone(), budget)
        };
        let scan = run(PlanMode::Scan);
        let indexed = run(PlanMode::Indexed);
        assert_eq!(scan, indexed);
        // And the indexed run really used the index: with four hosts in
        // play it must have examined fewer hosts than four per pick or at
        // least have kept the index live (refresh marks it valid).
        let (o, preds) = obs(&[&[2.0, 1.0], &[1.5], &[0.5], &[0.7]]);
        let mut ctx = PlanContext::new(&o, preds, &[false; 4]);
        ctx.mode = PlanMode::Indexed;
        ctx.refresh_index();
        assert!(
            ctx.index_valid(),
            "refresh under Indexed must arm the index"
        );
    }

    #[test]
    fn continues_existing_drains_first() {
        let (o, preds) = obs(&[&[0.5, 0.5], &[2.0], &[2.0]]);
        // Host 0 was already marked draining in a previous round.
        let mut ctx = PlanContext::new(&o, preds, &[true, false, false]);
        let c = cfg();
        let mut actions = Vec::new();
        let mut budget = 8;
        plan_consolidation(
            &mut ctx,
            &c,
            &open_gate(3),
            &clean_recovery(3),
            SimTime::ZERO,
            &mut actions,
            &mut budget,
            1,
            &mut SpanTracer::new(),
        );
        assert!(ctx.movable_vms(0).is_empty());
        assert!(actions.len() >= 2);
    }
}
