//! Incremental-vs-scan accounting determinism.
//!
//! The incremental cluster accounting (running totals, lazy caches,
//! memoized host power) is a pure performance change: the paper's
//! numbers must not move. These tests run the same scenario under both
//! [`AccountingMode`]s and require the reports to be identical — both
//! structurally and in their serialized form, so `-0.0`/`+0.0` or NaN
//! sleights of hand cannot hide behind `==`.

use agile_core::PowerPolicy;
use cluster::AccountingMode;
use dcsim::{Experiment, Scenario, SimulationBuilder};

fn run(scenario: &Scenario, policy: PowerPolicy, mode: AccountingMode) -> dcsim::SimReport {
    SimulationBuilder::new(
        Experiment::new(scenario.clone())
            .policy(policy)
            .accounting(mode)
            .record_events(),
    )
    .run_report()
    .expect("scenario runs")
}

fn assert_identical(scenario: &Scenario, policy: PowerPolicy) {
    let incremental = run(scenario, policy, AccountingMode::Incremental);
    let scan = run(scenario, policy, AccountingMode::Scan);
    assert_eq!(
        incremental, scan,
        "incremental accounting changed the report"
    );
    assert_eq!(
        incremental.to_json().to_string(),
        scan.to_json().to_string(),
        "serialized reports differ"
    );
}

#[test]
fn golden_32_host_day_is_bit_identical() {
    // The satellite's golden case: a 32-host diurnal day under the
    // paper's suspend policy, full migration/park/wake churn.
    let scenario = Scenario::datacenter(32, 192, 2013);
    assert_identical(&scenario, PowerPolicy::reactive_suspend());
}

#[test]
fn off_policy_and_baseline_are_bit_identical() {
    // S5 exercises boot/shutdown transitions; AlwaysOn exercises the
    // no-transition path where only demand accounting runs.
    let scenario = Scenario::datacenter(16, 96, 7);
    assert_identical(&scenario, PowerPolicy::reactive_off());
    assert_identical(&scenario, PowerPolicy::always_on());
}

#[test]
fn churn_scenario_is_bit_identical() {
    // VM arrivals/retirements stress placement/unplacement accounting.
    let scenario = Scenario::datacenter_churn(12, 72, 0.3, 5);
    assert_identical(&scenario, PowerPolicy::reactive_suspend());
}
