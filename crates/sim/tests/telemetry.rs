//! Telemetry end-to-end: trace streaming, metrics snapshots, and the
//! observe-only guarantee (telemetry must never change simulation
//! results).

use agile_core::PowerPolicy;
use dcsim::{Experiment, Scenario, SimReport, SimulationBuilder};
use obs::Json;
use simcore::SimDuration;
use std::path::PathBuf;

fn experiment(seed: u64) -> Experiment {
    Experiment::new(Scenario::datacenter(6, 24, seed))
        .policy(PowerPolicy::reactive_suspend())
        .horizon(SimDuration::from_hours(8))
}

fn temp_trace(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("agilepm-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn jsonl_trace_streams_parseable_records() {
    let path = temp_trace("stream");
    let with_trace = SimulationBuilder::new(experiment(21).trace_path(&path))
        .run_report()
        .unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    let mut kinds = std::collections::BTreeSet::new();
    let mut lines = 0u64;
    for line in text.lines() {
        let record = Json::parse(line).expect("every line is one valid JSON document");
        kinds.insert(
            record
                .get("record")
                .and_then(Json::as_str)
                .expect("every record carries a discriminator")
                .to_string(),
        );
        lines += 1;
    }
    assert!(lines > 0);
    // The acceptance set: power transitions, migrations, and manager
    // decisions all flow through the trace.
    for want in [
        "power-transition",
        "migration",
        "manager-decision",
        "run-summary",
    ] {
        assert!(kinds.contains(want), "missing {want} in {kinds:?}");
    }
    // A power-managing run on a diurnal day must have cycled something.
    assert!(with_trace.power_downs > 0);
}

#[test]
fn trace_sink_choice_does_not_change_the_report() {
    let baseline = SimulationBuilder::new(experiment(22)).run_report().unwrap();
    let path = temp_trace("determinism");
    let traced = SimulationBuilder::new(experiment(22).trace_path(&path))
        .run_report()
        .unwrap();
    let _ = std::fs::remove_file(&path);
    // Bit-identical: telemetry observes, never steers.
    assert_eq!(baseline, traced);
}

#[test]
fn metrics_snapshot_matches_report_counters() {
    let report = SimulationBuilder::new(experiment(23)).run_report().unwrap();
    let m = &report.metrics;
    assert_eq!(m.counter("sim.migrations.completed"), report.migrations);
    assert_eq!(
        m.counter("sim.power.ups") + m.counter("sim.power.downs"),
        report.power_ups + report.power_downs
    );
    assert_eq!(m.counter("sim.actions.rejected"), report.action_failures);
    assert!(m.counter("sim.rounds") > 0);
    // Residency histograms cover the whole horizon for every host: the
    // per-host residency totals sum to hosts x horizon.
    let total_secs: f64 = [
        "on",
        "suspended",
        "off",
        "suspending",
        "resuming",
        "shuttingdown",
        "booting",
    ]
    .iter()
    .map(|s| match m.get(&format!("power.residency_secs.{s}")) {
        Some(obs::MetricValue::Histogram(h)) => h.sum(),
        _ => 0.0,
    })
    .sum();
    let want = report.num_hosts as f64 * report.horizon.as_secs_f64();
    assert!(
        (total_secs - want).abs() < 1.0,
        "residency {total_secs} != hosts*horizon {want}"
    );
}

#[test]
fn report_json_round_trips() {
    let report = SimulationBuilder::new(experiment(24).record_events())
        .run_report()
        .unwrap();
    assert!(!report.events.is_empty());
    let json = report.to_json();
    let reparsed = SimReport::from_json(&Json::parse(&json.to_string_compact()).unwrap()).unwrap();
    assert_eq!(reparsed, report);
}
