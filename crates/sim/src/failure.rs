//! Fault injection for power-state transitions, migrations, and racks.
//!
//! Power-cycling a server is not free of risk: the paper's prototype work
//! had to demonstrate that suspend/resume is *dependable* enough for
//! production management. This module injects transition failures so the
//! manager's recovery path (failed resume → host lands `Off` → cold boot)
//! can be exercised and its cost quantified (experiments T13/T13b).
//!
//! Beyond independent resume/boot coin flips the model covers:
//!
//! - **migration aborts** — a live migration that runs to its scheduled
//!   completion and then fails, leaving the VM on its source host;
//! - **transition hangs** — a suspend/resume/boot that takes
//!   [`hang_factor`](FailureModel::hang_factor)× its nominal latency
//!   (the *stuck* interval, burning transition power throughout) and
//!   then fails;
//! - **rack outage bursts** — correlated windows during which every
//!   power transition completing on one rack
//!   ([`rack_size`](FailureModel::rack_size) contiguous hosts) fails.
//!
//! All draws come from dedicated [`simcore::RngStream`] substreams, so a
//! model with every knob at zero consumes zero random draws and produces
//! byte-identical reports to a run without injection.

use simcore::SimDuration;

use crate::SimError;

/// Failure-injection knobs: per-transition probabilities plus hang and
/// correlated-burst parameters.
///
/// A failed resume loses the memory image and strands the host `Off`; a
/// failed boot leaves it `Off` for another attempt. Failed transitions
/// still consume their full latency and energy; hung transitions consume
/// a multiple of it.
///
/// # Example
///
/// ```
/// use dcsim::FailureModel;
///
/// let reliable = FailureModel::none();
/// assert_eq!(reliable.resume_failure_prob(), 0.0);
/// let flaky = FailureModel::new(0.05, 0.01)
///     .with_migration_failures(0.02)
///     .with_hangs(0.01, 4.0);
/// assert_eq!(flaky.resume_failure_prob(), 0.05);
/// assert_eq!(flaky.hang_factor(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    resume_failure_prob: f64,
    boot_failure_prob: f64,
    migration_failure_prob: f64,
    hang_prob: f64,
    hang_factor: f64,
    rack_size: usize,
    rack_burst_prob: f64,
    rack_burst_duration: SimDuration,
}

fn check_prob(p: f64) -> Result<(), SimError> {
    if p.is_finite() && (0.0..1.0).contains(&p) {
        Ok(())
    } else {
        Err(SimError::InvalidConfig {
            message: format!("failure probability {p} outside [0, 1)"),
        })
    }
}

fn assert_prob(p: f64) {
    if let Err(e) = check_prob(p) {
        panic!("{e}");
    }
}

impl FailureModel {
    /// No injected failures (the default).
    pub fn none() -> Self {
        FailureModel {
            resume_failure_prob: 0.0,
            boot_failure_prob: 0.0,
            migration_failure_prob: 0.0,
            hang_prob: 0.0,
            hang_factor: 1.0,
            rack_size: 0,
            rack_burst_prob: 0.0,
            rack_burst_duration: SimDuration::ZERO,
        }
    }

    /// Creates a model with the given per-attempt transition failure
    /// probabilities and no other failure kinds.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1)` — a probability
    /// of 1.0 would make the host permanently unrecoverable.
    pub fn new(resume_failure_prob: f64, boot_failure_prob: f64) -> Self {
        assert_prob(resume_failure_prob);
        assert_prob(boot_failure_prob);
        FailureModel {
            resume_failure_prob,
            boot_failure_prob,
            ..FailureModel::none()
        }
    }

    /// Fallible [`new`](FailureModel::new): the same validation, but an
    /// out-of-range probability comes back as
    /// [`SimError::InvalidConfig`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns `Err` if either probability is outside `[0, 1)`.
    pub fn try_new(resume_failure_prob: f64, boot_failure_prob: f64) -> Result<Self, SimError> {
        check_prob(resume_failure_prob)?;
        check_prob(boot_failure_prob)?;
        Ok(FailureModel {
            resume_failure_prob,
            boot_failure_prob,
            ..FailureModel::none()
        })
    }

    /// Adds per-attempt migration aborts: each live migration fails at
    /// its scheduled completion with probability `prob`, leaving the VM
    /// on its source host.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1)`.
    pub fn with_migration_failures(mut self, prob: f64) -> Self {
        assert_prob(prob);
        self.migration_failure_prob = prob;
        self
    }

    /// Fallible
    /// [`with_migration_failures`](FailureModel::with_migration_failures).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `prob` is outside `[0, 1)`.
    pub fn try_with_migration_failures(mut self, prob: f64) -> Result<Self, SimError> {
        check_prob(prob)?;
        self.migration_failure_prob = prob;
        Ok(self)
    }

    /// Adds transition hangs: each power transition hangs with
    /// probability `prob`, stretching to `factor`× its nominal latency
    /// before failing.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1)` or `factor < 1`.
    pub fn with_hangs(self, prob: f64, factor: f64) -> Self {
        match self.try_with_hangs(prob, factor) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`with_hangs`](FailureModel::with_hangs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `prob` is outside `[0, 1)`
    /// or `factor < 1`.
    pub fn try_with_hangs(mut self, prob: f64, factor: f64) -> Result<Self, SimError> {
        check_prob(prob)?;
        if !(factor.is_finite() && factor >= 1.0) {
            return Err(SimError::InvalidConfig {
                message: format!("hang factor {factor} must be >= 1"),
            });
        }
        self.hang_prob = prob;
        self.hang_factor = factor;
        Ok(self)
    }

    /// Adds correlated rack outage bursts: hosts are grouped into racks
    /// of `rack_size` contiguous indices, and each control epoch each
    /// rack independently starts a burst with probability `prob` lasting
    /// `duration`; every power transition completing on a bursting rack
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if `rack_size == 0`, `prob` is outside `[0, 1)`, or
    /// `duration` is zero while `prob > 0`.
    pub fn with_rack_bursts(self, rack_size: usize, prob: f64, duration: SimDuration) -> Self {
        match self.try_with_rack_bursts(rack_size, prob, duration) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`with_rack_bursts`](FailureModel::with_rack_bursts).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `rack_size == 0`, `prob`
    /// is outside `[0, 1)`, or `duration` is zero while `prob > 0`.
    pub fn try_with_rack_bursts(
        mut self,
        rack_size: usize,
        prob: f64,
        duration: SimDuration,
    ) -> Result<Self, SimError> {
        if rack_size == 0 {
            return Err(SimError::InvalidConfig {
                message: "rack size must be positive".to_string(),
            });
        }
        check_prob(prob)?;
        if prob > 0.0 && duration == SimDuration::ZERO {
            return Err(SimError::InvalidConfig {
                message: "rack burst duration must be positive".to_string(),
            });
        }
        self.rack_size = rack_size;
        self.rack_burst_prob = prob;
        self.rack_burst_duration = duration;
        Ok(self)
    }

    /// Probability one resume attempt fails.
    pub fn resume_failure_prob(&self) -> f64 {
        self.resume_failure_prob
    }

    /// Probability one boot attempt fails.
    pub fn boot_failure_prob(&self) -> f64 {
        self.boot_failure_prob
    }

    /// Probability one live migration aborts at completion.
    pub fn migration_failure_prob(&self) -> f64 {
        self.migration_failure_prob
    }

    /// Probability one power transition hangs.
    pub fn hang_prob(&self) -> f64 {
        self.hang_prob
    }

    /// Latency multiplier for a hung transition (≥ 1).
    pub fn hang_factor(&self) -> f64 {
        self.hang_factor
    }

    /// Hosts per rack for correlated bursts (0 = bursts disabled).
    pub fn rack_size(&self) -> usize {
        if self.rack_burst_prob > 0.0 {
            self.rack_size
        } else {
            0
        }
    }

    /// Per-epoch, per-rack probability a burst starts.
    pub fn rack_burst_prob(&self) -> f64 {
        self.rack_burst_prob
    }

    /// How long one rack burst lasts.
    pub fn rack_burst_duration(&self) -> SimDuration {
        self.rack_burst_duration
    }

    /// Whether any failure injection is active.
    pub fn is_active(&self) -> bool {
        self.resume_failure_prob > 0.0
            || self.boot_failure_prob > 0.0
            || self.migration_failure_prob > 0.0
            || self.hang_prob > 0.0
            || self.rack_burst_prob > 0.0
    }
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FailureModel::none().is_active());
        assert!(!FailureModel::default().is_active());
    }

    #[test]
    fn constructor_round_trips() {
        let m = FailureModel::new(0.1, 0.02);
        assert!(m.is_active());
        assert_eq!(m.resume_failure_prob(), 0.1);
        assert_eq!(m.boot_failure_prob(), 0.02);
    }

    #[test]
    fn builders_round_trip() {
        let m = FailureModel::none()
            .with_migration_failures(0.03)
            .with_hangs(0.02, 6.0)
            .with_rack_bursts(8, 0.01, SimDuration::from_secs(600));
        assert!(m.is_active());
        assert_eq!(m.migration_failure_prob(), 0.03);
        assert_eq!(m.hang_prob(), 0.02);
        assert_eq!(m.hang_factor(), 6.0);
        assert_eq!(m.rack_size(), 8);
        assert_eq!(m.rack_burst_prob(), 0.01);
        assert_eq!(m.rack_burst_duration(), SimDuration::from_secs(600));
    }

    #[test]
    fn rack_size_reads_zero_when_bursts_off() {
        // A rack size without a burst probability is inert.
        let m = FailureModel::none().with_rack_bursts(8, 0.0, SimDuration::ZERO);
        assert_eq!(m.rack_size(), 0);
        assert!(!m.is_active());
    }

    #[test]
    fn try_variants_mirror_the_panicking_constructors() {
        assert_eq!(
            FailureModel::try_new(0.1, 0.02).unwrap(),
            FailureModel::new(0.1, 0.02)
        );
        let err = FailureModel::try_new(1.0, 0.0).unwrap_err();
        assert!(format!("{err}").contains("outside [0, 1)"), "{err}");
        assert!(FailureModel::none()
            .try_with_migration_failures(-0.1)
            .is_err());
        assert!(FailureModel::none().try_with_hangs(0.1, 0.5).is_err());
        assert!(FailureModel::none()
            .try_with_rack_bursts(0, 0.1, SimDuration::from_secs(60))
            .is_err());
        assert!(FailureModel::none()
            .try_with_rack_bursts(4, 0.1, SimDuration::ZERO)
            .is_err());
        let ok = FailureModel::none()
            .try_with_rack_bursts(8, 0.01, SimDuration::from_secs(600))
            .unwrap();
        assert_eq!(ok.rack_size(), 8);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn rejects_certain_failure() {
        FailureModel::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn rejects_shrinking_hang() {
        FailureModel::none().with_hangs(0.1, 0.5);
    }

    #[test]
    #[should_panic(expected = "rack burst duration")]
    fn rejects_zero_length_burst() {
        FailureModel::none().with_rack_bursts(4, 0.1, SimDuration::ZERO);
    }
}
