//! Fault injection for power-state transitions.
//!
//! Power-cycling a server is not free of risk: the paper's prototype work
//! had to demonstrate that suspend/resume is *dependable* enough for
//! production management. This module injects transition failures so the
//! manager's recovery path (failed resume → host lands `Off` → cold boot)
//! can be exercised and its cost quantified (experiment T13).

/// Per-transition failure probabilities.
///
/// A failed resume loses the memory image and strands the host `Off`; a
/// failed boot leaves it `Off` for another attempt. Failed transitions
/// still consume their full latency and energy.
///
/// # Example
///
/// ```
/// use dcsim::FailureModel;
///
/// let reliable = FailureModel::none();
/// assert_eq!(reliable.resume_failure_prob(), 0.0);
/// let flaky = FailureModel::new(0.05, 0.01);
/// assert_eq!(flaky.resume_failure_prob(), 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    resume_failure_prob: f64,
    boot_failure_prob: f64,
}

impl FailureModel {
    /// No injected failures (the default).
    pub fn none() -> Self {
        FailureModel {
            resume_failure_prob: 0.0,
            boot_failure_prob: 0.0,
        }
    }

    /// Creates a model with the given per-attempt failure probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1)` — a probability
    /// of 1.0 would make the host permanently unrecoverable.
    pub fn new(resume_failure_prob: f64, boot_failure_prob: f64) -> Self {
        for p in [resume_failure_prob, boot_failure_prob] {
            assert!(
                p.is_finite() && (0.0..1.0).contains(&p),
                "failure probability {p} outside [0, 1)"
            );
        }
        FailureModel {
            resume_failure_prob,
            boot_failure_prob,
        }
    }

    /// Probability one resume attempt fails.
    pub fn resume_failure_prob(&self) -> f64 {
        self.resume_failure_prob
    }

    /// Probability one boot attempt fails.
    pub fn boot_failure_prob(&self) -> f64 {
        self.boot_failure_prob
    }

    /// Whether any failure injection is active.
    pub fn is_active(&self) -> bool {
        self.resume_failure_prob > 0.0 || self.boot_failure_prob > 0.0
    }
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FailureModel::none().is_active());
        assert!(!FailureModel::default().is_active());
    }

    #[test]
    fn constructor_round_trips() {
        let m = FailureModel::new(0.1, 0.02);
        assert!(m.is_active());
        assert_eq!(m.resume_failure_prob(), 0.1);
        assert_eq!(m.boot_failure_prob(), 0.02);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn rejects_certain_failure() {
        FailureModel::new(1.0, 0.0);
    }
}
