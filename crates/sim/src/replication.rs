//! Multi-seed replication: mean ± deviation across independent worlds.
//!
//! Single-seed results can ride on one lucky (or unlucky) demand draw.
//! The replication harness reruns an experiment across seeds and reduces
//! each headline metric to summary statistics, so the recorded tables can
//! state how stable a number is.

use simcore::Welford;

use crate::{SimError, SimReport};

/// Summary statistics of one metric across replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single run).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl MetricStats {
    fn from_samples(samples: &[f64]) -> Self {
        let mut w = Welford::new();
        for &x in samples {
            w.push(x);
        }
        MetricStats {
            mean: w.mean(),
            std_dev: w.std_dev(),
            min: w.min().unwrap_or(0.0),
            max: w.max().unwrap_or(0.0),
        }
    }

    /// Renders as `mean ± std`.
    pub fn pm(&self, precision: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean, self.std_dev, p = precision)
    }
}

/// Replicated headline metrics of one experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationSummary {
    /// Policy label of the replicated runs.
    pub policy: String,
    /// Number of replications.
    pub runs: usize,
    /// Energy in kWh.
    pub energy_kwh: MetricStats,
    /// Unserved demand ratio.
    pub unserved_ratio: MetricStats,
    /// Migrations per hour.
    pub migrations_per_hour: MetricStats,
    /// Power actions per hour.
    pub power_actions_per_hour: MetricStats,
    /// Average hosts in the `On` state.
    pub avg_hosts_on: MetricStats,
}

/// Runs `experiment` once per seed and summarizes the reports.
///
/// # Errors
///
/// Propagates the first failing run.
///
/// # Panics
///
/// Panics if `seeds` is empty or the runs disagree on the policy label
/// (that would mean the closure ignored its seed argument contract).
///
/// # Example
///
/// ```
/// use agile_core::PowerPolicy;
/// use dcsim::{replicate, Experiment, Scenario, SimulationBuilder};
/// use simcore::SimDuration;
///
/// let summary = replicate(&[1, 2, 3], |seed| {
///     SimulationBuilder::new(
///         Experiment::new(Scenario::small_test(seed))
///             .policy(PowerPolicy::reactive_suspend())
///             .horizon(SimDuration::from_hours(2)),
///     )
///     .run_report()
/// })?;
/// assert_eq!(summary.runs, 3);
/// assert!(summary.energy_kwh.mean > 0.0);
/// # Ok::<(), dcsim::SimError>(())
/// ```
pub fn replicate(
    seeds: &[u64],
    experiment: impl Fn(u64) -> Result<SimReport, SimError>,
) -> Result<ReplicationSummary, SimError> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let reports: Vec<SimReport> = seeds
        .iter()
        .map(|&seed| experiment(seed))
        .collect::<Result<_, _>>()?;
    Ok(summarize(&reports))
}

/// Reduces same-configuration reports (one per seed) to a
/// [`ReplicationSummary`] — the shared reducer behind [`replicate`] and
/// [`crate::sweeps::SweepBuilder::replications`].
///
/// # Panics
///
/// Panics if `reports` is empty or the reports disagree on the policy
/// label.
pub(crate) fn summarize(reports: &[SimReport]) -> ReplicationSummary {
    assert!(!reports.is_empty(), "need at least one report");
    let policy = reports[0].policy.clone();
    assert!(
        reports.iter().all(|r| r.policy == policy),
        "replications ran different policies"
    );
    let collect = |f: fn(&SimReport) -> f64| {
        MetricStats::from_samples(&reports.iter().map(f).collect::<Vec<_>>())
    };
    ReplicationSummary {
        policy,
        runs: reports.len(),
        energy_kwh: collect(|r| r.energy_kwh()),
        unserved_ratio: collect(|r| r.unserved_ratio),
        migrations_per_hour: collect(|r| r.migrations_per_hour),
        power_actions_per_hour: collect(|r| r.power_actions_per_hour),
        avg_hosts_on: collect(|r| r.avg_hosts_on),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Experiment, Scenario, SimulationBuilder};
    use agile_core::PowerPolicy;
    use simcore::SimDuration;

    fn run(seed: u64) -> Result<SimReport, SimError> {
        SimulationBuilder::new(
            Experiment::new(Scenario::datacenter(4, 16, seed))
                .policy(PowerPolicy::reactive_suspend())
                .horizon(SimDuration::from_hours(4)),
        )
        .run_report()
    }

    #[test]
    fn summarizes_across_seeds() {
        let s = replicate(&[1, 2, 3, 4], run).unwrap();
        assert_eq!(s.runs, 4);
        assert_eq!(s.policy, "PM-Suspend(S3)");
        assert!(s.energy_kwh.mean > 0.0);
        assert!(s.energy_kwh.std_dev > 0.0, "distinct seeds must vary");
        assert!(s.energy_kwh.min <= s.energy_kwh.mean);
        assert!(s.energy_kwh.mean <= s.energy_kwh.max);
    }

    #[test]
    fn single_seed_has_zero_deviation() {
        let s = replicate(&[7], run).unwrap();
        assert_eq!(s.energy_kwh.std_dev, 0.0);
        assert_eq!(s.energy_kwh.min, s.energy_kwh.max);
    }

    #[test]
    fn pm_renders() {
        let m = MetricStats {
            mean: 12.345,
            std_dev: 0.678,
            min: 11.0,
            max: 13.0,
        };
        assert_eq!(m.pm(1), "12.3 ± 0.7");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_seeds() {
        let _ = replicate(&[], run);
    }
}
