//! Trace-record schema and the engine's metric registrations.
//!
//! Every record the engine hands a [`obs::TraceSink`] is a flat JSON
//! object with a `record` discriminator and, where meaningful, a
//! `t_seconds` simulated timestamp:
//!
//! * `migration` — live-migration start/completion (`phase`).
//! * `power-transition` — host power transition start/completion/failure.
//! * `vm-lifecycle` — transient VM arrival/deferral/departure.
//! * `action-rejected` — the cluster refused a stale management action.
//! * `manager-decision` — see [`agile_core::DecisionRecord::to_json`].
//! * `run-summary` — one final record with the report headline, the
//!   metrics snapshot, the wall-clock phase profile, and (when tracing
//!   is enabled) the hierarchical span summary.
//!
//! [`SimTelemetry`] owns the engine's [`MetricsRegistry`] and the handles
//! to every metric it updates; names are dot-paths (`sim.migrations.
//! started`, `power.residency_secs.on`, ...) listed in `DESIGN.md`.

use cluster::Cluster;
use obs::{CounterId, GaugeId, HistogramId, Json, MetricsRegistry, ProfileSummary, SpanSummary};
use power::PowerState;
use simcore::SimTime;

use crate::events::{EventKind, EventRecord};
use crate::SimReport;

/// Renders one audit-log event as a trace record (the
/// [`EventRecord::to_json`] schema).
pub(crate) fn event_json(time: SimTime, kind: &EventKind) -> Json {
    EventRecord { time, kind: *kind }.to_json()
}

/// The final trace record: report headline + metrics + wall-clock
/// profile and span tree (the only place wall time appears; it never
/// enters the deterministic [`SimReport`]). `spans` is present only when
/// the tracer ran enabled.
pub(crate) fn run_summary_json(
    report: &SimReport,
    profile: &ProfileSummary,
    spans: Option<&SpanSummary>,
) -> Json {
    Json::obj([
        ("record", Json::Str("run-summary".into())),
        ("scenario", Json::Str(report.scenario.clone())),
        ("policy", Json::Str(report.policy.clone())),
        ("seed", Json::Int(report.seed as i64)),
        ("horizon_secs", Json::Num(report.horizon.as_secs_f64())),
        ("energy_kwh", Json::Num(report.energy_kwh())),
        ("unserved_ratio", Json::Num(report.unserved_ratio)),
        ("migrations", Json::Int(report.migrations as i64)),
        ("metrics", report.metrics.to_json()),
        ("profile", profile.to_json()),
        (
            "spans",
            match spans {
                Some(s) => s.to_json(),
                None => Json::Null,
            },
        ),
    ])
}

/// The engine's metric registry plus handles for every metric it
/// updates on the hot path.
#[derive(Debug)]
pub(crate) struct SimTelemetry {
    pub registry: MetricsRegistry,
    /// `sim.rounds` — management rounds executed.
    pub rounds: CounterId,
    /// `sim.migrations.started`.
    pub migrations_started: CounterId,
    /// `sim.migrations.completed`.
    pub migrations_completed: CounterId,
    /// `sim.migrations.failed` — fault-injected migration aborts.
    pub migrations_failed: CounterId,
    /// `sim.power.ups` — power-up transitions begun.
    pub power_ups: CounterId,
    /// `sim.power.downs` — power-down transitions begun.
    pub power_downs: CounterId,
    /// `sim.power.failed` — fault-injected transition failures.
    pub power_failures: CounterId,
    /// `sim.power.stuck` — fault-injected transition hangs.
    pub power_hangs: CounterId,
    /// `sim.actions.rejected` — stale actions the cluster refused.
    pub action_rejections: CounterId,
    /// `sim.commits.rejected` — scheduler commits the placement store
    /// refused (allocation races, stale beliefs).
    pub commit_rejections: CounterId,
    /// `sim.vm.arrivals`.
    pub vm_arrivals: CounterId,
    /// `sim.vm.deferred`.
    pub vm_deferrals: CounterId,
    /// `sim.vm.rejected` — admissions that never found capacity.
    pub vm_rejections: CounterId,
    /// `sim.vm.departures`.
    pub vm_departures: CounterId,
    /// `sim.migration.duration_secs` — scheduled migration durations.
    pub migration_secs: HistogramId,
    /// `sim.power.transition_secs` — scheduled transition latencies.
    pub transition_secs: HistogramId,
    /// `sim.manager.actions_per_round`.
    pub actions_per_round: HistogramId,
    /// `work.migrations.executed` — planned migrations the cluster
    /// accepted and began. Deterministic (counts events, not time).
    pub work_migrations_executed: CounterId,
    /// `work.migrations.aborted` — planned migrations the cluster
    /// refused (plan/world races). Deterministic.
    pub work_migrations_aborted: CounterId,
    /// `sim.hosts_on` — operational host count at the last tick.
    pub hosts_on: GaugeId,
    /// `sim.queue.peak` — peak event-queue length.
    pub peak_queue: GaugeId,
}

impl SimTelemetry {
    pub fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let rounds = registry.counter("sim.rounds");
        let migrations_started = registry.counter("sim.migrations.started");
        let migrations_completed = registry.counter("sim.migrations.completed");
        let migrations_failed = registry.counter("sim.migrations.failed");
        let power_ups = registry.counter("sim.power.ups");
        let power_downs = registry.counter("sim.power.downs");
        let power_failures = registry.counter("sim.power.failed");
        let power_hangs = registry.counter("sim.power.stuck");
        let action_rejections = registry.counter("sim.actions.rejected");
        let commit_rejections = registry.counter("sim.commits.rejected");
        let vm_arrivals = registry.counter("sim.vm.arrivals");
        let vm_deferrals = registry.counter("sim.vm.deferred");
        let vm_rejections = registry.counter("sim.vm.rejected");
        let vm_departures = registry.counter("sim.vm.departures");
        let migration_secs = registry.histogram("sim.migration.duration_secs");
        let transition_secs = registry.histogram("sim.power.transition_secs");
        let actions_per_round = registry.histogram("sim.manager.actions_per_round");
        let work_migrations_executed = registry.counter("work.migrations.executed");
        let work_migrations_aborted = registry.counter("work.migrations.aborted");
        let hosts_on = registry.gauge("sim.hosts_on");
        let peak_queue = registry.gauge("sim.queue.peak");
        SimTelemetry {
            registry,
            rounds,
            migrations_started,
            migrations_completed,
            migrations_failed,
            power_ups,
            power_downs,
            power_failures,
            power_hangs,
            action_rejections,
            commit_rejections,
            vm_arrivals,
            vm_deferrals,
            vm_rejections,
            vm_departures,
            migration_secs,
            transition_secs,
            actions_per_round,
            work_migrations_executed,
            work_migrations_aborted,
            hosts_on,
            peak_queue,
        }
    }

    /// Counts one audit-log event into the registry (durations are
    /// observed separately, where they are known).
    pub fn count_event(&mut self, kind: &EventKind) {
        match kind {
            EventKind::MigrationStarted { .. } => self.registry.inc(self.migrations_started),
            EventKind::MigrationCompleted { .. } => self.registry.inc(self.migrations_completed),
            EventKind::MigrationFailed { .. } => self.registry.inc(self.migrations_failed),
            EventKind::PowerStarted { .. } => {}
            EventKind::PowerCompleted { .. } => {}
            EventKind::PowerFailed { .. } => self.registry.inc(self.power_failures),
            EventKind::PowerStuck { .. } => self.registry.inc(self.power_hangs),
            EventKind::ActionRejected => self.registry.inc(self.action_rejections),
            EventKind::VmArrived { .. } => self.registry.inc(self.vm_arrivals),
            EventKind::VmArrivalDeferred { .. } => self.registry.inc(self.vm_deferrals),
            EventKind::VmArrivalRejected { .. } => self.registry.inc(self.vm_rejections),
            EventKind::VmDeparted { .. } => self.registry.inc(self.vm_departures),
            EventKind::CommitRejected { .. } => self.registry.inc(self.commit_rejections),
        }
    }

    /// Folds each host's cumulative per-state residency into the
    /// `power.residency_secs.<state>` histograms (one sample per host;
    /// call once, after the final `sync`).
    pub fn record_residency(&mut self, cluster: &Cluster) {
        for state in PowerState::ALL {
            let name = format!("power.residency_secs.{}", state.to_string().to_lowercase());
            let id = self.registry.histogram(&name);
            for host in cluster.hosts() {
                let secs = host.power().residency().in_state(state).as_secs_f64();
                self.registry.observe(id, secs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{HostId, VmId};
    use power::TransitionKind;

    #[test]
    fn event_records_carry_discriminator_and_time() {
        let cases = [
            (
                EventKind::MigrationStarted {
                    vm: VmId(4),
                    to: HostId(2),
                },
                "migration",
            ),
            (
                EventKind::PowerStarted {
                    host: HostId(1),
                    kind: TransitionKind::Resume,
                },
                "power-transition",
            ),
            (EventKind::ActionRejected, "action-rejected"),
            (EventKind::VmDeparted { vm: VmId(0) }, "vm-lifecycle"),
        ];
        for (kind, want) in cases {
            let j = event_json(SimTime::from_secs(90), &kind);
            assert_eq!(j.get("record").unwrap().as_str(), Some(want), "{kind:?}");
            assert_eq!(j.get("t_seconds").unwrap().as_f64(), Some(90.0));
            // Round-trips through the compact writer.
            assert_eq!(Json::parse(&j.to_string_compact()).unwrap(), j);
        }
    }

    #[test]
    fn telemetry_counts_events() {
        let mut t = SimTelemetry::new();
        t.count_event(&EventKind::MigrationStarted {
            vm: VmId(0),
            to: HostId(0),
        });
        t.count_event(&EventKind::MigrationCompleted { vm: VmId(0) });
        t.count_event(&EventKind::ActionRejected);
        let snap = t.registry.snapshot();
        assert_eq!(snap.counter("sim.migrations.started"), 1);
        assert_eq!(snap.counter("sim.migrations.completed"), 1);
        assert_eq!(snap.counter("sim.actions.rejected"), 1);
        assert_eq!(snap.counter("sim.vm.arrivals"), 0);
    }
}
