//! Reproducible simulation worlds.

use cluster::{HostSpec, Resources};
use power::HostPowerProfile;
use simcore::SimDuration;
use workload::{presets, Fleet, FleetSpec, LifetimePlan};

/// The canonical host shape used by the paper-scale scenarios: a 2U
/// 16-core / 128 GB server.
pub(crate) const HOST_CORES: f64 = 16.0;
pub(crate) const HOST_MEM_GB: f64 = 128.0;

/// A fully-specified simulation world: the host fleet, the VM fleet with
/// its demand traces, and the seed everything was generated from.
///
/// Scenarios are deterministic: the same constructor arguments always
/// produce the same world.
///
/// # Example
///
/// ```
/// use dcsim::Scenario;
///
/// let s = Scenario::datacenter(16, 64, 7);
/// assert_eq!(s.host_specs().len(), 16);
/// assert_eq!(s.fleet().len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    host_specs: Vec<HostSpec>,
    fleet: Fleet,
    demand_step: SimDuration,
    seed: u64,
}

impl Scenario {
    /// Builds a scenario from parts.
    ///
    /// # Panics
    ///
    /// Panics if there are no hosts, the fleet is empty, or `demand_step`
    /// is zero. Use [`try_new`](Self::try_new) to get these as values
    /// instead.
    pub fn new(
        name: impl Into<String>,
        host_specs: Vec<HostSpec>,
        fleet: Fleet,
        demand_step: SimDuration,
        seed: u64,
    ) -> Self {
        match Self::try_new(name, host_specs, fleet, demand_step, seed) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a scenario from parts, reporting inconsistencies as values
    /// — the `try_*` counterpart of [`new`](Self::new), for drivers that
    /// assemble worlds from external input (CLI arguments, sweep specs).
    ///
    /// # Errors
    ///
    /// [`crate::SimError::InvalidConfig`] if there are no hosts, the
    /// fleet is empty, or `demand_step` is zero.
    pub fn try_new(
        name: impl Into<String>,
        host_specs: Vec<HostSpec>,
        fleet: Fleet,
        demand_step: SimDuration,
        seed: u64,
    ) -> Result<Self, crate::SimError> {
        let invalid = |message: &str| crate::SimError::InvalidConfig {
            message: message.to_string(),
        };
        if host_specs.is_empty() {
            return Err(invalid("scenario needs hosts"));
        }
        if fleet.is_empty() {
            return Err(invalid("scenario needs VMs"));
        }
        if demand_step.is_zero() {
            return Err(invalid("demand step must be non-zero"));
        }
        Ok(Scenario {
            name: name.into(),
            host_specs,
            fleet,
            demand_step,
            seed,
        })
    }

    /// A tiny world for tests and the quickstart example: 4 prototype
    /// hosts, 16 enterprise VMs, 24 h of demand at a 5 min step.
    pub fn small_test(seed: u64) -> Self {
        Self::datacenter(4, 16, seed)
    }

    /// The paper-scale world: `hosts` prototype rack servers and `vms`
    /// enterprise-mix VMs, 24 h of diurnal demand at a 5 min step.
    pub fn datacenter(hosts: usize, vms: usize, seed: u64) -> Self {
        Self::with_workload(
            format!("datacenter-{hosts}x{vms}"),
            hosts,
            vms,
            presets::enterprise_diurnal(),
            SimDuration::from_hours(24),
            seed,
        )
    }

    /// The paper-scale world on ladder hardware: the same diurnal fleet as
    /// [`datacenter`](Self::datacenter), but every host carries the full
    /// C6→S3→S5 power-state ladder plus an attached DVFS model — the
    /// hardware the joint sleep + speed-scaling policy manages
    /// (experiment T26).
    pub fn datacenter_ladder(hosts: usize, vms: usize, seed: u64) -> Self {
        let mut s = Self::datacenter(hosts, vms, seed).with_host_profile(
            HostPowerProfile::prototype_rack_ladder().with_dvfs(power::DvfsModel::typical_2013()),
        );
        s.name = format!("datacenter-ladder-{hosts}x{vms}");
        s
    }

    /// The paper-scale world with flash spikes layered on (the harder
    /// responsiveness regime).
    pub fn datacenter_spiky(hosts: usize, vms: usize, seed: u64) -> Self {
        Self::with_workload(
            format!("datacenter-spiky-{hosts}x{vms}"),
            hosts,
            vms,
            presets::enterprise_with_spikes(),
            SimDuration::from_hours(24),
            seed,
        )
    }

    /// The paper-scale world with lifecycle churn: `churn_frac` of the
    /// VMs are transient (provisioned and retired during the day, mean
    /// lifetime 4 h) on top of the diurnal enterprise mix.
    ///
    /// # Panics
    ///
    /// Panics if `churn_frac` is outside `[0, 1]`.
    pub fn datacenter_churn(hosts: usize, vms: usize, churn_frac: f64, seed: u64) -> Self {
        let horizon = SimDuration::from_hours(24);
        let mut scenario = Self::with_workload(
            format!("datacenter-churn-{hosts}x{vms}"),
            hosts,
            vms,
            presets::enterprise_diurnal(),
            horizon,
            seed,
        );
        let plan =
            LifetimePlan::with_churn(vms, churn_frac, SimDuration::from_hours(4), horizon, seed);
        scenario.fleet = scenario.fleet.with_lifetime_plan(plan);
        scenario
    }

    /// A mixed-hardware world: `racks` 16-core/128 GB rack prototypes plus
    /// `blades` 8-core/64 GB blade prototypes, running the enterprise
    /// diurnal mix — the two server classes the paper prototyped.
    pub fn heterogeneous(racks: usize, blades: usize, vms: usize, seed: u64) -> Self {
        let horizon = SimDuration::from_hours(24);
        let step = SimDuration::from_mins(5);
        let mut host_specs = Self::uniform_hosts(racks, HostPowerProfile::prototype_rack());
        let blade_spec = HostSpec::new(
            Resources::new(HOST_CORES / 2.0, HOST_MEM_GB / 2.0),
            HostPowerProfile::prototype_blade(),
        );
        host_specs.extend(vec![blade_spec; blades]);
        let fleet = presets::enterprise_diurnal().generate(vms, horizon, step, seed);
        Scenario::new(
            format!("hetero-{racks}r+{blades}b-x{vms}"),
            host_specs,
            fleet,
            step,
            seed,
        )
    }

    /// A scenario with an arbitrary workload preset on uniform prototype
    /// hosts, 5 min demand step.
    pub fn with_workload(
        name: impl Into<String>,
        hosts: usize,
        vms: usize,
        workload: FleetSpec,
        horizon: SimDuration,
        seed: u64,
    ) -> Self {
        let step = SimDuration::from_mins(5);
        let fleet = workload.generate(vms, horizon, step, seed);
        Scenario::new(
            name,
            Self::uniform_hosts(hosts, HostPowerProfile::prototype_rack()),
            fleet,
            step,
            seed,
        )
    }

    /// `n` identical hosts of the canonical shape with the given profile.
    pub fn uniform_hosts(n: usize, profile: HostPowerProfile) -> Vec<HostSpec> {
        let spec = HostSpec::new(Resources::new(HOST_CORES, HOST_MEM_GB), profile);
        vec![spec; n]
    }

    /// Replaces every host's power profile (keeps capacities).
    pub fn with_host_profile(mut self, profile: HostPowerProfile) -> Self {
        let n = self.host_specs.len();
        self.host_specs = Self::uniform_hosts(n, profile);
        self
    }

    /// Scenario name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The host fleet.
    pub fn host_specs(&self) -> &[HostSpec] {
        &self.host_specs
    }

    /// The VM fleet and demand traces.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The demand sampling step (also the default control interval).
    pub fn demand_step(&self) -> SimDuration {
        self.demand_step
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datacenter_is_deterministic() {
        let a = Scenario::datacenter(8, 32, 5);
        let b = Scenario::datacenter(8, 32, 5);
        assert_eq!(a.fleet(), b.fleet());
        assert_eq!(a.name(), "datacenter-8x32");
        assert_eq!(a.seed(), 5);
    }

    #[test]
    fn small_test_shape() {
        let s = Scenario::small_test(1);
        assert_eq!(s.host_specs().len(), 4);
        assert_eq!(s.fleet().len(), 16);
        assert_eq!(s.demand_step(), SimDuration::from_mins(5));
    }

    #[test]
    fn with_host_profile_swaps_profiles() {
        let s = Scenario::small_test(1).with_host_profile(HostPowerProfile::legacy_rack());
        assert_eq!(s.host_specs()[0].profile().name(), "legacy-rack");
        assert_eq!(s.host_specs().len(), 4);
    }

    #[test]
    fn fleet_memory_fits_fleet_wide() {
        // The canonical sizing must leave consolidation memory headroom:
        // total VM memory well under half of total host memory.
        let s = Scenario::datacenter(16, 64, 2);
        let host_mem: f64 = s.host_specs().iter().map(|h| h.capacity().mem_gb).sum();
        assert!(s.fleet().total_mem_gb() < 0.5 * host_mem);
    }

    #[test]
    fn try_new_reports_inconsistencies_as_values() {
        use crate::SimError;
        let donor = Scenario::small_test(1);
        let step = donor.demand_step();
        let err =
            Scenario::try_new("no-hosts", Vec::new(), donor.fleet().clone(), step, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
        assert!(err.to_string().contains("needs hosts"), "{err}");
        let err = Scenario::try_new(
            "no-vms",
            donor.host_specs().to_vec(),
            Fleet::from_parts(Vec::new(), Vec::new()),
            step,
            1,
        )
        .unwrap_err();
        assert!(err.to_string().contains("needs VMs"), "{err}");
        let err = Scenario::try_new(
            "no-step",
            donor.host_specs().to_vec(),
            donor.fleet().clone(),
            SimDuration::ZERO,
            1,
        )
        .unwrap_err();
        assert!(err.to_string().contains("non-zero"), "{err}");
        // The happy path matches the panicking constructor.
        let ok = Scenario::try_new(
            "ok",
            donor.host_specs().to_vec(),
            donor.fleet().clone(),
            step,
            1,
        )
        .unwrap();
        assert_eq!(ok.host_specs().len(), donor.host_specs().len());
        assert_eq!(ok.fleet(), donor.fleet());
    }

    #[test]
    #[should_panic(expected = "scenario needs hosts")]
    fn new_still_panics_on_empty_hosts() {
        let donor = Scenario::small_test(1);
        let _ = Scenario::new(
            "bad",
            Vec::new(),
            donor.fleet().clone(),
            donor.demand_step(),
            1,
        );
    }
}
