//! Plain-text table and series formatting for experiment output.
//!
//! The bench binaries print the same rows/series the paper's tables and
//! figures report; these helpers keep the formatting consistent.

use simcore::{SimDuration, SimTime, TimeSeries};

use crate::SimReport;

/// Renders an aligned plain-text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// # Example
///
/// ```
/// let t = dcsim::report::table(
///     &["policy", "kWh"],
///     &[vec!["AlwaysOn".into(), "12.3".into()]],
/// );
/// assert!(t.contains("AlwaysOn"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// The standard policy-comparison table (experiment T5): energy, savings
/// vs. the first report, violations, overhead rates.
///
/// # Panics
///
/// Panics if `reports` is empty.
pub fn policy_comparison(reports: &[&SimReport]) -> String {
    assert!(!reports.is_empty(), "need at least one report");
    let baseline = reports[0];
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.1}", r.energy_kwh()),
                format!("{:+.1}%", r.savings_vs(baseline) * 100.0),
                format!("{:.3}%", r.unserved_ratio * 100.0),
                format!("{:.1}%", r.violation_fraction * 100.0),
                format!("{:.1}", r.migrations_per_hour),
                format!("{:.1}", r.power_actions_per_hour),
                format!("{:.1}", r.avg_hosts_on),
                format!("{:.0}%", r.avg_util_on * 100.0),
                // The Oracle is an energy bound with perfect packing; it
                // does not model service quality, so its queueing stretch
                // is not meaningful.
                if r.policy == "Oracle" {
                    "-".to_string()
                } else {
                    format!("{:.2}x", r.avg_latency_factor)
                },
            ]
        })
        .collect();
    table(
        &[
            "policy",
            "energy(kWh)",
            "savings",
            "unserved",
            "viol.ticks",
            "migr/h",
            "pwr-act/h",
            "hosts-on",
            "util-on",
            "lat",
        ],
        &rows,
    )
}

/// Renders one or more time series as aligned columns sampled on a fixed
/// grid: `time, series1, series2, ...` — plot-ready figure data.
///
/// # Panics
///
/// Panics if `series` is empty or lengths/labels mismatch.
pub fn series_table(
    labels: &[&str],
    series: &[&TimeSeries],
    step: SimDuration,
    end: SimTime,
) -> String {
    assert!(!series.is_empty(), "need at least one series");
    assert_eq!(labels.len(), series.len(), "labels/series mismatch");
    let mut headers = vec!["t(h)"];
    headers.extend_from_slice(labels);
    let mut rows = Vec::new();
    let mut t = SimTime::ZERO;
    while t <= end {
        let mut row = vec![format!("{:.2}", t.as_hours_f64())];
        for s in series {
            row.push(
                s.value_at(t)
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        rows.push(row);
        t += step;
    }
    table(&headers, &rows)
}

/// Renders one or more time series as CSV sampled on a fixed grid:
/// `t_hours,label1,label2,...` — for plotting outside the terminal.
///
/// # Panics
///
/// Panics if `series` is empty or lengths/labels mismatch.
pub fn series_csv(
    labels: &[&str],
    series: &[&TimeSeries],
    step: SimDuration,
    end: SimTime,
) -> String {
    assert!(!series.is_empty(), "need at least one series");
    assert_eq!(labels.len(), series.len(), "labels/series mismatch");
    let mut out = String::from("t_hours");
    for label in labels {
        out.push(',');
        out.push_str(label);
    }
    out.push('\n');
    let mut t = SimTime::ZERO;
    while t <= end {
        out.push_str(&format!("{:.4}", t.as_hours_f64()));
        for s in series {
            out.push_str(&format!(",{}", s.value_at(t).unwrap_or(0.0)));
        }
        out.push('\n');
        t += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long-header"],
            &[
                vec!["1".to_string(), "2".to_string()],
                vec!["333".to_string(), "4".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["1".to_string()]]);
    }

    #[test]
    fn series_csv_has_header_and_rows() {
        let mut s = TimeSeries::new();
        s.record(SimTime::ZERO, 5.0);
        let csv = series_csv(
            &["watts"],
            &[&s],
            SimDuration::from_hours(1),
            SimTime::from_secs(7200),
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_hours,watts");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0.0000,5"));
    }

    #[test]
    fn series_table_samples_grid() {
        let mut s = TimeSeries::new();
        s.record(SimTime::ZERO, 1.0);
        s.record(SimTime::from_secs(3600), 2.0);
        let t = series_table(
            &["watts"],
            &[&s],
            SimDuration::from_hours(1),
            SimTime::from_secs(7200),
        );
        assert!(t.contains("0.00"));
        assert!(t.contains("2.00"));
        assert!(t.contains("watts"));
    }
}
