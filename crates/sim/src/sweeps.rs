//! Drivers for the sweep-style experiments.
//!
//! Each driver builds the right scenario family, varies one knob, and
//! returns `(knob, SimReport)` pairs — the series a figure plots.

use agile_core::{ManagerConfig, PowerPolicy, PredictorConfig};
use power::breakeven::LowPowerMode;
use power::HostPowerProfile;
use simcore::SimDuration;
use workload::presets;

use crate::{Experiment, FailureModel, Scenario, SimError, SimReport, SimulationBuilder};

/// Experiment F7: flash-crowd responsiveness vs. host wake-up latency.
///
/// The fleet idles at 12 % of cap for 90 minutes (long enough for the
/// manager to consolidate and park hosts), then every VM steps to 85 %
/// simultaneously. The sweep replaces the prototype's resume latency,
/// covering the S3-class regime (~10 s) through S5-class boot times
/// (minutes). The interesting outputs are `unserved_ratio` and the
/// violation window length.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn wake_latency_sweep(
    hosts: usize,
    vms: usize,
    latencies: &[SimDuration],
    seed: u64,
) -> Result<Vec<(SimDuration, SimReport)>, SimError> {
    let horizon = SimDuration::from_hours(3);
    let step = SimDuration::from_mins(1);
    let fleet = presets::flash_crowd(0.12, 0.85, SimDuration::from_mins(90))
        .generate(vms, horizon, step, seed);
    let mut out = Vec::with_capacity(latencies.len());
    for &latency in latencies {
        let profile = HostPowerProfile::prototype_rack().with_resume_latency(latency);
        let scenario = Scenario::new(
            format!("flash-crowd-{hosts}x{vms}"),
            Scenario::uniform_hosts(hosts, profile),
            fleet.clone(),
            step,
            seed,
        );
        let config = ManagerConfig::for_fleet(PowerPolicy::reactive_suspend(), hosts, vms)
            .with_min_on_time(SimDuration::from_mins(5))
            .with_max_migrations_per_round(vms.max(8));
        let report = SimulationBuilder::new(
            Experiment::new(scenario)
                .manager_config(config)
                .horizon(horizon),
        )
        .run_report()?;
        out.push((latency, report));
    }
    Ok(out)
}

/// Experiment F6: energy proportionality — average cluster power vs.
/// offered load level, for one policy.
///
/// Steady fleets at each load level run for 12 h so the consolidated
/// steady state dominates the startup transient.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn proportionality_sweep(
    hosts: usize,
    vms: usize,
    levels: &[f64],
    policy: PowerPolicy,
    seed: u64,
) -> Result<Vec<(f64, SimReport)>, SimError> {
    let horizon = SimDuration::from_hours(12);
    let mut out = Vec::with_capacity(levels.len());
    for &level in levels {
        let scenario = Scenario::with_workload(
            format!("steady-{level:.2}-{hosts}x{vms}"),
            hosts,
            vms,
            presets::steady(level),
            horizon,
            seed,
        );
        let report =
            SimulationBuilder::new(Experiment::new(scenario).policy(policy).horizon(horizon))
                .run_report()?;
        out.push((level, report));
    }
    Ok(out)
}

/// Experiment F10: consolidation headroom (target utilization) sweep —
/// the energy/violation trade-off knob.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn headroom_sweep(
    hosts: usize,
    vms: usize,
    targets: &[f64],
    mode: LowPowerMode,
    seed: u64,
) -> Result<Vec<(f64, SimReport)>, SimError> {
    let scenario = Scenario::datacenter_spiky(hosts, vms, seed);
    let mut out = Vec::with_capacity(targets.len());
    for &target in targets {
        let config = ManagerConfig::for_fleet(PowerPolicy::Reactive { mode }, hosts, vms)
            .with_overload_threshold((target + 0.05).max(0.90))
            .with_underload_threshold((target - 0.15).max(0.05))
            .with_target_utilization(target);
        let report =
            SimulationBuilder::new(Experiment::new(scenario.clone()).manager_config(config))
                .run_report()?;
        out.push((target, report));
    }
    Ok(out)
}

/// Experiment F11: hysteresis window sweep — power-action rate and energy
/// vs. the minimum in-service residency.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn hysteresis_sweep(
    hosts: usize,
    vms: usize,
    min_on_times: &[SimDuration],
    mode: LowPowerMode,
    seed: u64,
) -> Result<Vec<(SimDuration, SimReport)>, SimError> {
    let scenario = Scenario::datacenter_spiky(hosts, vms, seed);
    let mut out = Vec::with_capacity(min_on_times.len());
    for &min_on in min_on_times {
        // Disable the dead-band so the hysteresis window is the only flap
        // damper — the isolation this ablation needs.
        let config = ManagerConfig::for_fleet(PowerPolicy::Reactive { mode }, hosts, vms)
            .with_min_on_time(min_on)
            .with_drain_deadband(0.0)
            .with_predictor(PredictorConfig::LastValue);
        let report = SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .manager_config(config)
                .control_interval(SimDuration::from_mins(1)),
        )
        .run_report()?;
        out.push((min_on, report));
    }
    Ok(out)
}

/// Experiment F8: scale-out — the same diurnal day at increasing cluster
/// sizes (VMs scale at 6 per host, the headline density).
///
/// Runs all sizes through the bounded worker pool; results stay in
/// `host_counts` order and each run is independently seeded, so the
/// output is identical to the sequential loop.
///
/// # Errors
///
/// Propagates the first failing run (lowest host count first).
pub fn scale_sweep(
    host_counts: &[usize],
    policy: PowerPolicy,
    seed: u64,
) -> Result<Vec<(usize, SimReport)>, SimError> {
    let results = scale_sweep_policies(host_counts, &[policy], seed)?;
    Ok(results
        .into_iter()
        .map(|(hosts, _, report)| (hosts, report))
        .collect())
}

/// The full F8 grid: every `(host count, policy)` pair, all dispatched
/// through one bounded worker pool so a base-vs-PM comparison at several
/// sizes costs one batch, not two sequential sweeps.
///
/// Results are ordered size-major (`host_counts` order, then `policies`
/// order within a size).
///
/// # Errors
///
/// Propagates the first failing run in output order.
pub fn scale_sweep_policies(
    host_counts: &[usize],
    policies: &[PowerPolicy],
    seed: u64,
) -> Result<Vec<(usize, PowerPolicy, SimReport)>, SimError> {
    let jobs: Vec<(usize, PowerPolicy)> = host_counts
        .iter()
        .flat_map(|&hosts| policies.iter().map(move |&p| (hosts, p)))
        .collect();
    let reports = simcore::pool::run_indexed(jobs.len(), |i| {
        let (hosts, policy) = jobs[i];
        let scenario = Scenario::datacenter(hosts, hosts * 6, seed);
        SimulationBuilder::new(Experiment::new(scenario).policy(policy)).run_report()
    });
    jobs.into_iter()
        .zip(reports)
        .map(|((hosts, policy), report)| Ok((hosts, policy, report?)))
        .collect()
}

/// Experiment T13: reliability sensitivity — the cost of resume failures.
///
/// Sweeps the per-attempt resume failure probability on the spiky diurnal
/// day. A failed resume strands the host `Off`; the manager recovers with
/// a cold boot. The interesting outputs: how unserved demand and energy
/// degrade as the low-latency state becomes less dependable.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn reliability_sweep(
    hosts: usize,
    vms: usize,
    failure_probs: &[f64],
    seed: u64,
) -> Result<Vec<(f64, SimReport)>, SimError> {
    let scenario = Scenario::datacenter_spiky(hosts, vms, seed);
    let mut out = Vec::with_capacity(failure_probs.len());
    for &p in failure_probs {
        let report = SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .policy(PowerPolicy::reactive_suspend())
                .failure_model(FailureModel::new(p, 0.0))
                .control_interval(SimDuration::from_mins(1)),
        )
        .run_report()?;
        out.push((p, report));
    }
    Ok(out)
}

/// The full fault surface at one intensity `p`: resume failures at `p`,
/// boot failures, migration aborts, and transition hangs at half of it,
/// and correlated rack bursts at a tenth. At `p == 0` the model is
/// inert, so that row reproduces the failure-free run bit-exactly.
fn full_fault_surface(p: f64) -> FailureModel {
    let mut model = FailureModel::new(p, p * 0.5);
    if p > 0.0 {
        model = model
            .with_migration_failures(p * 0.5)
            .with_hangs(p * 0.5, 4.0)
            .with_rack_bursts(4, p * 0.1, SimDuration::from_mins(30));
    }
    model
}

/// Experiment T13b: failure-rate overhead — managed vs. always-on as the
/// whole fault surface (resume/boot failures, migration aborts, hangs,
/// rack bursts) scales up together. AlwaysOn barely exercises power
/// transitions, so the gap between the two columns shows how much of
/// the managed savings survive as the infrastructure gets flakier and
/// recovery (backoff, quarantine, fail-safe) throttles power actions.
///
/// Every `(intensity, policy)` pair runs through one bounded worker
/// pool; results stay in `intensities` order as `(p, base, managed)`.
///
/// # Errors
///
/// Propagates the first failing run in output order.
pub fn failure_overhead_sweep(
    hosts: usize,
    vms: usize,
    intensities: &[f64],
    seed: u64,
) -> Result<Vec<(f64, SimReport, SimReport)>, SimError> {
    let scenario = Scenario::datacenter_spiky(hosts, vms, seed);
    let policies = [PowerPolicy::always_on(), PowerPolicy::reactive_suspend()];
    let jobs: Vec<(f64, PowerPolicy)> = intensities
        .iter()
        .flat_map(|&p| policies.iter().map(move |&policy| (p, policy)))
        .collect();
    let reports = simcore::pool::run_indexed(jobs.len(), |i| {
        let (p, policy) = jobs[i];
        SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .policy(policy)
                .failure_model(full_fault_surface(p))
                .control_interval(SimDuration::from_mins(1)),
        )
        .run_report()
    });
    let mut results = reports.into_iter();
    let mut out = Vec::with_capacity(intensities.len());
    for &p in intensities {
        let base = results.next().expect("one result per job")?;
        let managed = results.next().expect("one result per job")?;
        out.push((p, base, managed));
    }
    Ok(out)
}

/// Experiment T12: predictor ablation under one power mode.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn predictor_sweep(
    hosts: usize,
    vms: usize,
    predictors: &[(&str, PredictorConfig)],
    mode: LowPowerMode,
    seed: u64,
) -> Result<Vec<(String, SimReport)>, SimError> {
    let scenario = Scenario::datacenter_spiky(hosts, vms, seed);
    let mut out = Vec::with_capacity(predictors.len());
    for (name, p) in predictors {
        let config =
            ManagerConfig::for_fleet(PowerPolicy::Reactive { mode }, hosts, vms).with_predictor(*p);
        let report = SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .manager_config(config)
                .control_interval(SimDuration::from_mins(1)),
        )
        .run_report()?;
        out.push((name.to_string(), report));
    }
    Ok(out)
}

/// Experiment F16: power-curve shape ablation — the same fleet and
/// manager on hosts whose utilization→power curve is sub-linear, linear,
/// or super-linear (identical idle/peak endpoints and transitions).
///
/// # Errors
///
/// Propagates the first failing run.
pub fn curve_shape_sweep(
    hosts: usize,
    vms: usize,
    seed: u64,
) -> Result<Vec<(String, SimReport, SimReport)>, SimError> {
    let profiles = [
        ("sub-linear", HostPowerProfile::prototype_rack_sublinear()),
        ("linear", HostPowerProfile::prototype_rack()),
        (
            "super-linear",
            HostPowerProfile::prototype_rack_superlinear(),
        ),
    ];
    let mut out = Vec::with_capacity(profiles.len());
    for (name, profile) in profiles {
        let scenario = Scenario::datacenter(hosts, vms, seed).with_host_profile(profile);
        let base = SimulationBuilder::new(
            Experiment::new(scenario.clone()).policy(PowerPolicy::always_on()),
        )
        .run_report()?;
        let pm = SimulationBuilder::new(
            Experiment::new(scenario).policy(PowerPolicy::reactive_suspend()),
        )
        .run_report()?;
        out.push((name.to_string(), base, pm));
    }
    Ok(out)
}

/// Experiment F17: management-interval sweep — the agility axis. As the
/// control loop tightens from 15 min toward 30 s, reaction sharpens but
/// every wake mistake costs a full transition; the S5 regime pays its
/// latency on each one while S3 does not.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn interval_sweep(
    hosts: usize,
    vms: usize,
    intervals: &[SimDuration],
    seed: u64,
) -> Result<Vec<(SimDuration, SimReport, SimReport)>, SimError> {
    let scenario = Scenario::datacenter_spiky(hosts, vms, seed);
    let mut out = Vec::with_capacity(intervals.len());
    for &interval in intervals {
        let s3 = SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .policy(PowerPolicy::reactive_suspend())
                .control_interval(interval),
        )
        .run_report()?;
        let s5 = SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .policy(PowerPolicy::reactive_off())
                .control_interval(interval),
        )
        .run_report()?;
        out.push((interval, s3, s5));
    }
    Ok(out)
}

/// Experiment T18: proactive pre-waking vs reactive-only, under both
/// power-state regimes.
///
/// Runs 48 h (the profile learns day 1, pays off day 2) on the spiky
/// diurnal mix at a 1-minute loop. Pre-waking hides *recurring* ramps —
/// the question is whether it rescues the slow S5 regime, and whether it
/// covers flash crowds (it cannot; they are unpredictable).
///
/// # Errors
///
/// Propagates the first failing run.
pub fn prewake_sweep(
    hosts: usize,
    vms: usize,
    seed: u64,
) -> Result<Vec<(String, SimReport)>, SimError> {
    let horizon = SimDuration::from_hours(48);
    let scenario = Scenario::with_workload(
        format!("prewake-{hosts}x{vms}"),
        hosts,
        vms,
        presets::enterprise_with_spikes(),
        horizon,
        seed,
    );
    let mut out = Vec::new();
    for mode in [LowPowerMode::Suspend, LowPowerMode::Off] {
        for prewake in [None, Some(SimDuration::from_mins(15))] {
            let mut config = ManagerConfig::for_fleet(PowerPolicy::Reactive { mode }, hosts, vms);
            if let Some(lookahead) = prewake {
                config = config.with_prewake(lookahead);
            }
            let label = format!(
                "{}{}",
                match mode {
                    LowPowerMode::PackageIdle => "C6",
                    LowPowerMode::Suspend => "S3",
                    LowPowerMode::Off => "S5",
                },
                if prewake.is_some() { "+prewake" } else { "" }
            );
            let report = SimulationBuilder::new(
                Experiment::new(scenario.clone())
                    .manager_config(config)
                    .control_interval(SimDuration::from_mins(1))
                    .horizon(horizon),
            )
            .run_report()?;
            out.push((label, report));
        }
    }
    Ok(out)
}

/// Experiment T21: PSU conversion-loss sensitivity — wall-power savings
/// when the same DC-side hardware sits behind a good vs. poor supply.
///
/// Uses a DC-calibrated rack profile (prototype transitions, 140–290 W
/// DC curve) behind no PSU / 80-PLUS-Gold / legacy supplies. Two effects
/// compete at the wall: poor supplies penalize the always-on fleet's
/// light-load operating points, but they also penalize the *parked*
/// state, which draws its few watts at the PSU's worst efficiency. The
/// sweep quantifies the net.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn psu_sweep(
    hosts: usize,
    vms: usize,
    seed: u64,
) -> Result<Vec<(String, SimReport, SimReport)>, SimError> {
    use power::{PowerCurve, PsuModel, TransitionSpec, TransitionTable};

    let dc_profile = || {
        power::HostPowerProfile::new(
            "rack-dc",
            PowerCurve::linear(140.0, 290.0),
            7.5,
            4.0,
            TransitionTable::with_suspend(
                TransitionSpec::new(SimDuration::from_secs(7), 110.0),
                TransitionSpec::new(SimDuration::from_secs(12), 165.0),
                TransitionSpec::new(SimDuration::from_secs(80), 130.0),
                TransitionSpec::new(SimDuration::from_secs(180), 220.0),
            ),
        )
    };
    let variants: Vec<(&str, power::HostPowerProfile)> = vec![
        ("dc (no psu)", dc_profile()),
        (
            "80+ gold",
            dc_profile().with_psu(PsuModel::eighty_plus_gold(400.0)),
        ),
        ("legacy psu", dc_profile().with_psu(PsuModel::legacy(400.0))),
    ];
    let mut out = Vec::with_capacity(variants.len());
    for (name, profile) in variants {
        let scenario = Scenario::datacenter(hosts, vms, seed).with_host_profile(profile);
        let base = SimulationBuilder::new(
            Experiment::new(scenario.clone()).policy(PowerPolicy::always_on()),
        )
        .run_report()?;
        let pm = SimulationBuilder::new(
            Experiment::new(scenario).policy(PowerPolicy::reactive_suspend()),
        )
        .run_report()?;
        out.push((name.to_string(), base, pm));
    }
    Ok(out)
}

/// One row of the T26 savings-vs-SLO frontier: the three contenders
/// evaluated at one wake-latency SLO. The DVFS-only and suspend-only
/// reports do not depend on the SLO (neither policy reads it) but are
/// repeated per row so each row is self-contained.
#[derive(Debug, Clone)]
pub struct SloFrontierPoint {
    /// The wake-latency SLO of this row.
    pub slo: SimDuration,
    /// Analytic DVFS-only baseline: every host on, clocked down.
    pub dvfs_only: SimReport,
    /// Reactive suspend-only parking (fixed S3 rung, nominal clocks).
    pub suspend_only: SimReport,
    /// Joint ladder policy on C6→S3→S5 hardware with DVFS attached.
    pub joint_ladder: SimReport,
}

/// Experiment T26: the savings-vs-SLO frontier of joint sleep + speed
/// scaling over the power-state ladder.
///
/// For each wake-latency SLO, compares three ways of converting slack
/// into savings on the same diurnal fleet:
///
/// * **DVFS-only** — the analytic baseline: every host stays on and
///   clocks down to the lowest sufficient frequency (zero wake risk).
/// * **Suspend-only** — reactive parking on the fixed S3 rung at nominal
///   clocks (the pre-ladder `reactive_suspend` policy).
/// * **Joint ladder** — [`PowerPolicy::joint_ladder`] on ladder hardware
///   ([`Scenario::datacenter_ladder`]): each drained host parks on the
///   deepest rung whose wake fits the SLO and whose break-even the
///   pre-wake lookahead affords, a forecast-sized warm pool sits on the
///   shallowest rung, and powered-on hosts clock down via the attached
///   DVFS model.
///
/// Returns the always-on baseline (the denominator for savings) plus one
/// [`SloFrontierPoint`] per SLO.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn slo_frontier_sweep(
    hosts: usize,
    vms: usize,
    slos: &[SimDuration],
    seed: u64,
) -> Result<(SimReport, Vec<SloFrontierPoint>), SimError> {
    let plain = Scenario::datacenter(hosts, vms, seed);
    let ladder = Scenario::datacenter_ladder(hosts, vms, seed);
    let baseline =
        SimulationBuilder::new(Experiment::new(plain.clone()).policy(PowerPolicy::always_on()))
            .run_report()?;
    let dvfs_only = SimulationBuilder::new(Experiment::new(plain.clone()))
        .dvfs_baseline(power::DvfsModel::typical_2013())
        .run_report()?;
    let suspend_only =
        SimulationBuilder::new(Experiment::new(plain).policy(PowerPolicy::reactive_suspend()))
            .run_report()?;
    let mut out = Vec::with_capacity(slos.len());
    for &slo in slos {
        let config = ManagerConfig::for_fleet(PowerPolicy::joint_ladder(slo), hosts, vms)
            .with_prewake(SimDuration::from_mins(15));
        let joint_ladder =
            SimulationBuilder::new(Experiment::new(ladder.clone()).manager_config(config))
                .run_report()?;
        out.push(SloFrontierPoint {
            slo,
            dvfs_only: dvfs_only.clone(),
            suspend_only: suspend_only.clone(),
            joint_ladder,
        });
    }
    Ok((baseline, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_latency_hurts_responsiveness() {
        let latencies = [SimDuration::from_secs(12), SimDuration::from_secs(300)];
        let results = wake_latency_sweep(8, 32, &latencies, 21).unwrap();
        let fast = &results[0].1;
        let slow = &results[1].1;
        assert!(
            slow.unserved_ratio >= fast.unserved_ratio,
            "slow wake {:.5} should not beat fast wake {:.5}",
            slow.unserved_ratio,
            fast.unserved_ratio
        );
        // The manager actually parked hosts before the spike.
        assert!(fast.power_downs > 0);
    }

    #[test]
    fn proportionality_power_increases_with_load() {
        let results =
            proportionality_sweep(4, 16, &[0.2, 0.8], PowerPolicy::reactive_suspend(), 5).unwrap();
        assert!(results[0].1.avg_power_w() < results[1].1.avg_power_w());
    }

    #[test]
    fn scale_sweep_runs_multiple_sizes() {
        let results = scale_sweep(&[4, 8], PowerPolicy::reactive_suspend(), 13).unwrap();
        assert_eq!(results.len(), 2);
        // Energy roughly scales with fleet size.
        let ratio = results[1].1.energy_j / results[0].1.energy_j;
        assert!((1.2..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn policy_grid_matches_single_policy_sweep() {
        let sizes = [4, 8];
        let policies = [PowerPolicy::always_on(), PowerPolicy::reactive_suspend()];
        let grid = scale_sweep_policies(&sizes, &policies, 13).unwrap();
        assert_eq!(grid.len(), 4);
        // Size-major ordering, and pooled execution changes nothing: the
        // PM rows equal a standalone single-policy sweep exactly.
        let pm = scale_sweep(&sizes, PowerPolicy::reactive_suspend(), 13).unwrap();
        assert_eq!(grid[0].0, 4);
        assert_eq!(grid[3].0, 8);
        assert_eq!(grid[1].2, pm[0].1);
        assert_eq!(grid[3].2, pm[1].1);
    }

    #[test]
    fn psu_losses_inflate_wall_energy_but_preserve_savings() {
        let results = psu_sweep(6, 24, 9).unwrap();
        let dc = &results[0];
        let gold = &results[1];
        let legacy = &results[2];
        // Wall energy exceeds DC energy everywhere, ordered by supply
        // quality.
        assert!(gold.1.energy_j > dc.1.energy_j);
        assert!(legacy.1.energy_j > gold.1.energy_j);
        assert!(legacy.2.energy_j > gold.2.energy_j);
        // The savings fraction survives conversion losses to within a few
        // points. (Two effects nearly cancel: poor supplies penalize the
        // always-on fleet's light-load operating points, but they also
        // penalize the *parked* state, which sits at the PSU's worst
        // efficiency — a real cost of measuring at the wall.)
        for (name, base, pm) in &results {
            let savings = pm.savings_vs(base);
            assert!(
                (0.2..0.45).contains(&savings),
                "{name}: savings {savings:.3} out of band"
            );
        }
    }

    #[test]
    fn prewake_sweep_has_four_variants() {
        let results = prewake_sweep(6, 24, 5).unwrap();
        let labels: Vec<&str> = results.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["S3", "S3+prewake", "S5", "S5+prewake"]);
        // Pre-waking never increases unserved demand for the slow regime.
        let s5 = &results[2].1;
        let s5_prewake = &results[3].1;
        assert!(
            s5_prewake.unserved_ratio <= s5.unserved_ratio * 1.2 + 1e-6,
            "prewake made S5 much worse: {} vs {}",
            s5_prewake.unserved_ratio,
            s5.unserved_ratio
        );
    }

    #[test]
    fn curve_shape_changes_savings() {
        let results = curve_shape_sweep(6, 24, 19).unwrap();
        assert_eq!(results.len(), 3);
        // Identical endpoints: always-on energy ordering follows curve
        // area (sub-linear burns most at mid utilization).
        let sub = &results[0];
        let sup = &results[2];
        assert!(
            sub.1.energy_j > sup.1.energy_j,
            "sub-linear base {} should exceed super-linear base {}",
            sub.1.energy_kwh(),
            sup.1.energy_kwh()
        );
        // The managed runs preserve the same ordering (packed hosts sit
        // in the region where sub-linear draws more), and every shape
        // still shows substantial savings — curve shape moves the
        // absolute numbers, not the conclusion.
        assert!(sub.2.energy_j > sup.2.energy_j);
        for (name, base, pm) in &results {
            let savings = pm.savings_vs(base);
            assert!(
                savings > 0.15,
                "{name}: savings {savings:.3} unexpectedly small"
            );
        }
    }

    #[test]
    fn interval_sweep_runs_both_modes() {
        let intervals = [SimDuration::from_mins(1), SimDuration::from_mins(5)];
        let results = interval_sweep(6, 24, &intervals, 7).unwrap();
        assert_eq!(results.len(), 2);
        for (_, s3, s5) in &results {
            assert_eq!(s3.policy, "PM-Suspend(S3)");
            assert_eq!(s5.policy, "PM-OffOn(S5)");
        }
    }

    #[test]
    fn headroom_tightens_fleet() {
        let results = headroom_sweep(6, 24, &[0.55, 0.85], LowPowerMode::Suspend, 17).unwrap();
        let loose = &results[0].1;
        let tight = &results[1].1;
        assert!(
            tight.avg_hosts_on <= loose.avg_hosts_on + 1e-9,
            "tight headroom should keep fewer hosts on ({} vs {})",
            tight.avg_hosts_on,
            loose.avg_hosts_on
        );
    }
}
