//! Drivers for the sweep-style experiments.
//!
//! [`SweepBuilder`] is the one sweep engine behind every figure-style
//! series: pick an axis (the values a figure plots), describe how one
//! axis value becomes one or more simulation *legs* (comparison columns
//! — e.g. always-on vs. managed), and [`SweepBuilder::run`] executes the
//! whole grid through the bounded worker pool, returning one typed
//! [`SweepRow`] per value in axis order. Rows carry the per-leg reports
//! at the base seed plus per-leg [`ReplicationSummary`] statistics; ask
//! for [`replications`](SweepBuilder::replications) to rerun the grid
//! across consecutive seeds and get mean ± deviation instead of a
//! single-draw number.
//!
//! One family constructor exists per classic experiment
//! (`SweepBuilder::wake_latency`, `::scale`, `::slo_frontier`, ...) and
//! [`SweepBuilder::over`] builds custom sweeps. The original fourteen
//! `*_sweep` free functions remain as deprecated one-line shims over the
//! families and will be removed after one release.

use agile_core::{ManagerConfig, PowerPolicy, PredictorConfig};
use power::breakeven::LowPowerMode;
use power::HostPowerProfile;
use simcore::SimDuration;
use workload::presets;

use crate::replication::{summarize, ReplicationSummary};
use crate::{Experiment, FailureModel, Scenario, SimError, SimReport, SimulationBuilder};

/// How one axis value becomes the simulation legs of its row, at one
/// seed. Must be a pure function of `(value, seed)` so replication and
/// pooled execution stay bit-reproducible.
type LegsFn<X> = Box<dyn Fn(&X, u64) -> Result<Vec<SimulationBuilder>, SimError> + Send + Sync>;

/// One row of a sweep: the axis value plus its simulation legs.
#[derive(Debug, Clone)]
pub struct SweepRow<X> {
    /// The axis value of this row.
    pub value: X,
    /// One report per leg, in leg order, at the sweep's base seed.
    pub reports: Vec<SimReport>,
    /// Per-leg statistics across the replication seeds (a single-run
    /// summary when no replication was requested).
    pub summaries: Vec<ReplicationSummary>,
}

impl<X> SweepRow<X> {
    /// The first (often only) leg's base-seed report.
    pub fn report(&self) -> &SimReport {
        &self.reports[0]
    }
}

/// A declarative sweep: axis values × legs × replication seeds, executed
/// through the bounded worker pool.
///
/// Results are independent of pool scheduling: every leg is a pure
/// function of `(value, seed)`, and rows come back in axis order — the
/// pooled grid is bit-identical to the sequential loop it replaced.
///
/// # Example
///
/// ```
/// use agile_core::PowerPolicy;
/// use dcsim::sweeps::SweepBuilder;
///
/// let rows = SweepBuilder::scale(
///     &[4, 8],
///     &[PowerPolicy::always_on(), PowerPolicy::reactive_suspend()],
///     13,
/// )
/// .run()?;
/// assert_eq!(rows.len(), 2);
/// // Two legs per row: always-on then managed.
/// assert!(rows[0].reports[1].energy_j < rows[0].reports[0].energy_j);
/// # Ok::<(), dcsim::SimError>(())
/// ```
pub struct SweepBuilder<X> {
    values: Vec<X>,
    seed: u64,
    replications: usize,
    legs: LegsFn<X>,
}

impl<X: std::fmt::Debug> std::fmt::Debug for SweepBuilder<X> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepBuilder")
            .field("values", &self.values)
            .field("seed", &self.seed)
            .field("replications", &self.replications)
            .finish_non_exhaustive()
    }
}

impl<X: Sync> SweepBuilder<X> {
    /// A custom sweep: `legs` maps each axis value (at a seed) to the
    /// row's simulation legs. Keep it a pure function of its arguments —
    /// that is what makes the pooled grid reproducible.
    pub fn over(
        values: Vec<X>,
        seed: u64,
        legs: impl Fn(&X, u64) -> Result<Vec<SimulationBuilder>, SimError> + Send + Sync + 'static,
    ) -> Self {
        SweepBuilder {
            values,
            seed,
            replications: 1,
            legs: Box::new(legs),
        }
    }

    /// Reruns the whole grid at `count` consecutive seeds (`seed`,
    /// `seed + 1`, ...) and summarizes each leg across them. The row
    /// reports stay those of the base seed.
    ///
    /// # Panics
    ///
    /// Panics on `count == 0`.
    pub fn replications(mut self, count: usize) -> Self {
        assert!(count >= 1, "need at least one replication");
        self.replications = count;
        self
    }

    /// Executes the grid through the bounded worker pool and returns one
    /// row per axis value, in axis order.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run in output order (axis order,
    /// then seed order, then leg order).
    ///
    /// # Panics
    ///
    /// Panics if the legs closure returns a different number of legs for
    /// different seeds of the same value (it must be a pure function of
    /// the axis value's shape).
    pub fn run(self) -> Result<Vec<SweepRow<X>>, SimError> {
        let SweepBuilder {
            values,
            seed,
            replications: k,
            legs,
        } = self;
        let results: Vec<Result<Vec<SimReport>, SimError>> =
            simcore::pool::run_indexed(values.len() * k, |i| {
                let value = &values[i / k];
                let rep = (i % k) as u64;
                legs(value, seed.wrapping_add(rep))?
                    .into_iter()
                    .map(SimulationBuilder::run_report)
                    .collect()
            });
        let mut results = results.into_iter();
        values
            .into_iter()
            .map(|value| {
                // [replication][leg], in seed order.
                let reps: Vec<Vec<SimReport>> = (0..k)
                    .map(|_| results.next().expect("one result per job"))
                    .collect::<Result<_, _>>()?;
                let legs_n = reps[0].len();
                assert!(
                    reps.iter().all(|r| r.len() == legs_n),
                    "legs must not depend on the seed"
                );
                let summaries = (0..legs_n)
                    .map(|j| {
                        if k == 1 {
                            summarize(std::slice::from_ref(&reps[0][j]))
                        } else {
                            let leg: Vec<SimReport> =
                                reps.iter().map(|rep| rep[j].clone()).collect();
                            summarize(&leg)
                        }
                    })
                    .collect();
                let reports = reps.into_iter().next().expect("at least one replication");
                Ok(SweepRow {
                    value,
                    reports,
                    summaries,
                })
            })
            .collect()
    }
}

impl SweepBuilder<SimDuration> {
    /// Experiment F7: flash-crowd responsiveness vs. host wake-up
    /// latency. One leg per row.
    ///
    /// The fleet idles at 12 % of cap for 90 minutes (long enough for
    /// the manager to consolidate and park hosts), then every VM steps
    /// to 85 % simultaneously. The sweep replaces the prototype's resume
    /// latency, covering the S3-class regime (~10 s) through S5-class
    /// boot times (minutes). The interesting outputs are
    /// `unserved_ratio` and the violation window length.
    pub fn wake_latency(hosts: usize, vms: usize, latencies: &[SimDuration], seed: u64) -> Self {
        let horizon = SimDuration::from_hours(3);
        let step = SimDuration::from_mins(1);
        Self::over(latencies.to_vec(), seed, move |&latency, seed| {
            let fleet = presets::flash_crowd(0.12, 0.85, SimDuration::from_mins(90))
                .generate(vms, horizon, step, seed);
            let profile = HostPowerProfile::prototype_rack().with_resume_latency(latency);
            let scenario = Scenario::try_new(
                format!("flash-crowd-{hosts}x{vms}"),
                Scenario::uniform_hosts(hosts, profile),
                fleet,
                step,
                seed,
            )?;
            let config = ManagerConfig::for_fleet(PowerPolicy::reactive_suspend(), hosts, vms)
                .with_min_on_time(SimDuration::from_mins(5))
                .with_max_migrations_per_round(vms.max(8));
            Ok(vec![SimulationBuilder::new(
                Experiment::new(scenario)
                    .manager_config(config)
                    .horizon(horizon),
            )])
        })
    }

    /// Experiment F11: hysteresis window sweep — power-action rate and
    /// energy vs. the minimum in-service residency. One leg per row.
    pub fn hysteresis(
        hosts: usize,
        vms: usize,
        min_on_times: &[SimDuration],
        mode: LowPowerMode,
        seed: u64,
    ) -> Self {
        Self::over(min_on_times.to_vec(), seed, move |&min_on, seed| {
            // Disable the dead-band so the hysteresis window is the only
            // flap damper — the isolation this ablation needs.
            let config = ManagerConfig::for_fleet(PowerPolicy::Reactive { mode }, hosts, vms)
                .with_min_on_time(min_on)
                .with_drain_deadband(0.0)
                .with_predictor(PredictorConfig::LastValue);
            Ok(vec![SimulationBuilder::new(
                Experiment::new(Scenario::datacenter_spiky(hosts, vms, seed))
                    .manager_config(config)
                    .control_interval(SimDuration::from_mins(1)),
            )])
        })
    }

    /// Experiment F17: management-interval sweep — the agility axis. As
    /// the control loop tightens from 15 min toward 30 s, reaction
    /// sharpens but every wake mistake costs a full transition; the S5
    /// regime pays its latency on each one while S3 does not. Two legs
    /// per row: S3, then S5.
    pub fn interval(hosts: usize, vms: usize, intervals: &[SimDuration], seed: u64) -> Self {
        Self::over(intervals.to_vec(), seed, move |&interval, seed| {
            let scenario = Scenario::datacenter_spiky(hosts, vms, seed);
            Ok(vec![
                SimulationBuilder::new(
                    Experiment::new(scenario.clone())
                        .policy(PowerPolicy::reactive_suspend())
                        .control_interval(interval),
                ),
                SimulationBuilder::new(
                    Experiment::new(scenario)
                        .policy(PowerPolicy::reactive_off())
                        .control_interval(interval),
                ),
            ])
        })
    }

    /// Experiment T26: the savings-vs-SLO frontier of joint sleep +
    /// speed scaling over the power-state ladder. Four legs per row:
    /// always-on baseline, analytic DVFS-only, reactive suspend-only,
    /// and the joint ladder policy at the row's wake-latency SLO (the
    /// first three do not read the SLO, so they repeat identically
    /// across rows).
    pub fn slo_frontier(hosts: usize, vms: usize, slos: &[SimDuration], seed: u64) -> Self {
        Self::over(slos.to_vec(), seed, move |&slo, seed| {
            let plain = Scenario::datacenter(hosts, vms, seed);
            let ladder = Scenario::datacenter_ladder(hosts, vms, seed);
            let config = ManagerConfig::for_fleet(PowerPolicy::joint_ladder(slo), hosts, vms)
                .with_prewake(SimDuration::from_mins(15));
            Ok(vec![
                SimulationBuilder::new(
                    Experiment::new(plain.clone()).policy(PowerPolicy::always_on()),
                ),
                SimulationBuilder::new(Experiment::new(plain.clone()))
                    .dvfs_baseline(power::DvfsModel::typical_2013()),
                SimulationBuilder::new(
                    Experiment::new(plain).policy(PowerPolicy::reactive_suspend()),
                ),
                SimulationBuilder::new(Experiment::new(ladder).manager_config(config)),
            ])
        })
    }
}

impl SweepBuilder<f64> {
    /// Experiment F6: energy proportionality — average cluster power vs.
    /// offered load level, for one policy. One leg per row.
    ///
    /// Steady fleets at each load level run for 12 h so the consolidated
    /// steady state dominates the startup transient.
    pub fn proportionality(
        hosts: usize,
        vms: usize,
        levels: &[f64],
        policy: PowerPolicy,
        seed: u64,
    ) -> Self {
        let horizon = SimDuration::from_hours(12);
        Self::over(levels.to_vec(), seed, move |&level, seed| {
            let scenario = Scenario::with_workload(
                format!("steady-{level:.2}-{hosts}x{vms}"),
                hosts,
                vms,
                presets::steady(level),
                horizon,
                seed,
            );
            Ok(vec![SimulationBuilder::new(
                Experiment::new(scenario).policy(policy).horizon(horizon),
            )])
        })
    }

    /// Experiment F10: consolidation headroom (target utilization)
    /// sweep — the energy/violation trade-off knob. One leg per row.
    pub fn headroom(
        hosts: usize,
        vms: usize,
        targets: &[f64],
        mode: LowPowerMode,
        seed: u64,
    ) -> Self {
        Self::over(targets.to_vec(), seed, move |&target, seed| {
            let config = ManagerConfig::for_fleet(PowerPolicy::Reactive { mode }, hosts, vms)
                .with_overload_threshold((target + 0.05).max(0.90))
                .with_underload_threshold((target - 0.15).max(0.05))
                .with_target_utilization(target);
            Ok(vec![SimulationBuilder::new(
                Experiment::new(Scenario::datacenter_spiky(hosts, vms, seed))
                    .manager_config(config),
            )])
        })
    }

    /// Experiment T13: reliability sensitivity — the cost of resume
    /// failures. One leg per row.
    ///
    /// Sweeps the per-attempt resume failure probability on the spiky
    /// diurnal day. A failed resume strands the host `Off`; the manager
    /// recovers with a cold boot.
    pub fn reliability(hosts: usize, vms: usize, failure_probs: &[f64], seed: u64) -> Self {
        Self::over(failure_probs.to_vec(), seed, move |&p, seed| {
            Ok(vec![SimulationBuilder::new(
                Experiment::new(Scenario::datacenter_spiky(hosts, vms, seed))
                    .policy(PowerPolicy::reactive_suspend())
                    .failure_model(FailureModel::new(p, 0.0))
                    .control_interval(SimDuration::from_mins(1)),
            )])
        })
    }

    /// Experiment T13b: failure-rate overhead — managed vs. always-on as
    /// the whole fault surface (resume/boot failures, migration aborts,
    /// hangs, rack bursts) scales up together. Two legs per row:
    /// always-on, then managed.
    pub fn failure_overhead(hosts: usize, vms: usize, intensities: &[f64], seed: u64) -> Self {
        Self::over(intensities.to_vec(), seed, move |&p, seed| {
            let scenario = Scenario::datacenter_spiky(hosts, vms, seed);
            let leg = |policy| {
                SimulationBuilder::new(
                    Experiment::new(scenario.clone())
                        .policy(policy)
                        .failure_model(full_fault_surface(p))
                        .control_interval(SimDuration::from_mins(1)),
                )
            };
            Ok(vec![
                leg(PowerPolicy::always_on()),
                leg(PowerPolicy::reactive_suspend()),
            ])
        })
    }
}

impl SweepBuilder<usize> {
    /// Experiment F8: scale-out — the same diurnal day at increasing
    /// cluster sizes (VMs scale at 6 per host, the headline density).
    /// One leg per policy, in `policies` order.
    pub fn scale(host_counts: &[usize], policies: &[PowerPolicy], seed: u64) -> Self {
        let policies = policies.to_vec();
        Self::over(host_counts.to_vec(), seed, move |&hosts, seed| {
            Ok(policies
                .iter()
                .map(|&policy| {
                    SimulationBuilder::new(
                        Experiment::new(Scenario::datacenter(hosts, hosts * 6, seed))
                            .policy(policy),
                    )
                })
                .collect())
        })
    }
}

impl SweepBuilder<(String, PredictorConfig)> {
    /// Experiment T12: predictor ablation under one power mode. One leg
    /// per row.
    pub fn predictors(
        hosts: usize,
        vms: usize,
        predictors: &[(&str, PredictorConfig)],
        mode: LowPowerMode,
        seed: u64,
    ) -> Self {
        let values = predictors
            .iter()
            .map(|(name, p)| (name.to_string(), *p))
            .collect();
        Self::over(values, seed, move |(_, predictor), seed| {
            let config = ManagerConfig::for_fleet(PowerPolicy::Reactive { mode }, hosts, vms)
                .with_predictor(*predictor);
            Ok(vec![SimulationBuilder::new(
                Experiment::new(Scenario::datacenter_spiky(hosts, vms, seed))
                    .manager_config(config)
                    .control_interval(SimDuration::from_mins(1)),
            )])
        })
    }
}

impl SweepBuilder<&'static str> {
    /// Experiment F16: power-curve shape ablation — the same fleet and
    /// manager on hosts whose utilization→power curve is sub-linear,
    /// linear, or super-linear (identical idle/peak endpoints and
    /// transitions). Two legs per row: always-on, then managed.
    pub fn curve_shapes(hosts: usize, vms: usize, seed: u64) -> Self {
        let values = vec!["sub-linear", "linear", "super-linear"];
        Self::over(values, seed, move |&shape, seed| {
            let profile = match shape {
                "sub-linear" => HostPowerProfile::prototype_rack_sublinear(),
                "super-linear" => HostPowerProfile::prototype_rack_superlinear(),
                _ => HostPowerProfile::prototype_rack(),
            };
            let scenario = Scenario::datacenter(hosts, vms, seed).with_host_profile(profile);
            Ok(vec![
                SimulationBuilder::new(
                    Experiment::new(scenario.clone()).policy(PowerPolicy::always_on()),
                ),
                SimulationBuilder::new(
                    Experiment::new(scenario).policy(PowerPolicy::reactive_suspend()),
                ),
            ])
        })
    }

    /// Experiment T21: PSU conversion-loss sensitivity — wall-power
    /// savings when the same DC-side hardware sits behind a good vs.
    /// poor supply. Two legs per row: always-on, then managed.
    ///
    /// Uses a DC-calibrated rack profile (prototype transitions,
    /// 140–290 W DC curve) behind no PSU / 80-PLUS-Gold / legacy
    /// supplies. Two effects compete at the wall: poor supplies penalize
    /// the always-on fleet's light-load operating points, but they also
    /// penalize the *parked* state, which draws its few watts at the
    /// PSU's worst efficiency. The sweep quantifies the net.
    pub fn psu(hosts: usize, vms: usize, seed: u64) -> Self {
        use power::{PowerCurve, PsuModel, TransitionSpec, TransitionTable};

        let values = vec!["dc (no psu)", "80+ gold", "legacy psu"];
        Self::over(values, seed, move |&supply, seed| {
            let dc_profile = power::HostPowerProfile::new(
                "rack-dc",
                PowerCurve::linear(140.0, 290.0),
                7.5,
                4.0,
                TransitionTable::with_suspend(
                    TransitionSpec::new(SimDuration::from_secs(7), 110.0),
                    TransitionSpec::new(SimDuration::from_secs(12), 165.0),
                    TransitionSpec::new(SimDuration::from_secs(80), 130.0),
                    TransitionSpec::new(SimDuration::from_secs(180), 220.0),
                ),
            );
            let profile = match supply {
                "80+ gold" => dc_profile.with_psu(PsuModel::eighty_plus_gold(400.0)),
                "legacy psu" => dc_profile.with_psu(PsuModel::legacy(400.0)),
                _ => dc_profile,
            };
            let scenario = Scenario::datacenter(hosts, vms, seed).with_host_profile(profile);
            Ok(vec![
                SimulationBuilder::new(
                    Experiment::new(scenario.clone()).policy(PowerPolicy::always_on()),
                ),
                SimulationBuilder::new(
                    Experiment::new(scenario).policy(PowerPolicy::reactive_suspend()),
                ),
            ])
        })
    }
}

impl SweepBuilder<(LowPowerMode, Option<SimDuration>)> {
    /// Experiment T18: proactive pre-waking vs reactive-only, under both
    /// power-state regimes. Axis values are `(mode, prewake lookahead)`
    /// in the order S3, S3+prewake, S5, S5+prewake; one leg per row.
    ///
    /// Runs 48 h (the profile learns day 1, pays off day 2) on the spiky
    /// diurnal mix at a 1-minute loop. Pre-waking hides *recurring*
    /// ramps — the question is whether it rescues the slow S5 regime,
    /// and whether it covers flash crowds (it cannot; they are
    /// unpredictable).
    pub fn prewake(hosts: usize, vms: usize, seed: u64) -> Self {
        let lookahead = SimDuration::from_mins(15);
        let values = vec![
            (LowPowerMode::Suspend, None),
            (LowPowerMode::Suspend, Some(lookahead)),
            (LowPowerMode::Off, None),
            (LowPowerMode::Off, Some(lookahead)),
        ];
        let horizon = SimDuration::from_hours(48);
        Self::over(values, seed, move |&(mode, prewake), seed| {
            let scenario = Scenario::with_workload(
                format!("prewake-{hosts}x{vms}"),
                hosts,
                vms,
                presets::enterprise_with_spikes(),
                horizon,
                seed,
            );
            let mut config = ManagerConfig::for_fleet(PowerPolicy::Reactive { mode }, hosts, vms);
            if let Some(lookahead) = prewake {
                config = config.with_prewake(lookahead);
            }
            Ok(vec![SimulationBuilder::new(
                Experiment::new(scenario)
                    .manager_config(config)
                    .control_interval(SimDuration::from_mins(1))
                    .horizon(horizon),
            )])
        })
    }
}

/// The display label of a prewake-sweep axis value (`"S3"`,
/// `"S5+prewake"`, ...).
pub fn prewake_label(mode: LowPowerMode, prewake: Option<SimDuration>) -> String {
    format!(
        "{}{}",
        match mode {
            LowPowerMode::PackageIdle => "C6",
            LowPowerMode::Suspend => "S3",
            LowPowerMode::Off => "S5",
        },
        if prewake.is_some() { "+prewake" } else { "" }
    )
}

/// The full fault surface at one intensity `p`: resume failures at `p`,
/// boot failures, migration aborts, and transition hangs at half of it,
/// and correlated rack bursts at a tenth. At `p == 0` the model is
/// inert, so that row reproduces the failure-free run bit-exactly.
fn full_fault_surface(p: f64) -> FailureModel {
    let mut model = FailureModel::new(p, p * 0.5);
    if p > 0.0 {
        model = model
            .with_migration_failures(p * 0.5)
            .with_hangs(p * 0.5, 4.0)
            .with_rack_bursts(4, p * 0.1, SimDuration::from_mins(30));
    }
    model
}

/// One row of the T26 savings-vs-SLO frontier: the three contenders
/// evaluated at one wake-latency SLO. The DVFS-only and suspend-only
/// reports do not depend on the SLO (neither policy reads it) but are
/// repeated per row so each row is self-contained.
#[derive(Debug, Clone)]
pub struct SloFrontierPoint {
    /// The wake-latency SLO of this row.
    pub slo: SimDuration,
    /// Analytic DVFS-only baseline: every host on, clocked down.
    pub dvfs_only: SimReport,
    /// Reactive suspend-only parking (fixed S3 rung, nominal clocks).
    pub suspend_only: SimReport,
    /// Joint ladder policy on C6→S3→S5 hardware with DVFS attached.
    pub joint_ladder: SimReport,
}

/// Experiment F7 shim. See [`SweepBuilder::wake_latency`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::wake_latency(hosts, vms, latencies, seed).run()`"
)]
pub fn wake_latency_sweep(
    hosts: usize,
    vms: usize,
    latencies: &[SimDuration],
    seed: u64,
) -> Result<Vec<(SimDuration, SimReport)>, SimError> {
    single_leg_rows(SweepBuilder::wake_latency(hosts, vms, latencies, seed))
}

/// Experiment F6 shim. See [`SweepBuilder::proportionality`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::proportionality(hosts, vms, levels, policy, seed).run()`"
)]
pub fn proportionality_sweep(
    hosts: usize,
    vms: usize,
    levels: &[f64],
    policy: PowerPolicy,
    seed: u64,
) -> Result<Vec<(f64, SimReport)>, SimError> {
    single_leg_rows(SweepBuilder::proportionality(
        hosts, vms, levels, policy, seed,
    ))
}

/// Experiment F10 shim. See [`SweepBuilder::headroom`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::headroom(hosts, vms, targets, mode, seed).run()`"
)]
pub fn headroom_sweep(
    hosts: usize,
    vms: usize,
    targets: &[f64],
    mode: LowPowerMode,
    seed: u64,
) -> Result<Vec<(f64, SimReport)>, SimError> {
    single_leg_rows(SweepBuilder::headroom(hosts, vms, targets, mode, seed))
}

/// Experiment F11 shim. See [`SweepBuilder::hysteresis`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::hysteresis(hosts, vms, min_on_times, mode, seed).run()`"
)]
pub fn hysteresis_sweep(
    hosts: usize,
    vms: usize,
    min_on_times: &[SimDuration],
    mode: LowPowerMode,
    seed: u64,
) -> Result<Vec<(SimDuration, SimReport)>, SimError> {
    single_leg_rows(SweepBuilder::hysteresis(
        hosts,
        vms,
        min_on_times,
        mode,
        seed,
    ))
}

/// Experiment F8 shim (single policy). See [`SweepBuilder::scale`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::scale(host_counts, &[policy], seed).run()`"
)]
pub fn scale_sweep(
    host_counts: &[usize],
    policy: PowerPolicy,
    seed: u64,
) -> Result<Vec<(usize, SimReport)>, SimError> {
    single_leg_rows(SweepBuilder::scale(host_counts, &[policy], seed))
}

/// Experiment F8 shim (full grid). See [`SweepBuilder::scale`].
///
/// # Errors
///
/// Propagates the first failing run in output order.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::scale(host_counts, policies, seed).run()`"
)]
pub fn scale_sweep_policies(
    host_counts: &[usize],
    policies: &[PowerPolicy],
    seed: u64,
) -> Result<Vec<(usize, PowerPolicy, SimReport)>, SimError> {
    let policies = policies.to_vec();
    let rows = SweepBuilder::scale(host_counts, &policies, seed).run()?;
    Ok(rows
        .into_iter()
        .flat_map(|row| {
            let hosts = row.value;
            policies
                .iter()
                .copied()
                .zip(row.reports)
                .map(move |(policy, report)| (hosts, policy, report))
        })
        .collect())
}

/// Experiment T13 shim. See [`SweepBuilder::reliability`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::reliability(hosts, vms, failure_probs, seed).run()`"
)]
pub fn reliability_sweep(
    hosts: usize,
    vms: usize,
    failure_probs: &[f64],
    seed: u64,
) -> Result<Vec<(f64, SimReport)>, SimError> {
    single_leg_rows(SweepBuilder::reliability(hosts, vms, failure_probs, seed))
}

/// Experiment T13b shim. See [`SweepBuilder::failure_overhead`].
///
/// # Errors
///
/// Propagates the first failing run in output order.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::failure_overhead(hosts, vms, intensities, seed).run()`"
)]
pub fn failure_overhead_sweep(
    hosts: usize,
    vms: usize,
    intensities: &[f64],
    seed: u64,
) -> Result<Vec<(f64, SimReport, SimReport)>, SimError> {
    two_leg_rows(SweepBuilder::failure_overhead(
        hosts,
        vms,
        intensities,
        seed,
    ))
}

/// Experiment T12 shim. See [`SweepBuilder::predictors`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::predictors(hosts, vms, predictors, mode, seed).run()`"
)]
pub fn predictor_sweep(
    hosts: usize,
    vms: usize,
    predictors: &[(&str, PredictorConfig)],
    mode: LowPowerMode,
    seed: u64,
) -> Result<Vec<(String, SimReport)>, SimError> {
    let rows = SweepBuilder::predictors(hosts, vms, predictors, mode, seed).run()?;
    Ok(rows
        .into_iter()
        .map(|row| (row.value.0, into_single(row.reports)))
        .collect())
}

/// Experiment F16 shim. See [`SweepBuilder::curve_shapes`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::curve_shapes(hosts, vms, seed).run()`"
)]
pub fn curve_shape_sweep(
    hosts: usize,
    vms: usize,
    seed: u64,
) -> Result<Vec<(String, SimReport, SimReport)>, SimError> {
    let rows = SweepBuilder::curve_shapes(hosts, vms, seed).run()?;
    Ok(rows
        .into_iter()
        .map(|row| {
            let (base, pm) = into_pair(row.reports);
            (row.value.to_string(), base, pm)
        })
        .collect())
}

/// Experiment F17 shim. See [`SweepBuilder::interval`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::interval(hosts, vms, intervals, seed).run()`"
)]
pub fn interval_sweep(
    hosts: usize,
    vms: usize,
    intervals: &[SimDuration],
    seed: u64,
) -> Result<Vec<(SimDuration, SimReport, SimReport)>, SimError> {
    two_leg_rows(SweepBuilder::interval(hosts, vms, intervals, seed))
}

/// Experiment T18 shim. See [`SweepBuilder::prewake`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::prewake(hosts, vms, seed).run()` (labels via `prewake_label`)"
)]
pub fn prewake_sweep(
    hosts: usize,
    vms: usize,
    seed: u64,
) -> Result<Vec<(String, SimReport)>, SimError> {
    let rows = SweepBuilder::prewake(hosts, vms, seed).run()?;
    Ok(rows
        .into_iter()
        .map(|row| {
            let (mode, prewake) = row.value;
            (prewake_label(mode, prewake), into_single(row.reports))
        })
        .collect())
}

/// Experiment T21 shim. See [`SweepBuilder::psu`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::psu(hosts, vms, seed).run()`"
)]
pub fn psu_sweep(
    hosts: usize,
    vms: usize,
    seed: u64,
) -> Result<Vec<(String, SimReport, SimReport)>, SimError> {
    let rows = SweepBuilder::psu(hosts, vms, seed).run()?;
    Ok(rows
        .into_iter()
        .map(|row| {
            let (base, pm) = into_pair(row.reports);
            (row.value.to_string(), base, pm)
        })
        .collect())
}

/// Experiment T26 shim. See [`SweepBuilder::slo_frontier`].
///
/// # Errors
///
/// Propagates the first failing run.
#[deprecated(
    since = "0.3.0",
    note = "use `SweepBuilder::slo_frontier(hosts, vms, slos, seed).run()`"
)]
pub fn slo_frontier_sweep(
    hosts: usize,
    vms: usize,
    slos: &[SimDuration],
    seed: u64,
) -> Result<(SimReport, Vec<SloFrontierPoint>), SimError> {
    let rows = SweepBuilder::slo_frontier(hosts, vms, slos, seed).run()?;
    let baseline = match rows.first() {
        Some(row) => row.reports[0].clone(),
        // No SLO rows: run the baseline leg alone, as the old driver did.
        None => SimulationBuilder::new(
            Experiment::new(Scenario::datacenter(hosts, vms, seed))
                .policy(PowerPolicy::always_on()),
        )
        .run_report()?,
    };
    let points = rows
        .into_iter()
        .map(|row| {
            let mut legs = row.reports.into_iter();
            let _baseline = legs.next();
            SloFrontierPoint {
                slo: row.value,
                dvfs_only: legs.next().expect("four legs per row"),
                suspend_only: legs.next().expect("four legs per row"),
                joint_ladder: legs.next().expect("four legs per row"),
            }
        })
        .collect();
    Ok((baseline, points))
}

/// Unwraps single-leg rows into the classic `(value, report)` pairs.
fn single_leg_rows<X>(sweep: SweepBuilder<X>) -> Result<Vec<(X, SimReport)>, SimError>
where
    X: Sync,
{
    let rows = sweep.run()?;
    Ok(rows
        .into_iter()
        .map(|row| (row.value, into_single(row.reports)))
        .collect())
}

/// Unwraps two-leg rows into the classic `(value, first, second)`
/// triples.
fn two_leg_rows<X>(sweep: SweepBuilder<X>) -> Result<Vec<(X, SimReport, SimReport)>, SimError>
where
    X: Sync,
{
    let rows = sweep.run()?;
    Ok(rows
        .into_iter()
        .map(|row| {
            let (a, b) = into_pair(row.reports);
            (row.value, a, b)
        })
        .collect())
}

fn into_single(reports: Vec<SimReport>) -> SimReport {
    let mut it = reports.into_iter();
    let report = it.next().expect("row has one leg");
    assert!(it.next().is_none(), "row has one leg");
    report
}

fn into_pair(reports: Vec<SimReport>) -> (SimReport, SimReport) {
    let mut it = reports.into_iter();
    let a = it.next().expect("row has two legs");
    let b = it.next().expect("row has two legs");
    assert!(it.next().is_none(), "row has two legs");
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_latency_hurts_responsiveness() {
        let latencies = [SimDuration::from_secs(12), SimDuration::from_secs(300)];
        let rows = SweepBuilder::wake_latency(8, 32, &latencies, 21)
            .run()
            .unwrap();
        let fast = rows[0].report();
        let slow = rows[1].report();
        assert!(
            slow.unserved_ratio >= fast.unserved_ratio,
            "slow wake {:.5} should not beat fast wake {:.5}",
            slow.unserved_ratio,
            fast.unserved_ratio
        );
        // The manager actually parked hosts before the spike.
        assert!(fast.power_downs > 0);
    }

    #[test]
    fn proportionality_power_increases_with_load() {
        let rows =
            SweepBuilder::proportionality(4, 16, &[0.2, 0.8], PowerPolicy::reactive_suspend(), 5)
                .run()
                .unwrap();
        assert!(rows[0].report().avg_power_w() < rows[1].report().avg_power_w());
    }

    #[test]
    fn scale_sweep_runs_multiple_sizes() {
        let rows = SweepBuilder::scale(&[4, 8], &[PowerPolicy::reactive_suspend()], 13)
            .run()
            .unwrap();
        assert_eq!(rows.len(), 2);
        // Energy roughly scales with fleet size.
        let ratio = rows[1].report().energy_j / rows[0].report().energy_j;
        assert!((1.2..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn policy_grid_matches_single_policy_sweep() {
        let sizes = [4, 8];
        let policies = [PowerPolicy::always_on(), PowerPolicy::reactive_suspend()];
        let grid = SweepBuilder::scale(&sizes, &policies, 13).run().unwrap();
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].value, 4);
        assert_eq!(grid[1].value, 8);
        assert_eq!(grid[0].reports.len(), 2);
        // Pooled grid execution changes nothing: the PM legs equal a
        // standalone single-policy sweep exactly.
        let pm = SweepBuilder::scale(&sizes, &[PowerPolicy::reactive_suspend()], 13)
            .run()
            .unwrap();
        assert_eq!(grid[0].reports[1], pm[0].reports[0]);
        assert_eq!(grid[1].reports[1], pm[1].reports[0]);
    }

    #[test]
    fn psu_losses_inflate_wall_energy_but_preserve_savings() {
        let rows = SweepBuilder::psu(6, 24, 9).run().unwrap();
        let dc = &rows[0];
        let gold = &rows[1];
        let legacy = &rows[2];
        // Wall energy exceeds DC energy everywhere, ordered by supply
        // quality.
        assert!(gold.reports[0].energy_j > dc.reports[0].energy_j);
        assert!(legacy.reports[0].energy_j > gold.reports[0].energy_j);
        assert!(legacy.reports[1].energy_j > gold.reports[1].energy_j);
        // The savings fraction survives conversion losses to within a few
        // points. (Two effects nearly cancel: poor supplies penalize the
        // always-on fleet's light-load operating points, but they also
        // penalize the *parked* state, which sits at the PSU's worst
        // efficiency — a real cost of measuring at the wall.)
        for row in &rows {
            let savings = row.reports[1].savings_vs(&row.reports[0]);
            assert!(
                (0.2..0.45).contains(&savings),
                "{}: savings {savings:.3} out of band",
                row.value
            );
        }
    }

    #[test]
    fn prewake_sweep_has_four_variants() {
        let rows = SweepBuilder::prewake(6, 24, 5).run().unwrap();
        let labels: Vec<String> = rows
            .iter()
            .map(|row| prewake_label(row.value.0, row.value.1))
            .collect();
        assert_eq!(labels, vec!["S3", "S3+prewake", "S5", "S5+prewake"]);
        // Pre-waking never increases unserved demand for the slow regime.
        let s5 = rows[2].report();
        let s5_prewake = rows[3].report();
        assert!(
            s5_prewake.unserved_ratio <= s5.unserved_ratio * 1.2 + 1e-6,
            "prewake made S5 much worse: {} vs {}",
            s5_prewake.unserved_ratio,
            s5.unserved_ratio
        );
    }

    #[test]
    fn curve_shape_changes_savings() {
        let rows = SweepBuilder::curve_shapes(6, 24, 19).run().unwrap();
        assert_eq!(rows.len(), 3);
        // Identical endpoints: always-on energy ordering follows curve
        // area (sub-linear burns most at mid utilization).
        let sub = &rows[0];
        let sup = &rows[2];
        assert!(
            sub.reports[0].energy_j > sup.reports[0].energy_j,
            "sub-linear base {} should exceed super-linear base {}",
            sub.reports[0].energy_kwh(),
            sup.reports[0].energy_kwh()
        );
        // The managed runs preserve the same ordering (packed hosts sit
        // in the region where sub-linear draws more), and every shape
        // still shows substantial savings — curve shape moves the
        // absolute numbers, not the conclusion.
        assert!(sub.reports[1].energy_j > sup.reports[1].energy_j);
        for row in &rows {
            let savings = row.reports[1].savings_vs(&row.reports[0]);
            assert!(
                savings > 0.15,
                "{}: savings {savings:.3} unexpectedly small",
                row.value
            );
        }
    }

    #[test]
    fn interval_sweep_runs_both_modes() {
        let intervals = [SimDuration::from_mins(1), SimDuration::from_mins(5)];
        let rows = SweepBuilder::interval(6, 24, &intervals, 7).run().unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.reports[0].policy, "PM-Suspend(S3)");
            assert_eq!(row.reports[1].policy, "PM-OffOn(S5)");
        }
    }

    #[test]
    fn headroom_tightens_fleet() {
        let rows = SweepBuilder::headroom(6, 24, &[0.55, 0.85], LowPowerMode::Suspend, 17)
            .run()
            .unwrap();
        let loose = rows[0].report();
        let tight = rows[1].report();
        assert!(
            tight.avg_hosts_on <= loose.avg_hosts_on + 1e-9,
            "tight headroom should keep fewer hosts on ({} vs {})",
            tight.avg_hosts_on,
            loose.avg_hosts_on
        );
    }

    #[test]
    fn replications_summarize_each_leg_across_seeds() {
        let rows = SweepBuilder::scale(&[4], &[PowerPolicy::reactive_suspend()], 13)
            .replications(3)
            .run()
            .unwrap();
        assert_eq!(rows.len(), 1);
        let summary = &rows[0].summaries[0];
        assert_eq!(summary.runs, 3);
        assert_eq!(summary.policy, "PM-Suspend(S3)");
        assert!(summary.energy_kwh.mean > 0.0);
        assert!(summary.energy_kwh.std_dev > 0.0, "distinct seeds must vary");
        // The row report stays the base seed's run.
        let base = SweepBuilder::scale(&[4], &[PowerPolicy::reactive_suspend()], 13)
            .run()
            .unwrap();
        assert_eq!(rows[0].reports[0], base[0].reports[0]);
        assert_eq!(base[0].summaries[0].runs, 1);
        assert_eq!(base[0].summaries[0].energy_kwh.std_dev, 0.0);
    }

    #[test]
    fn generic_over_builds_custom_sweeps() {
        let rows = SweepBuilder::over(vec![2usize, 4], 3, |&spares, seed| {
            let config = ManagerConfig::for_fleet(PowerPolicy::reactive_suspend(), 6, 24)
                .with_spare_hosts(spares);
            Ok(vec![SimulationBuilder::new(
                Experiment::new(Scenario::datacenter(6, 24, seed))
                    .manager_config(config)
                    .horizon(SimDuration::from_hours(6)),
            )])
        })
        .run()
        .unwrap();
        assert_eq!(rows.len(), 2);
        // More demanded spares keeps more hosts on.
        assert!(rows[1].report().avg_hosts_on >= rows[0].report().avg_hosts_on);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_agree_with_the_builder() {
        let rows = SweepBuilder::scale(&[4], &[PowerPolicy::reactive_suspend()], 13)
            .run()
            .unwrap();
        let shim = scale_sweep(&[4], PowerPolicy::reactive_suspend(), 13).unwrap();
        assert_eq!(shim.len(), 1);
        assert_eq!(shim[0].0, 4);
        assert_eq!(shim[0].1, rows[0].reports[0]);
        let grid = scale_sweep_policies(&[4], &[PowerPolicy::reactive_suspend()], 13).unwrap();
        assert_eq!(grid[0].2, rows[0].reports[0]);
    }
}
