//! Error type for simulation runs.

use std::error::Error;
use std::fmt;

use cluster::{ClusterError, VmId};

/// Errors returned by [`crate::SimulationBuilder`] runs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The initial VM placement could not fit every VM onto the fleet
    /// (the scenario is oversubscribed on memory).
    InitialPlacement {
        /// The first VM that fit nowhere.
        vm: VmId,
    },
    /// An unrecoverable cluster error inside the event loop (indicates a
    /// bug — recoverable action failures are counted, not raised).
    Cluster(ClusterError),
    /// The trace output file could not be created.
    TraceIo {
        /// Where the sink was supposed to write.
        path: String,
        /// The OS error text (the `io::Error` itself is not `Clone`).
        message: String,
    },
    /// The simulation was configured inconsistently — rejected by
    /// [`crate::SimulationBuilder::build`] before anything ran.
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InitialPlacement { vm } => {
                write!(f, "initial placement failed: {vm} fits on no host")
            }
            SimError::Cluster(e) => write!(f, "cluster error during simulation: {e}"),
            SimError::TraceIo { path, message } => {
                write!(f, "cannot open trace output {path}: {message}")
            }
            SimError::InvalidConfig { message } => {
                write!(f, "invalid simulation configuration: {message}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for SimError {
    fn from(e: ClusterError) -> Self {
        SimError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = SimError::InitialPlacement { vm: VmId(4) };
        assert!(e.to_string().contains("vm4"));
        let e: SimError = ClusterError::UnknownVm(VmId(1)).into();
        assert!(e.to_string().contains("vm1"));
        assert!(Error::source(&e).is_some());
    }
}
