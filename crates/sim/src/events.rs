//! The simulation audit log: what happened, when.
//!
//! When enabled, the engine records every management-visible event with
//! its timestamp — the trace an operator would pull to answer "why did
//! host 12 power-cycle at 3am?". Off by default (a day of a large fleet
//! generates thousands of entries).

use cluster::{HostId, VmId};
use power::{PowerState, TransitionKind};
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::fmt;

/// One timestamped entry in the audit log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// When the event happened.
    pub time: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary of the audit log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EventKind {
    /// A live migration started.
    MigrationStarted {
        /// The VM being moved.
        vm: VmId,
        /// Destination host.
        to: HostId,
    },
    /// A live migration completed (VM now on the destination).
    MigrationCompleted {
        /// The VM that moved.
        vm: VmId,
    },
    /// A power transition started.
    PowerStarted {
        /// The host transitioning.
        host: HostId,
        /// The transition kind.
        kind: TransitionKind,
    },
    /// A power transition completed.
    PowerCompleted {
        /// The host that transitioned.
        host: HostId,
        /// The state it landed in.
        state: PowerState,
    },
    /// A power transition failed (fault injection); the host landed in
    /// the transition's failure state.
    PowerFailed {
        /// The host whose transition failed.
        host: HostId,
        /// The state it fell back to.
        state: PowerState,
    },
    /// The cluster rejected a management action as stale.
    ActionRejected,
    /// A transient VM was provisioned onto a host.
    VmArrived {
        /// The VM.
        vm: VmId,
        /// Where it was placed.
        host: HostId,
    },
    /// A transient VM's arrival found no capacity and was deferred one
    /// round.
    VmArrivalDeferred {
        /// The VM.
        vm: VmId,
    },
    /// A transient VM was retired.
    VmDeparted {
        /// The VM.
        vm: VmId,
    },
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.time)?;
        match self.kind {
            EventKind::MigrationStarted { vm, to } => write!(f, "migration of {vm} to {to} started"),
            EventKind::MigrationCompleted { vm } => write!(f, "migration of {vm} completed"),
            EventKind::PowerStarted { host, kind } => write!(f, "{host} began {kind}"),
            EventKind::PowerCompleted { host, state } => write!(f, "{host} is now {state}"),
            EventKind::PowerFailed { host, state } => {
                write!(f, "{host} transition FAILED, fell back to {state}")
            }
            EventKind::ActionRejected => write!(f, "stale management action rejected"),
            EventKind::VmArrived { vm, host } => write!(f, "{vm} provisioned on {host}"),
            EventKind::VmArrivalDeferred { vm } => write!(f, "{vm} arrival deferred (no capacity)"),
            EventKind::VmDeparted { vm } => write!(f, "{vm} retired"),
        }
    }
}

/// Renders the log as CSV (`t_seconds,event` with the display text).
pub fn events_csv(events: &[EventRecord]) -> String {
    let mut out = String::from("t_seconds,event\n");
    for e in events {
        // The display text contains no commas; quote-free CSV is safe.
        let text = e.to_string();
        let text = text
            .split_once("] ")
            .map(|(_, rest)| rest)
            .unwrap_or(&text);
        out.push_str(&format!("{},{}\n", e.time.as_secs_f64(), text));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_operator_readable() {
        let e = EventRecord {
            time: SimTime::from_secs(90),
            kind: EventKind::PowerStarted {
                host: HostId(3),
                kind: TransitionKind::Resume,
            },
        };
        assert_eq!(e.to_string(), "[1m30s] host3 began resume");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let events = vec![
            EventRecord {
                time: SimTime::from_secs(1),
                kind: EventKind::VmDeparted { vm: VmId(4) },
            },
            EventRecord {
                time: SimTime::from_secs(2),
                kind: EventKind::ActionRejected,
            },
        ];
        let csv = events_csv(&events);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_seconds,event");
        assert_eq!(lines[1], "1,vm4 retired");
        assert_eq!(lines.len(), 3);
    }
}
