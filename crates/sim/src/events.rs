//! The simulation audit log: what happened, when.
//!
//! When enabled, the engine records every management-visible event with
//! its timestamp — the trace an operator would pull to answer "why did
//! host 12 power-cycle at 3am?". Off by default (a day of a large fleet
//! generates thousands of entries).

use cluster::{HostId, VmId};
use obs::{Json, JsonError};
use power::{PowerState, TransitionKind};
use simcore::SimTime;
use std::fmt;

/// One timestamped entry in the audit log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// When the event happened.
    pub time: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary of the audit log.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EventKind {
    /// A live migration started.
    MigrationStarted {
        /// The VM being moved.
        vm: VmId,
        /// Destination host.
        to: HostId,
    },
    /// A live migration completed (VM now on the destination).
    MigrationCompleted {
        /// The VM that moved.
        vm: VmId,
    },
    /// A live migration aborted at its scheduled completion (fault
    /// injection); the VM stayed on its source host.
    MigrationFailed {
        /// The VM that failed to move.
        vm: VmId,
    },
    /// A power transition started.
    PowerStarted {
        /// The host transitioning.
        host: HostId,
        /// The transition kind.
        kind: TransitionKind,
    },
    /// A power transition completed.
    PowerCompleted {
        /// The host that transitioned.
        host: HostId,
        /// The state it landed in.
        state: PowerState,
    },
    /// A power transition failed (fault injection); the host landed in
    /// the transition's failure state.
    PowerFailed {
        /// The host whose transition failed.
        host: HostId,
        /// The state it fell back to.
        state: PowerState,
    },
    /// A power transition hung (fault injection): it will hold its
    /// transitional state for a multiple of the nominal latency before
    /// failing. Logged when the stuck interval is detected at begin time.
    PowerStuck {
        /// The host whose transition hung.
        host: HostId,
        /// The transition kind that hung.
        kind: TransitionKind,
    },
    /// The cluster rejected a management action as stale.
    ActionRejected,
    /// A transient VM was provisioned onto a host.
    VmArrived {
        /// The VM.
        vm: VmId,
        /// Where it was placed.
        host: HostId,
    },
    /// A transient VM's arrival found no capacity and was deferred one
    /// round.
    VmArrivalDeferred {
        /// The VM.
        vm: VmId,
    },
    /// A transient VM's deferred arrival could not be retried before the
    /// horizon: the admission was rejected outright.
    VmArrivalRejected {
        /// The VM.
        vm: VmId,
    },
    /// A transient VM was retired.
    VmDeparted {
        /// The VM.
        vm: VmId,
    },
    /// The placement store refused a scheduler's commit (allocation race
    /// or stale belief); the owning scheduler re-plans next round.
    CommitRejected {
        /// The scheduler whose commit was refused.
        scheduler: u32,
        /// Why the store refused it.
        reason: agile_core::ConflictReason,
    },
}

fn parse_state(s: &str) -> Result<PowerState, JsonError> {
    PowerState::ALL
        .into_iter()
        .find(|st| st.to_string() == s)
        .ok_or_else(|| JsonError {
            message: format!("unknown power state {s:?}"),
            offset: 0,
        })
}

fn parse_kind(s: &str) -> Result<TransitionKind, JsonError> {
    TransitionKind::ALL
        .into_iter()
        .find(|k| k.to_string() == s)
        .ok_or_else(|| JsonError {
            message: format!("unknown transition kind {s:?}"),
            offset: 0,
        })
}

fn field_err(what: &str) -> JsonError {
    JsonError {
        message: format!("event record missing or malformed field {what:?}"),
        offset: 0,
    }
}

impl EventRecord {
    /// Renders the event as a flat JSON object — the same schema the
    /// engine streams to trace sinks (`record` discriminator +
    /// `t_seconds` + event-specific fields).
    pub fn to_json(&self) -> Json {
        let t = ("t_seconds", Json::Num(self.time.as_secs_f64()));
        match self.kind {
            EventKind::MigrationStarted { vm, to } => Json::obj([
                ("record", Json::Str("migration".into())),
                t,
                ("phase", Json::Str("started".into())),
                ("vm", Json::Int(vm.index() as i64)),
                ("to_host", Json::Int(to.index() as i64)),
            ]),
            EventKind::MigrationCompleted { vm } => Json::obj([
                ("record", Json::Str("migration".into())),
                t,
                ("phase", Json::Str("completed".into())),
                ("vm", Json::Int(vm.index() as i64)),
            ]),
            EventKind::MigrationFailed { vm } => Json::obj([
                ("record", Json::Str("migration".into())),
                t,
                ("phase", Json::Str("failed".into())),
                ("vm", Json::Int(vm.index() as i64)),
            ]),
            EventKind::PowerStarted { host, kind } => Json::obj([
                ("record", Json::Str("power-transition".into())),
                t,
                ("phase", Json::Str("started".into())),
                ("host", Json::Int(host.index() as i64)),
                ("kind", Json::Str(kind.to_string())),
            ]),
            EventKind::PowerCompleted { host, state } => Json::obj([
                ("record", Json::Str("power-transition".into())),
                t,
                ("phase", Json::Str("completed".into())),
                ("host", Json::Int(host.index() as i64)),
                ("state", Json::Str(state.to_string())),
            ]),
            EventKind::PowerFailed { host, state } => Json::obj([
                ("record", Json::Str("power-transition".into())),
                t,
                ("phase", Json::Str("failed".into())),
                ("host", Json::Int(host.index() as i64)),
                ("state", Json::Str(state.to_string())),
            ]),
            EventKind::PowerStuck { host, kind } => Json::obj([
                ("record", Json::Str("power-transition".into())),
                t,
                ("phase", Json::Str("stuck".into())),
                ("host", Json::Int(host.index() as i64)),
                ("kind", Json::Str(kind.to_string())),
            ]),
            EventKind::ActionRejected => {
                Json::obj([("record", Json::Str("action-rejected".into())), t])
            }
            EventKind::VmArrived { vm, host } => Json::obj([
                ("record", Json::Str("vm-lifecycle".into())),
                t,
                ("phase", Json::Str("arrived".into())),
                ("vm", Json::Int(vm.index() as i64)),
                ("host", Json::Int(host.index() as i64)),
            ]),
            EventKind::VmArrivalDeferred { vm } => Json::obj([
                ("record", Json::Str("vm-lifecycle".into())),
                t,
                ("phase", Json::Str("deferred".into())),
                ("vm", Json::Int(vm.index() as i64)),
            ]),
            EventKind::VmArrivalRejected { vm } => Json::obj([
                ("record", Json::Str("vm-lifecycle".into())),
                t,
                ("phase", Json::Str("rejected".into())),
                ("vm", Json::Int(vm.index() as i64)),
            ]),
            EventKind::VmDeparted { vm } => Json::obj([
                ("record", Json::Str("vm-lifecycle".into())),
                t,
                ("phase", Json::Str("departed".into())),
                ("vm", Json::Int(vm.index() as i64)),
            ]),
            EventKind::CommitRejected { scheduler, reason } => Json::obj([
                ("record", Json::Str("commit-rejected".into())),
                t,
                ("scheduler", Json::Int(scheduler as i64)),
                ("reason", Json::Str(reason.label().into())),
            ]),
        }
    }

    /// Parses a record produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the discriminator, phase, or any
    /// required field is missing or of the wrong type.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let str_field = |k: &str| -> Result<&str, JsonError> {
            json.get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| field_err(k))
        };
        let vm = |k: &str| -> Result<VmId, JsonError> {
            Ok(VmId(
                json.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| field_err(k))? as u32,
            ))
        };
        let host = |k: &str| -> Result<HostId, JsonError> {
            Ok(HostId(
                json.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| field_err(k))? as u32,
            ))
        };
        let time = SimTime::from_millis(
            (json
                .get("t_seconds")
                .and_then(Json::as_f64)
                .ok_or_else(|| field_err("t_seconds"))?
                * 1000.0)
                .round() as u64,
        );
        let kind = match (
            str_field("record")?,
            json.get("phase").and_then(Json::as_str),
        ) {
            ("migration", Some("started")) => EventKind::MigrationStarted {
                vm: vm("vm")?,
                to: host("to_host")?,
            },
            ("migration", Some("completed")) => EventKind::MigrationCompleted { vm: vm("vm")? },
            ("migration", Some("failed")) => EventKind::MigrationFailed { vm: vm("vm")? },
            ("power-transition", Some("started")) => EventKind::PowerStarted {
                host: host("host")?,
                kind: parse_kind(str_field("kind")?)?,
            },
            ("power-transition", Some("completed")) => EventKind::PowerCompleted {
                host: host("host")?,
                state: parse_state(str_field("state")?)?,
            },
            ("power-transition", Some("failed")) => EventKind::PowerFailed {
                host: host("host")?,
                state: parse_state(str_field("state")?)?,
            },
            ("power-transition", Some("stuck")) => EventKind::PowerStuck {
                host: host("host")?,
                kind: parse_kind(str_field("kind")?)?,
            },
            ("action-rejected", _) => EventKind::ActionRejected,
            ("vm-lifecycle", Some("arrived")) => EventKind::VmArrived {
                vm: vm("vm")?,
                host: host("host")?,
            },
            ("vm-lifecycle", Some("deferred")) => EventKind::VmArrivalDeferred { vm: vm("vm")? },
            ("vm-lifecycle", Some("rejected")) => EventKind::VmArrivalRejected { vm: vm("vm")? },
            ("vm-lifecycle", Some("departed")) => EventKind::VmDeparted { vm: vm("vm")? },
            ("commit-rejected", _) => EventKind::CommitRejected {
                scheduler: json
                    .get("scheduler")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| field_err("scheduler"))? as u32,
                reason: {
                    let label = str_field("reason")?;
                    agile_core::ConflictReason::from_label(label).ok_or_else(|| JsonError {
                        message: format!("unknown conflict reason {label:?}"),
                        offset: 0,
                    })?
                },
            },
            (record, phase) => {
                return Err(JsonError {
                    message: format!("unknown event record {record:?} phase {phase:?}"),
                    offset: 0,
                })
            }
        };
        Ok(EventRecord { time, kind })
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.time)?;
        match self.kind {
            EventKind::MigrationStarted { vm, to } => {
                write!(f, "migration of {vm} to {to} started")
            }
            EventKind::MigrationCompleted { vm } => write!(f, "migration of {vm} completed"),
            EventKind::MigrationFailed { vm } => {
                write!(f, "migration of {vm} ABORTED; staying on source")
            }
            EventKind::PowerStarted { host, kind } => write!(f, "{host} began {kind}"),
            EventKind::PowerCompleted { host, state } => write!(f, "{host} is now {state}"),
            EventKind::PowerFailed { host, state } => {
                write!(f, "{host} transition FAILED, fell back to {state}")
            }
            EventKind::PowerStuck { host, kind } => {
                write!(f, "{host} {kind} HUNG; will fail after the stuck interval")
            }
            EventKind::ActionRejected => write!(f, "stale management action rejected"),
            EventKind::VmArrived { vm, host } => write!(f, "{vm} provisioned on {host}"),
            EventKind::VmArrivalDeferred { vm } => write!(f, "{vm} arrival deferred (no capacity)"),
            EventKind::VmArrivalRejected { vm } => {
                write!(f, "{vm} admission rejected (no capacity before horizon)")
            }
            EventKind::VmDeparted { vm } => write!(f, "{vm} retired"),
            EventKind::CommitRejected { scheduler, reason } => {
                write!(f, "scheduler {scheduler} commit rejected ({reason})")
            }
        }
    }
}

/// Renders the log as CSV (`t_seconds,event` with the display text).
pub fn events_csv(events: &[EventRecord]) -> String {
    let mut out = String::from("t_seconds,event\n");
    for e in events {
        // The display text contains no commas; quote-free CSV is safe.
        let text = e.to_string();
        let text = text.split_once("] ").map(|(_, rest)| rest).unwrap_or(&text);
        out.push_str(&format!("{},{}\n", e.time.as_secs_f64(), text));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_operator_readable() {
        let e = EventRecord {
            time: SimTime::from_secs(90),
            kind: EventKind::PowerStarted {
                host: HostId(3),
                kind: TransitionKind::Resume,
            },
        };
        assert_eq!(e.to_string(), "[1m30s] host3 began resume");
    }

    #[test]
    fn json_round_trips_every_variant() {
        let kinds = [
            EventKind::MigrationStarted {
                vm: VmId(4),
                to: HostId(2),
            },
            EventKind::MigrationCompleted { vm: VmId(4) },
            EventKind::MigrationFailed { vm: VmId(4) },
            EventKind::PowerStarted {
                host: HostId(3),
                kind: TransitionKind::Resume,
            },
            EventKind::PowerCompleted {
                host: HostId(3),
                state: PowerState::On,
            },
            EventKind::PowerFailed {
                host: HostId(3),
                state: PowerState::Suspended,
            },
            EventKind::PowerStuck {
                host: HostId(3),
                kind: TransitionKind::Suspend,
            },
            EventKind::ActionRejected,
            EventKind::VmArrived {
                vm: VmId(1),
                host: HostId(0),
            },
            EventKind::VmArrivalDeferred { vm: VmId(1) },
            EventKind::VmArrivalRejected { vm: VmId(1) },
            EventKind::VmDeparted { vm: VmId(1) },
            EventKind::CommitRejected {
                scheduler: 2,
                reason: agile_core::ConflictReason::Headroom,
            },
        ];
        for kind in kinds {
            let e = EventRecord {
                time: SimTime::from_millis(90_500),
                kind,
            };
            let json = e.to_json();
            // Through the writer and parser too, not just the value model.
            let reparsed = Json::parse(&json.to_string_compact()).unwrap();
            assert_eq!(EventRecord::from_json(&reparsed).unwrap(), e, "{kind:?}");
        }
    }

    #[test]
    fn from_json_rejects_unknown_record() {
        let j = Json::obj([
            ("record", Json::Str("nonsense".into())),
            ("t_seconds", Json::Num(1.0)),
        ]);
        assert!(EventRecord::from_json(&j).is_err());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let events = vec![
            EventRecord {
                time: SimTime::from_secs(1),
                kind: EventKind::VmDeparted { vm: VmId(4) },
            },
            EventRecord {
                time: SimTime::from_secs(2),
                kind: EventKind::ActionRejected,
            },
        ];
        let csv = events_csv(&events);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_seconds,event");
        assert_eq!(lines[1], "1,vm4 retired");
        assert_eq!(lines.len(), 3);
    }
}
