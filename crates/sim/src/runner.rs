//! The experiment runner: scenario × policy × horizon → report.

use std::path::PathBuf;

use agile_core::{ManagerConfig, PlanMode, PowerPolicy, RoundStats, VirtManager};
use cluster::AccountingMode;
use obs::{JsonlSink, MetricsSnapshot};
use simcore::{SimDuration, SimTime};

use crate::metrics::MetricsCollector;
use crate::{DatacenterSim, FailureModel, Scenario, SimError, SimReport};

/// A configured simulation run: scenario × policy × horizon.
///
/// `Experiment` describes *what* to simulate; hand it to
/// [`crate::SimulationBuilder`] to choose *how* to run it (thread count,
/// profiling, cluster capture) and to execute. The builder is the only
/// entry point — the legacy `Experiment::run*` shims were removed after
/// their one-release deprecation window.
///
/// The [`PowerPolicy::Oracle`] policy is evaluated analytically — ideal
/// consolidation with free transitions on the same hardware curves — and
/// produces a report with the same shape as the simulated policies.
///
/// # Example
///
/// ```
/// use agile_core::PowerPolicy;
/// use dcsim::{Experiment, Scenario, SimulationBuilder};
/// use simcore::SimDuration;
///
/// let scenario = Scenario::small_test(7);
/// let base = SimulationBuilder::new(
///     Experiment::new(scenario.clone())
///         .policy(PowerPolicy::always_on())
///         .horizon(SimDuration::from_hours(2)),
/// )
/// .build()?
/// .run()?;
/// let oracle = SimulationBuilder::new(
///     Experiment::new(scenario)
///         .policy(PowerPolicy::oracle())
///         .horizon(SimDuration::from_hours(2)),
/// )
/// .build()?
/// .run()?;
/// assert!(oracle.report.energy_j < base.report.energy_j);
/// # Ok::<(), dcsim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    scenario: Scenario,
    config: ConfigSource,
    horizon: SimDuration,
    control_interval: Option<SimDuration>,
    failures: FailureModel,
    record_events: bool,
    trace_path: Option<PathBuf>,
    accounting: AccountingMode,
    plan_mode: Option<PlanMode>,
    schedulers: Option<usize>,
    view_staleness: Option<usize>,
    control_latency: Option<usize>,
}

/// Where the manager configuration comes from: a bare policy gets
/// fleet-scaled defaults; an explicit config is used verbatim.
#[derive(Debug, Clone)]
enum ConfigSource {
    Policy(PowerPolicy),
    Explicit(ManagerConfig),
}

impl Experiment {
    /// Creates an experiment with the `AlwaysOn` policy and a 24 h
    /// horizon.
    pub fn new(scenario: Scenario) -> Self {
        Experiment {
            scenario,
            config: ConfigSource::Policy(PowerPolicy::always_on()),
            horizon: SimDuration::from_hours(24),
            control_interval: None,
            failures: FailureModel::none(),
            record_events: false,
            trace_path: None,
            accounting: AccountingMode::default(),
            plan_mode: None,
            schedulers: None,
            view_staleness: None,
            control_latency: None,
        }
    }

    /// Sets the policy; the manager configuration is derived with
    /// [`ManagerConfig::for_fleet`] so action caps scale with the
    /// scenario. Overrides any earlier
    /// [`manager_config`](Self::manager_config).
    pub fn policy(mut self, policy: PowerPolicy) -> Self {
        self.config = ConfigSource::Policy(policy);
        self
    }

    /// Sets the full manager configuration verbatim (for sensitivity
    /// sweeps). Overrides any earlier [`policy`](Self::policy).
    pub fn manager_config(mut self, config: ManagerConfig) -> Self {
        self.config = ConfigSource::Explicit(config);
        self
    }

    /// The manager configuration this experiment will run.
    pub(crate) fn resolve_config(&self) -> ManagerConfig {
        let config = match &self.config {
            ConfigSource::Policy(p) => ManagerConfig::for_fleet(
                *p,
                self.scenario.host_specs().len(),
                self.scenario.fleet().len(),
            ),
            ConfigSource::Explicit(c) => c.clone(),
        };
        match self.plan_mode {
            Some(mode) => config.with_plan_mode(mode),
            None => config,
        }
    }

    /// Enables power-transition fault injection (default: none). Ignored
    /// by the `Oracle` policy, whose transitions are hypothetical.
    pub fn failure_model(mut self, failures: FailureModel) -> Self {
        self.failures = failures;
        self
    }

    /// Enables the audit log (entries land in [`SimReport::events`]).
    /// Ignored by the analytic (`Oracle`/DVFS) paths, which take no
    /// management actions.
    pub fn record_events(mut self) -> Self {
        self.record_events = true;
        self
    }

    /// Streams trace records (JSON Lines, constant memory) to `path`.
    /// Ignored by the analytic (`Oracle`/DVFS) paths, which have no
    /// event loop. The path is stored, not opened — the sink is created
    /// when the run starts, so `Experiment` stays `Clone`.
    pub fn trace_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Selects the cluster accounting mode (default:
    /// [`AccountingMode::Incremental`]). The scan mode recomputes every
    /// aggregate from scratch each query and exists as the reference the
    /// incremental mode is verified against — reports must be
    /// bit-identical between the two.
    pub fn accounting(mut self, mode: AccountingMode) -> Self {
        self.accounting = mode;
        self
    }

    /// Selects the consolidation planning mode (default:
    /// [`PlanMode::Scan`]). The indexed mode maintains utilization-bucket
    /// indices so candidate/destination picks stop scanning the full
    /// fleet; reports must be bit-identical between the two. Overrides
    /// the mode carried by an explicit
    /// [`manager_config`](Self::manager_config).
    pub fn plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = Some(mode);
        self
    }

    /// Sets the simulated horizon (default 24 h).
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the management/demand tick (default: the scenario's demand
    /// step).
    pub fn control_interval(mut self, interval: SimDuration) -> Self {
        self.control_interval = Some(interval);
        self
    }

    /// Runs `count` concurrent scheduler replicas over fixed contiguous
    /// host partitions, every commit arbitrated by the shared
    /// conflict-checked placement store. Setting any control-plane knob
    /// (this, [`view_staleness`](Self::view_staleness), or
    /// [`control_latency`](Self::control_latency)) routes the run through
    /// the distributed commit path; `schedulers(1)` with zero staleness
    /// and latency reproduces the default path byte-identically, which is
    /// what the differential suite verifies. Ignored by the analytic
    /// (`Oracle`/DVFS) paths — the builder rejects the combination.
    pub fn schedulers(mut self, count: usize) -> Self {
        self.schedulers = Some(count);
        self
    }

    /// Each scheduler observes remote partitions through a snapshot this
    /// many control rounds old (default 0 = fully fresh). Only visible
    /// with more than one scheduler; implies the distributed commit path.
    pub fn view_staleness(mut self, rounds: usize) -> Self {
        self.view_staleness = Some(rounds);
        self
    }

    /// Plans computed at tick `t` commit at tick `t + rounds` (default 0
    /// = same tick). Implies the distributed commit path.
    pub fn control_latency(mut self, rounds: usize) -> Self {
        self.control_latency = Some(rounds);
        self
    }

    /// The resolved control-plane knobs — `Some` iff any of them was set.
    pub(crate) fn control_plane_knobs(&self) -> Option<(usize, usize, usize)> {
        if self.schedulers.is_none()
            && self.view_staleness.is_none()
            && self.control_latency.is_none()
        {
            return None;
        }
        Some((
            self.schedulers.unwrap_or(1),
            self.view_staleness.unwrap_or(0),
            self.control_latency.unwrap_or(0),
        ))
    }

    /// The scenario under test.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Whether this experiment resolves to the analytic `Oracle` policy
    /// (no event loop, no cluster).
    pub(crate) fn is_oracle(&self) -> bool {
        matches!(self.resolve_config().policy(), PowerPolicy::Oracle)
    }

    /// The effective management tick (explicit override or the scenario's
    /// demand step).
    pub(crate) fn resolved_interval(&self) -> SimDuration {
        self.control_interval
            .unwrap_or_else(|| self.scenario.demand_step())
    }

    /// The simulated horizon.
    pub(crate) fn horizon_duration(&self) -> SimDuration {
        self.horizon
    }

    pub(crate) fn build_sim(&self) -> Result<DatacenterSim, SimError> {
        let interval = self
            .control_interval
            .unwrap_or_else(|| self.scenario.demand_step());
        let manager = VirtManager::new(
            self.resolve_config(),
            self.scenario.host_specs().len(),
            self.scenario.fleet().len(),
        );
        let mut sim = DatacenterSim::new(&self.scenario, Some(manager), interval, self.horizon)?;
        if let Some((schedulers, staleness, latency)) = self.control_plane_knobs() {
            sim.set_control_plane(schedulers, staleness, latency);
        }
        sim.set_accounting_mode(self.accounting);
        sim.set_failure_model(self.failures);
        if self.record_events {
            sim.enable_event_log();
        }
        if let Some(path) = &self.trace_path {
            let sink = JsonlSink::create(path).map_err(|e| SimError::TraceIo {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            sim.set_trace_sink(Box::new(sink));
        }
        Ok(sim)
    }

    /// The analytic DVFS-only evaluation behind the builder's DVFS mode
    /// ([`crate::SimulationBuilder::dvfs_baseline`]): every host stays on
    /// and independently clocks down to the lowest sufficient frequency
    /// for its share of demand (perfectly balanced across the fleet). No
    /// consolidation, no power states — the classic alternative the
    /// paper's platform low-power states are contrasted against.
    /// Serves everything (violations zero) since capacity never leaves.
    pub(crate) fn dvfs_report(&self, dvfs: &power::DvfsModel) -> SimReport {
        let interval = self
            .control_interval
            .unwrap_or_else(|| self.scenario.demand_step());
        let hosts = self.scenario.host_specs();
        let num_hosts = hosts.len();
        let total_cap: f64 = hosts.iter().map(|h| h.capacity().cpu_cores).sum();
        let fleet = self.scenario.fleet();
        let caps: Vec<f64> = fleet.vm_specs().iter().map(|s| s.cpu_cap_cores()).collect();

        let mut collector = MetricsCollector::new(interval);
        let mut energy_j = 0.0;
        let end = SimTime::ZERO + self.horizon;
        let mut t = SimTime::ZERO;
        let mut hosts_on = simcore::TimeSeries::new();
        let mut util_acc = simcore::Welford::new();
        while t <= end {
            let demand: f64 = fleet
                .traces()
                .iter()
                .zip(&caps)
                .map(|(trace, cap)| trace.at(t) * cap)
                .sum();
            let fleet_util = (demand / total_cap).clamp(0.0, 1.0);
            util_acc.push(fleet_util);
            collector.record_latency_sample(fleet_util, demand);
            let power: f64 = hosts
                .iter()
                .map(|h| dvfs.best_power_w(h.profile().curve(), fleet_util))
                .sum();
            hosts_on.record(t, num_hosts as f64);
            collector.record_power(t, power);
            let dt = interval
                .as_secs_f64()
                .min(end.since(t).as_secs_f64().max(0.0));
            if t < end {
                energy_j += power * dt;
            }
            t += interval;
        }

        let mut report = collector.finalize(
            self.scenario.name().to_string(),
            "DVFS-only".to_string(),
            self.scenario.seed(),
            self.horizon,
            num_hosts,
            fleet.len(),
            energy_j,
            0,
            RoundStats::default(),
            0.0,
            0.0,
            crate::metrics::FaultCounters::default(),
            Vec::new(),
            MetricsSnapshot::new(),
        );
        report.avg_hosts_on = num_hosts as f64;
        report.avg_util_on = util_acc.mean();
        report.hosts_on_series = hosts_on;
        report
    }

    /// The analytic proportionality bound: at every tick, the smallest
    /// prefix of hosts (most CPU-per-peak-watt efficient first) that can
    /// carry the offered demand runs at equal utilization on its real
    /// power curves; everything else draws zero; transitions are free and
    /// instant. Works for heterogeneous fleets; for a uniform fleet it
    /// reduces to the classic ceil(demand/capacity) bound.
    pub(crate) fn run_oracle(&self) -> SimReport {
        let interval = self
            .control_interval
            .unwrap_or_else(|| self.scenario.demand_step());
        let hosts = self.scenario.host_specs();
        let num_hosts = hosts.len();
        // Most efficient hosts first (capacity per peak watt).
        let mut order: Vec<usize> = (0..num_hosts).collect();
        let efficiency = |i: usize| {
            let h = &hosts[i];
            h.capacity().cpu_cores / h.profile().curve().peak_w().max(1e-9)
        };
        order.sort_by(|&a, &b| {
            efficiency(b)
                .partial_cmp(&efficiency(a))
                .expect("efficiency is finite")
        });
        let fleet = self.scenario.fleet();
        let caps: Vec<f64> = fleet.vm_specs().iter().map(|s| s.cpu_cap_cores()).collect();

        let mut collector = MetricsCollector::new(interval);
        let mut energy_j = 0.0;
        let end = SimTime::ZERO + self.horizon;
        let mut t = SimTime::ZERO;
        let mut hosts_on = simcore::TimeSeries::new();
        let mut util_acc = simcore::Welford::new();
        while t <= end {
            let demand: f64 = fleet
                .traces()
                .iter()
                .zip(&caps)
                .map(|(trace, cap)| trace.at(t) * cap)
                .sum();
            // Take the shortest efficient prefix that fits the demand.
            let mut n = 0usize;
            let mut cap_sum = 0.0;
            if demand > 0.0 {
                for &i in &order {
                    n += 1;
                    cap_sum += hosts[i].capacity().cpu_cores;
                    if cap_sum >= demand {
                        break;
                    }
                }
            }
            let util = if n > 0 {
                (demand / cap_sum).min(1.0)
            } else {
                0.0
            };
            util_acc.push(util);
            collector.record_latency_sample(util, demand);
            let power: f64 = order[..n]
                .iter()
                .map(|&i| hosts[i].profile().curve().power_at(util))
                .sum();
            hosts_on.record(t, n as f64);
            collector.record_power(t, power);
            // The last partial interval is clipped to the horizon.
            let dt = interval
                .as_secs_f64()
                .min(end.since(t).as_secs_f64().max(0.0));
            if t < end {
                energy_j += power * dt;
            }
            t += interval;
        }

        let mut report = collector.finalize(
            self.scenario.name().to_string(),
            PowerPolicy::oracle().label().to_string(),
            self.scenario.seed(),
            self.horizon,
            num_hosts,
            fleet.len(),
            energy_j,
            0,
            RoundStats::default(),
            0.0,
            0.0,
            crate::metrics::FaultCounters::default(),
            Vec::new(),
            MetricsSnapshot::new(),
        );
        // Oracle serves everything by construction.
        report.avg_hosts_on = hosts_on.time_weighted_mean(end).unwrap_or(0.0);
        report.avg_util_on = util_acc.mean();
        report.hosts_on_series = hosts_on;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimulationBuilder;

    #[test]
    fn policy_ladder_orders_energy() {
        // Oracle <= PM-Suspend < AlwaysOn on a diurnal day.
        let scenario = Scenario::datacenter(8, 32, 11);
        let horizon = SimDuration::from_hours(24);
        let run = |p: PowerPolicy| {
            SimulationBuilder::new(Experiment::new(scenario.clone()).policy(p).horizon(horizon))
                .run_report()
                .unwrap()
        };
        let base = run(PowerPolicy::always_on());
        let suspend = run(PowerPolicy::reactive_suspend());
        let oracle = run(PowerPolicy::oracle());
        assert!(
            oracle.energy_j < suspend.energy_j,
            "oracle {} >= suspend {}",
            oracle.energy_kwh(),
            suspend.energy_kwh()
        );
        assert!(
            suspend.energy_j < base.energy_j,
            "suspend {} >= base {}",
            suspend.energy_kwh(),
            base.energy_kwh()
        );
    }

    #[test]
    fn oracle_has_no_violations_or_actions() {
        let r = SimulationBuilder::new(
            Experiment::new(Scenario::small_test(3))
                .policy(PowerPolicy::oracle())
                .horizon(SimDuration::from_hours(4)),
        )
        .run_report()
        .unwrap();
        assert_eq!(r.violation_fraction, 0.0);
        assert_eq!(r.migrations, 0);
        assert_eq!(r.power_ups + r.power_downs, 0);
        assert!(r.energy_j > 0.0);
        assert_eq!(r.policy, "Oracle");
    }

    #[test]
    fn manager_config_override_applies() {
        let cfg = ManagerConfig::new(PowerPolicy::reactive_suspend()).with_spare_hosts(3);
        let e = Experiment::new(Scenario::small_test(4)).manager_config(cfg);
        // With 3 spares demanded on a 4-host cluster, consolidation can
        // barely act; the run must still complete.
        let r = SimulationBuilder::new(e.horizon(SimDuration::from_hours(2)))
            .run_report()
            .unwrap();
        assert_eq!(r.policy, "PM-Suspend(S3)");
    }

    #[test]
    fn control_plane_knobs_default_to_unset() {
        let e = Experiment::new(Scenario::small_test(5));
        assert_eq!(e.control_plane_knobs(), None);
        // Setting any one knob engages the distributed commit path with
        // defaults for the others.
        let e = e.view_staleness(2);
        assert_eq!(e.control_plane_knobs(), Some((1, 2, 0)));
        let e = e.schedulers(4).control_latency(1);
        assert_eq!(e.control_plane_knobs(), Some((4, 2, 1)));
    }
}
