//! The unified simulation entry point.
//!
//! [`SimulationBuilder`] is the one front door to every way this crate
//! can evaluate an [`Experiment`]: the discrete-event engine (optionally
//! sharded across worker threads, optionally distributed across
//! concurrent schedulers, optionally profiled, optionally returning the
//! final cluster), the analytic `Oracle` bound, and the analytic
//! DVFS-only baseline. The four legacy entry points (`Experiment::run`,
//! `run_detailed`, `run_profiled`, `run_dvfs_baseline`) were removed
//! after their one-release deprecation window.
//!
//! The builder validates the whole configuration up front:
//! [`SimulationBuilder::build`] returns [`SimError::InvalidConfig`]
//! instead of panicking mid-run, so drivers can surface bad sweeps as
//! errors.
//!
//! # Example
//!
//! ```
//! use agile_core::PowerPolicy;
//! use dcsim::{Experiment, Scenario, SimulationBuilder};
//! use simcore::SimDuration;
//!
//! let experiment = Experiment::new(Scenario::small_test(7))
//!     .policy(PowerPolicy::reactive_suspend())
//!     .horizon(SimDuration::from_hours(2));
//! let out = SimulationBuilder::new(experiment)
//!     .threads(2) // bit-identical to the serial engine
//!     .capture_cluster(true)
//!     .build()?
//!     .run()?;
//! assert!(out.report.energy_kwh() > 0.0);
//! assert!(out.cluster.is_some());
//! # Ok::<(), dcsim::SimError>(())
//! ```

use cluster::Cluster;
use obs::{ProfileSummary, SpanSummary};
use power::DvfsModel;

use crate::{Experiment, SimError, SimReport};

/// Builder for a validated, ready-to-run [`Simulation`].
///
/// Wraps an [`Experiment`] (the *what*: scenario, policy, horizon,
/// failure model, sinks) with execution options (the *how*: worker
/// threads, profiling, cluster capture, analytic DVFS mode).
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    experiment: Experiment,
    threads: usize,
    profiling: bool,
    capture_cluster: bool,
    dvfs: Option<DvfsModel>,
}

impl SimulationBuilder {
    /// Starts a builder around `experiment` with serial execution and no
    /// extra outputs.
    pub fn new(experiment: Experiment) -> Self {
        SimulationBuilder {
            experiment,
            threads: 1,
            profiling: false,
            capture_cluster: false,
            dvfs: None,
        }
    }

    /// Sets the worker-thread count for the deterministic sharded tick
    /// engine (default 1 — the original serial engine). Any count
    /// produces a bit-identical [`SimReport`]; the count is honored
    /// exactly, never capped by the machine's core count.
    /// [`build`](Self::build) rejects `0`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables wall-clock phase profiling; the profile comes back in
    /// [`SimOutput::profile`], out-of-band of the bit-deterministic
    /// report. Incompatible with the analytic (Oracle/DVFS) modes.
    pub fn profiling(mut self, enable: bool) -> Self {
        self.profiling = enable;
        self
    }

    /// Returns the final [`Cluster`] in [`SimOutput::cluster`] for
    /// per-host inspection. Incompatible with the analytic (Oracle/DVFS)
    /// modes, which simulate no cluster.
    pub fn capture_cluster(mut self, enable: bool) -> Self {
        self.capture_cluster = enable;
        self
    }

    /// Selects the consolidation planning mode on the wrapped experiment
    /// — convenience for callers that only hold the builder. See
    /// [`Experiment::plan_mode`].
    pub fn plan_mode(mut self, mode: agile_core::PlanMode) -> Self {
        self.experiment = self.experiment.plan_mode(mode);
        self
    }

    /// Runs the distributed control plane with `count` concurrent
    /// schedulers — convenience for callers that only hold the builder.
    /// See [`Experiment::schedulers`]. [`build`](Self::build) rejects
    /// `0`, more schedulers than hosts, and any combination with the
    /// analytic (Oracle/DVFS) modes.
    pub fn schedulers(mut self, count: usize) -> Self {
        self.experiment = self.experiment.schedulers(count);
        self
    }

    /// Sets the remote-partition view staleness in control rounds. See
    /// [`Experiment::view_staleness`].
    pub fn view_staleness(mut self, rounds: usize) -> Self {
        self.experiment = self.experiment.view_staleness(rounds);
        self
    }

    /// Sets the plan-to-commit control-loop latency in control rounds.
    /// See [`Experiment::control_latency`].
    pub fn control_latency(mut self, rounds: usize) -> Self {
        self.experiment = self.experiment.control_latency(rounds);
        self
    }

    /// Evaluates the analytic DVFS-only baseline instead of the event
    /// loop: every host stays on and clocks down to the lowest
    /// sufficient frequency. The experiment's policy is ignored.
    pub fn dvfs_baseline(mut self, model: DvfsModel) -> Self {
        self.dvfs = Some(model);
        self
    }

    /// Builds and runs in one step, returning just the report — the
    /// common case for sweeps that want neither the cluster nor the
    /// profile.
    ///
    /// # Errors
    ///
    /// As for [`build`](Self::build) and [`Simulation::run`].
    pub fn run_report(self) -> Result<SimReport, SimError> {
        Ok(self.build()?.run()?.report)
    }

    /// Validates the configuration and constructs the simulation
    /// (including the initial VM placement for engine runs).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for an inconsistent configuration
    /// (zero threads, zero horizon, control interval longer than the
    /// horizon, invalid manager thresholds, or cluster/profile capture
    /// requested from an analytic mode);
    /// [`SimError::InitialPlacement`] / [`SimError::TraceIo`] as for the
    /// engine.
    pub fn build(self) -> Result<Simulation, SimError> {
        let invalid = |message: String| SimError::InvalidConfig { message };
        if self.threads == 0 {
            return Err(invalid("threads must be at least 1".to_string()));
        }
        let horizon = self.experiment.horizon_duration();
        if horizon.as_secs_f64() <= 0.0 {
            return Err(invalid("horizon must be non-zero".to_string()));
        }
        let interval = self.experiment.resolved_interval();
        if interval.as_secs_f64() <= 0.0 {
            return Err(invalid("control interval must be non-zero".to_string()));
        }
        if interval > horizon {
            return Err(invalid(format!(
                "control interval ({interval}) exceeds the horizon ({horizon})"
            )));
        }
        self.experiment
            .resolve_config()
            .try_validate()
            .map_err(|e| invalid(format!("manager config: {e}")))?;
        if let Some((schedulers, _, _)) = self.experiment.control_plane_knobs() {
            if schedulers == 0 {
                return Err(invalid(
                    "control plane needs at least one scheduler".to_string(),
                ));
            }
            let hosts = self.experiment.scenario().host_specs().len();
            if schedulers > hosts {
                return Err(invalid(format!(
                    "more schedulers ({schedulers}) than hosts ({hosts})"
                )));
            }
        }

        let analytic = if self.dvfs.is_some() {
            Some("the DVFS baseline")
        } else if self.experiment.is_oracle() {
            Some("the Oracle policy")
        } else {
            None
        };
        if let Some(mode) = analytic {
            if self.capture_cluster {
                return Err(invalid(format!("{mode} simulates no cluster to capture")));
            }
            if self.profiling {
                return Err(invalid(format!("{mode} has no event loop to profile")));
            }
            if self.experiment.control_plane_knobs().is_some() {
                return Err(invalid(format!("{mode} has no schedulers to distribute")));
            }
            let inner = match self.dvfs {
                Some(model) => SimKind::Dvfs {
                    experiment: self.experiment,
                    model,
                },
                None => SimKind::Oracle {
                    experiment: self.experiment,
                },
            };
            return Ok(Simulation { inner });
        }

        let mut sim = self.experiment.build_sim()?;
        sim.set_threads(self.threads);
        if self.profiling {
            sim.enable_profiling();
        }
        Ok(Simulation {
            inner: SimKind::Engine {
                sim: Box::new(sim),
                profiling: self.profiling,
                capture_cluster: self.capture_cluster,
            },
        })
    }
}

/// A validated simulation, ready to [`run`](Self::run) exactly once.
#[derive(Debug)]
pub struct Simulation {
    inner: SimKind,
}

/// How the run is evaluated: the discrete-event engine or one of the two
/// analytic models.
#[derive(Debug)]
enum SimKind {
    Engine {
        /// Boxed: the engine is much larger than the analytic variants.
        sim: Box<crate::DatacenterSim>,
        profiling: bool,
        capture_cluster: bool,
    },
    Oracle {
        experiment: Experiment,
    },
    Dvfs {
        experiment: Experiment,
        model: DvfsModel,
    },
}

impl Simulation {
    /// Runs to the horizon.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable engine errors (see [`SimError`]); the
    /// analytic modes cannot fail.
    pub fn run(self) -> Result<SimOutput, SimError> {
        match self.inner {
            SimKind::Engine {
                sim,
                profiling,
                capture_cluster,
            } => {
                let (report, cluster, profile, spans) = sim.run_inner()?;
                Ok(SimOutput {
                    report,
                    cluster: capture_cluster.then_some(cluster),
                    profile: profiling.then_some(profile),
                    spans,
                })
            }
            SimKind::Oracle { experiment } => Ok(SimOutput {
                report: experiment.run_oracle(),
                cluster: None,
                profile: None,
                spans: None,
            }),
            SimKind::Dvfs { experiment, model } => Ok(SimOutput {
                report: experiment.dvfs_report(&model),
                cluster: None,
                profile: None,
                spans: None,
            }),
        }
    }
}

/// Everything a run can produce. The report is always present; the
/// cluster and profile appear only when requested on the builder.
#[derive(Debug)]
#[non_exhaustive]
pub struct SimOutput {
    /// The bit-deterministic run report.
    pub report: SimReport,
    /// The final cluster, when built with
    /// [`SimulationBuilder::capture_cluster`].
    pub cluster: Option<Cluster>,
    /// The wall-clock phase profile, when built with
    /// [`SimulationBuilder::profiling`].
    pub profile: Option<ProfileSummary>,
    /// The full hierarchical span summary (per-phase attribution down to
    /// `candidate_scan`/`trial`/`undo`), when built with
    /// [`SimulationBuilder::profiling`].
    pub spans: Option<SpanSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;
    use agile_core::{ManagerConfig, PowerPolicy};
    use simcore::SimDuration;

    fn experiment(seed: u64) -> Experiment {
        Experiment::new(Scenario::small_test(seed))
            .policy(PowerPolicy::reactive_suspend())
            .horizon(SimDuration::from_hours(2))
    }

    #[test]
    fn default_build_runs_serial_engine() {
        let out = SimulationBuilder::new(experiment(1))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(out.report.energy_j > 0.0);
        assert!(out.cluster.is_none());
        assert!(out.profile.is_none());
    }

    #[test]
    fn capture_and_profile_are_opt_in() {
        let out = SimulationBuilder::new(experiment(2))
            .capture_cluster(true)
            .profiling(true)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let cluster = out.cluster.expect("requested cluster");
        assert!(cluster.placement().check_invariants());
        assert!(out.profile.is_some());
    }

    #[test]
    fn zero_threads_is_rejected() {
        let err = SimulationBuilder::new(experiment(3))
            .threads(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
        assert!(err.to_string().contains("threads"));
    }

    #[test]
    fn interval_beyond_horizon_is_rejected() {
        let e = experiment(4).control_interval(SimDuration::from_hours(3));
        let err = SimulationBuilder::new(e).build().unwrap_err();
        assert!(err.to_string().contains("exceeds the horizon"));
    }

    #[test]
    fn invalid_manager_config_is_an_error_not_a_panic() {
        // The default underload threshold (0.65) sits above this target:
        // the legacy entry points panicked inside `VirtManager::new`; the
        // builder reports the inconsistency as a value.
        let cfg = ManagerConfig::new(PowerPolicy::reactive_suspend()).with_target_utilization(0.6);
        let e = Experiment::new(Scenario::small_test(5)).manager_config(cfg);
        let err = SimulationBuilder::new(e).build().unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
        assert!(err.to_string().contains("must be below"), "{err}");
    }

    #[test]
    fn oracle_rejects_cluster_capture() {
        let e = Experiment::new(Scenario::small_test(6)).policy(PowerPolicy::oracle());
        let err = SimulationBuilder::new(e.clone())
            .capture_cluster(true)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("no cluster"));
        let err = SimulationBuilder::new(e)
            .profiling(true)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("no event loop"));
    }

    #[test]
    fn oracle_runs_analytically() {
        let e = Experiment::new(Scenario::small_test(7))
            .policy(PowerPolicy::oracle())
            .horizon(SimDuration::from_hours(2));
        let out = SimulationBuilder::new(e).build().unwrap().run().unwrap();
        assert_eq!(out.report.policy, "Oracle");
        assert!(out.cluster.is_none());
    }

    #[test]
    fn dvfs_baseline_ignores_policy() {
        let e = experiment(8);
        let out = SimulationBuilder::new(e)
            .dvfs_baseline(power::DvfsModel::typical_2013())
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out.report.policy, "DVFS-only");
        assert_eq!(out.report.violation_fraction, 0.0);
    }

    #[test]
    fn threaded_build_matches_serial_report() {
        let serial = SimulationBuilder::new(experiment(9))
            .build()
            .unwrap()
            .run()
            .unwrap();
        let sharded = SimulationBuilder::new(experiment(9))
            .threads(4)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(serial.report, sharded.report);
    }

    #[test]
    fn control_plane_knobs_are_validated() {
        let err = SimulationBuilder::new(experiment(10))
            .schedulers(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("at least one scheduler"), "{err}");
        // small_test has 4 hosts.
        let err = SimulationBuilder::new(experiment(10))
            .schedulers(5)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("more schedulers"), "{err}");
        let e = Experiment::new(Scenario::small_test(10)).policy(PowerPolicy::oracle());
        let err = SimulationBuilder::new(e).schedulers(2).build().unwrap_err();
        assert!(err.to_string().contains("no schedulers"), "{err}");
        let err = SimulationBuilder::new(experiment(10))
            .dvfs_baseline(power::DvfsModel::typical_2013())
            .view_staleness(1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("no schedulers"), "{err}");
    }

    #[test]
    fn distributed_build_runs() {
        let out = SimulationBuilder::new(experiment(11))
            .schedulers(2)
            .view_staleness(1)
            .control_latency(1)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(out.report.energy_j > 0.0);
        let planned = out.report.metrics.counter("work.commit.planned");
        assert!(planned > 0, "distributed run must have planned actions");
    }
}
