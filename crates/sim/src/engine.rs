//! The discrete-event simulation loop.

use std::collections::VecDeque;
use std::ops::Range;

use agile_core::{
    schedview, ClusterObservation, CommitStats, HostObservation, ManagementAction, PlacementFacts,
    PlacementStore, RoundStats, VirtManager, VmObservation,
};
use cluster::{AccountingMode, Cluster, ClusterError, DemandOutcome, HostId, VmId};
use power::PowerState;
use simcore::{pool, EventQueue, SimDuration, SimTime};
use workload::DemandTrace;

use crate::events::{EventKind, EventRecord};
use crate::metrics::MetricsCollector;
use crate::trace::{self, SimTelemetry};
use crate::{FailureModel, Scenario, SimError, SimReport};
use obs::{NullSink, ProfileSummary, SpanName, SpanSummary, SpanTracer, TraceSink};
use power::TransitionKind;
use simcore::RngStream;
use workload::Lifetime;

/// Events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Demand update + management round.
    Control,
    /// A host's power transition completes.
    PowerDone(HostId),
    /// A VM's live migration completes.
    MigrationDone(VmId),
    /// A VM is provisioned (lifecycle churn).
    VmArrive(VmId),
    /// A VM is retired (lifecycle churn).
    VmDepart(VmId),
}

/// The distributed control plane: N scheduler replicas over fixed host
/// partitions, a conflict-checked placement store, and the staleness /
/// control-latency machinery (see `DESIGN.md`, "Distributed control
/// plane").
#[derive(Debug)]
struct ControlPlane {
    /// One planner replica per partition, in partition order. Each plans
    /// over the whole fleet from its own merged view; the ownership
    /// filter keeps only the actions whose subject it owns.
    schedulers: Vec<VirtManager>,
    /// `partitions[s]` is scheduler `s`'s owned host-index range
    /// (contiguous, disjoint, covering — `pool::shard_ranges`).
    partitions: Vec<Range<usize>>,
    /// Remote partitions are observed through a snapshot this many
    /// control rounds old (0 = fully fresh).
    staleness: usize,
    /// Plans computed at tick `t` commit at tick `t + latency`.
    latency: usize,
    /// Ring of past observations backing the stale remote view; only
    /// maintained when `staleness > 0` and more than one scheduler runs.
    history: VecDeque<ClusterObservation>,
    /// In-flight action batches: `pending[k][s]` is scheduler `s`'s
    /// filtered batch planned `k` pops ago. Commits pop from the front
    /// once the queue is deeper than `latency`.
    pending: VecDeque<Vec<Vec<ManagementAction>>>,
    /// The shared placement store arbitrating every commit.
    store: PlacementStore,
    /// Reusable merge buffer for the per-scheduler view.
    view_buf: ClusterObservation,
}

impl ControlPlane {
    /// Whether per-scheduler views diverge at all: with one scheduler (or
    /// zero staleness) every view is the fresh observation and the merge
    /// is skipped entirely.
    fn views_diverge(&self) -> bool {
        self.staleness > 0 && self.schedulers.len() > 1
    }
}

/// [`PlacementFacts`] over the live cluster: the ground truth the store's
/// conflict check consults at commit time.
struct ClusterFacts<'a> {
    cluster: &'a Cluster,
}

impl PlacementFacts for ClusterFacts<'_> {
    fn host_of(&self, vm: VmId) -> Option<HostId> {
        self.cluster.placement().host_of(vm)
    }

    fn is_migrating(&self, vm: VmId) -> bool {
        self.cluster.migration_of(vm).is_some()
    }

    fn vm_mem_gb(&self, vm: VmId) -> f64 {
        self.cluster.vm(vm).map(|s| s.mem_gb()).unwrap_or(0.0)
    }

    fn mem_committed_gb(&self, host: HostId) -> f64 {
        self.cluster.mem_committed_gb(host)
    }

    fn mem_capacity_gb(&self, host: HostId) -> f64 {
        self.cluster
            .host(host)
            .map(|h| h.capacity().mem_gb)
            .unwrap_or(0.0)
    }

    fn is_operational(&self, host: HostId) -> bool {
        self.cluster
            .host(host)
            .map(|h| h.is_operational())
            .unwrap_or(false)
    }

    fn power_state(&self, host: HostId) -> PowerState {
        self.cluster
            .host(host)
            .map(|h| h.power_state())
            .unwrap_or(PowerState::Off)
    }

    fn has_pending_transition(&self, host: HostId) -> bool {
        self.cluster
            .host(host)
            .ok()
            .and_then(|h| h.power().pending())
            .is_some()
    }

    fn is_evacuated(&self, host: HostId) -> bool {
        self.cluster.is_evacuated(host)
    }
}

/// Sums per-scheduler round statistics into one fleet-wide view. Every
/// counter adds up across schedulers except `rounds`, which is the same
/// control-tick count for each replica (scheduler 0's is taken).
fn fold_round_stats(schedulers: &[VirtManager]) -> RoundStats {
    let mut out = RoundStats::default();
    for (i, m) in schedulers.iter().enumerate() {
        let s = m.stats();
        if i == 0 {
            out.rounds = s.rounds;
        }
        out.migrations_requested += s.migrations_requested;
        out.power_ups_requested += s.power_ups_requested;
        out.power_downs_requested += s.power_downs_requested;
        out.overload_migrations += s.overload_migrations;
        out.consolidation_migrations += s.consolidation_migrations;
        out.rebalance_migrations += s.rebalance_migrations;
        out.failures_detected += s.failures_detected;
        out.quarantines += s.quarantines;
        out.failsafe_rounds += s.failsafe_rounds;
    }
    out
}

/// The datacenter simulator.
///
/// Most callers should use [`crate::Experiment`]; `DatacenterSim` is the
/// lower-level API for drivers that need custom instrumentation (e.g.
/// per-host power traces).
///
/// Each control tick the simulator (1) applies the fleet's demand to the
/// cluster, (2) records metrics, (3) hands the manager an observation and
/// executes the actions it returns, scheduling completion events for
/// migrations and power transitions. Actions that the cluster rejects
/// (because the world moved since the manager planned) are counted as
/// failures, not errors — exactly how a real management plane behaves.
#[derive(Debug)]
pub struct DatacenterSim {
    cluster: Cluster,
    traces: Vec<DemandTrace>,
    vm_caps: Vec<f64>,
    manager: Option<VirtManager>,
    /// The distributed control plane, when enabled via
    /// [`set_control_plane`](Self::set_control_plane). `None` runs the
    /// original single-planner path. The two are mutually exclusive:
    /// installing the control plane moves the manager into it.
    control: Option<ControlPlane>,
    /// Commit ledger for the single-planner path: every planned action is
    /// committed the same round, so `planned == accepted` and every other
    /// counter stays zero. Kept so managed reports carry the same
    /// `work.commit.*` metrics regardless of which path ran.
    direct_commit: CommitStats,
    queue: EventQueue<Event>,
    control_interval: SimDuration,
    horizon: SimDuration,
    collector: MetricsCollector,
    scenario_name: String,
    seed: u64,
    policy_label: String,
    failures: FailureModel,
    failure_rng: RngStream,
    migration_fail_rng: RngStream,
    hang_rng: RngStream,
    /// Hosts whose in-flight transition hung: at its (stretched)
    /// completion it force-fails without consuming a random draw.
    hung: Vec<bool>,
    hung_transitions: u64,
    /// Correlated rack-outage windows `(rack, start, end)`, pre-generated
    /// at run start; transitions completing inside one force-fail.
    rack_bursts: Vec<(usize, SimTime, SimTime)>,
    lifetimes: Vec<Lifetime>,
    placement_retries: u64,
    rejected_admissions: u64,
    event_log: Option<Vec<EventRecord>>,
    sink: Box<dyn TraceSink>,
    telemetry: SimTelemetry,
    /// Hierarchical wall-clock tracer. Top-level spans are the tick
    /// phases (`demand`/`observe`/`plan`/`execute`/`dispatch`); the
    /// manager and the action executor nest their sub-steps beneath
    /// them. Disabled by default — one branch per enter/exit.
    tracer: SpanTracer,
    s_demand: SpanName,
    s_observe: SpanName,
    s_plan: SpanName,
    s_execute: SpanName,
    s_dispatch: SpanName,
    s_migration: SpanName,
    s_power: SpanName,
    peak_queue_len: usize,
    /// Worker-thread count for the sharded per-tick paths (demand fill,
    /// demand serve, power scan, observation fill, candidate scoring).
    /// `1` keeps every computation on the calling thread via the original
    /// serial code; any count yields bit-identical reports.
    threads: usize,
    /// Reusable per-tick buffers: the demand vector, the demand outcome,
    /// and the manager observation. Steady-state ticks allocate nothing
    /// once these reach fleet size.
    demand_buf: Vec<f64>,
    outcome_buf: DemandOutcome,
    obs_buf: ClusterObservation,
}

impl DatacenterSim {
    /// Builds the simulator and performs the initial VM placement
    /// (round-robin across hosts, memory-checked).
    ///
    /// `manager: None` runs an unmanaged cluster (used by calibration
    /// drivers).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InitialPlacement`] if any VM fits on no host.
    pub fn new(
        scenario: &Scenario,
        manager: Option<VirtManager>,
        control_interval: SimDuration,
        horizon: SimDuration,
    ) -> Result<Self, SimError> {
        let mut cluster = Cluster::new(
            scenario.host_specs().to_vec(),
            scenario.fleet().vm_specs().to_vec(),
            SimTime::ZERO,
        );
        let lifetimes = scenario.fleet().lifetimes().lifetimes().to_vec();
        place_round_robin(&mut cluster, &lifetimes)?;

        let policy_label = manager
            .as_ref()
            .map(|m| m.config().policy().label().to_string())
            .unwrap_or_else(|| "Unmanaged".to_string());

        let mut tracer = SpanTracer::new();
        let s_demand = tracer.name("demand");
        let s_observe = tracer.name("observe");
        let s_plan = tracer.name("plan");
        let s_execute = tracer.name("execute");
        let s_dispatch = tracer.name("dispatch");
        let s_migration = tracer.name("migration");
        let s_power = tracer.name("power");

        let mut queue = EventQueue::new();
        queue.schedule(SimTime::ZERO, Event::Control);
        // Lifecycle events for transient VMs.
        let end = SimTime::ZERO + horizon;
        for (i, life) in lifetimes.iter().enumerate() {
            let vm = VmId(i as u32);
            if life.arrival > SimTime::ZERO && life.arrival <= end {
                queue.schedule(life.arrival, Event::VmArrive(vm));
            }
            if let Some(departure) = life.departure {
                if departure <= end {
                    queue.schedule(departure, Event::VmDepart(vm));
                }
            }
        }

        let num_hosts = cluster.num_hosts();
        Ok(DatacenterSim {
            cluster,
            traces: scenario.fleet().traces().to_vec(),
            vm_caps: scenario
                .fleet()
                .vm_specs()
                .iter()
                .map(|s| s.cpu_cap_cores())
                .collect(),
            manager,
            control: None,
            direct_commit: CommitStats::default(),
            queue,
            control_interval,
            horizon,
            collector: MetricsCollector::new(control_interval),
            scenario_name: scenario.name().to_string(),
            seed: scenario.seed(),
            policy_label,
            failures: FailureModel::none(),
            // Each injection kind draws from its own substream (created
            // unconditionally) so enabling one knob never perturbs the
            // draw positions of another — and a knob at zero consumes no
            // draws at all, keeping injection-off runs byte-identical.
            failure_rng: RngStream::new(scenario.seed()).substream(0xFA11),
            migration_fail_rng: RngStream::new(scenario.seed()).substream(0x4D16),
            hang_rng: RngStream::new(scenario.seed()).substream(0x57CC),
            hung: vec![false; num_hosts],
            hung_transitions: 0,
            rack_bursts: Vec::new(),
            lifetimes,
            placement_retries: 0,
            rejected_admissions: 0,
            event_log: None,
            sink: Box::new(NullSink),
            telemetry: SimTelemetry::new(),
            tracer,
            s_demand,
            s_observe,
            s_plan,
            s_execute,
            s_dispatch,
            s_migration,
            s_power,
            peak_queue_len: 0,
            threads: 1,
            demand_buf: Vec::new(),
            outcome_buf: DemandOutcome::default(),
            obs_buf: ClusterObservation::default(),
        })
    }

    /// Selects the cluster's accounting mode (see
    /// [`cluster::AccountingMode`]); the default is incremental. `Scan`
    /// is the O(hosts)-per-query reference used by determinism tests.
    pub fn set_accounting_mode(&mut self, mode: AccountingMode) {
        self.cluster.set_accounting_mode(mode);
    }

    /// Enables the audit log (see [`crate::events`]); entries land in
    /// [`SimReport::events`]. Off by default.
    pub fn enable_event_log(&mut self) {
        if self.event_log.is_none() {
            self.event_log = Some(Vec::new());
        }
    }

    /// Streams trace records into `sink` (power transitions, migrations,
    /// VM lifecycle, manager decisions, and one final `run-summary`).
    /// Defaults to [`obs::NullSink`], which costs one branch per event.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = sink;
    }

    /// The trace sink, e.g. to read counts back after a run.
    pub fn trace_sink(&self) -> &dyn TraceSink {
        self.sink.as_ref()
    }

    /// Turns on wall-clock span tracing: the tick phases
    /// (`demand`/`observe`/`plan`/`execute`/`dispatch`) plus the nested
    /// sub-steps the manager records under `plan`
    /// (`rescore`/`overload`/`consolidate` > `candidate_scan`/`trial` >
    /// `undo`/...) and the executor records under `execute`
    /// (`migration`/`power`). The numbers only ever leave through the
    /// `run-summary` trace record and the out-of-band profile/span
    /// summaries — never the report, which must stay bit-deterministic.
    pub fn enable_profiling(&mut self) {
        self.tracer.enable();
    }

    fn log(&mut self, time: SimTime, kind: EventKind) {
        self.telemetry.count_event(&kind);
        if self.sink.enabled() {
            self.sink.emit(&trace::event_json(time, &kind));
        }
        if let Some(log) = &mut self.event_log {
            log.push(EventRecord { time, kind });
        }
    }

    /// Enables power-transition fault injection (off by default).
    pub fn set_failure_model(&mut self, failures: FailureModel) {
        self.failures = failures;
    }

    /// Sets the worker-thread count for the deterministic sharded tick
    /// engine and forwards it to the cluster's demand/power paths and the
    /// manager's prediction/consolidation scoring. `1` (the default) is
    /// the original serial engine; any count produces a bit-identical
    /// [`SimReport`], because shard boundaries are a pure function of the
    /// fleet size and every floating-point reduction stays on the calling
    /// thread in index order. The count is honored exactly — it is never
    /// capped by the machine's core count — so determinism tests can
    /// exercise the sharded paths anywhere.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        self.cluster.set_threads(self.threads);
        if let Some(m) = &mut self.manager {
            m.set_threads(self.threads);
        }
        if let Some(control) = &mut self.control {
            for m in &mut control.schedulers {
                m.set_threads(self.threads);
            }
        }
    }

    /// Installs the distributed control plane: `schedulers` planner
    /// replicas over fixed contiguous host partitions, remote partitions
    /// observed `staleness` control rounds late, and plans committing
    /// `latency` rounds after they are computed — all arbitrated by a
    /// conflict-checked [`PlacementStore`].
    ///
    /// The manager passed to [`new`](Self::new) becomes the replica
    /// template (each replica starts from an identical clone), so the
    /// simulator must be managed. `schedulers = 1, staleness = 0,
    /// latency = 0` reproduces the single-planner path byte-identically —
    /// through the store — which is exactly what the differential suite
    /// checks.
    ///
    /// # Panics
    ///
    /// Panics on an unmanaged simulator, `schedulers == 0`, or more
    /// schedulers than hosts (the builder rejects these with a typed
    /// error first).
    pub fn set_control_plane(&mut self, schedulers: usize, staleness: usize, latency: usize) {
        assert!(schedulers > 0, "control plane needs at least one scheduler");
        let template = self
            .manager
            .take()
            .expect("control plane requires a managed simulator");
        let num_hosts = self.cluster.num_hosts();
        assert!(
            schedulers <= num_hosts,
            "more schedulers ({schedulers}) than hosts ({num_hosts})"
        );
        let mut replicas = Vec::with_capacity(schedulers);
        for _ in 0..schedulers.saturating_sub(1) {
            replicas.push(template.clone());
        }
        replicas.push(template);
        for m in &mut replicas {
            m.set_threads(self.threads);
        }
        self.control = Some(ControlPlane {
            partitions: pool::shard_ranges(num_hosts, schedulers),
            schedulers: replicas,
            staleness,
            latency,
            history: VecDeque::new(),
            pending: VecDeque::new(),
            store: PlacementStore::new(num_hosts, self.cluster.num_vms()),
            view_buf: ClusterObservation::default(),
        });
    }

    /// The worker-thread count (see [`set_threads`](Self::set_threads)).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables per-host power traces (memory-heavy; off by default).
    pub fn enable_power_traces(&mut self) {
        self.cluster.enable_power_traces();
    }

    /// Read access to the cluster (e.g. to pull host power traces after
    /// a run captured it via `SimulationBuilder::capture_cluster`).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs to the horizon and returns every output the engine produces:
    /// the bit-deterministic report, the final cluster, the wall-clock
    /// flat phase profile, and (when tracing was enabled) the full
    /// hierarchical span summary. This is the single execution path
    /// behind [`crate::SimulationBuilder`].
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable cluster errors (these indicate engine
    /// bugs; recoverable action rejections are counted in the report).
    pub(crate) fn run_inner(
        mut self,
    ) -> Result<(SimReport, Cluster, ProfileSummary, Option<SpanSummary>), SimError> {
        let end = SimTime::ZERO + self.horizon;
        self.generate_rack_bursts(end);
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            self.peak_queue_len = self.peak_queue_len.max(self.queue.len());
            let (now, event) = self.queue.pop().expect("peeked non-empty queue");
            match event {
                // Control ticks time their own observe/plan/execute
                // phases; `dispatch` covers the event-loop work proper.
                Event::Control => self.control_tick(now, end),
                // A `?` below leaves the dispatch span open, but those
                // errors are unrecoverable engine bugs that abort the
                // whole run — the tracer is dropped with it.
                Event::PowerDone(host) => {
                    self.tracer.enter(self.s_dispatch);
                    self.finish_power_transition(host, now)?;
                    self.collector
                        .record_power(now, self.cluster.total_power_w());
                    self.tracer.exit(self.s_dispatch);
                }
                Event::MigrationDone(vm) => {
                    self.tracer.enter(self.s_dispatch);
                    let p = self.failures.migration_failure_prob();
                    if p > 0.0 && self.migration_fail_rng.chance(p) {
                        self.cluster.fail_migration(vm, now)?;
                        self.log(now, EventKind::MigrationFailed { vm });
                    } else {
                        self.cluster.complete_migration(vm, now)?;
                        self.log(now, EventKind::MigrationCompleted { vm });
                    }
                    self.tracer.exit(self.s_dispatch);
                }
                Event::VmArrive(vm) => {
                    self.tracer.enter(self.s_dispatch);
                    self.vm_arrive(vm, now, end);
                    self.tracer.exit(self.s_dispatch);
                }
                Event::VmDepart(vm) => {
                    self.tracer.enter(self.s_dispatch);
                    self.vm_depart(vm, now)?;
                    self.tracer.exit(self.s_dispatch);
                }
            }
        }
        self.cluster.sync(end);
        self.telemetry.record_residency(&self.cluster);
        self.telemetry
            .registry
            .set(self.telemetry.peak_queue, self.peak_queue_len as f64);
        // Fold the deterministic op-counters into the metrics snapshot.
        // Unlike the wall-clock spans these are pure functions of the
        // scenario seed, so they may — must — enter the report: the
        // differential suite then verifies them like any other metric.
        let managers: Vec<&VirtManager> = match &self.control {
            Some(control) => control.schedulers.iter().collect(),
            None => self.manager.iter().collect(),
        };
        for m in managers {
            for (name, value) in m.work_counters().entries() {
                let id = self
                    .telemetry
                    .registry
                    .counter(&format!("work.plan.{name}"));
                self.telemetry.registry.add(id, value);
            }
            for (name, value) in m.index_work_counters().entries() {
                let id = self
                    .telemetry
                    .registry
                    .counter(&format!("work.index.{name}"));
                self.telemetry.registry.add(id, value);
            }
        }
        // Batches still aging in the latency queue at the horizon never
        // commit: count them expired so the commit ledger stays balanced.
        if let Some(control) = &mut self.control {
            while let Some(round) = control.pending.pop_front() {
                for action in round.iter().flatten() {
                    control.store.note_expired(action);
                }
            }
        }
        let commit = match &self.control {
            Some(control) => Some(*control.store.stats()),
            None if self.manager.is_some() => Some(self.direct_commit),
            None => None,
        };
        if let Some(commit) = commit {
            debug_assert!(commit.is_balanced(), "commit ledger out of balance");
            for (name, value) in commit.entries() {
                let id = self
                    .telemetry
                    .registry
                    .counter(&format!("work.commit.{name}"));
                self.telemetry.registry.add(id, value);
            }
            // How many planners produced the ledger above. The direct
            // path reports 1 so a single-scheduler control plane stays
            // bit-identical to it; invariants use this to scale bounds
            // that charge one unit of work per planner (e.g. index
            // re-buckets per cluster dirty mark).
            let schedulers = match &self.control {
                Some(control) => control.schedulers.len() as u64,
                None => 1,
            };
            let id = self.telemetry.registry.counter("work.commit.schedulers");
            self.telemetry.registry.add(id, schedulers);
        }
        let dirty = self.telemetry.registry.counter("work.cluster.dirty_marks");
        self.telemetry
            .registry
            .add(dirty, self.cluster.dirty_marks());
        let stats = match (&self.control, &self.manager) {
            (Some(control), _) => fold_round_stats(&control.schedulers),
            (None, Some(m)) => *m.stats(),
            (None, None) => RoundStats::default(),
        };
        let report = self.collector.finalize(
            self.scenario_name,
            self.policy_label,
            self.seed,
            self.horizon,
            self.cluster.num_hosts(),
            self.cluster.num_vms(),
            self.cluster.total_energy_j(),
            self.cluster.migrations_completed(),
            stats,
            self.cluster.migration_busy_secs(),
            self.cluster.transition_busy_secs(),
            crate::metrics::FaultCounters {
                transition_failures: self.cluster.failed_transitions(),
                placement_retries: self.placement_retries,
                migration_failures: self.cluster.migrations_failed(),
                rejected_admissions: self.rejected_admissions,
                hung_transitions: self.hung_transitions,
            },
            self.event_log.take().unwrap_or_default(),
            self.telemetry.registry.snapshot(),
        );
        let profile = self.tracer.flat_summary();
        let spans = self.tracer.is_enabled().then(|| self.tracer.summary());
        if self.sink.enabled() {
            self.sink
                .emit(&trace::run_summary_json(&report, &profile, spans.as_ref()));
        }
        // Trace output is advisory; a failed flush must not fail the run.
        let _ = self.sink.flush();
        Ok((report, self.cluster, profile, spans))
    }

    /// Completes (or fault-injects) a due power transition.
    fn finish_power_transition(&mut self, host: HostId, now: SimTime) -> Result<(), SimError> {
        // A hung transition already committed to failing when the stuck
        // interval was scheduled — no draw is consumed here.
        if std::mem::take(&mut self.hung[host.index()]) {
            let state = self.cluster.fail_power_transition(host, now)?;
            self.log(now, EventKind::PowerFailed { host, state });
            return Ok(());
        }
        // Correlated outage: every transition completing on a bursting
        // rack fails, again without consuming an independent draw.
        if self.rack_bursting(host, now) {
            let state = self.cluster.fail_power_transition(host, now)?;
            self.log(now, EventKind::PowerFailed { host, state });
            return Ok(());
        }
        let pending_kind = self
            .cluster
            .host(host)
            .map_err(SimError::from)?
            .power()
            .pending()
            .map(|(kind, _)| kind);
        let fail_prob = match pending_kind {
            // An unpark is resume-class hardware work (C6-class exit), so
            // it shares the resume failure probability.
            Some(TransitionKind::Resume | TransitionKind::Unpark) => {
                self.failures.resume_failure_prob()
            }
            Some(TransitionKind::Boot) => self.failures.boot_failure_prob(),
            _ => 0.0,
        };
        if fail_prob > 0.0 && self.failure_rng.chance(fail_prob) {
            let state = self.cluster.fail_power_transition(host, now)?;
            self.log(now, EventKind::PowerFailed { host, state });
        } else {
            let state = self.cluster.complete_power_transition(host, now)?;
            self.log(now, EventKind::PowerCompleted { host, state });
        }
        Ok(())
    }

    /// Pre-generates correlated rack-outage windows for the whole run,
    /// one decision per rack per control epoch, from a dedicated
    /// substream. A model with bursts disabled consumes zero draws.
    fn generate_rack_bursts(&mut self, end: SimTime) {
        let prob = self.failures.rack_burst_prob();
        let rack_size = self.failures.rack_size();
        if prob <= 0.0 || rack_size == 0 {
            return;
        }
        let racks = self.cluster.num_hosts().div_ceil(rack_size);
        let duration = self.failures.rack_burst_duration();
        let mut rng = RngStream::new(self.seed).substream(0x7ACC);
        let mut t = SimTime::ZERO;
        while t <= end {
            for rack in 0..racks {
                if rng.chance(prob) {
                    self.rack_bursts.push((rack, t, t + duration));
                }
            }
            t += self.control_interval;
        }
    }

    /// Whether `host`'s rack has an outage window covering `now`.
    fn rack_bursting(&self, host: HostId, now: SimTime) -> bool {
        let rack_size = self.failures.rack_size();
        if rack_size == 0 || self.rack_bursts.is_empty() {
            return false;
        }
        let rack = host.index() / rack_size;
        self.rack_bursts
            .iter()
            .any(|&(r, start, stop)| r == rack && start <= now && now < stop)
    }

    /// Rolls the hang die for a transition just begun; on a hang, the
    /// completion stretches to `hang_factor`× the nominal latency and the
    /// host is marked to force-fail at the stretched instant. Returns the
    /// instant the `PowerDone` event should fire at.
    fn maybe_hang(
        &mut self,
        host: HostId,
        kind: TransitionKind,
        now: SimTime,
        done: SimTime,
    ) -> SimTime {
        let p = self.failures.hang_prob();
        if p <= 0.0 || !self.hang_rng.chance(p) {
            return done;
        }
        let nominal_ms = done.since(now).as_millis() as f64;
        let stuck = now
            + SimDuration::from_millis((nominal_ms * self.failures.hang_factor()).round() as u64);
        self.cluster
            .delay_power_transition(host, stuck)
            .expect("transition just began");
        self.hung[host.index()] = true;
        self.hung_transitions += 1;
        self.log(now, EventKind::PowerStuck { host, kind });
        stuck
    }

    /// Provisions an arriving VM on the operational host with the most
    /// free memory; retries next control round if nothing fits right now.
    fn vm_arrive(&mut self, vm: VmId, now: SimTime, end: SimTime) {
        let mem_needed = self
            .cluster
            .vm(vm)
            .expect("lifecycle events reference fleet VMs")
            .mem_gb();
        let dest = self
            .cluster
            .hosts()
            .iter()
            .filter(|h| h.is_operational())
            .map(|h| h.id())
            .filter(|&h| self.cluster.mem_free_gb(h) >= mem_needed)
            .max_by(|&a, &b| {
                self.cluster
                    .mem_free_gb(a)
                    .partial_cmp(&self.cluster.mem_free_gb(b))
                    .expect("memory is finite")
            });
        match dest {
            Some(host) => {
                self.cluster
                    .place(vm, host)
                    .expect("destination was validated");
                self.log(now, EventKind::VmArrived { vm, host });
            }
            None => {
                // Capacity crunch: retry after the next management round
                // (which will wake hosts once the VM's demand shows up as
                // unserved pressure).
                self.placement_retries += 1;
                self.log(now, EventKind::VmArrivalDeferred { vm });
                let retry = now + self.control_interval;
                if retry <= end {
                    self.queue.schedule(retry, Event::VmArrive(vm));
                } else {
                    // The horizon closes before another attempt: record
                    // the rejection instead of dropping the VM silently.
                    self.rejected_admissions += 1;
                    self.log(now, EventKind::VmArrivalRejected { vm });
                }
            }
        }
    }

    /// Retires a departing VM; if it is mid-migration, the departure
    /// re-fires right after the migration completes.
    fn vm_depart(&mut self, vm: VmId, _now: SimTime) -> Result<(), SimError> {
        if let Some(migration) = self.cluster.migration_of(vm) {
            // The completion event was scheduled earlier, so at
            // completes_at it pops before this re-scheduled departure.
            self.queue
                .schedule(migration.completes_at, Event::VmDepart(vm));
            return Ok(());
        }
        match self.cluster.unplace(vm) {
            Ok(_) => {
                self.log(_now, EventKind::VmDeparted { vm });
                Ok(())
            }
            // Arrival never found a slot; nothing to retire.
            Err(ClusterError::VmNotPlaced(_)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn control_tick(&mut self, now: SimTime, end: SimTime) {
        // 1. Demand update, through the reusable tick buffers.
        self.tracer.enter(self.s_demand);
        let traces = &self.traces;
        let lifetimes = &self.lifetimes;
        let n_vms = traces.len();
        if self.threads > 1 && n_vms > 1 {
            // Sharded fill: each worker writes its own contiguous span of
            // the demand vector; every element is computed by the same
            // expression as the serial path, so the result is
            // bit-identical.
            self.demand_buf.clear();
            self.demand_buf.resize(n_vms, 0.0);
            let ranges = pool::shard_ranges(n_vms, self.threads);
            let vm_caps = &self.vm_caps;
            let shards: Vec<_> = pool::split_mut(&mut self.demand_buf, &ranges)
                .into_iter()
                .zip(ranges.iter())
                .map(|(out, r)| (out, r.start))
                .collect();
            pool::for_each_shard(self.threads, shards, |_, (out, base)| {
                for (k, slot) in out.iter_mut().enumerate() {
                    let i = base + k;
                    *slot = if lifetimes[i].is_active(now) {
                        traces[i].at(now) * vm_caps[i]
                    } else {
                        0.0
                    };
                }
            });
        } else {
            self.demand_buf.clear();
            self.demand_buf
                .extend(
                    traces
                        .iter()
                        .zip(&self.vm_caps)
                        .enumerate()
                        .map(|(i, (trace, cap))| {
                            if lifetimes[i].is_active(now) {
                                trace.at(now) * cap
                            } else {
                                0.0
                            }
                        }),
                );
        }
        self.cluster
            .apply_demand_into(now, &self.demand_buf, &mut self.outcome_buf);
        self.collector
            .record_tick(now, &self.outcome_buf, &self.cluster);
        self.tracer.exit(self.s_demand);

        // 2. Management round.
        if self.control.is_some() {
            self.control_round(now);
        } else if self.manager.is_some() {
            self.tracer.enter(self.s_observe);
            let mut obs = std::mem::take(&mut self.obs_buf);
            self.fill_observation(now, &mut obs);
            self.tracer.exit(self.s_observe);

            self.tracer.enter(self.s_plan);
            let actions = self
                .manager
                .as_mut()
                .expect("checked above")
                .plan_traced(&obs, &mut self.tracer);
            self.obs_buf = obs;
            self.tracer.exit(self.s_plan);

            self.telemetry.registry.inc(self.telemetry.rounds);
            self.telemetry
                .registry
                .observe(self.telemetry.actions_per_round, actions.len() as f64);
            if self.sink.enabled() {
                if let Some(decision) = self
                    .manager
                    .as_ref()
                    .expect("checked above")
                    .last_decision()
                {
                    self.sink.emit(&decision.to_json());
                }
            }

            // Same-round commit: every planned action is handed straight
            // to the cluster, so the commit ledger is trivial.
            self.direct_commit.planned += actions.len() as u64;
            self.direct_commit.accepted += actions.len() as u64;

            self.tracer.enter(self.s_execute);
            for action in actions {
                self.dispatch_action(action, now);
            }
            self.tracer.exit(self.s_execute);
        }
        self.collector
            .record_power(now, self.cluster.total_power_w());
        self.telemetry.registry.set(
            self.telemetry.hosts_on,
            self.cluster.num_operational_hosts() as f64,
        );

        // 3. Next tick.
        let next = now + self.control_interval;
        if next <= end {
            self.queue.schedule(next, Event::Control);
        }
    }

    /// One management round of the distributed control plane: observe,
    /// plan per scheduler over its merged view, filter each plan to owned
    /// subjects, queue the batches behind the control-loop latency, and
    /// commit the due round through the placement store's conflict check.
    fn control_round(&mut self, now: SimTime) {
        let mut control = self.control.take().expect("caller checked");

        self.tracer.enter(self.s_observe);
        let mut obs = std::mem::take(&mut self.obs_buf);
        self.fill_observation(now, &mut obs);
        self.tracer.exit(self.s_observe);

        self.tracer.enter(self.s_plan);
        let n = control.schedulers.len();
        let merge = control.views_diverge() && !control.history.is_empty();
        let mut batches: Vec<Vec<ManagementAction>> = Vec::with_capacity(n);
        let mut total_kept = 0usize;
        for s in 0..n {
            let owned = &control.partitions[s];
            if merge {
                let stale = control.history.front().expect("history checked non-empty");
                schedview::merge_view(&mut control.view_buf, &obs, stale, owned);
            }
            let view = if merge { &control.view_buf } else { &obs };
            let actions = control.schedulers[s].plan_traced(view, &mut self.tracer);
            let mut kept = Vec::with_capacity(actions.len());
            for action in actions {
                control.store.note_planned(&action);
                // With one scheduler every subject is owned; skipping the
                // filter keeps the path equivalent to the global planner
                // by construction.
                if n == 1 || schedview::owns_action(view, owned, &action) {
                    kept.push(action);
                } else {
                    control.store.note_dropped_unowned(&action);
                }
            }
            total_kept += kept.len();
            batches.push(kept);
        }
        if control.views_diverge() {
            // Snapshot after planning: this round's fresh observation is
            // the youngest entry a future stale view can see.
            control.history.push_back(obs.clone());
            if control.history.len() > control.staleness {
                control.history.pop_front();
            }
        }
        self.obs_buf = obs;
        self.tracer.exit(self.s_plan);

        self.telemetry.registry.inc(self.telemetry.rounds);
        self.telemetry
            .registry
            .observe(self.telemetry.actions_per_round, total_kept as f64);
        if self.sink.enabled() {
            for m in &control.schedulers {
                if let Some(decision) = m.last_decision() {
                    self.sink.emit(&decision.to_json());
                }
            }
        }

        // Commit the round that has aged past the control-loop latency.
        control.pending.push_back(batches);
        if control.pending.len() > control.latency {
            let round = control.pending.pop_front().expect("just pushed");
            self.tracer.enter(self.s_execute);
            control.store.begin_round();
            for (sched, batch) in round.into_iter().enumerate() {
                for action in batch {
                    let admitted = control.store.admit(
                        &control.partitions[sched],
                        &action,
                        &ClusterFacts {
                            cluster: &self.cluster,
                        },
                    );
                    match admitted {
                        Ok(()) => self.dispatch_action(action, now),
                        Err(reason) => self.log(
                            now,
                            EventKind::CommitRejected {
                                scheduler: sched as u32,
                                reason,
                            },
                        ),
                    }
                }
            }
            self.tracer.exit(self.s_execute);
        }

        self.control = Some(control);
    }

    /// Hands one admitted action to the cluster, timing it and counting
    /// the outcome. Cluster refusals are plan/world races — counted, not
    /// fatal.
    fn dispatch_action(&mut self, action: ManagementAction, now: SimTime) {
        let is_migrate = matches!(action, ManagementAction::Migrate { .. });
        let span = if is_migrate {
            self.s_migration
        } else {
            self.s_power
        };
        self.tracer.enter(span);
        let result = self.execute(action, now);
        self.tracer.exit(span);
        match result {
            Ok(()) => {
                if is_migrate {
                    self.telemetry
                        .registry
                        .inc(self.telemetry.work_migrations_executed);
                }
            }
            Err(e) => {
                debug_assert!(
                    recoverable(&e),
                    "engine bug: unrecoverable action failure {e}"
                );
                if is_migrate {
                    self.telemetry
                        .registry
                        .inc(self.telemetry.work_migrations_aborted);
                }
                self.collector.record_action_failure();
                self.log(now, EventKind::ActionRejected);
            }
        }
    }

    fn execute(&mut self, action: ManagementAction, now: SimTime) -> Result<(), ClusterError> {
        match action {
            ManagementAction::Migrate { vm, to } => {
                let done = self.cluster.begin_migration(vm, to, now)?;
                self.queue.schedule(done, Event::MigrationDone(vm));
                self.telemetry
                    .registry
                    .observe(self.telemetry.migration_secs, done.since(now).as_secs_f64());
                self.log(now, EventKind::MigrationStarted { vm, to });
            }
            ManagementAction::PowerDown { host, mode } => {
                let done = self
                    .cluster
                    .begin_power_transition(host, mode.down(), now)?;
                let done = self.maybe_hang(host, mode.down(), now, done);
                self.queue.schedule(done, Event::PowerDone(host));
                self.telemetry.registry.inc(self.telemetry.power_downs);
                self.telemetry.registry.observe(
                    self.telemetry.transition_secs,
                    done.since(now).as_secs_f64(),
                );
                self.log(
                    now,
                    EventKind::PowerStarted {
                        host,
                        kind: mode.down(),
                    },
                );
            }
            ManagementAction::PowerUp { host } => {
                let kind = match self.cluster.host(host)?.power_state() {
                    PowerState::PackageIdle => power::TransitionKind::Unpark,
                    PowerState::Suspended => power::TransitionKind::Resume,
                    PowerState::Off => power::TransitionKind::Boot,
                    other => {
                        // Stale wake request (host already on or moving).
                        return Err(ClusterError::Power(power::PowerError::InvalidTransition {
                            from: other,
                            kind: power::TransitionKind::Resume,
                        }));
                    }
                };
                let done = self.cluster.begin_power_transition(host, kind, now)?;
                let done = self.maybe_hang(host, kind, now, done);
                self.queue.schedule(done, Event::PowerDone(host));
                self.telemetry.registry.inc(self.telemetry.power_ups);
                self.telemetry.registry.observe(
                    self.telemetry.transition_secs,
                    done.since(now).as_secs_f64(),
                );
                self.log(now, EventKind::PowerStarted { host, kind });
            }
        }
        Ok(())
    }

    /// Refills the reusable observation buffer from the cluster and the
    /// tick's demand outcome — the zero-alloc replacement for collecting
    /// fresh host/VM vectors every round.
    ///
    /// With `threads > 1` the fill is sharded: workers overwrite disjoint
    /// contiguous spans of the host and VM observation vectors through a
    /// [`cluster::ClusterShardView`] (the `Cluster` itself is not `Sync`).
    /// Every slot is computed by the same per-element expressions as the
    /// serial path, and no cross-element reduction happens here, so the
    /// observation — and hence the whole run — is bit-identical.
    fn fill_observation(&self, now: SimTime, obs: &mut ClusterObservation) {
        obs.now = now;
        if self.threads > 1 && (self.cluster.num_hosts() > 1 || self.cluster.num_vms() > 1) {
            self.fill_observation_sharded(now, obs);
            return;
        }
        obs.hosts.clear();
        obs.hosts.extend(self.cluster.hosts().iter().map(|h| {
            let i = h.id().index();
            HostObservation {
                id: h.id(),
                state: h.power_state(),
                pending: h.power().pending().map(|(kind, _)| kind),
                cpu_capacity: h.capacity().cpu_cores,
                mem_capacity: h.capacity().mem_gb,
                mem_committed: self.cluster.mem_committed_gb(h.id()),
                cpu_demand: self.outcome_buf.host_demand_cores[i],
                evacuated: self.cluster.is_evacuated(h.id()),
                failed_transitions: h.power().failed_transitions(),
                ladder: h.ladder(),
            }
        }));
        obs.vms.clear();
        obs.vms.extend((0..self.cluster.num_vms()).map(|i| {
            let id = VmId(i as u32);
            let spec = self.cluster.vm(id).expect("vm id in range");
            let demand = if self.lifetimes[i].is_active(now) {
                self.traces[i].at(now) * self.vm_caps[i]
            } else {
                0.0
            };
            VmObservation {
                id,
                host: self.cluster.placement().host_of(id),
                cpu_demand: demand,
                cpu_cap: spec.cpu_cap_cores(),
                mem_gb: spec.mem_gb(),
                migrating: self.cluster.migration_of(id).is_some(),
                service_class: spec.service_class(),
            }
        }));
    }

    /// The sharded body of [`fill_observation`](Self::fill_observation).
    fn fill_observation_sharded(&self, now: SimTime, obs: &mut ClusterObservation) {
        let view = self.cluster.shard_view();
        let host_demand = &self.outcome_buf.host_demand_cores;

        let n_hosts = self.cluster.num_hosts();
        obs.hosts.clear();
        obs.hosts.resize_with(n_hosts, HostObservation::default);
        let ranges = pool::shard_ranges(n_hosts, self.threads);
        let shards: Vec<_> = pool::split_mut(&mut obs.hosts, &ranges)
            .into_iter()
            .zip(ranges.iter())
            .map(|(out, r)| (out, r.start))
            .collect();
        pool::for_each_shard(self.threads, shards, |_, (out, base)| {
            for (k, slot) in out.iter_mut().enumerate() {
                let h = &view.hosts()[base + k];
                let i = h.id().index();
                *slot = HostObservation {
                    id: h.id(),
                    state: h.power_state(),
                    pending: h.power().pending().map(|(kind, _)| kind),
                    cpu_capacity: h.capacity().cpu_cores,
                    mem_capacity: h.capacity().mem_gb,
                    mem_committed: view.mem_committed_gb(h.id()),
                    cpu_demand: host_demand[i],
                    evacuated: view.is_evacuated(h.id()),
                    failed_transitions: h.power().failed_transitions(),
                    ladder: h.ladder(),
                };
            }
        });

        let n_vms = self.cluster.num_vms();
        obs.vms.clear();
        obs.vms.resize_with(n_vms, VmObservation::default);
        let ranges = pool::shard_ranges(n_vms, self.threads);
        // The closure must not capture `self` — the cluster's lazy caches
        // make `DatacenterSim` non-`Sync` — so borrow the plain fields.
        let lifetimes = &self.lifetimes;
        let traces = &self.traces;
        let vm_caps = &self.vm_caps;
        let shards: Vec<_> = pool::split_mut(&mut obs.vms, &ranges)
            .into_iter()
            .zip(ranges.iter())
            .map(|(out, r)| (out, r.start))
            .collect();
        pool::for_each_shard(self.threads, shards, |_, (out, base)| {
            for (k, slot) in out.iter_mut().enumerate() {
                let i = base + k;
                let id = VmId(i as u32);
                let spec = &view.vm_specs()[i];
                let demand = if lifetimes[i].is_active(now) {
                    traces[i].at(now) * vm_caps[i]
                } else {
                    0.0
                };
                *slot = VmObservation {
                    id,
                    host: view.host_of(id),
                    cpu_demand: demand,
                    cpu_cap: spec.cpu_cap_cores(),
                    mem_gb: spec.mem_gb(),
                    migrating: view.is_migrating(id),
                    service_class: spec.service_class(),
                };
            }
        });
    }
}

/// Whether an action failure is a legitimate plan/world race rather than
/// an engine bug.
fn recoverable(e: &ClusterError) -> bool {
    !matches!(e, ClusterError::UnknownHost(_) | ClusterError::UnknownVm(_))
}

/// Round-robin initial placement with memory admission. Only VMs active
/// at the start are placed; transient VMs arrive via lifecycle events.
fn place_round_robin(cluster: &mut Cluster, lifetimes: &[Lifetime]) -> Result<(), SimError> {
    let n = cluster.num_hosts();
    let vm_ids: Vec<VmId> = cluster
        .vm_ids()
        .filter(|vm| lifetimes[vm.index()].is_active(SimTime::ZERO))
        .collect();
    let mut cursor = 0usize;
    for vm in vm_ids {
        let mut placed = false;
        for k in 0..n {
            let host = HostId(((cursor + k) % n) as u32);
            if cluster.place(vm, host).is_ok() {
                cursor = (cursor + k + 1) % n;
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(SimError::InitialPlacement { vm });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_core::{ManagerConfig, PowerPolicy};

    fn manager(policy: PowerPolicy, scenario: &Scenario) -> VirtManager {
        VirtManager::new(
            ManagerConfig::new(policy),
            scenario.host_specs().len(),
            scenario.fleet().len(),
        )
    }

    #[test]
    fn unmanaged_run_integrates_energy() {
        let s = Scenario::small_test(1);
        let sim =
            DatacenterSim::new(&s, None, s.demand_step(), SimDuration::from_hours(2)).unwrap();
        let report = sim.run_inner().map(|(r, _, _, _)| r).unwrap();
        assert!(report.energy_j > 0.0);
        assert_eq!(report.policy, "Unmanaged");
        assert_eq!(report.migrations, 0);
        // All four hosts stay on the whole time.
        assert_eq!(report.avg_hosts_on, 4.0);
    }

    #[test]
    fn always_on_matches_unmanaged_energy_closely() {
        let s = Scenario::small_test(2);
        let unmanaged = DatacenterSim::new(&s, None, s.demand_step(), SimDuration::from_hours(4))
            .unwrap()
            .run_inner()
            .map(|(r, _, _, _)| r)
            .unwrap();
        let managed = DatacenterSim::new(
            &s,
            Some(manager(PowerPolicy::always_on(), &s)),
            s.demand_step(),
            SimDuration::from_hours(4),
        )
        .unwrap()
        .run_inner()
        .map(|(r, _, _, _)| r)
        .unwrap();
        // Base DRM may migrate a little, but energy should be within a few
        // percent of the unmanaged cluster (all hosts stay on).
        let ratio = managed.energy_j / unmanaged.energy_j;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
        assert_eq!(managed.power_ups + managed.power_downs, 0);
    }

    #[test]
    fn suspend_policy_saves_energy_on_diurnal_load() {
        let s = Scenario::datacenter(8, 32, 3);
        let horizon = SimDuration::from_hours(24);
        let base = DatacenterSim::new(
            &s,
            Some(manager(PowerPolicy::always_on(), &s)),
            s.demand_step(),
            horizon,
        )
        .unwrap()
        .run_inner()
        .map(|(r, _, _, _)| r)
        .unwrap();
        let pm = DatacenterSim::new(
            &s,
            Some(manager(PowerPolicy::reactive_suspend(), &s)),
            s.demand_step(),
            horizon,
        )
        .unwrap()
        .run_inner()
        .map(|(r, _, _, _)| r)
        .unwrap();
        assert!(
            pm.savings_vs(&base) > 0.15,
            "expected >15% savings, got {:.1}% (pm {:.1} kWh vs base {:.1} kWh)",
            pm.savings_vs(&base) * 100.0,
            pm.energy_kwh(),
            base.energy_kwh()
        );
        // And it must actually have cycled hosts.
        assert!(pm.power_downs > 0);
        assert!(pm.avg_hosts_on < 8.0);
        // With low-latency states the performance impact stays small.
        assert!(
            pm.unserved_ratio < 0.02,
            "unserved ratio {}",
            pm.unserved_ratio
        );
    }

    #[test]
    fn initial_placement_fails_when_oversubscribed() {
        use cluster::{HostSpec, Resources, VmSpec};
        use power::HostPowerProfile;
        use workload::{DemandTrace, Fleet};

        let hosts = vec![HostSpec::new(
            Resources::new(4.0, 8.0),
            HostPowerProfile::prototype_rack(),
        )];
        // Three 4 GB VMs cannot fit in 8 GB.
        let vms = vec![VmSpec::new(Resources::new(1.0, 4.0)); 3];
        let traces = vec![DemandTrace::from_samples(SimDuration::from_mins(5), vec![0.1]); 3];
        let fleet = Fleet::from_parts(vms, traces);
        let s = Scenario::new("tiny", hosts, fleet, SimDuration::from_mins(5), 1);
        let err =
            DatacenterSim::new(&s, None, s.demand_step(), SimDuration::from_hours(1)).unwrap_err();
        assert!(matches!(err, SimError::InitialPlacement { .. }));
    }

    #[test]
    fn churn_scenario_provisions_and_retires() {
        let s = Scenario::datacenter_churn(6, 36, 0.5, 4);
        let transient = s
            .fleet()
            .lifetimes()
            .lifetimes()
            .iter()
            .filter(|l| l.departure.is_some())
            .count();
        assert!(transient > 5, "want real churn, got {transient}");
        let (report, cluster) = DatacenterSim::new(
            &s,
            Some(manager(PowerPolicy::reactive_suspend(), &s)),
            s.demand_step(),
            SimDuration::from_hours(24),
        )
        .unwrap()
        .run_inner()
        .map(|(r, c, _, _)| (r, c))
        .unwrap();
        assert!(report.energy_j > 0.0);
        // Departed VMs must not still be placed at the end.
        for (i, life) in s.fleet().lifetimes().lifetimes().iter().enumerate() {
            if let Some(d) = life.departure {
                if d <= simcore::SimTime::ZERO + SimDuration::from_hours(24) {
                    assert!(
                        cluster
                            .placement()
                            .host_of(cluster::VmId(i as u32))
                            .is_none(),
                        "vm{i} departed but still placed"
                    );
                }
            }
        }
        assert!(cluster.placement().check_invariants());
    }

    #[test]
    fn event_log_records_lifecycle() {
        use crate::events::EventKind;
        let s = Scenario::datacenter(4, 16, 8);
        let mut sim = DatacenterSim::new(
            &s,
            Some(manager(PowerPolicy::reactive_suspend(), &s)),
            s.demand_step(),
            SimDuration::from_hours(6),
        )
        .unwrap();
        sim.enable_event_log();
        let report = sim.run_inner().map(|(r, _, _, _)| r).unwrap();
        assert!(!report.events.is_empty());
        // Every started migration has a completion, in time order.
        let starts = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MigrationStarted { .. }))
            .count();
        let dones = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MigrationCompleted { .. }))
            .count();
        assert_eq!(starts, dones);
        assert!(report.events.windows(2).all(|w| w[0].time <= w[1].time));
        // Without enabling, the log stays empty.
        let plain = DatacenterSim::new(
            &s,
            Some(manager(PowerPolicy::reactive_suspend(), &s)),
            s.demand_step(),
            SimDuration::from_hours(6),
        )
        .unwrap()
        .run_inner()
        .map(|(r, _, _, _)| r)
        .unwrap();
        assert!(plain.events.is_empty());
    }

    #[test]
    fn late_arrival_on_full_cluster_is_rejected_not_dropped() {
        use cluster::{HostSpec, Resources, VmSpec};
        use power::HostPowerProfile;
        use workload::{DemandTrace, Fleet, Lifetime, LifetimePlan};

        // One host whose memory the permanent VM fills completely; the
        // transient VM arrives in the last control interval and can never
        // be placed before the horizon.
        let hosts = vec![HostSpec::new(
            Resources::new(4.0, 8.0),
            HostPowerProfile::prototype_rack(),
        )];
        let vms = vec![
            VmSpec::new(Resources::new(1.0, 8.0)),
            VmSpec::new(Resources::new(1.0, 4.0)),
        ];
        let traces = vec![DemandTrace::from_samples(SimDuration::from_mins(5), vec![0.1]); 2];
        let horizon = SimDuration::from_hours(1);
        let late = SimTime::ZERO + horizon - SimDuration::from_mins(2);
        let fleet =
            Fleet::from_parts(vms, traces).with_lifetime_plan(LifetimePlan::from_lifetimes(vec![
                Lifetime::PERMANENT,
                Lifetime {
                    arrival: late,
                    departure: None,
                },
            ]));
        let s = Scenario::new("full-house", hosts, fleet, SimDuration::from_mins(5), 1);
        let mut sim = DatacenterSim::new(&s, None, SimDuration::from_mins(5), horizon).unwrap();
        sim.enable_event_log();
        let report = sim.run_inner().map(|(r, _, _, _)| r).unwrap();
        // The silent-drop bug: previously this arrival vanished without a
        // trace. Now it is a counted, logged rejection.
        assert_eq!(report.rejected_admissions, 1);
        assert_eq!(report.placement_retries, 1);
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::VmArrivalRejected { vm } if vm == VmId(1))));
        assert_eq!(report.metrics.counter("sim.vm.rejected"), 1);
    }

    #[test]
    fn migration_failures_keep_vm_on_source_and_ledger_exact() {
        let s = Scenario::datacenter(6, 24, 11);
        let mk = |p: f64| {
            let mut sim = DatacenterSim::new(
                &s,
                Some(manager(PowerPolicy::reactive_suspend(), &s)),
                s.demand_step(),
                SimDuration::from_hours(24),
            )
            .unwrap();
            sim.set_failure_model(FailureModel::none().with_migration_failures(p));
            sim.enable_event_log();
            sim.run_inner().map(|(r, c, _, _)| (r, c)).unwrap()
        };
        let (report, cluster) = mk(0.3);
        assert!(
            report.migration_failures > 0,
            "a day of consolidation at p=0.3 must abort some migrations"
        );
        let failed_events = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MigrationFailed { .. }))
            .count() as u64;
        assert_eq!(failed_events, report.migration_failures);
        assert_eq!(report.migrations, cluster.migrations_completed());
        assert!(cluster.placement().check_invariants());
        // Injection off keeps the field at zero.
        let (clean, _) = mk(0.0);
        assert_eq!(clean.migration_failures, 0);
    }

    #[test]
    fn hangs_stretch_transitions_and_always_fail() {
        let s = Scenario::datacenter(6, 24, 12);
        let mut sim = DatacenterSim::new(
            &s,
            Some(manager(PowerPolicy::reactive_suspend(), &s)),
            s.demand_step(),
            SimDuration::from_hours(24),
        )
        .unwrap();
        sim.set_failure_model(FailureModel::none().with_hangs(0.4, 8.0));
        sim.enable_event_log();
        let report = sim.run_inner().map(|(r, _, _, _)| r).unwrap();
        assert!(report.hung_transitions > 0, "p=0.4 must hang something");
        let stuck = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PowerStuck { .. }))
            .count() as u64;
        let failed = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PowerFailed { .. }))
            .count() as u64;
        assert_eq!(stuck, report.hung_transitions);
        // Every hang ends in a failure; independent coin flips are off, so
        // hangs are the only failure source.
        assert_eq!(failed, report.hung_transitions);
        assert_eq!(report.transition_failures, failed);
    }

    #[test]
    fn rack_bursts_fail_correlated_transitions() {
        let s = Scenario::datacenter(8, 32, 13);
        let mut sim = DatacenterSim::new(
            &s,
            Some(manager(PowerPolicy::reactive_suspend(), &s)),
            s.demand_step(),
            SimDuration::from_hours(24),
        )
        .unwrap();
        sim.set_failure_model(FailureModel::none().with_rack_bursts(
            4,
            0.05,
            SimDuration::from_mins(30),
        ));
        sim.enable_event_log();
        let report = sim.run_inner().map(|(r, _, _, _)| r).unwrap();
        assert!(
            report.transition_failures > 0,
            "a day of 5%-per-epoch rack bursts must catch some transitions"
        );
        let failed = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PowerFailed { .. }))
            .count() as u64;
        assert_eq!(failed, report.transition_failures);
    }

    #[test]
    fn injected_failures_are_bit_reproducible() {
        let run = || {
            let s = Scenario::datacenter_churn(6, 36, 0.5, 14);
            let mut sim = DatacenterSim::new(
                &s,
                Some(manager(PowerPolicy::reactive_suspend(), &s)),
                s.demand_step(),
                SimDuration::from_hours(24),
            )
            .unwrap();
            sim.set_failure_model(
                FailureModel::new(0.1, 0.05)
                    .with_migration_failures(0.1)
                    .with_hangs(0.1, 4.0)
                    .with_rack_bursts(3, 0.02, SimDuration::from_mins(20)),
            );
            sim.enable_event_log();
            sim.run_inner().map(|(r, _, _, _)| r).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact()
        );
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let s = Scenario::datacenter(4, 16, 9);
            DatacenterSim::new(
                &s,
                Some(manager(PowerPolicy::reactive_suspend(), &s)),
                s.demand_step(),
                SimDuration::from_hours(6),
            )
            .unwrap()
            .run_inner()
            .map(|(r, _, _, _)| r)
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn single_scheduler_control_plane_matches_direct_path() {
        let s = Scenario::datacenter(8, 32, 21);
        let horizon = SimDuration::from_hours(24);
        let direct = DatacenterSim::new(
            &s,
            Some(manager(PowerPolicy::reactive_suspend(), &s)),
            s.demand_step(),
            horizon,
        )
        .unwrap()
        .run_inner()
        .map(|(r, _, _, _)| r)
        .unwrap();
        let mut sim = DatacenterSim::new(
            &s,
            Some(manager(PowerPolicy::reactive_suspend(), &s)),
            s.demand_step(),
            horizon,
        )
        .unwrap();
        sim.set_control_plane(1, 0, 0);
        let plane = sim.run_inner().map(|(r, _, _, _)| r).unwrap();
        assert_eq!(direct, plane);
        assert_eq!(
            direct.to_json().to_string_compact(),
            plane.to_json().to_string_compact()
        );
        // And nothing was rejected, dropped, or expired on the way.
        assert_eq!(plane.metrics.counter("work.commit.rejected"), 0);
        assert_eq!(plane.metrics.counter("work.commit.dropped_unowned"), 0);
        assert_eq!(plane.metrics.counter("work.commit.expired"), 0);
        assert_eq!(
            plane.metrics.counter("work.commit.planned"),
            plane.metrics.counter("work.commit.accepted")
        );
    }

    #[test]
    fn single_scheduler_plane_ignores_staleness() {
        // With one scheduler the merge degenerates to the fresh view, so
        // any staleness setting reproduces the direct path.
        let s = Scenario::datacenter(6, 24, 23);
        let horizon = SimDuration::from_hours(12);
        let run = |staleness: usize| {
            let mut sim = DatacenterSim::new(
                &s,
                Some(manager(PowerPolicy::reactive_suspend(), &s)),
                s.demand_step(),
                horizon,
            )
            .unwrap();
            sim.set_control_plane(1, staleness, 0);
            sim.run_inner().map(|(r, _, _, _)| r).unwrap()
        };
        assert_eq!(run(0), run(5));
    }

    #[test]
    fn multi_scheduler_plane_is_deterministic_and_ledger_balanced() {
        let run = || {
            let s = Scenario::datacenter(8, 32, 22);
            let mut sim = DatacenterSim::new(
                &s,
                Some(manager(PowerPolicy::reactive_suspend(), &s)),
                s.demand_step(),
                SimDuration::from_hours(24),
            )
            .unwrap();
            sim.set_control_plane(4, 2, 1);
            sim.enable_event_log();
            sim.run_inner().map(|(r, _, _, _)| r).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // The stale-view fleet still saves power...
        assert!(a.power_downs > 0, "stale schedulers must still park hosts");
        // ...and the commit ledger closes exactly.
        let m = &a.metrics;
        assert_eq!(
            m.counter("work.commit.planned"),
            m.counter("work.commit.accepted")
                + m.counter("work.commit.rejected")
                + m.counter("work.commit.dropped_unowned")
                + m.counter("work.commit.expired")
        );
        // Every store rejection surfaced as a logged event and counter.
        let rejected_events = a
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CommitRejected { .. }))
            .count() as u64;
        assert_eq!(rejected_events, m.counter("work.commit.rejected"));
        assert_eq!(rejected_events, m.counter("sim.commits.rejected"));
    }

    #[test]
    fn control_latency_expires_the_last_batches() {
        // latency = 1: the final tick's plan is still aging when the
        // horizon closes, so whatever it planned expires.
        let s = Scenario::datacenter(6, 24, 24);
        let mut sim = DatacenterSim::new(
            &s,
            Some(manager(PowerPolicy::reactive_suspend(), &s)),
            s.demand_step(),
            SimDuration::from_hours(12),
        )
        .unwrap();
        sim.set_control_plane(2, 0, 1);
        let report = sim.run_inner().map(|(r, _, _, _)| r).unwrap();
        let m = &report.metrics;
        assert_eq!(
            m.counter("work.commit.planned"),
            m.counter("work.commit.accepted")
                + m.counter("work.commit.rejected")
                + m.counter("work.commit.dropped_unowned")
                + m.counter("work.commit.expired")
        );
    }
}
