//! End-to-end datacenter simulator for the `agilepm` workspace.
//!
//! This crate is the scale-out evaluation methodology of the ISCA'13
//! paper, rebuilt: it couples the [`workload`] demand traces, the
//! [`cluster`] virtualization substrate, the [`power`] host models, and
//! the [`agile_core`] manager into a discrete-event simulation, and
//! distills each run into a [`SimReport`] with the metrics the paper's
//! tables and figures report (energy, violations, migration and
//! power-action rates, power-over-time traces).
//!
//! * [`Scenario`] — a reproducible world: host fleet + VM fleet + seed.
//! * [`Experiment`] — scenario × policy × horizon (*what* to simulate).
//! * [`SimulationBuilder`] — the single entry point that validates and
//!   runs an experiment (*how*: threads, profiling, cluster capture,
//!   analytic DVFS mode) and produces a [`SimOutput`].
//! * [`DatacenterSim`] — the underlying event loop, for callers that need
//!   custom instrumentation.
//! * [`sweeps::SweepBuilder`] — the one sweep engine: axis values ×
//!   legs × replication seeds, executed through the bounded worker pool
//!   (wake latency, load proportionality, headroom, scale-out, ...).
//! * [`report`] — plain-text table/series formatting shared by the bench
//!   binaries.
//!
//! # Example
//!
//! ```
//! use agile_core::PowerPolicy;
//! use dcsim::{Experiment, Scenario, SimulationBuilder};
//! use simcore::SimDuration;
//!
//! let experiment = Experiment::new(Scenario::small_test(42))
//!     .policy(PowerPolicy::reactive_suspend())
//!     .horizon(SimDuration::from_hours(2));
//! let out = SimulationBuilder::new(experiment).build()?.run()?;
//! assert!(out.report.energy_kwh() > 0.0);
//! # Ok::<(), dcsim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod engine;
mod error;
pub mod events;
mod failure;
mod metrics;
mod replication;
pub mod report;
mod runner;
mod scenario;
pub mod sweeps;
mod trace;

pub use builder::{SimOutput, Simulation, SimulationBuilder};
pub use engine::DatacenterSim;
pub use error::SimError;
pub use events::{EventKind, EventRecord};
pub use failure::FailureModel;
pub use metrics::SimReport;
pub use replication::{replicate, MetricStats, ReplicationSummary};
pub use runner::Experiment;
pub use scenario::Scenario;
pub use sweeps::{SweepBuilder, SweepRow};
